#include "exec/executor.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace unilog::exec {

namespace {
thread_local bool t_on_pool_worker = false;
// True while this thread is the *caller* of an in-flight ThreadPool::Run.
// A nested region started from inside a task body on the calling thread
// must run inline: Run() holds the batch mutex, so re-entering it from the
// same thread would self-deadlock.
thread_local bool t_in_region = false;

bool InParallelContext() { return t_on_pool_worker || t_in_region; }
}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

void ThreadPool::DrainBatch(Batch* batch) {
  size_t completed = 0;
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    (*batch->task)(i);
    ++completed;
  }
  if (completed == 0) return;
  size_t done = batch->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed;
  if (done == batch->n) {
    // Take the mutex (empty critical section) so the notification cannot
    // race past the caller's predicate check in Run().
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  uint64_t last_seq = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_seq_ != last_seq);
      });
      if (stop_) return;
      batch = batch_;
      last_seq = batch_seq_;
    }
    DrainBatch(batch.get());
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  DrainBatch(batch.get());  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    batch_.reset();
  }
}

Executor::Executor(ExecOptions options) : options_(options) {
  if (options_.threads > 1) {
    // N-way parallelism = N-1 workers + the calling thread.
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

Executor::~Executor() = default;

void Executor::Record(const char* stage, size_t tasks, double elapsed_ms) {
  if (metrics_ == nullptr) return;
  obs::Labels labels{{"stage", stage}};
  metrics_->GetCounter("exec_tasks", labels)->Increment(tasks);
  metrics_->GetCounter("exec_regions", labels)->Increment();
  metrics_->GetHistogram("exec_region_ms", labels)->Observe(elapsed_ms);
  metrics_->GetGauge("exec_threads")->Set(options_.threads);
}

void Executor::ParallelFor(const char* stage, size_t n,
                           const std::function<void(size_t)>& body) {
  if (n == 0) return;
  auto start = std::chrono::steady_clock::now();
  if (!parallel() || InParallelContext()) {
    // Serial engine, or a nested region (from a pool worker or from the
    // calling thread's own task body): inline, in index order.
    for (size_t i = 0; i < n; ++i) body(i);
  } else {
    t_in_region = true;
    pool_->Run(n, body);
    t_in_region = false;
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  Record(stage, n, ms);
}

size_t Executor::ChunksFor(size_t n) const {
  if (n == 0) return 0;
  if (!parallel() || InParallelContext()) return 1;
  // Oversubscribe ~4 chunks per thread so dynamic claiming absorbs skew.
  size_t target = static_cast<size_t>(options_.threads) * 4;
  size_t min_chunk = std::max<size_t>(1, options_.min_items_per_chunk);
  size_t chunk_size = std::max(min_chunk, (n + target - 1) / target);
  return (n + chunk_size - 1) / chunk_size;
}

void Executor::ParallelForChunked(
    const char* stage, size_t n,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  size_t chunks = ChunksFor(n);
  size_t base = n / chunks;
  size_t rem = n % chunks;
  ParallelFor(stage, chunks, [&](size_t c) {
    size_t begin = c * base + std::min(c, rem);
    size_t end = begin + base + (c < rem ? 1 : 0);
    body(c, begin, end);
  });
}

Status Executor::ParallelForStatus(const char* stage, size_t n,
                                   const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::OK();
  if (!parallel() || InParallelContext()) {
    auto start = std::chrono::steady_clock::now();
    Status status = Status::OK();
    size_t ran = 0;
    for (size_t i = 0; i < n; ++i) {
      ++ran;
      status = body(i);
      if (!status.ok()) break;  // historical serial semantics: stop early
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    Record(stage, ran, ms);
    return status;
  }
  std::vector<Status> statuses(n);
  ParallelFor(stage, n, [&](size_t i) { statuses[i] = body(i); });
  for (auto& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

}  // namespace unilog::exec
