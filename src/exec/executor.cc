#include "exec/executor.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace unilog::exec {

namespace {
thread_local bool t_on_pool_worker = false;
// True while this thread is the *caller* of an in-flight ThreadPool::Run.
// A nested region started from inside a task body on the calling thread
// must run inline: Run() holds the batch mutex, so re-entering it from the
// same thread would self-deadlock.
thread_local bool t_in_region = false;

bool InParallelContext() { return t_on_pool_worker || t_in_region; }
}  // namespace

void MorselStats::MergeFrom(const MorselStats& other) {
  morsels += other.morsels;
  steals += other.steals;
  total_bytes += other.total_bytes;
  max_morsel_bytes = std::max(max_morsel_bytes, other.max_morsel_bytes);
}

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

bool ThreadPool::OnWorkerThread() { return t_on_pool_worker; }

void ThreadPool::DrainBatch(Batch* batch) {
  size_t completed = 0;
  while (true) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    (*batch->task)(i);
    ++completed;
  }
  if (completed == 0) return;
  size_t done = batch->done.fetch_add(completed, std::memory_order_acq_rel) +
                completed;
  if (done == batch->n) {
    // Take the mutex (empty critical section) so the notification cannot
    // race past the caller's predicate check in Run().
    { std::lock_guard<std::mutex> lock(mu_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  uint64_t last_seq = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_seq_ != last_seq);
      });
      if (stop_) return;
      batch = batch_;
      last_seq = batch_seq_;
    }
    DrainBatch(batch.get());
  }
}

void ThreadPool::Run(size_t n, const std::function<void(size_t)>& task) {
  if (n == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto batch = std::make_shared<Batch>();
  batch->task = &task;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  DrainBatch(batch.get());  // the caller participates
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    batch_.reset();
  }
}

Executor::Executor(ExecOptions options) : options_(options) {
  if (options_.threads > 1) {
    // N-way parallelism = N-1 workers + the calling thread.
    pool_ = std::make_unique<ThreadPool>(options_.threads - 1);
  }
}

Executor::~Executor() = default;

void Executor::Record(const char* stage, size_t tasks, double elapsed_ms) {
  if (metrics_ == nullptr) return;
  obs::Labels labels{{"stage", stage}};
  metrics_->GetCounter("exec_tasks", labels)->Increment(tasks);
  metrics_->GetCounter("exec_regions", labels)->Increment();
  metrics_->GetHistogram("exec_region_ms", labels)->Observe(elapsed_ms);
  metrics_->GetGauge("exec_threads")->Set(options_.threads);
}

void Executor::ParallelFor(const char* stage, size_t n,
                           const std::function<void(size_t)>& body) {
  if (n == 0) return;
  auto start = std::chrono::steady_clock::now();
  if (!parallel() || InParallelContext()) {
    // Serial engine, or a nested region (from a pool worker or from the
    // calling thread's own task body): inline, in index order.
    for (size_t i = 0; i < n; ++i) body(i);
  } else {
    t_in_region = true;
    pool_->Run(n, body);
    t_in_region = false;
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  Record(stage, n, ms);
}

size_t Executor::ChunksFor(size_t n) const {
  if (n == 0) return 0;
  if (!parallel() || InParallelContext()) return 1;
  // Oversubscribe ~4 chunks per thread so dynamic claiming absorbs skew.
  size_t target = static_cast<size_t>(options_.threads) * 4;
  size_t min_chunk = std::max<size_t>(1, options_.min_items_per_chunk);
  size_t chunk_size = std::max(min_chunk, (n + target - 1) / target);
  return (n + chunk_size - 1) / chunk_size;
}

void Executor::ParallelForChunked(
    const char* stage, size_t n,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  size_t chunks = ChunksFor(n);
  size_t base = n / chunks;
  size_t rem = n % chunks;
  ParallelFor(stage, chunks, [&](size_t c) {
    size_t begin = c * base + std::min(c, rem);
    size_t end = begin + base + (c < rem ? 1 : 0);
    body(c, begin, end);
  });
}

Status Executor::ParallelForStatus(const char* stage, size_t n,
                                   const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::OK();
  if (!parallel() || InParallelContext()) {
    auto start = std::chrono::steady_clock::now();
    Status status = Status::OK();
    size_t ran = 0;
    for (size_t i = 0; i < n; ++i) {
      ++ran;
      status = body(i);
      if (!status.ok()) break;  // historical serial semantics: stop early
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    Record(stage, ran, ms);
    return status;
  }
  std::vector<Status> statuses(n);
  ParallelFor(stage, n, [&](size_t i) { statuses[i] = body(i); });
  for (auto& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Status Executor::ParallelForMorsels(
    const char* stage, const std::vector<uint64_t>& item_bytes,
    const MorselOptions& options,
    const std::function<Status(size_t, size_t, size_t)>& body,
    MorselStats* stats) {
  const size_t n = item_bytes.size();
  if (n == 0) return Status::OK();
  const uint64_t target = std::max<uint64_t>(1, options.morsel_bytes);

  // Greedy byte-packing in index order: a pure function of the weights
  // and the target, so boundaries never depend on scheduling.
  std::vector<size_t> bounds;
  bounds.push_back(0);
  MorselStats local;
  uint64_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += item_bytes[i];
    local.total_bytes += item_bytes[i];
    if (acc >= target) {
      bounds.push_back(i + 1);
      local.max_morsel_bytes = std::max(local.max_morsel_bytes, acc);
      acc = 0;
    }
  }
  if (bounds.back() != n) {
    bounds.push_back(n);
    local.max_morsel_bytes = std::max(local.max_morsel_bytes, acc);
  }
  const size_t morsels = bounds.size() - 1;
  local.morsels = morsels;

  Status result = Status::OK();
  if (!parallel() || InParallelContext()) {
    auto start = std::chrono::steady_clock::now();
    size_t ran = 0;
    for (size_t m = 0; m < morsels; ++m) {
      ++ran;
      result = body(m, bounds[m], bounds[m + 1]);
      if (!result.ok()) break;  // serial semantics: stop at first failure
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    Record(stage, ran, ms);
  } else {
    // One contiguous morsel range per thread slot, drained through an
    // atomic cursor; an exhausted slot walks the other slots' cursors and
    // steals their remaining morsels.
    const size_t slots = static_cast<size_t>(options_.threads);
    const size_t base = morsels / slots;
    const size_t rem = morsels % slots;
    std::vector<size_t> range_end(slots);
    auto cursors = std::make_unique<std::atomic<size_t>[]>(slots);
    for (size_t s = 0; s < slots; ++s) {
      const size_t begin = s * base + std::min(s, rem);
      cursors[s].store(begin, std::memory_order_relaxed);
      range_end[s] = begin + base + (s < rem ? 1 : 0);
    }
    std::vector<Status> statuses(morsels);
    std::vector<uint64_t> steal_counts(slots, 0);
    ParallelFor(stage, slots, [&](size_t s) {
      uint64_t stolen = 0;
      for (size_t off = 0; off < slots; ++off) {
        const size_t victim = (s + off) % slots;
        while (true) {
          const size_t m =
              cursors[victim].fetch_add(1, std::memory_order_relaxed);
          if (m >= range_end[victim]) break;
          statuses[m] = body(m, bounds[m], bounds[m + 1]);
          if (victim != s) ++stolen;
        }
      }
      steal_counts[s] = stolen;
    });
    for (uint64_t c : steal_counts) local.steals += c;
    for (auto& status : statuses) {
      if (!status.ok()) {
        result = std::move(status);
        break;
      }
    }
  }

  if (metrics_ != nullptr) {
    obs::Labels labels{{"stage", stage}};
    metrics_->GetCounter("exec.morsel_steals", labels)
        ->Increment(local.steals);
    auto* hist = metrics_->GetHistogram("exec.morsel_size_bytes", labels);
    for (size_t m = 0; m < morsels; ++m) {
      uint64_t bytes = 0;
      for (size_t i = bounds[m]; i < bounds[m + 1]; ++i) bytes += item_bytes[i];
      hist->Observe(static_cast<double>(bytes));
    }
  }
  {
    std::lock_guard<std::mutex> lock(morsel_mu_);
    morsel_totals_.MergeFrom(local);
  }
  if (stats != nullptr) stats->MergeFrom(local);
  return result;
}

MorselStats Executor::morsel_totals() const {
  std::lock_guard<std::mutex> lock(morsel_mu_);
  return morsel_totals_;
}

}  // namespace unilog::exec
