#ifndef UNILOG_EXEC_EXECUTOR_H_
#define UNILOG_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace unilog::obs {
class MetricsRegistry;
}  // namespace unilog::obs

namespace unilog::exec {

/// Execution configuration for the dataflow layer. `threads <= 1` selects
/// the serial engine: every ParallelFor runs inline on the calling thread
/// in index order, with no pool, no locks, and no worker threads — the
/// exact pre-engine code path.
struct ExecOptions {
  int threads = 1;
  /// Floor on items per chunk for the chunked variants, so tiny inputs do
  /// not shatter into per-row tasks.
  size_t min_items_per_chunk = 16;
};

/// Knobs for Executor::ParallelForMorsels. Items are packed greedily in
/// index order: a morsel closes once its accumulated byte weight reaches
/// `morsel_bytes` (every morsel holds at least one item, whatever its
/// weight). Boundaries depend only on the weights and this target — never
/// on scheduling — so per-item outputs merged in index order are
/// byte-identical at any thread count and any morsel size.
struct MorselOptions {
  uint64_t morsel_bytes = 256 * 1024;
};

/// Accounting of ParallelForMorsels regions.
struct MorselStats {
  uint64_t morsels = 0;
  /// Morsels executed by a thread slot other than the owner of their
  /// contiguous range — the work-stealing traffic.
  uint64_t steals = 0;
  uint64_t total_bytes = 0;
  uint64_t max_morsel_bytes = 0;

  void MergeFrom(const MorselStats& other);
};

/// A fixed-size pool of worker threads executing one "batch" (a bounded
/// parallel-for) at a time. Indices are claimed dynamically with an atomic
/// cursor, so stragglers do not serialize the batch; determinism comes
/// from callers writing results only into per-index slots, never from
/// completion order. The calling thread participates in the batch, so a
/// pool of N-1 workers yields N-way parallelism.
class ThreadPool {
 public:
  /// Spawns `num_workers` threads (0 is allowed: Run degenerates to an
  /// inline loop on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Runs task(i) for every i in [0, n) across the workers plus the
  /// calling thread; returns once all n indices completed. Batches are
  /// serialized: concurrent Run calls queue on an internal mutex. `task`
  /// must not throw.
  void Run(size_t n, const std::function<void(size_t)>& task);

  /// True when the current thread is one of this process's pool workers.
  /// Nested parallel regions use this to degrade to inline execution
  /// instead of deadlocking on the batch mutex.
  static bool OnWorkerThread();

 private:
  struct Batch {
    const std::function<void(size_t)>* task = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  void DrainBatch(Batch* batch);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Heap-owned so a worker that wakes late can still claim (and find
  // exhausted) a batch the caller has already abandoned.
  std::shared_ptr<Batch> batch_;  // guarded by mu_
  uint64_t batch_seq_ = 0;        // guarded by mu_; bumped per batch
  bool stop_ = false;             // guarded by mu_
  std::mutex run_mu_;             // serializes Run() calls
  std::vector<std::thread> workers_;
};

/// The deterministic parallel execution engine the dataflow layer runs on.
/// An Executor owns (at most) one ThreadPool and exposes ordered
/// parallel-for primitives whose outputs are byte-identical at any thread
/// count, provided bodies write only to state owned by their index.
///
/// Optionally reports per-stage task counts, region counts, and region
/// latencies into a shared obs::MetricsRegistry. Metrics are recorded by
/// the calling thread after each region completes, so the registry itself
/// is never touched concurrently by this class.
class Executor {
 public:
  explicit Executor(ExecOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int threads() const { return options_.threads; }
  /// True when a pool exists and regions actually fan out.
  bool parallel() const { return pool_ != nullptr; }
  const ExecOptions& options() const { return options_; }

  /// Attaches a metrics registry (may be nullptr to detach). Not
  /// thread-safe against in-flight regions.
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Runs body(i) for i in [0, n). Serial mode (threads <= 1, or a nested
  /// call from inside a pool worker) runs inline in index order.
  void ParallelFor(const char* stage, size_t n,
                   const std::function<void(size_t)>& body);

  /// Number of contiguous chunks ParallelForChunked splits n items into.
  /// 1 in serial mode. Chunk boundaries depend only on n and the options,
  /// never on scheduling, so chunk-indexed results are deterministic.
  size_t ChunksFor(size_t n) const;

  /// Splits [0, n) into ChunksFor(n) contiguous chunks and runs
  /// body(chunk_index, begin, end) for each.
  void ParallelForChunked(
      const char* stage, size_t n,
      const std::function<void(size_t chunk, size_t begin, size_t end)>& body);

  /// Status-collecting variant: runs body for every index and returns the
  /// non-OK status with the smallest index, or OK. The serial engine
  /// stops at the first failure (the historical behavior); the parallel
  /// engine runs all indices but reports the same status object.
  Status ParallelForStatus(const char* stage, size_t n,
                           const std::function<Status(size_t)>& body);

  /// Morsel-driven work-stealing scheduler over `item_bytes.size()` items
  /// with the given byte weights. Items are packed into morsels in index
  /// order (see MorselOptions); the morsel list is split into one
  /// contiguous range per thread slot, each drained through an atomic
  /// cursor, and a slot that exhausts its own range steals from the other
  /// slots' cursors — so a skewed range (one huge row group) never idles
  /// the rest of the pool behind a static chunk boundary.
  ///
  /// Runs body(morsel, begin, end) exactly once per morsel, where
  /// [begin, end) are item indices. Determinism contract: morsel
  /// boundaries are a pure function of the weights and options, and every
  /// morsel runs exactly once, so bodies that write only to per-item (or
  /// per-morsel) slots merged in index order produce byte-identical
  /// output at any thread count, morsel size, and steal schedule. Status
  /// semantics mirror ParallelForStatus: serial stops at the first
  /// failure; parallel runs everything and reports the smallest-index
  /// non-OK status. Records `exec.morsel_steals` and
  /// `exec.morsel_size_bytes` into the attached metrics registry, plus
  /// the cumulative morsel_totals().
  Status ParallelForMorsels(
      const char* stage, const std::vector<uint64_t>& item_bytes,
      const MorselOptions& options,
      const std::function<Status(size_t morsel, size_t begin, size_t end)>&
          body,
      MorselStats* stats = nullptr);

  /// Cumulative ParallelForMorsels accounting across regions.
  MorselStats morsel_totals() const;

 private:
  void Record(const char* stage, size_t tasks, double elapsed_ms);

  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  obs::MetricsRegistry* metrics_ = nullptr;
  mutable std::mutex morsel_mu_;
  MorselStats morsel_totals_;  // guarded by morsel_mu_
};

}  // namespace unilog::exec

#endif  // UNILOG_EXEC_EXECUTOR_H_
