#include "etwin/index.h"

#include <unordered_set>

#include "common/coding.h"
#include "common/compress.h"
#include "events/client_event.h"
#include "scribe/message.h"

namespace unilog::etwin {

Status EventNameIndex::BuildForDir(hdfs::MiniHdfs* fs,
                                   const std::string& dir) {
  UNILOG_ASSIGN_OR_RETURN(auto files, fs->ListRecursive(dir));
  EventNameIndex index;
  for (const auto& file : files) {
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;  // markers, old index
    uint32_t file_id = static_cast<uint32_t>(index.file_names_.size());
    index.file_names_.push_back(file.path);

    UNILOG_ASSIGN_OR_RETURN(std::string blob, fs->ReadFile(file.path));
    UNILOG_ASSIGN_OR_RETURN(std::string body, Lz::Decompress(blob));
    // Project just the event names (cheap scan, like the indexing job).
    events::ClientEventReader reader(body);
    std::string name;
    while (true) {
      Status st = reader.NextEventNameOnly(&name);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      index.name_to_files_[name].insert(file_id);
    }
  }
  std::string index_path = dir + "/" + kIndexFile;
  if (fs->Exists(index_path)) {
    UNILOG_RETURN_NOT_OK(fs->Delete(index_path));
  }
  return fs->WriteFile(index_path, index.Serialize());
}

Result<EventNameIndex> EventNameIndex::Load(const hdfs::MiniHdfs& fs,
                                            const std::string& dir) {
  UNILOG_ASSIGN_OR_RETURN(std::string data,
                          fs.ReadFile(dir + "/" + kIndexFile));
  return Deserialize(data);
}

std::vector<std::string> EventNameIndex::FilesMatching(
    const events::EventPattern& pattern) const {
  std::set<uint32_t> ids;
  for (const auto& [name, files] : name_to_files_) {
    if (pattern.Matches(name)) {
      ids.insert(files.begin(), files.end());
    }
  }
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (uint32_t id : ids) out.push_back(file_names_[id]);
  return out;
}

std::function<bool(const std::string& path)> EventNameIndex::FileFilter(
    const events::EventPattern& pattern) const {
  auto matching = FilesMatching(pattern);
  auto accept = std::make_shared<std::unordered_set<std::string>>(
      matching.begin(), matching.end());
  auto known = std::make_shared<std::unordered_set<std::string>>(
      file_names_.begin(), file_names_.end());
  return [accept, known](const std::string& path) {
    if (!known->count(path)) return true;  // unindexed: be conservative
    return accept->count(path) > 0;
  };
}

std::string EventNameIndex::Serialize() const {
  std::string out;
  PutVarint64(&out, file_names_.size());
  for (const auto& name : file_names_) PutLengthPrefixed(&out, name);
  PutVarint64(&out, name_to_files_.size());
  for (const auto& [name, files] : name_to_files_) {
    PutLengthPrefixed(&out, name);
    PutVarint64(&out, files.size());
    for (uint32_t id : files) PutVarint64(&out, id);
  }
  return out;
}

Result<EventNameIndex> EventNameIndex::Deserialize(std::string_view data) {
  EventNameIndex index;
  Decoder dec(data);
  uint64_t n_files;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&n_files));
  for (uint64_t i = 0; i < n_files; ++i) {
    std::string_view path;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&path));
    index.file_names_.emplace_back(path);
  }
  uint64_t n_names;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&n_names));
  for (uint64_t i = 0; i < n_names; ++i) {
    std::string_view name;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
    uint64_t count;
    UNILOG_RETURN_NOT_OK(dec.GetVarint64(&count));
    auto& files = index.name_to_files_[std::string(name)];
    for (uint64_t j = 0; j < count; ++j) {
      uint64_t id;
      UNILOG_RETURN_NOT_OK(dec.GetVarint64(&id));
      if (id >= index.file_names_.size()) {
        return Status::Corruption("etwin index: bad file id");
      }
      files.insert(static_cast<uint32_t>(id));
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("etwin index: trailing bytes");
  return index;
}

}  // namespace unilog::etwin
