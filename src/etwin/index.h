#ifndef UNILOG_ETWIN_INDEX_H_
#define UNILOG_ETWIN_INDEX_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/event_name.h"
#include "hdfs/mini_hdfs.h"

namespace unilog::etwin {

/// Elephant Twin-style indexing (§6): a per-partition inverted index from
/// event names to the files that contain them, living *alongside the data*
/// (in contrast to Trojan layouts) and integrated at the InputFormat level
/// so "applications and frameworks higher up the stack can transparently
/// take advantage of indexes for free" — in unilog, via
/// InputFormat::WithFileFilter on the MapReduceJob.
///
/// Because the index is a separate file, re-indexing is cheap: drop
/// `_etwin_index` and rebuild (the paper rebuilds its full-text tweet
/// indexes from scratch as tokenizers improve).
class EventNameIndex {
 public:
  /// The index file name inside an indexed partition directory.
  static constexpr const char* kIndexFile = "_etwin_index";

  /// Scans every data file under `dir` (compressed framed client events)
  /// and writes the index to <dir>/_etwin_index. Overwrites an existing
  /// index (rebuild-from-scratch semantics).
  static Status BuildForDir(hdfs::MiniHdfs* fs, const std::string& dir);

  /// Loads the index of a partition; NotFound if not built.
  static Result<EventNameIndex> Load(const hdfs::MiniHdfs& fs,
                                     const std::string& dir);

  /// Files under the indexed dir whose records may match `pattern`.
  std::vector<std::string> FilesMatching(
      const events::EventPattern& pattern) const;

  /// A push-down predicate for InputFormat::WithFileFilter: accepts only
  /// files containing at least one event matching `pattern`. Files not
  /// covered by the index (e.g. added after the build) are conservatively
  /// accepted.
  std::function<bool(const std::string& path)> FileFilter(
      const events::EventPattern& pattern) const;

  size_t indexed_files() const { return file_names_.size(); }
  size_t distinct_event_names() const { return name_to_files_.size(); }

  /// Serialization (what's stored in _etwin_index).
  std::string Serialize() const;
  static Result<EventNameIndex> Deserialize(std::string_view data);

 private:
  /// file index → file path.
  std::vector<std::string> file_names_;
  /// event name → indices into file_names_.
  std::map<std::string, std::set<uint32_t>> name_to_files_;
};

}  // namespace unilog::etwin

#endif  // UNILOG_ETWIN_INDEX_H_
