#include "sim/simulator.h"

#include <utility>

namespace unilog {

void Simulator::At(TimeMs t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

void Simulator::Run() {
  while (!queue_.empty()) {
    // priority_queue::top() returns const&; the callback must be moved out
    // before pop, so copy the frame via const_cast-free extraction.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
}

void Simulator::RunUntil(TimeMs t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
  if (now_ < t) now_ = t;
}

void Simulator::Step(uint64_t n) {
  while (n-- > 0 && !queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
}

}  // namespace unilog
