#ifndef UNILOG_SIM_SIMULATOR_H_
#define UNILOG_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace unilog {

/// A deterministic single-threaded discrete-event simulator. Components of
/// the delivery infrastructure (Scribe daemons, aggregators, the log mover,
/// ZooKeeper sessions) schedule callbacks on a shared virtual clock; the
/// simulator executes them in (time, insertion-order) order, so a given
/// seed always produces the exact same run.
class Simulator {
 public:
  using Callback = std::function<void()>;

  explicit Simulator(TimeMs start_time = 0)
      : now_(start_time) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimeMs Now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t`. Times in the past are
  /// clamped to Now() (the callback runs next).
  void At(TimeMs t, Callback cb);

  /// Schedules `cb` after `delay` milliseconds of virtual time.
  void After(TimeMs delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  /// Runs until the event queue is empty.
  void Run();

  /// Runs events with time <= `t`, then advances the clock to `t`.
  void RunUntil(TimeMs t);

  /// Executes at most `n` more events.
  void Step(uint64_t n = 1);

  size_t PendingEvents() const { return queue_.size(); }
  uint64_t EventsProcessed() const { return events_processed_; }

 private:
  struct Event {
    TimeMs time;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    Callback cb;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeMs now_;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace unilog

#endif  // UNILOG_SIM_SIMULATOR_H_
