#ifndef UNILOG_WORKLOAD_GENERATOR_H_
#define UNILOG_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "events/client_event.h"
#include "workload/hierarchy.h"

namespace unilog::workload {

/// A simulated user of the service.
struct UserProfile {
  int64_t user_id = 0;
  std::string country;
  bool logged_in = true;
  std::string client;  // primary client application
  std::string ip;
  double activity = 1.0;  // relative session-rate multiplier
};

/// Generator configuration. Defaults produce a laptop-scale day of traffic
/// with the statistical shape the paper's claims rest on: Zipf-skewed
/// event popularity, Markov-correlated within-session behaviour, a signup
/// funnel with per-stage abandonment, and 30-minute-separable sessions.
struct WorkloadOptions {
  uint64_t seed = 42;
  int num_users = 500;
  /// First user id assigned (ids run base .. base+num_users-1). Sharded
  /// drivers (the soak harness runs one generator per simulated hour) give
  /// each shard a distinct base so the shards model distinct users instead
  /// of aliasing onto one population.
  int64_t user_id_base = 1000000;
  TimeMs start = 0;             // window start (set via MakeDate)
  TimeMs duration = kMillisPerDay;
  double sessions_per_user_mean = 2.0;
  double events_per_session_mean = 18.0;
  /// Zipf skew of the base event-popularity distribution.
  double zipf_theta = 1.05;
  /// Probability that the next event is the planted follow-up of the
  /// current one (temporal signal for the n-gram experiments).
  double follow_up_probability = 0.35;
  /// Mean gap between consecutive events in a session (must stay well
  /// under the 30-minute sessionization gap).
  TimeMs event_gap_mean_ms = 15 * kMillisPerSecond;
  /// Fraction of sessions that are signup-funnel attempts.
  double signup_session_fraction = 0.08;
  /// P(advance to stage i+1 | reached stage i) for the signup funnel.
  std::vector<double> signup_continue = {0.75, 0.65, 0.80, 0.60};
  /// View-hierarchy fan-out multiplier.
  int hierarchy_scale = 1;
  /// Extra synthetic event_details key-value pairs per event, modeling the
  /// "rich nested payloads" of production logs (drives the E5 sweep).
  int extra_detail_pairs = 0;
};

/// Exact ground truth recorded while generating — benches compare pipeline
/// outputs against these.
struct GroundTruth {
  uint64_t total_events = 0;
  uint64_t total_sessions = 0;
  uint64_t signup_sessions = 0;
  /// sessions that reached stage i (index 0 = entered the funnel).
  std::vector<uint64_t> funnel_stage_sessions;
  std::map<std::string, uint64_t> event_counts;
  std::map<std::string, uint64_t> sessions_per_client;
};

/// Generates a window of client events for a synthetic user population.
/// Deterministic for a given options.seed. Events are delivered to the
/// sink in global timestamp order.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  /// The generated user population (stable across calls).
  const std::vector<UserProfile>& users() const { return users_; }
  const ViewHierarchy& hierarchy() const { return hierarchy_; }

  /// Generates all events into `sink` in timestamp order and records
  /// ground truth. May be called once.
  Status Generate(const std::function<void(const events::ClientEvent&)>& sink);

  const GroundTruth& truth() const { return truth_; }

  /// Country of a user id (for rollup breakdowns / joins).
  const UserProfile* FindUser(int64_t user_id) const;

 private:
  void BuildUsers();
  /// Appends one session's events for `user` starting at `start` into
  /// `out`; updates ground truth.
  void GenerateSession(const UserProfile& user, int session_index,
                       TimeMs start, std::vector<events::ClientEvent>* out);
  void GenerateSignupSession(const UserProfile& user, int session_index,
                             TimeMs start,
                             std::vector<events::ClientEvent>* out);
  events::ClientEvent MakeEvent(const UserProfile& user,
                                const std::string& session_id, TimeMs ts,
                                const std::string& name);

  WorkloadOptions options_;
  Rng rng_;
  ViewHierarchy hierarchy_;
  std::vector<UserProfile> users_;
  std::vector<std::string> client_names_[8];  // per client index
  GroundTruth truth_;
  bool generated_ = false;
};

}  // namespace unilog::workload

#endif  // UNILOG_WORKLOAD_GENERATOR_H_
