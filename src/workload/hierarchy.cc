#include "workload/hierarchy.h"

#include <cstdio>
#include <set>

namespace unilog::workload {

namespace {

struct Surface {
  const char* page;
  const char* section;
  const char* component;
  const char* element;
};

// The shared surface catalog: each client exposes the same logical
// surfaces (§3.2's consistent design language).
constexpr Surface kSurfaces[] = {
    {"home", "timeline", "stream", "tweet"},
    {"home", "timeline", "stream", "avatar"},
    {"home", "timeline", "stream", "link"},
    {"home", "mentions", "stream", "tweet"},
    {"home", "mentions", "stream", "avatar"},
    {"home", "retweets", "stream", "tweet"},
    {"home", "searches", "search_box", "button"},
    {"home", "suggestions", "who_to_follow", "follow_button"},
    {"home", "suggestions", "who_to_follow", "avatar"},
    {"home", "trends", "trend_list", "trend"},
    {"profile", "tweets", "stream", "tweet"},
    {"profile", "followers", "user_list", "follow_button"},
    {"profile", "following", "user_list", "avatar"},
    {"profile", "", "header", "bio"},
    {"search", "results", "result_list", "result"},
    {"search", "results", "result_list", "avatar"},
    {"search", "", "search_box", "button"},
    {"discover", "stories", "story_list", "story"},
    {"discover", "activity", "activity_list", "item"},
    {"connect", "interactions", "stream", "item"},
    {"connect", "mentions", "stream", "tweet"},
    {"settings", "account", "form", "save_button"},
    {"messages", "inbox", "thread_list", "thread"},
};

constexpr const char* kActions[] = {
    "impression", "click", "hover", "favorite",
    "retweet",    "follow", "profile_click", "expand",
};

// Which (element, action) pairs exist: not every action applies to every
// element; keep a simple rule set so the universe is realistic.
bool ActionApplies(const std::string& element, const std::string& action) {
  if (action == "impression" || action == "click") return true;
  if (action == "hover") return element != "button";
  if (action == "favorite" || action == "retweet" || action == "expand") {
    return element == "tweet";
  }
  if (action == "follow") return element == "follow_button";
  if (action == "profile_click") {
    return element == "avatar" || element == "bio";
  }
  return false;
}

}  // namespace

ViewHierarchy ViewHierarchy::TwitterLike(int scale) {
  ViewHierarchy h;
  h.clients_ = {"web", "iphone", "android", "ipad"};
  if (scale < 1) scale = 1;

  for (const auto& client : h.clients_) {
    for (const Surface& s : kSurfaces) {
      for (int rep = 0; rep < scale; ++rep) {
        std::string element = s.element;
        if (rep > 0) element += "_" + std::to_string(rep);
        for (const char* action : kActions) {
          if (!ActionApplies(s.element, action)) continue;
          auto name = events::EventName::Make(client, s.page, s.section,
                                              s.component, element, action);
          if (!name.ok()) continue;
          h.names_.push_back(name->ToString());
        }
      }
    }
    // Signup funnel stages.
    for (int stage = 0; stage < kSignupStages; ++stage) {
      h.names_.push_back(SignupStageEvent(client, stage));
    }
  }

  // Planted follow-ups: impression → click on the same surface; click →
  // profile_click where available.
  std::set<std::string> universe(h.names_.begin(), h.names_.end());
  for (const auto& name : h.names_) {
    auto parsed = events::EventName::Parse(name);
    if (!parsed.ok()) continue;
    if (parsed->action() == "impression") {
      auto click = events::EventName::Make(
          parsed->client(), parsed->page(), parsed->section(),
          parsed->part_component(), parsed->element(), "click");
      if (click.ok() && universe.count(click->ToString())) {
        h.follow_ups_[name] = click->ToString();
      }
    } else if (parsed->action() == "click") {
      auto profile = events::EventName::Make(
          parsed->client(), parsed->page(), parsed->section(),
          parsed->part_component(), parsed->element(), "profile_click");
      if (profile.ok() && universe.count(profile->ToString())) {
        h.follow_ups_[name] = profile->ToString();
      }
    }
  }
  return h;
}

std::vector<std::string> ViewHierarchy::NamesForClient(
    const std::string& client) const {
  std::vector<std::string> out;
  std::string prefix = client + ":";
  for (const auto& name : names_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::string ViewHierarchy::SignupStageEvent(const std::string& client,
                                            int stage) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "stage_%02d", stage);
  return client + ":signup:flow:form:page:" + buf;
}

const std::string* ViewHierarchy::FollowUpOf(
    const std::string& event_name) const {
  auto it = follow_ups_.find(event_name);
  return it == follow_ups_.end() ? nullptr : &it->second;
}

}  // namespace unilog::workload
