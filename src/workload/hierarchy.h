#ifndef UNILOG_WORKLOAD_HIERARCHY_H_
#define UNILOG_WORKLOAD_HIERARCHY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "events/event_name.h"

namespace unilog::workload {

/// The view hierarchy of the simulated Twitter clients: the universe of
/// six-level event names the workload generator draws from. Mirrors the
/// paper's design language: every client has the same logical surfaces
/// ("all clients have a section for viewing a user's mentions; an
/// impression means the same thing, whether on the web client or the
/// iPhone"), so names differ only in the client component.
class ViewHierarchy {
 public:
  /// Builds the default Twitter-like hierarchy:
  ///   clients  : web, iphone, android, ipad
  ///   pages    : home, profile, search, discover, connect, signup
  ///   sections : per page (mentions/retweets/searches/... on home, etc.)
  ///   actions  : impression, click, hover, favorite, retweet, follow,
  ///              profile_click, ...
  /// `scale` multiplies the component/element fan-out (1 → ~1-2k names).
  static ViewHierarchy TwitterLike(int scale = 1);

  /// All event names, in a deterministic order.
  const std::vector<std::string>& event_names() const { return names_; }
  size_t size() const { return names_.size(); }

  /// Names filtered to one client.
  std::vector<std::string> NamesForClient(const std::string& client) const;

  const std::vector<std::string>& clients() const { return clients_; }

  /// The signup-funnel stage event for `client` and stage index (0-based).
  /// Stage events live under <client>:signup:flow:form:page:stage_NN.
  static std::string SignupStageEvent(const std::string& client, int stage);
  /// Number of stages in the signup funnel.
  static constexpr int kSignupStages = 5;

  /// Planted behavioural correlations: for an event name that has a
  /// natural follow-up (impression → click on the same surface, click →
  /// profile view), returns it; empty string otherwise. The user-modeling
  /// experiments (collocations, n-gram signal) recover exactly these.
  const std::string* FollowUpOf(const std::string& event_name) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::string> clients_;
  std::map<std::string, std::string> follow_ups_;
};

}  // namespace unilog::workload

#endif  // UNILOG_WORKLOAD_HIERARCHY_H_
