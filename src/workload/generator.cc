#include "workload/generator.h"

#include <algorithm>
#include <cstdio>

namespace unilog::workload {

namespace {

constexpr const char* kCountries[] = {"us", "uk", "jp", "br", "de", "in"};
constexpr double kCountryWeights[] = {0.45, 0.15, 0.12, 0.10, 0.08, 0.10};
constexpr const char* kClients[] = {"web", "iphone", "android", "ipad"};
constexpr double kClientWeights[] = {0.50, 0.25, 0.18, 0.07};

}  // namespace

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(std::move(options)),
      rng_(options_.seed),
      hierarchy_(ViewHierarchy::TwitterLike(options_.hierarchy_scale)) {
  BuildUsers();
  truth_.funnel_stage_sessions.assign(ViewHierarchy::kSignupStages, 0);
}

void WorkloadGenerator::BuildUsers() {
  std::vector<double> country_w(std::begin(kCountryWeights),
                                std::end(kCountryWeights));
  std::vector<double> client_w(std::begin(kClientWeights),
                               std::end(kClientWeights));
  users_.reserve(options_.num_users);
  for (int i = 0; i < options_.num_users; ++i) {
    UserProfile u;
    u.user_id = options_.user_id_base + i;
    u.country = kCountries[rng_.PickWeighted(country_w)];
    u.logged_in = rng_.Bernoulli(0.8);
    u.client = kClients[rng_.PickWeighted(client_w)];
    char ip[32];
    std::snprintf(ip, sizeof(ip), "10.%d.%d.%d", i / 65536 % 256,
                  i / 256 % 256, i % 256);
    u.ip = ip;
    // Heavy-tailed activity: a few power users.
    u.activity = 0.3 + rng_.Exponential(1.0);
    users_.push_back(std::move(u));
  }
}

const UserProfile* WorkloadGenerator::FindUser(int64_t user_id) const {
  int64_t index = user_id - options_.user_id_base;
  if (index < 0 || index >= static_cast<int64_t>(users_.size())) {
    return nullptr;
  }
  return &users_[index];
}

events::ClientEvent WorkloadGenerator::MakeEvent(const UserProfile& user,
                                                 const std::string& session_id,
                                                 TimeMs ts,
                                                 const std::string& name) {
  events::ClientEvent ev;
  // Impressions are app-initiated half the time (timeline polls); other
  // actions are user-initiated.
  bool is_impression =
      name.size() > 11 && name.compare(name.size() - 10, 10, "impression") == 0;
  ev.initiator = (is_impression && rng_.Bernoulli(0.5))
                     ? events::EventInitiator::kClientApp
                     : events::EventInitiator::kClientUser;
  ev.event_name = name;
  ev.user_id = user.user_id;
  ev.session_id = session_id;
  ev.ip = user.ip;
  ev.timestamp = ts;
  // Event-specific details: teams populate these freely (§3.2); give the
  // raw logs realistic bulk.
  ev.details = {{"lang", user.country == "us" || user.country == "uk"
                             ? "en"
                             : user.country},
                {"client_version", "4." + std::to_string(ev.user_id % 7)}};
  if (name.find(":search:") != std::string::npos) {
    ev.details.emplace_back("query",
                            "q" + std::to_string(rng_.Uniform(1000)));
  }
  if (name.find("profile_click") != std::string::npos) {
    ev.details.emplace_back("profile_id",
                            std::to_string(1000000 + rng_.Uniform(5000)));
  }
  for (int i = 0; i < options_.extra_detail_pairs; ++i) {
    ev.details.emplace_back(
        "ctx_" + std::to_string(i),
        "v" + std::to_string(rng_.Uniform(100000)) + "-" +
            std::to_string(rng_.Uniform(100000)));
  }
  return ev;
}

void WorkloadGenerator::GenerateSession(
    const UserProfile& user, int session_index, TimeMs start,
    std::vector<events::ClientEvent>* out) {
  std::string session_id = "u" + std::to_string(user.user_id) + "-s" +
                           std::to_string(session_index);
  // Per-client alphabet with Zipfian base popularity. The signup flow is
  // excluded: ordinary browsing never wanders into it, so funnel ground
  // truth stays exact.
  std::vector<std::string> alphabet;
  for (auto& name : hierarchy_.NamesForClient(user.client)) {
    if (name.find(":signup:") == std::string::npos) {
      alphabet.push_back(std::move(name));
    }
  }
  ZipfianSampler zipf(alphabet.size(), options_.zipf_theta);

  size_t n_events =
      1 + rng_.Poisson(std::max(0.0, options_.events_per_session_mean - 1));
  TimeMs ts = start;
  std::string current = alphabet[zipf.Sample(rng_)];
  for (size_t e = 0; e < n_events; ++e) {
    out->push_back(MakeEvent(user, session_id, ts, current));
    ++truth_.event_counts[current];
    ++truth_.total_events;
    // Next event: planted follow-up with configured probability, else a
    // fresh Zipfian draw (the Markov structure §5.4's models detect).
    const std::string* follow = hierarchy_.FollowUpOf(current);
    if (follow != nullptr && rng_.Bernoulli(options_.follow_up_probability)) {
      current = *follow;
    } else {
      current = alphabet[zipf.Sample(rng_)];
    }
    // Gap: exponential, clamped well below the sessionization gap so one
    // generated session is exactly one reconstructed session.
    TimeMs gap = static_cast<TimeMs>(
        rng_.Exponential(static_cast<double>(options_.event_gap_mean_ms)));
    gap = std::min<TimeMs>(gap, kSessionInactivityGapMs / 3);
    ts += std::max<TimeMs>(gap, 1);
  }
  ++truth_.total_sessions;
  ++truth_.sessions_per_client[user.client];
}

void WorkloadGenerator::GenerateSignupSession(
    const UserProfile& user, int session_index, TimeMs start,
    std::vector<events::ClientEvent>* out) {
  std::string session_id = "u" + std::to_string(user.user_id) + "-s" +
                           std::to_string(session_index);
  TimeMs ts = start;
  ++truth_.signup_sessions;
  for (int stage = 0; stage < ViewHierarchy::kSignupStages; ++stage) {
    std::string name = ViewHierarchy::SignupStageEvent(user.client, stage);
    out->push_back(MakeEvent(user, session_id, ts, name));
    ++truth_.event_counts[name];
    ++truth_.total_events;
    ++truth_.funnel_stage_sessions[stage];
    if (stage < static_cast<int>(options_.signup_continue.size()) &&
        !rng_.Bernoulli(options_.signup_continue[stage])) {
      break;  // abandonment
    }
    TimeMs gap = 5 * kMillisPerSecond +
                 static_cast<TimeMs>(rng_.Exponential(20 * kMillisPerSecond));
    ts += std::min<TimeMs>(gap, kSessionInactivityGapMs / 3);
  }
  ++truth_.total_sessions;
  ++truth_.sessions_per_client[user.client];
}

Status WorkloadGenerator::Generate(
    const std::function<void(const events::ClientEvent&)>& sink) {
  if (generated_) {
    return Status::FailedPrecondition("Generate already called");
  }
  generated_ = true;

  std::vector<events::ClientEvent> all;
  for (const UserProfile& user : users_) {
    uint64_t sessions =
        rng_.Poisson(options_.sessions_per_user_mean * user.activity);
    for (uint64_t s = 0; s < sessions; ++s) {
      // Keep sessions inside the window and separated by > the
      // sessionization gap from each other via distinct session ids.
      TimeMs latest_start = options_.start + options_.duration -
                            2 * kSessionInactivityGapMs;
      if (latest_start <= options_.start) latest_start = options_.start + 1;
      TimeMs start =
          options_.start +
          static_cast<TimeMs>(rng_.Uniform(
              static_cast<uint64_t>(latest_start - options_.start)));
      if (rng_.Bernoulli(options_.signup_session_fraction)) {
        GenerateSignupSession(user, static_cast<int>(s), start, &all);
      } else {
        GenerateSession(user, static_cast<int>(s), start, &all);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const events::ClientEvent& a,
                      const events::ClientEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  for (const auto& ev : all) sink(ev);
  return Status::OK();
}

}  // namespace unilog::workload
