#ifndef UNILOG_OBS_DELIVERY_AUDIT_H_
#define UNILOG_OBS_DELIVERY_AUDIT_H_

#include <cstdint>
#include <string>

#include "common/json.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "scribe/cluster.h"

namespace unilog::obs {

/// A point-in-time accounting of every log entry the fleet has accepted.
/// The audit identity the pipeline must satisfy at all times:
///
///   entries_logged == warehoused
///                   + dropped_at_daemons   (daemon buffer overflow)
///                   + lost_in_crash        (aggregator crash loss window)
///                   + dropped_overflow     (aggregator buffer-limit drops)
///                   + late_dropped         (stragglers for moved hours)
///                   + lost_unreplicated    (acked broker entries whose only
///                                           replica died before catch-up)
///                   + in_flight            (queued / buffered / staged /
///                                           acked in a broker partition)
///
/// On the broker path an entry counts as warehoused once the mover's
/// consumer group commits past it; between producer ack and that commit it
/// sits in `in_flight_broker`. The identity therefore holds across leader
/// failover and broker crashes, not just in steady state.
///
/// Any imbalance means a loss channel is leaking uncounted — the class of
/// bug this audit exists to catch.
struct DeliverySnapshot {
  TimeMs at = 0;

  uint64_t logged = 0;
  uint64_t warehoused = 0;

  // --- Accounted loss channels ---
  uint64_t dropped_at_daemons = 0;
  uint64_t lost_in_crash = 0;
  uint64_t dropped_overflow = 0;
  uint64_t late_dropped = 0;
  /// Acked broker entries that died with their only replica before a
  /// follower caught up (async replication's loss window; zero under
  /// acks=all with min_insync_replicas satisfied).
  uint64_t lost_unreplicated = 0;
  /// Corrupt staged files are skipped whole; their message counts are
  /// unrecoverable, so a nonzero value here relaxes Balanced() to >=.
  uint64_t corrupt_files_skipped = 0;

  // --- In-flight (not yet lost, not yet warehoused) ---
  uint64_t in_flight_daemons = 0;      // queued in daemon buffers
  uint64_t in_flight_aggregators = 0;  // buffered, not yet staged
  uint64_t in_flight_staging = 0;      // staged, not yet moved
  uint64_t in_flight_broker = 0;       // acked, not yet consumer-committed

  uint64_t InFlight() const {
    return in_flight_daemons + in_flight_aggregators + in_flight_staging +
           in_flight_broker;
  }

  /// Everything the accounting can explain.
  uint64_t Accounted() const {
    return warehoused + dropped_at_daemons + lost_in_crash + dropped_overflow +
           late_dropped + lost_unreplicated + InFlight();
  }

  /// True when the audit identity holds. With corrupt files skipped the
  /// skipped messages are uncountable, so the identity degrades to
  /// logged >= accounted.
  bool Balanced() const {
    if (corrupt_files_skipped > 0) return Accounted() <= logged;
    return Accounted() == logged;
  }

  /// One-line human-readable form for bench output.
  std::string ToString() const;

  Json ToJson() const;
};

/// Reconciles the cluster's delivery counters into a DeliverySnapshot.
/// Borrow-only: the cluster must outlive the audit.
class DeliveryAudit {
 public:
  explicit DeliveryAudit(const scribe::ScribeCluster* cluster)
      : cluster_(cluster) {}

  DeliverySnapshot Snapshot() const;

  /// OK when the identity holds now; DataLoss with the full snapshot
  /// rendered into the message otherwise.
  Status Check() const;

  /// The post-drain contract: the identity must hold AND every in-flight
  /// channel must be exactly zero. Callers used to sum the channels by
  /// hand (and quietly forgot the new ones); this fails loudly, naming
  /// each nonzero channel, so a soak that "drained" with entries still
  /// stuck in a daemon queue or an unconsumed partition cannot pass.
  Status AssertQuiescent() const;

 private:
  const scribe::ScribeCluster* cluster_;
};

}  // namespace unilog::obs

#endif  // UNILOG_OBS_DELIVERY_AUDIT_H_
