#ifndef UNILOG_OBS_METRICS_H_
#define UNILOG_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/sim_time.h"
#include "sim/simulator.h"

namespace unilog::obs {

/// Metric labels: sorted key→value pairs. Sorted storage makes metric
/// identity and report ordering deterministic, which the sim-driven tests
/// rely on ("a given seed always produces the exact same run" extends to
/// the exact same metrics report).
using Labels = std::map<std::string, std::string>;

/// A monotonically increasing counter. Obtained from a MetricsRegistry,
/// which owns it; handles stay valid for the registry's lifetime.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  uint64_t value_ = 0;
};

/// A gauge: a value that can go up and down (queue depths, file counts).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  int64_t value_ = 0;
};

/// A histogram with fixed upper-bound buckets plus count/sum/min/max.
/// Observations larger than the last bound land in an implicit overflow
/// bucket.
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0 : sum_ / count_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_counts().size() == bounds().size() + 1 (last = overflow).
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Approximate quantile (q in [0,1]) from a histogram's buckets: linear
/// interpolation inside the containing bucket, clamped to the observed
/// min/max. Returns 0 for an empty histogram. This is how the benches
/// report tail latency (e.g. p99 end-to-end) from obs histograms.
double HistogramQuantile(const Histogram& hist, double q);

/// The unified metrics registry every delivery-path component reports
/// into. One registry per assembled system (ScribeCluster /
/// UnifiedLoggingPipeline); components constructed standalone fall back to
/// a private registry so their accessors keep working.
///
/// Deterministic by construction: metrics are stored sorted by
/// (name, labels) and reports carry the *simulated* clock, never the host
/// clock.
class MetricsRegistry {
 public:
  /// `sim` supplies the virtual timestamp stamped onto reports; may be
  /// nullptr (timestamp 0).
  explicit MetricsRegistry(Simulator* sim = nullptr) : sim_(sim) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. The handle is owned by the registry and stable.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  /// `bounds` must be strictly increasing; used only on first creation.
  Histogram* GetHistogram(const std::string& name, Labels labels = {},
                          std::vector<double> bounds = DefaultBounds());

  /// Sum of a counter across every label set it was registered with.
  uint64_t CounterTotal(const std::string& name) const;
  /// Sum of a gauge across every label set it was registered with.
  int64_t GaugeTotal(const std::string& name) const;

  size_t metric_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Human-readable snapshot, one metric per line, sorted, stamped with
  /// the simulated time.
  std::string TextReport() const;

  /// Machine-readable snapshot:
  /// {"at_ms":..., "counters":{...}, "gauges":{...}, "histograms":{...}}.
  Json JsonReport() const;

  /// Default histogram bounds: powers of four from 1 to ~10^9, a decent
  /// spread for both byte sizes and millisecond latencies.
  static std::vector<double> DefaultBounds();

  Simulator* sim() const { return sim_; }

 private:
  struct MetricKey {
    std::string name;
    Labels labels;
    bool operator<(const MetricKey& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };
  static std::string RenderKey(const MetricKey& key);

  Simulator* sim_;
  std::map<MetricKey, std::unique_ptr<Counter>> counters_;
  std::map<MetricKey, std::unique_ptr<Gauge>> gauges_;
  std::map<MetricKey, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace unilog::obs

#endif  // UNILOG_OBS_METRICS_H_
