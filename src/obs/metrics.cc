#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace unilog::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

void Histogram::Observe(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  ++buckets_[bucket];
}

double HistogramQuantile(const Histogram& hist, double q) {
  if (hist.count() == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(hist.count()));
  if (rank < 1) rank = 1;
  if (rank > hist.count()) rank = hist.count();

  const auto& bounds = hist.bounds();
  const auto& buckets = hist.bucket_counts();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (cumulative < rank) continue;
    // Linear interpolation within the containing bucket.
    double lower = i == 0 ? hist.min() : bounds[i - 1];
    double upper = i < bounds.size() ? bounds[i] : hist.max();
    double fraction = static_cast<double>(rank - (cumulative - buckets[i])) /
                      static_cast<double>(buckets[i]);
    double value = lower + (upper - lower) * fraction;
    return std::min(hist.max(), std::max(hist.min(), value));
  }
  return hist.max();
}

std::vector<double> MetricsRegistry::DefaultBounds() {
  std::vector<double> bounds;
  for (double b = 1; b <= 1e9; b *= 4) bounds.push_back(b);
  return bounds;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  auto& slot = counters_[MetricKey{name, std::move(labels)}];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  auto& slot = gauges_[MetricKey{name, std::move(labels)}];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         Labels labels,
                                         std::vector<double> bounds) {
  auto& slot = histograms_[MetricKey{name, std::move(labels)}];
  if (slot == nullptr) slot.reset(new Histogram(std::move(bounds)));
  return slot.get();
}

uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (auto it = counters_.lower_bound(MetricKey{name, {}});
       it != counters_.end() && it->first.name == name; ++it) {
    total += it->second->value();
  }
  return total;
}

int64_t MetricsRegistry::GaugeTotal(const std::string& name) const {
  int64_t total = 0;
  for (auto it = gauges_.lower_bound(MetricKey{name, {}});
       it != gauges_.end() && it->first.name == name; ++it) {
    total += it->second->value();
  }
  return total;
}

std::string MetricsRegistry::RenderKey(const MetricKey& key) {
  if (key.labels.empty()) return key.name;
  std::string out = key.name + "{";
  bool first = true;
  for (const auto& [k, v] : key.labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=" + v;
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::TextReport() const {
  TimeMs at = sim_ != nullptr ? sim_->Now() : 0;
  std::string out = "# metrics @ " + std::to_string(at) + " (" +
                    TimestampString(at) + " sim)\n";
  for (const auto& [key, counter] : counters_) {
    out += "counter " + RenderKey(key) + " " +
           std::to_string(counter->value()) + "\n";
  }
  for (const auto& [key, gauge] : gauges_) {
    out +=
        "gauge " + RenderKey(key) + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [key, histogram] : histograms_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  " count=%llu sum=%.0f min=%.0f mean=%.1f max=%.0f",
                  static_cast<unsigned long long>(histogram->count()),
                  histogram->sum(), histogram->min(), histogram->mean(),
                  histogram->max());
    out += "histogram " + RenderKey(key) + buf + "\n";
  }
  return out;
}

Json MetricsRegistry::JsonReport() const {
  Json root = Json::Object();
  root.Set("at_ms", Json::Int(sim_ != nullptr ? sim_->Now() : 0));

  Json counters = Json::Object();
  for (const auto& [key, counter] : counters_) {
    counters.Set(RenderKey(key), Json::Int(static_cast<int64_t>(counter->value())));
  }
  root.Set("counters", std::move(counters));

  Json gauges = Json::Object();
  for (const auto& [key, gauge] : gauges_) {
    gauges.Set(RenderKey(key), Json::Int(gauge->value()));
  }
  root.Set("gauges", std::move(gauges));

  Json histograms = Json::Object();
  for (const auto& [key, histogram] : histograms_) {
    Json h = Json::Object();
    h.Set("count", Json::Int(static_cast<int64_t>(histogram->count())));
    h.Set("sum", Json::Number(histogram->sum()));
    h.Set("min", Json::Number(histogram->min()));
    h.Set("max", Json::Number(histogram->max()));
    Json buckets = Json::Array();
    for (uint64_t b : histogram->bucket_counts()) {
      buckets.Push(Json::Int(static_cast<int64_t>(b)));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(RenderKey(key), std::move(h));
  }
  root.Set("histograms", std::move(histograms));
  return root;
}

}  // namespace unilog::obs
