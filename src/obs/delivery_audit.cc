#include "obs/delivery_audit.h"

#include <cstdio>

namespace unilog::obs {

std::string DeliverySnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "audit @%s: logged=%llu warehoused=%llu daemon_dropped=%llu "
      "crash_lost=%llu overflow_dropped=%llu late_dropped=%llu "
      "lost_unreplicated=%llu "
      "in_flight=%llu (daemons=%llu aggs=%llu staging=%llu broker=%llu) "
      "corrupt_files=%llu balanced=%s",
      TimestampString(at).c_str(), static_cast<unsigned long long>(logged),
      static_cast<unsigned long long>(warehoused),
      static_cast<unsigned long long>(dropped_at_daemons),
      static_cast<unsigned long long>(lost_in_crash),
      static_cast<unsigned long long>(dropped_overflow),
      static_cast<unsigned long long>(late_dropped),
      static_cast<unsigned long long>(lost_unreplicated),
      static_cast<unsigned long long>(InFlight()),
      static_cast<unsigned long long>(in_flight_daemons),
      static_cast<unsigned long long>(in_flight_aggregators),
      static_cast<unsigned long long>(in_flight_staging),
      static_cast<unsigned long long>(in_flight_broker),
      static_cast<unsigned long long>(corrupt_files_skipped),
      Balanced() ? "yes" : "NO");
  return buf;
}

Json DeliverySnapshot::ToJson() const {
  Json j = Json::Object();
  j.Set("at_ms", Json::Int(at));
  j.Set("logged", Json::Int(static_cast<int64_t>(logged)));
  j.Set("warehoused", Json::Int(static_cast<int64_t>(warehoused)));
  j.Set("dropped_at_daemons",
        Json::Int(static_cast<int64_t>(dropped_at_daemons)));
  j.Set("lost_in_crash", Json::Int(static_cast<int64_t>(lost_in_crash)));
  j.Set("dropped_overflow", Json::Int(static_cast<int64_t>(dropped_overflow)));
  j.Set("late_dropped", Json::Int(static_cast<int64_t>(late_dropped)));
  j.Set("lost_unreplicated",
        Json::Int(static_cast<int64_t>(lost_unreplicated)));
  j.Set("corrupt_files_skipped",
        Json::Int(static_cast<int64_t>(corrupt_files_skipped)));
  j.Set("in_flight_daemons",
        Json::Int(static_cast<int64_t>(in_flight_daemons)));
  j.Set("in_flight_aggregators",
        Json::Int(static_cast<int64_t>(in_flight_aggregators)));
  j.Set("in_flight_staging",
        Json::Int(static_cast<int64_t>(in_flight_staging)));
  j.Set("in_flight_broker",
        Json::Int(static_cast<int64_t>(in_flight_broker)));
  j.Set("balanced", Json::Bool(Balanced()));
  return j;
}

DeliverySnapshot DeliveryAudit::Snapshot() const {
  DeliverySnapshot snap;
  const scribe::ClusterStats totals = cluster_->TotalStats();
  const scribe::LogMoverStats mover = cluster_->mover()->stats();

  snap.at = cluster_->metrics()->sim() != nullptr
                ? cluster_->metrics()->sim()->Now()
                : 0;
  snap.logged = totals.entries_logged;
  snap.warehoused = totals.messages_in_warehouse;
  snap.dropped_at_daemons = totals.entries_dropped_at_daemons;
  snap.lost_in_crash = totals.entries_lost_in_crashes;
  snap.dropped_overflow = totals.entries_dropped_overflow;
  snap.late_dropped = totals.late_entries_dropped;
  snap.lost_unreplicated = totals.entries_lost_unreplicated;
  snap.corrupt_files_skipped = mover.corrupt_files_skipped;

  for (size_t dc = 0; dc < cluster_->datacenter_count(); ++dc) {
    for (size_t d = 0; d < cluster_->daemon_count(dc); ++d) {
      snap.in_flight_daemons += cluster_->daemon(dc, d)->QueuedEntries();
    }
    for (size_t a = 0; a < cluster_->aggregator_count(dc); ++a) {
      snap.in_flight_aggregators +=
          cluster_->aggregator(dc, a)->BufferedEntries();
    }
  }

  // Staged messages that have neither been moved into the warehouse nor
  // dropped as late are still sitting in staging files. Counter-derived
  // rather than re-scanned, so the snapshot is O(components), not O(files).
  // messages_in_warehouse counts BOTH delivery tiers (the mover commits
  // staged files and consumed broker records into the same hour), so the
  // broker-consumed share must come back out before subtracting from
  // entries_staged — every consumed record is committed in the same move,
  // so the difference is exactly the staging tier's warehoused messages.
  uint64_t warehoused_from_staging =
      totals.messages_in_warehouse >= totals.entries_consumed
          ? totals.messages_in_warehouse - totals.entries_consumed
          : 0;
  uint64_t staged_resolved =
      warehoused_from_staging + totals.late_entries_dropped;
  snap.in_flight_staging = totals.entries_staged >= staged_resolved
                               ? totals.entries_staged - staged_resolved
                               : 0;

  // Broker path: an acked (produced) entry is in flight until the consumer
  // group commits past it or its partition loses it in failover. Also
  // counter-derived; disjoint from the staging term by construction above.
  uint64_t broker_resolved =
      totals.entries_consumed + totals.entries_lost_unreplicated;
  snap.in_flight_broker = totals.entries_produced >= broker_resolved
                              ? totals.entries_produced - broker_resolved
                              : 0;
  return snap;
}

Status DeliveryAudit::Check() const {
  DeliverySnapshot snap = Snapshot();
  if (snap.Balanced()) return Status::OK();
  return Status::Internal("delivery audit imbalance: " + snap.ToString());
}

Status DeliveryAudit::AssertQuiescent() const {
  DeliverySnapshot snap = Snapshot();
  if (!snap.Balanced()) {
    return Status::Internal("delivery audit imbalance: " + snap.ToString());
  }
  std::string stuck;
  auto flag = [&stuck](const char* channel, uint64_t value) {
    if (value == 0) return;
    if (!stuck.empty()) stuck += " ";
    stuck += channel;
    stuck += "=";
    stuck += std::to_string(value);
  };
  flag("in_flight_daemons", snap.in_flight_daemons);
  flag("in_flight_aggregators", snap.in_flight_aggregators);
  flag("in_flight_staging", snap.in_flight_staging);
  flag("in_flight_broker", snap.in_flight_broker);
  if (stuck.empty()) return Status::OK();
  return Status::FailedPrecondition("delivery audit not quiescent: " + stuck +
                                    " — " + snap.ToString());
}

}  // namespace unilog::obs
