#include "hdfs/mini_hdfs.h"

#include <algorithm>

#include "common/strings.h"

namespace unilog::hdfs {

MiniHdfs::MiniHdfs(Simulator* sim, HdfsOptions options,
                   obs::MetricsRegistry* metrics, std::string instance)
    : sim_(sim), options_(options) {
  if (options_.num_datanodes < 1) options_.num_datanodes = 1;
  if (options_.replication < 1) options_.replication = 1;
  if (options_.replication > options_.num_datanodes) {
    options_.replication = options_.num_datanodes;
  }
  datanode_up_.assign(static_cast<size_t>(options_.num_datanodes), true);
  nodes_["/"] = Node{/*is_dir=*/true, "", 0};
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  obs::Labels labels{{"fs", std::move(instance)}};
  bytes_read_ = metrics->GetCounter("hdfs.bytes_read", labels);
  bytes_written_ = metrics->GetCounter("hdfs.bytes_written", labels);
  files_created_ = metrics->GetCounter("hdfs.files_created", labels);
  files_deleted_ = metrics->GetCounter("hdfs.files_deleted", labels);
  unavailable_rejections_ =
      metrics->GetCounter("hdfs.unavailable_rejections", labels);
  brownout_rejections_ =
      metrics->GetCounter("hdfs.brownout_rejections", labels);
  replica_shortfalls_ = metrics->GetCounter("hdfs.replica_shortfalls", labels);
  chaos_corruptions_ = metrics->GetCounter("hdfs.chaos_corruptions", labels);
  file_count_gauge_ = metrics->GetGauge("hdfs.file_count", labels);
  file_bytes_gauge_ = metrics->GetGauge("hdfs.file_bytes", labels);
  datanodes_down_gauge_ = metrics->GetGauge("hdfs.datanodes_down", labels);
}

void MiniHdfs::SetDatanodeAvailable(int datanode, bool available) {
  if (datanode < 0 || datanode >= static_cast<int>(datanode_up_.size())) {
    return;
  }
  datanode_up_[static_cast<size_t>(datanode)] = available;
  int64_t down = 0;
  for (bool up : datanode_up_) {
    if (!up) ++down;
  }
  datanodes_down_gauge_->Set(down);
}

bool MiniHdfs::datanode_available(int datanode) const {
  if (datanode < 0 || datanode >= static_cast<int>(datanode_up_.size())) {
    return false;
  }
  return datanode_up_[static_cast<size_t>(datanode)];
}

int MiniHdfs::live_datanodes() const {
  int live = 0;
  for (bool up : datanode_up_) {
    if (up) ++live;
  }
  return live;
}

Status MiniHdfs::PlaceBlocks(Node* node, uint64_t new_size) {
  if (!sharded()) {
    if (!datanode_up_[0]) {
      brownout_rejections_->Increment();
      return Status::Unavailable("datanode down");
    }
    return Status::OK();
  }
  const size_t n = datanode_up_.size();
  const size_t rep = static_cast<size_t>(options_.replication);
  uint64_t want = PlacementBlocksFor(new_size);
  while (node->block_nodes.size() < want * rep) {
    // Rotating primary; replicas are the next live nodes after it. A
    // brownout at write time yields fewer distinct replicas (padded so
    // every block keeps a fixed `replication`-wide stride) — that is the
    // under-replication the soak's replica report surfaces.
    std::vector<uint16_t> chosen;
    uint64_t start = placement_cursor_++;
    for (size_t probe = 0; probe < n && chosen.size() < rep; ++probe) {
      size_t candidate = (start + probe) % n;
      if (datanode_up_[candidate]) {
        chosen.push_back(static_cast<uint16_t>(candidate));
      }
    }
    if (chosen.empty()) {
      brownout_rejections_->Increment();
      return Status::Unavailable("no live datanode for new block");
    }
    if (chosen.size() < rep) {
      replica_shortfalls_->Increment();
      while (chosen.size() < rep) chosen.push_back(chosen.front());
    }
    node->block_nodes.insert(node->block_nodes.end(), chosen.begin(),
                             chosen.end());
  }
  return Status::OK();
}

bool MiniHdfs::AllBlocksReadable(const Node& node) const {
  if (!sharded()) return datanode_up_[0];
  const size_t rep = static_cast<size_t>(options_.replication);
  for (size_t b = 0; b * rep < node.block_nodes.size(); ++b) {
    bool live = false;
    for (size_t r = 0; r < rep; ++r) {
      if (datanode_up_[node.block_nodes[b * rep + r]]) {
        live = true;
        break;
      }
    }
    if (!live) return false;
  }
  return true;
}

Status MiniHdfs::CorruptFile(const std::string& path, uint64_t offset) {
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such file: " + path);
  if (it->second.is_dir) {
    return Status::FailedPrecondition("is a directory: " + path);
  }
  if (it->second.content.empty()) {
    return Status::FailedPrecondition("empty file: " + path);
  }
  // Silent corruption: no mtime bump, no byte accounting — only a
  // checksum recompute can tell.
  it->second.content[offset % it->second.content.size()] ^=
      static_cast<char>(0x5A);
  chaos_corruptions_->Increment();
  return Status::OK();
}

ReplicaReport MiniHdfs::Replicas() const {
  ReplicaReport report;
  const size_t rep = static_cast<size_t>(options_.replication);
  for (const auto& [path, node] : nodes_) {
    if (node.is_dir) continue;
    if (!sharded()) {
      uint64_t blocks = BlocksFor(node.content.size());
      report.blocks += blocks;
      report.fully_available += blocks;
      continue;
    }
    for (size_t b = 0; b * rep < node.block_nodes.size(); ++b) {
      ++report.blocks;
      std::vector<uint16_t> distinct;
      size_t live = 0;
      for (size_t r = 0; r < rep; ++r) {
        uint16_t dn = node.block_nodes[b * rep + r];
        if (std::find(distinct.begin(), distinct.end(), dn) !=
            distinct.end()) {
          continue;
        }
        distinct.push_back(dn);
        if (datanode_up_[dn]) ++live;
      }
      if (distinct.size() < rep) ++report.under_replicated;
      if (live == 0) {
        ++report.unreadable;
      } else if (live == distinct.size()) {
        ++report.fully_available;
      } else {
        ++report.degraded;
      }
    }
  }
  return report;
}

Status MiniHdfs::ValidatePath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must start with '/': " + path);
  }
  if (path.size() > 1 && path.back() == '/') {
    return Status::InvalidArgument("path must not end with '/': " + path);
  }
  if (path.find("//") != std::string::npos) {
    return Status::InvalidArgument("path has empty component: " + path);
  }
  return Status::OK();
}

std::string MiniHdfs::ParentOf(const std::string& path) {
  size_t pos = path.rfind('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

Status MiniHdfs::CheckAvailable() const {
  if (!available_) {
    unavailable_rejections_->Increment();
    return Status::Unavailable("HDFS outage");
  }
  return Status::OK();
}

Status MiniHdfs::Mkdirs(const std::string& path) {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  // Walk down from the root creating missing components.
  std::vector<std::string> parts = Split(path.substr(1), '/');
  std::string cur;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    cur += "/" + part;
    auto it = nodes_.find(cur);
    if (it == nodes_.end()) {
      nodes_[cur] = Node{/*is_dir=*/true, "", Now()};
    } else if (!it->second.is_dir) {
      return Status::FailedPrecondition("not a directory: " + cur);
    }
  }
  return Status::OK();
}

Status MiniHdfs::WriteFile(const std::string& path, std::string_view content) {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  if (nodes_.count(path)) {
    return Status::AlreadyExists("file exists: " + path);
  }
  Node node{/*is_dir=*/false, std::string(content), Now(), {}};
  UNILOG_RETURN_NOT_OK(PlaceBlocks(&node, content.size()));
  UNILOG_RETURN_NOT_OK(Mkdirs(ParentOf(path)));
  nodes_[path] = std::move(node);
  bytes_written_->Increment(content.size());
  files_created_->Increment();
  file_bytes_gauge_->Add(static_cast<int64_t>(content.size()));
  file_count_gauge_->Add(1);
  return Status::OK();
}

Status MiniHdfs::AppendFile(const std::string& path,
                            std::string_view content) {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return WriteFile(path, content);
  }
  if (it->second.is_dir) {
    return Status::FailedPrecondition("is a directory: " + path);
  }
  // The append pipeline extends the file's last block before opening new
  // ones, so that block needs a live replica — and the new blocks need
  // somewhere to land.
  if (!AllBlocksReadable(it->second)) {
    brownout_rejections_->Increment();
    return Status::Unavailable("block replicas dark: " + path);
  }
  UNILOG_RETURN_NOT_OK(
      PlaceBlocks(&it->second, it->second.content.size() + content.size()));
  it->second.content.append(content.data(), content.size());
  it->second.mtime = Now();
  bytes_written_->Increment(content.size());
  file_bytes_gauge_->Add(static_cast<int64_t>(content.size()));
  return Status::OK();
}

Result<std::string> MiniHdfs::ReadFile(const std::string& path) const {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such file: " + path);
  if (it->second.is_dir) {
    return Status::FailedPrecondition("is a directory: " + path);
  }
  if (!AllBlocksReadable(it->second)) {
    brownout_rejections_->Increment();
    return Status::Unavailable("block replicas dark: " + path);
  }
  bytes_read_->Increment(it->second.content.size());
  return it->second.content;
}

Status MiniHdfs::Rename(const std::string& src, const std::string& dst) {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(src));
  UNILOG_RETURN_NOT_OK(ValidatePath(dst));
  auto it = nodes_.find(src);
  if (it == nodes_.end()) return Status::NotFound("no such path: " + src);
  if (nodes_.count(dst)) return Status::AlreadyExists("exists: " + dst);
  std::string dst_parent = ParentOf(dst);
  auto pit = nodes_.find(dst_parent);
  if (pit == nodes_.end() || !pit->second.is_dir) {
    return Status::NotFound("destination parent missing: " + dst_parent);
  }
  if (StartsWith(dst, src + "/")) {
    return Status::InvalidArgument("cannot rename under itself");
  }

  // Collect the subtree, then move atomically (no observable intermediate
  // state: this is single-threaded simulated HDFS, so "atomic" means the
  // whole subtree moves in one call).
  std::vector<std::pair<std::string, Node>> moved;
  moved.emplace_back(dst, std::move(it->second));
  std::string prefix = src + "/";
  std::vector<std::string> to_erase = {src};
  for (auto sub = nodes_.upper_bound(prefix);
       sub != nodes_.end() && StartsWith(sub->first, prefix); ++sub) {
    moved.emplace_back(dst + sub->first.substr(src.size()),
                       std::move(sub->second));
    to_erase.push_back(sub->first);
  }
  for (const auto& p : to_erase) nodes_.erase(p);
  for (auto& [path, node] : moved) {
    node.mtime = Now();
    nodes_.emplace(std::move(path), std::move(node));
  }
  return Status::OK();
}

Status MiniHdfs::Delete(const std::string& path, bool recursive) {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  if (path == "/") return Status::InvalidArgument("cannot delete root");
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such path: " + path);

  std::string prefix = path + "/";
  auto first_child = nodes_.upper_bound(prefix);
  bool has_children = first_child != nodes_.end() &&
                      StartsWith(first_child->first, prefix);
  if (has_children && !recursive) {
    return Status::FailedPrecondition("directory not empty: " + path);
  }

  std::vector<std::string> to_erase = {path};
  for (auto sub = nodes_.upper_bound(prefix);
       sub != nodes_.end() && StartsWith(sub->first, prefix); ++sub) {
    to_erase.push_back(sub->first);
  }
  for (const auto& p : to_erase) {
    auto nit = nodes_.find(p);
    if (!nit->second.is_dir) {
      file_bytes_gauge_->Add(-static_cast<int64_t>(nit->second.content.size()));
      file_count_gauge_->Add(-1);
      files_deleted_->Increment();
    }
    nodes_.erase(nit);
  }
  return Status::OK();
}

FileStatus MiniHdfs::MakeStatus(const std::string& path,
                                const Node& node) const {
  FileStatus st;
  st.path = path;
  st.is_dir = node.is_dir;
  st.size = node.content.size();
  st.block_count = node.is_dir ? 0 : BlocksFor(st.size);
  st.mtime = node.mtime;
  return st;
}

Result<std::vector<FileStatus>> MiniHdfs::List(const std::string& path) const {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such path: " + path);
  if (!it->second.is_dir) {
    return Status::FailedPrecondition("not a directory: " + path);
  }
  std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<FileStatus> out;
  for (auto sub = nodes_.upper_bound(prefix);
       sub != nodes_.end() && StartsWith(sub->first, prefix); ++sub) {
    std::string rest = sub->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {
      out.push_back(MakeStatus(sub->first, sub->second));
    }
  }
  return out;
}

Result<std::vector<FileStatus>> MiniHdfs::ListRecursive(
    const std::string& path) const {
  UNILOG_RETURN_NOT_OK(CheckAvailable());
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such path: " + path);
  if (!it->second.is_dir) {
    return Status::FailedPrecondition("not a directory: " + path);
  }
  std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<FileStatus> out;
  for (auto sub = nodes_.upper_bound(prefix);
       sub != nodes_.end() && StartsWith(sub->first, prefix); ++sub) {
    if (!sub->second.is_dir) {
      out.push_back(MakeStatus(sub->first, sub->second));
    }
  }
  return out;
}

bool MiniHdfs::Exists(const std::string& path) const {
  return nodes_.count(path) > 0;
}

bool MiniHdfs::IsDir(const std::string& path) const {
  auto it = nodes_.find(path);
  return it != nodes_.end() && it->second.is_dir;
}

Result<FileStatus> MiniHdfs::Stat(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such path: " + path);
  return MakeStatus(path, it->second);
}

uint64_t MiniHdfs::BlocksFor(uint64_t size) const {
  if (size == 0) return 1;
  return (size + options_.block_size - 1) / options_.block_size;
}

uint64_t MiniHdfs::total_blocks() const {
  uint64_t blocks = 0;
  for (const auto& [path, node] : nodes_) {
    if (!node.is_dir) blocks += BlocksFor(node.content.size());
  }
  return blocks;
}

}  // namespace unilog::hdfs
