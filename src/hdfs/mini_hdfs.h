#ifndef UNILOG_HDFS_MINI_HDFS_H_
#define UNILOG_HDFS_MINI_HDFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace unilog::hdfs {

/// Configuration for a MiniHdfs instance.
struct HdfsOptions {
  /// Block size in bytes. Hadoop defaults to 64-128 MiB; the simulated
  /// warehouse uses a small block so laptop-scale datasets still split
  /// into many map tasks, preserving the paper's task-count economics.
  uint64_t block_size = 1 * 1024 * 1024;
  /// Number of simulated datanodes. With the default of 1 the placement
  /// machinery is dormant and the file system behaves exactly as the
  /// single-node original; larger fleets place every block on
  /// `replication` distinct datanodes so a brownout (a subset of
  /// datanodes down) only fails the blocks whose whole replica set is
  /// dark.
  int num_datanodes = 1;
  /// Replicas per block, clamped to num_datanodes.
  int replication = 1;
};

/// Directory-entry metadata.
struct FileStatus {
  std::string path;
  bool is_dir = false;
  uint64_t size = 0;
  uint64_t block_count = 0;
  TimeMs mtime = 0;
};

/// Fleet-wide replica health, for brownout tests and the soak SLO report.
struct ReplicaReport {
  uint64_t blocks = 0;
  /// Blocks whose every replica sits on a live datanode.
  uint64_t fully_available = 0;
  /// Blocks with at least one — but not all — replicas live.
  uint64_t degraded = 0;
  /// Blocks with no live replica (reads fail until a node returns).
  uint64_t unreadable = 0;
  /// Blocks written with fewer than `replication` replicas because some
  /// datanodes were down at write time.
  uint64_t under_replicated = 0;
};

/// An in-memory single-namespace file system with HDFS-shaped semantics:
/// hierarchical directories, create/append/read, *atomic rename* (the
/// primitive the log mover uses to slide an hour of logs into the
/// warehouse in one step, §2), recursive delete, and listing. Files are
/// accounted in blocks; downstream, the dataflow engine spawns one map
/// task per block, which is what makes raw-log scans expensive in the
/// same way the paper describes.
///
/// Availability injection: SetAvailable(false) makes every data operation
/// return Unavailable, modeling the HDFS outages that force Scribe
/// aggregators to buffer on local disk.
class MiniHdfs {
 public:
  /// `metrics`/`instance`: the registry this file system reports into and
  /// the label distinguishing it from sibling instances (warehouse vs.
  /// per-DC staging). A private registry is used when none is supplied.
  explicit MiniHdfs(Simulator* sim = nullptr, HdfsOptions options = {},
                    obs::MetricsRegistry* metrics = nullptr,
                    std::string instance = "hdfs");

  MiniHdfs(const MiniHdfs&) = delete;
  MiniHdfs& operator=(const MiniHdfs&) = delete;

  /// Creates a directory and any missing ancestors.
  Status Mkdirs(const std::string& path);

  /// Creates a new file with the given content. Parent directories are
  /// created implicitly (HDFS create semantics). Fails if the file exists.
  Status WriteFile(const std::string& path, std::string_view content);

  /// Appends to an existing file (creates it if absent).
  Status AppendFile(const std::string& path, std::string_view content);

  /// Reads a whole file.
  Result<std::string> ReadFile(const std::string& path) const;

  /// Atomically renames a file or directory subtree. `dst` must not exist;
  /// the parent of `dst` must exist and be a directory.
  Status Rename(const std::string& src, const std::string& dst);

  /// Deletes a file, or a directory subtree when `recursive` (a non-empty
  /// directory without `recursive` fails).
  Status Delete(const std::string& path, bool recursive = false);

  /// Lists direct children of a directory, sorted by name.
  Result<std::vector<FileStatus>> List(const std::string& path) const;

  /// Lists all files (not dirs) under a directory subtree, sorted.
  Result<std::vector<FileStatus>> ListRecursive(const std::string& path) const;

  bool Exists(const std::string& path) const;
  bool IsDir(const std::string& path) const;
  Result<FileStatus> Stat(const std::string& path) const;

  /// Number of blocks a file of `size` bytes occupies.
  uint64_t BlocksFor(uint64_t size) const;

  // --- Failure injection ---
  void SetAvailable(bool available) { available_ = available; }
  bool available() const { return available_; }

  /// Takes one datanode down (or back up). Metadata operations (list,
  /// stat, rename, delete, mkdirs) are namenode-only and keep working; a
  /// read fails only when some block of the file has no live replica, and
  /// a write fails only when no datanode at all can take its new blocks.
  /// No-op for indexes outside [0, num_datanodes).
  void SetDatanodeAvailable(int datanode, bool available);
  bool datanode_available(int datanode) const;
  int num_datanodes() const { return static_cast<int>(datanode_up_.size()); }
  int live_datanodes() const;

  /// Chaos backdoor: XOR-flips one content byte of a file (at
  /// `offset % size`), bypassing the availability checks and the write
  /// accounting — models silent on-disk corruption that only the
  /// checksum layer can catch. Fails on directories and empty files.
  Status CorruptFile(const std::string& path, uint64_t offset);

  /// Walks every file and classifies its blocks against the current
  /// datanode liveness.
  ReplicaReport Replicas() const;

  // --- Metrics (backed by the obs registry: hdfs.*{fs=<instance>}) ---
  uint64_t total_file_bytes() const {
    return static_cast<uint64_t>(file_bytes_gauge_->value());
  }
  uint64_t total_blocks() const;
  uint64_t file_count() const {
    return static_cast<uint64_t>(file_count_gauge_->value());
  }
  uint64_t bytes_written() const { return bytes_written_->value(); }
  uint64_t bytes_read() const { return bytes_read_->value(); }
  /// Operations rejected while the namenode was unavailable.
  uint64_t unavailable_rejections() const {
    return unavailable_rejections_->value();
  }
  /// Reads/writes rejected because a block had no live replica (datanode
  /// brownout, as opposed to a namenode outage).
  uint64_t brownout_rejections() const {
    return brownout_rejections_->value();
  }
  /// Blocks written with fewer live replicas than configured.
  uint64_t replica_shortfalls() const { return replica_shortfalls_->value(); }
  uint64_t chaos_corruptions() const { return chaos_corruptions_->value(); }

  const HdfsOptions& options() const { return options_; }

 private:
  struct Node {
    bool is_dir = false;
    std::string content;  // files only
    TimeMs mtime = 0;
    /// Replica placement, `replication` datanode indexes per block in
    /// block order. Populated only on sharded instances
    /// (num_datanodes > 1); placement follows the node through renames,
    /// the way real HDFS blocks stay put when a path moves.
    std::vector<uint16_t> block_nodes;
  };

  static Status ValidatePath(const std::string& path);
  static std::string ParentOf(const std::string& path);
  Status CheckAvailable() const;
  TimeMs Now() const { return sim_ != nullptr ? sim_->Now() : 0; }
  FileStatus MakeStatus(const std::string& path, const Node& node) const;

  bool sharded() const { return datanode_up_.size() > 1; }
  /// Blocks a file of `size` bytes needs placement for (empty files own
  /// one placeholder block, matching BlocksFor's accounting).
  uint64_t PlacementBlocksFor(uint64_t size) const { return BlocksFor(size); }
  /// Extends `node`'s placement out to the block count implied by
  /// `new_size`, choosing `replication` distinct live datanodes per new
  /// block from a deterministic rotating cursor. Fails Unavailable when
  /// no datanode at all is live.
  Status PlaceBlocks(Node* node, uint64_t new_size);
  /// True when every block of `node` has at least one live replica.
  bool AllBlocksReadable(const Node& node) const;

  Simulator* sim_;
  HdfsOptions options_;
  bool available_ = true;
  std::vector<bool> datanode_up_;
  uint64_t placement_cursor_ = 0;
  std::map<std::string, Node> nodes_;  // sorted by path

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* bytes_read_;
  obs::Counter* bytes_written_;
  obs::Counter* files_created_;
  obs::Counter* files_deleted_;
  obs::Counter* unavailable_rejections_;
  obs::Counter* brownout_rejections_;
  obs::Counter* replica_shortfalls_;
  obs::Counter* chaos_corruptions_;
  obs::Gauge* file_count_gauge_;
  obs::Gauge* file_bytes_gauge_;
  obs::Gauge* datanodes_down_gauge_;
};

}  // namespace unilog::hdfs

#endif  // UNILOG_HDFS_MINI_HDFS_H_
