#ifndef UNILOG_ZK_ZOOKEEPER_H_
#define UNILOG_ZK_ZOOKEEPER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace unilog::zk {

/// Session handle. Sessions model client connections: ephemeral znodes are
/// tied to the session that created them and disappear when it ends —
/// which is exactly the mechanism the paper's Scribe daemons use to
/// discover live aggregators (§2).
using SessionId = uint64_t;

/// Creation modes, as in ZooKeeper.
enum class CreateMode {
  kPersistent,
  kEphemeral,
  kPersistentSequential,
  kEphemeralSequential,
};

/// Watch notification kinds.
enum class WatchEvent {
  kCreated,
  kDeleted,
  kDataChanged,
  kChildrenChanged,
};

/// Returns a printable name for a watch event.
const char* WatchEventName(WatchEvent ev);

/// Metadata about a znode.
struct ZnodeStat {
  int64_t version = 0;
  SessionId ephemeral_owner = 0;  // 0 = persistent
  size_t num_children = 0;
};

/// A ZooKeeper-like coordination service: a hierarchical namespace of data
/// nodes ("znodes") with ephemeral nodes, sequential nodes, and one-shot
/// watches. Single-replica and synchronous — the coordination *protocol*
/// (ZAB) is out of scope; the paper's infrastructure only relies on the
/// client-visible semantics modeled here.
class ZooKeeper {
 public:
  /// `sim` supplies the virtual clock used to defer watch callbacks; may be
  /// nullptr, in which case watches fire synchronously. `metrics` is the
  /// registry zk.* counters report into; a private registry is used when
  /// none is supplied.
  explicit ZooKeeper(Simulator* sim = nullptr,
                     obs::MetricsRegistry* metrics = nullptr);

  ZooKeeper(const ZooKeeper&) = delete;
  ZooKeeper& operator=(const ZooKeeper&) = delete;

  /// Watch callback: receives the event kind and the affected path.
  using Watcher = std::function<void(WatchEvent, const std::string& path)>;

  // --- Sessions ---

  /// Opens a new session.
  SessionId CreateSession();

  /// Ends a session: all its ephemeral znodes are deleted (firing watches).
  /// Used both for graceful close and crash-induced expiry.
  Status CloseSession(SessionId session);

  /// True if the session exists and has not been closed.
  bool SessionAlive(SessionId session) const;

  // --- Znode operations ---

  /// Creates a znode. The parent must exist. For sequential modes a
  /// monotonically increasing 10-digit suffix is appended (per parent);
  /// the actual created path is returned. Ephemeral znodes may not have
  /// children, matching ZooKeeper.
  Result<std::string> Create(SessionId session, const std::string& path,
                             const std::string& data, CreateMode mode);

  /// Deletes a znode; fails if it has children.
  Status Delete(SessionId session, const std::string& path);

  /// Reads znode data.
  Result<std::string> GetData(const std::string& path) const;

  /// Replaces znode data, bumping the version.
  Status SetData(SessionId session, const std::string& path,
                 const std::string& data);

  /// Lists direct children (names, not full paths), sorted.
  Result<std::vector<std::string>> GetChildren(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Result<ZnodeStat> Stat(const std::string& path) const;

  // --- Watches (one-shot, as in ZooKeeper) ---
  //
  // Delivery is deferred onto the virtual clock (sim_->After(0)), and a
  // fired watch stays armed until its callback actually runs: an event
  // striking the same path between fire and delivery is coalesced into the
  // pending callback (which then reports the *latest* transition) rather
  // than lost. Without this, a client that re-registers inside its
  // callback has a re-arm race — a create immediately undone by a delete
  // would be reported as "created" for a node that no longer exists, which
  // is fatal for leader election built on ephemeral candidate znodes.

  /// Fires once on the next create or delete of `path`.
  void WatchExists(const std::string& path, Watcher watcher);

  /// Fires once on the next change to the children of `path`.
  void WatchChildren(const std::string& path, Watcher watcher);

  /// Fires once on the next data change or deletion of `path`.
  void WatchData(const std::string& path, Watcher watcher);

  // --- Introspection ---

  size_t znode_count() const { return nodes_.size(); }
  uint64_t watch_fires() const { return watch_fires_->value(); }
  uint64_t sessions_opened() const { return sessions_opened_->value(); }
  uint64_t sessions_closed() const { return sessions_closed_->value(); }

 private:
  struct Znode {
    std::string data;
    SessionId ephemeral_owner = 0;
    int64_t version = 0;
    uint64_t seq_counter = 0;  // for sequential children
  };

  static Status ValidatePath(const std::string& path);
  static std::string ParentOf(const std::string& path);

  /// A watch that has fired but whose callback has not yet run on the
  /// virtual clock. Until delivery the watch is still live: further events
  /// on the path overwrite `event`, so the callback observes the latest
  /// transition instead of a stale one.
  struct PendingWatch {
    Watcher watcher;
    WatchEvent event;
    std::string path;
  };
  using PendingTable = std::multimap<std::string, std::shared_ptr<PendingWatch>>;

  void FireWatches(std::multimap<std::string, Watcher>* table,
                   PendingTable* pending, const std::string& path,
                   WatchEvent ev);
  void DeliverPending(PendingTable* pending,
                      const std::shared_ptr<PendingWatch>& watch);
  Status DeleteInternal(const std::string& path);

  Simulator* sim_;
  std::map<std::string, Znode> nodes_;  // sorted: enables child scans
  std::map<SessionId, std::set<std::string>> session_ephemerals_;
  std::set<SessionId> live_sessions_;
  SessionId next_session_ = 1;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* sessions_opened_;
  obs::Counter* sessions_closed_;
  obs::Counter* znodes_created_;
  obs::Counter* znodes_deleted_;
  obs::Counter* watch_fires_;

  std::multimap<std::string, Watcher> exists_watchers_;
  std::multimap<std::string, Watcher> children_watchers_;
  std::multimap<std::string, Watcher> data_watchers_;

  PendingTable pending_exists_;
  PendingTable pending_children_;
  PendingTable pending_data_;
};

}  // namespace unilog::zk

#endif  // UNILOG_ZK_ZOOKEEPER_H_
