#include "zk/zookeeper.h"

#include <cstdio>

#include "common/strings.h"

namespace unilog::zk {

const char* WatchEventName(WatchEvent ev) {
  switch (ev) {
    case WatchEvent::kCreated:
      return "created";
    case WatchEvent::kDeleted:
      return "deleted";
    case WatchEvent::kDataChanged:
      return "data_changed";
    case WatchEvent::kChildrenChanged:
      return "children_changed";
  }
  return "unknown";
}

ZooKeeper::ZooKeeper(Simulator* sim, obs::MetricsRegistry* metrics)
    : sim_(sim) {
  nodes_["/"] = Znode{};
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  sessions_opened_ = metrics->GetCounter("zk.sessions_opened");
  sessions_closed_ = metrics->GetCounter("zk.sessions_closed");
  znodes_created_ = metrics->GetCounter("zk.znodes_created");
  znodes_deleted_ = metrics->GetCounter("zk.znodes_deleted");
  watch_fires_ = metrics->GetCounter("zk.watch_fires");
}

SessionId ZooKeeper::CreateSession() {
  SessionId id = next_session_++;
  live_sessions_.insert(id);
  sessions_opened_->Increment();
  return id;
}

bool ZooKeeper::SessionAlive(SessionId session) const {
  return live_sessions_.count(session) > 0;
}

Status ZooKeeper::CloseSession(SessionId session) {
  if (!live_sessions_.erase(session)) {
    return Status::NotFound("no such session");
  }
  sessions_closed_->Increment();
  auto it = session_ephemerals_.find(session);
  if (it != session_ephemerals_.end()) {
    // Copy: DeleteInternal mutates the set via erase callbacks.
    std::set<std::string> paths = it->second;
    session_ephemerals_.erase(it);
    for (const auto& path : paths) {
      // Ignore NotFound: the node may have been deleted explicitly.
      DeleteInternal(path);
    }
  }
  return Status::OK();
}

Status ZooKeeper::ValidatePath(const std::string& path) {
  if (path.empty() || path[0] != '/') {
    return Status::InvalidArgument("path must start with '/': " + path);
  }
  if (path.size() > 1 && path.back() == '/') {
    return Status::InvalidArgument("path must not end with '/': " + path);
  }
  if (path.find("//") != std::string::npos) {
    return Status::InvalidArgument("path has empty component: " + path);
  }
  return Status::OK();
}

std::string ZooKeeper::ParentOf(const std::string& path) {
  size_t pos = path.rfind('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

Result<std::string> ZooKeeper::Create(SessionId session,
                                      const std::string& path,
                                      const std::string& data,
                                      CreateMode mode) {
  if (!SessionAlive(session)) {
    return Status::FailedPrecondition("session closed");
  }
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  if (path == "/") return Status::AlreadyExists("root already exists");

  std::string parent = ParentOf(path);
  auto pit = nodes_.find(parent);
  if (pit == nodes_.end()) {
    return Status::NotFound("parent does not exist: " + parent);
  }
  if (pit->second.ephemeral_owner != 0) {
    return Status::FailedPrecondition(
        "ephemeral znodes may not have children: " + parent);
  }

  std::string actual = path;
  bool sequential = (mode == CreateMode::kPersistentSequential ||
                     mode == CreateMode::kEphemeralSequential);
  if (sequential) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010llu",
                  static_cast<unsigned long long>(pit->second.seq_counter++));
    actual += suffix;
  }
  if (nodes_.count(actual)) {
    return Status::AlreadyExists("znode exists: " + actual);
  }

  Znode node;
  node.data = data;
  bool ephemeral = (mode == CreateMode::kEphemeral ||
                    mode == CreateMode::kEphemeralSequential);
  if (ephemeral) {
    node.ephemeral_owner = session;
    session_ephemerals_[session].insert(actual);
  }
  nodes_[actual] = std::move(node);
  znodes_created_->Increment();

  FireWatches(&exists_watchers_, &pending_exists_, actual,
              WatchEvent::kCreated);
  FireWatches(&children_watchers_, &pending_children_, parent,
              WatchEvent::kChildrenChanged);
  return actual;
}

Status ZooKeeper::DeleteInternal(const std::string& path) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such znode: " + path);

  // Check for children: any key strictly between path+"/" and path+"/\xff".
  std::string prefix = path == "/" ? "/" : path + "/";
  auto child = nodes_.upper_bound(prefix);
  if (child != nodes_.end() && StartsWith(child->first, prefix)) {
    return Status::FailedPrecondition("znode has children: " + path);
  }

  SessionId owner = it->second.ephemeral_owner;
  nodes_.erase(it);
  znodes_deleted_->Increment();
  if (owner != 0) {
    auto sit = session_ephemerals_.find(owner);
    if (sit != session_ephemerals_.end()) sit->second.erase(path);
  }
  FireWatches(&exists_watchers_, &pending_exists_, path, WatchEvent::kDeleted);
  FireWatches(&data_watchers_, &pending_data_, path, WatchEvent::kDeleted);
  FireWatches(&children_watchers_, &pending_children_, ParentOf(path),
              WatchEvent::kChildrenChanged);
  return Status::OK();
}

Status ZooKeeper::Delete(SessionId session, const std::string& path) {
  if (!SessionAlive(session)) {
    return Status::FailedPrecondition("session closed");
  }
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  if (path == "/") return Status::InvalidArgument("cannot delete root");
  return DeleteInternal(path);
}

Result<std::string> ZooKeeper::GetData(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such znode: " + path);
  return it->second.data;
}

Status ZooKeeper::SetData(SessionId session, const std::string& path,
                          const std::string& data) {
  if (!SessionAlive(session)) {
    return Status::FailedPrecondition("session closed");
  }
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such znode: " + path);
  it->second.data = data;
  ++it->second.version;
  FireWatches(&data_watchers_, &pending_data_, path, WatchEvent::kDataChanged);
  return Status::OK();
}

Result<std::vector<std::string>> ZooKeeper::GetChildren(
    const std::string& path) const {
  UNILOG_RETURN_NOT_OK(ValidatePath(path));
  if (!nodes_.count(path)) return Status::NotFound("no such znode: " + path);
  std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> children;
  for (auto it = nodes_.upper_bound(prefix);
       it != nodes_.end() && StartsWith(it->first, prefix); ++it) {
    std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) {
      children.push_back(rest);
    }
  }
  return children;
}

bool ZooKeeper::Exists(const std::string& path) const {
  return nodes_.count(path) > 0;
}

Result<ZnodeStat> ZooKeeper::Stat(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound("no such znode: " + path);
  ZnodeStat stat;
  stat.version = it->second.version;
  stat.ephemeral_owner = it->second.ephemeral_owner;
  auto children = GetChildren(path);
  stat.num_children = children.ok() ? children->size() : 0;
  return stat;
}

void ZooKeeper::WatchExists(const std::string& path, Watcher watcher) {
  exists_watchers_.emplace(path, std::move(watcher));
}

void ZooKeeper::WatchChildren(const std::string& path, Watcher watcher) {
  children_watchers_.emplace(path, std::move(watcher));
}

void ZooKeeper::WatchData(const std::string& path, Watcher watcher) {
  data_watchers_.emplace(path, std::move(watcher));
}

void ZooKeeper::FireWatches(std::multimap<std::string, Watcher>* table,
                            PendingTable* pending, const std::string& path,
                            WatchEvent ev) {
  // A fired watch stays live until its callback runs: events landing in the
  // fire→delivery window update the pending record so the callback reports
  // the latest transition instead of a stale (possibly reverted) one.
  auto prange = pending->equal_range(path);
  for (auto it = prange.first; it != prange.second; ++it) {
    it->second->event = ev;
  }

  auto range = table->equal_range(path);
  if (range.first == range.second) return;
  std::vector<std::shared_ptr<PendingWatch>> fired;
  for (auto it = range.first; it != range.second; ++it) {
    fired.push_back(std::make_shared<PendingWatch>(
        PendingWatch{std::move(it->second), ev, path}));
  }
  table->erase(range.first, range.second);  // one-shot semantics
  watch_fires_->Increment(fired.size());
  for (auto& w : fired) {
    if (sim_ != nullptr) {
      // Deliver asynchronously on the virtual clock, as a real client would
      // observe.
      pending->emplace(path, w);
      sim_->After(0, [this, pending, w]() { DeliverPending(pending, w); });
    } else {
      w->watcher(w->event, w->path);
    }
  }
}

void ZooKeeper::DeliverPending(PendingTable* pending,
                               const std::shared_ptr<PendingWatch>& watch) {
  // Unregister before invoking: events caused by the callback itself must
  // go to whatever watch the client re-arms, not coalesce into this
  // already-delivered record.
  auto range = pending->equal_range(watch->path);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second == watch) {
      pending->erase(it);
      break;
    }
  }
  watch->watcher(watch->event, watch->path);
}

}  // namespace unilog::zk
