#ifndef UNILOG_EVENTS_ROLLUP_H_
#define UNILOG_EVENTS_ROLLUP_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "events/event_name.h"

namespace unilog::events {

/// The five automatic aggregation schemas of §3.2. Each level wildcards one
/// more component (from the element inward), always keeping client and
/// action:
///   level 0: (client, page, section, component, element, action)
///   level 1: (client, page, section, component, *, action)
///   level 2: (client, page, section, *, *, action)
///   level 3: (client, page, *, *, *, action)
///   level 4: (client, *, *, *, *, action)
enum class RollupLevel : int {
  kFull = 0,
  kNoElement = 1,
  kNoComponent = 2,
  kNoSection = 3,
  kNoPage = 4,
};

inline constexpr int kRollupLevels = 5;

/// The rollup key for an event name at a level: the colon-joined name with
/// wildcarded components replaced by '*'.
std::string RollupKeyFor(const EventName& name, RollupLevel level);

/// One aggregated cell, "further broken down by country and logged in /
/// logged out status" as the paper's dashboard presents.
struct RollupCell {
  uint64_t total = 0;
  uint64_t logged_in = 0;
  uint64_t logged_out = 0;
  std::map<std::string, uint64_t> by_country;
};

/// Computes all five rollup schemas over a stream of events in one pass.
/// This is the daily Oink job that feeds "top-level metrics in our internal
/// dashboard" without any intervention from application developers.
class RollupAggregator {
 public:
  /// Accumulates one event occurrence. `country` is the user's country
  /// code; `logged_in` is the session's logged-in status.
  void Add(const EventName& name, const std::string& country, bool logged_in,
           uint64_t count = 1);

  /// Adds every cell of `other` into this aggregator. Counters are
  /// commutative sums, so merging per-map-task partial rollups in any
  /// order yields the same cells as one serial pass.
  void Merge(const RollupAggregator& other);

  /// The aggregated cells for one level, keyed by wildcarded name.
  const std::map<std::string, RollupCell>& Level(RollupLevel level) const;

  /// Total distinct keys across all levels.
  size_t TotalKeys() const;

  /// Renders dashboard-style rows "<key> <total> <logged_in> <logged_out>"
  /// sorted by descending total, top `limit` rows per level.
  std::vector<std::string> TopRows(RollupLevel level, size_t limit) const;

 private:
  std::map<std::string, RollupCell> levels_[kRollupLevels];
};

}  // namespace unilog::events

#endif  // UNILOG_EVENTS_ROLLUP_H_
