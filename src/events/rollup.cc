#include "events/rollup.h"

#include <algorithm>

namespace unilog::events {

std::string RollupKeyFor(const EventName& name, RollupLevel level) {
  // Number of trailing middle components (before action) to wildcard.
  int wildcards = static_cast<int>(level);
  std::string out = name.client();
  for (int i = 1; i <= 4; ++i) {
    out.push_back(':');
    // Components page(1)..element(4); wildcard the last `wildcards` of them.
    if (i > 4 - wildcards) {
      out.push_back('*');
    } else {
      out += name.component(static_cast<NameComponent>(i));
    }
  }
  out.push_back(':');
  out += name.action();
  return out;
}

void RollupAggregator::Add(const EventName& name, const std::string& country,
                           bool logged_in, uint64_t count) {
  for (int level = 0; level < kRollupLevels; ++level) {
    RollupCell& cell =
        levels_[level][RollupKeyFor(name, static_cast<RollupLevel>(level))];
    cell.total += count;
    if (logged_in) {
      cell.logged_in += count;
    } else {
      cell.logged_out += count;
    }
    cell.by_country[country] += count;
  }
}

void RollupAggregator::Merge(const RollupAggregator& other) {
  for (int level = 0; level < kRollupLevels; ++level) {
    for (const auto& [key, cell] : other.levels_[level]) {
      RollupCell& mine = levels_[level][key];
      mine.total += cell.total;
      mine.logged_in += cell.logged_in;
      mine.logged_out += cell.logged_out;
      for (const auto& [country, count] : cell.by_country) {
        mine.by_country[country] += count;
      }
    }
  }
}

const std::map<std::string, RollupCell>& RollupAggregator::Level(
    RollupLevel level) const {
  return levels_[static_cast<int>(level)];
}

size_t RollupAggregator::TotalKeys() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

std::vector<std::string> RollupAggregator::TopRows(RollupLevel level,
                                                   size_t limit) const {
  const auto& cells = Level(level);
  std::vector<std::pair<std::string, const RollupCell*>> rows;
  rows.reserve(cells.size());
  for (const auto& [key, cell] : cells) rows.emplace_back(key, &cell);
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second->total != b.second->total) {
      return a.second->total > b.second->total;
    }
    return a.first < b.first;
  });
  if (rows.size() > limit) rows.resize(limit);
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& [key, cell] : rows) {
    out.push_back(key + " " + std::to_string(cell->total) + " " +
                  std::to_string(cell->logged_in) + " " +
                  std::to_string(cell->logged_out));
  }
  return out;
}

}  // namespace unilog::events
