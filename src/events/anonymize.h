#ifndef UNILOG_EVENTS_ANONYMIZE_H_
#define UNILOG_EVENTS_ANONYMIZE_H_

#include <cstdint>
#include <set>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "events/client_event.h"

namespace unilog::events {

/// Log anonymization (§3.2): "standardizing the location and names of
/// these fields allows us to implement consistent policies for log
/// anonymization". Because every client event carries user_id, session_id,
/// and ip in the same fields with the same semantics, one policy object
/// can anonymize the entire unified log — precisely the property the
/// legacy world lacked.
struct AnonymizationPolicy {
  /// Keyed pseudonymization of user ids: uid → HMAC-style keyed hash.
  /// Stable within a key epoch so joins still work, unlinkable across
  /// epochs.
  bool pseudonymize_user_ids = true;
  uint64_t user_id_key = 0x5eed;

  /// Pseudonymize session ids with the same key.
  bool pseudonymize_session_ids = true;

  /// IP truncation: zero the last `ip_zero_octets` octets of IPv4
  /// addresses (1 → /24, 2 → /16). 0 keeps the address.
  int ip_zero_octets = 1;

  /// Details keys to drop entirely (e.g. free-text queries).
  std::set<std::string> drop_detail_keys;

  /// Details keys to redact (kept with value "<redacted>").
  std::set<std::string> redact_detail_keys;
};

/// Applies the policy to one event, in place. Returns InvalidArgument for
/// a malformed ip when truncation is requested.
Status Anonymize(const AnonymizationPolicy& policy, ClientEvent* event);

/// The pseudonym for a user id under a key (exposed so analyses can match
/// anonymized logs against anonymized user tables).
int64_t PseudonymizeUserId(uint64_t key, int64_t user_id);

/// Keyed pseudonym for a session id.
std::string PseudonymizeSessionId(uint64_t key, const std::string& session_id);

/// Truncates an IPv4 dotted-quad by zeroing the last `zero_octets` octets.
Result<std::string> TruncateIp(const std::string& ip, int zero_octets);

}  // namespace unilog::events

#endif  // UNILOG_EVENTS_ANONYMIZE_H_
