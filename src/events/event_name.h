#ifndef UNILOG_EVENTS_EVENT_NAME_H_
#define UNILOG_EVENTS_EVENT_NAME_H_

#include <array>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace unilog::events {

/// The number of levels in the client-event namespace.
inline constexpr int kNameComponents = 6;

/// Indices of the six components (Table 1 of the paper).
enum class NameComponent : int {
  kClient = 0,     ///< client application: web, iphone, android, ...
  kPage = 1,       ///< page or functional grouping: home, profile, ...
  kSection = 2,    ///< tab or stream on a page: mentions, retweets, ...
  kComponent = 3,  ///< component/object: search_box, tweet, stream, ...
  kElement = 4,    ///< UI element within the component: button, avatar, ...
  kAction = 5,     ///< actual user/app action: impression, click, hover, ...
};

/// Human-readable component labels ("client", "page", ...).
const char* NameComponentLabel(NameComponent c);

/// A fully-qualified six-level client event name, e.g.
///   web:home:mentions:stream:avatar:profile_click
/// The paper imposes consistent lowercased snake_case naming ("to combat
/// the dreaded camel_Snake"); Parse enforces it. Middle components may be
/// empty (a page without multiple sections simply has an empty section
/// component) — this is the flip side of the fixed six-level scheme the
/// paper chose over an arbitrary-depth tree. `client` and `action` must be
/// non-empty.
class EventName {
 public:
  EventName() = default;

  /// Builds from components, validating each.
  static Result<EventName> Make(std::string_view client, std::string_view page,
                                std::string_view section,
                                std::string_view component,
                                std::string_view element,
                                std::string_view action);

  /// Parses a colon-joined name. Must have exactly six components.
  static Result<EventName> Parse(std::string_view name);

  const std::string& component(NameComponent c) const {
    return parts_[static_cast<int>(c)];
  }
  const std::string& client() const { return parts_[0]; }
  const std::string& page() const { return parts_[1]; }
  const std::string& section() const { return parts_[2]; }
  const std::string& part_component() const { return parts_[3]; }
  const std::string& element() const { return parts_[4]; }
  const std::string& action() const { return parts_[5]; }

  /// The canonical colon-joined form.
  std::string ToString() const;

  /// The namespace prefix above a given depth, e.g. depth 2 of the example
  /// yields "web:home" — used by hierarchical catalog browsing.
  std::string Prefix(int depth) const;

  bool operator==(const EventName& other) const { return parts_ == other.parts_; }
  bool operator<(const EventName& other) const { return parts_ < other.parts_; }

 private:
  std::array<std::string, kNameComponents> parts_;
};

/// Validates a single name component: empty (allowed for the middle four
/// levels) or lowercase snake_case.
Status ValidateComponent(NameComponent which, std::string_view value);

/// A wildcard pattern over event names, supporting the paper's
/// slice-and-dice queries:
///   web:home:mentions:*     — all events under the mentions timeline
///   *:profile_click         — profile clicks across all clients
///   web:*:*:*:*:impression  — impressions anywhere on the web client
/// Matching is glob-style over the full colon-joined name ('*' crosses
/// component boundaries, exactly like the regular-expression usage in the
/// paper).
class EventPattern {
 public:
  EventPattern() : pattern_("*") {}
  explicit EventPattern(std::string pattern) : pattern_(std::move(pattern)) {}

  bool Matches(const EventName& name) const;
  bool Matches(std::string_view full_name) const;

  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
};

}  // namespace unilog::events

#endif  // UNILOG_EVENTS_EVENT_NAME_H_
