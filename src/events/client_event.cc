#include "events/client_event.h"

#include "common/coding.h"
#include "thrift/compact_protocol.h"

namespace unilog::events {

using thrift::CompactReader;
using thrift::CompactWriter;
using thrift::ListData;
using thrift::MapData;
using thrift::StructSchema;
using thrift::ThriftValue;
using thrift::TType;

const char* EventInitiatorName(EventInitiator e) {
  switch (e) {
    case EventInitiator::kClientUser:
      return "client_user";
    case EventInitiator::kClientApp:
      return "client_app";
    case EventInitiator::kServerUser:
      return "server_user";
    case EventInitiator::kServerApp:
      return "server_app";
  }
  return "unknown";
}

void ClientEvent::SerializeTo(std::string* out) const {
  CompactWriter w(out);
  w.BeginStruct();
  w.WriteI32Field(kFieldInitiator, static_cast<int32_t>(initiator));
  w.WriteStringField(kFieldEventName, event_name);
  w.WriteI64Field(kFieldUserId, user_id);
  w.WriteStringField(kFieldSessionId, session_id);
  w.WriteStringField(kFieldIp, ip);
  w.WriteI64Field(kFieldTimestamp, timestamp);
  if (!details.empty()) {
    w.WriteMapFieldHeader(kFieldEventDetails, TType::kString, TType::kString,
                          static_cast<uint32_t>(details.size()));
    for (const auto& [k, v] : details) {
      w.WriteString(k);
      w.WriteString(v);
    }
  }
  w.EndStruct();
}

std::string ClientEvent::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

namespace {

// Shared field-dispatch used by both the full deserializer and the framed
// reader: reads one struct body into *event.
Status ReadClientEventBody(CompactReader* r, ClientEvent* event) {
  r->BeginStruct();
  while (true) {
    int16_t id;
    TType type;
    bool stop = false, bval = false;
    UNILOG_RETURN_NOT_OK(r->ReadFieldHeader(&id, &type, &stop, &bval));
    if (stop) break;
    switch (id) {
      case ClientEvent::kFieldInitiator: {
        if (type != TType::kI32) return Status::Corruption("bad initiator");
        int32_t v;
        UNILOG_RETURN_NOT_OK(r->ReadI32(&v));
        if (v < 0 || v > 3) return Status::Corruption("bad initiator value");
        event->initiator = static_cast<EventInitiator>(v);
        break;
      }
      case ClientEvent::kFieldEventName:
        if (type != TType::kString) return Status::Corruption("bad name");
        UNILOG_RETURN_NOT_OK(r->ReadString(&event->event_name));
        break;
      case ClientEvent::kFieldUserId:
        if (type != TType::kI64) return Status::Corruption("bad user_id");
        UNILOG_RETURN_NOT_OK(r->ReadI64(&event->user_id));
        break;
      case ClientEvent::kFieldSessionId:
        if (type != TType::kString) return Status::Corruption("bad session");
        UNILOG_RETURN_NOT_OK(r->ReadString(&event->session_id));
        break;
      case ClientEvent::kFieldIp:
        if (type != TType::kString) return Status::Corruption("bad ip");
        UNILOG_RETURN_NOT_OK(r->ReadString(&event->ip));
        break;
      case ClientEvent::kFieldTimestamp:
        if (type != TType::kI64) return Status::Corruption("bad timestamp");
        UNILOG_RETURN_NOT_OK(r->ReadI64(&event->timestamp));
        break;
      case ClientEvent::kFieldEventDetails: {
        if (type != TType::kMap) return Status::Corruption("bad details");
        TType kt, vt;
        uint32_t count;
        UNILOG_RETURN_NOT_OK(r->ReadMapHeader(&kt, &vt, &count));
        if (count > 0 && (kt != TType::kString || vt != TType::kString)) {
          return Status::Corruption("details must be map<string,string>");
        }
        event->details.clear();
        event->details.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          std::string k, v;
          UNILOG_RETURN_NOT_OK(r->ReadString(&k));
          UNILOG_RETURN_NOT_OK(r->ReadString(&v));
          event->details.emplace_back(std::move(k), std::move(v));
        }
        break;
      }
      default:
        // Unknown field from a newer producer: skip (schema evolution).
        UNILOG_RETURN_NOT_OK(r->SkipValue(type, /*from_field_header=*/true));
    }
  }
  return Status::OK();
}

}  // namespace

Result<ClientEvent> ClientEvent::Deserialize(std::string_view data) {
  CompactReader r(data);
  ClientEvent event;
  UNILOG_RETURN_NOT_OK(ReadClientEventBody(&r, &event));
  if (!r.AtEnd()) return Status::Corruption("trailing bytes");
  return event;
}

ThriftValue ClientEvent::ToThrift() const {
  ThriftValue v = ThriftValue::Struct();
  v.SetField(kFieldInitiator, ThriftValue::I32(static_cast<int32_t>(initiator)));
  v.SetField(kFieldEventName, ThriftValue::String(event_name));
  v.SetField(kFieldUserId, ThriftValue::I64(user_id));
  v.SetField(kFieldSessionId, ThriftValue::String(session_id));
  v.SetField(kFieldIp, ThriftValue::String(ip));
  v.SetField(kFieldTimestamp, ThriftValue::I64(timestamp));
  if (!details.empty()) {
    MapData m;
    m.key_type = TType::kString;
    m.value_type = TType::kString;
    for (const auto& [k, val] : details) {
      m.entries.emplace_back(ThriftValue::String(k), ThriftValue::String(val));
    }
    v.SetField(kFieldEventDetails, ThriftValue::Map(std::move(m)));
  }
  return v;
}

Result<ClientEvent> ClientEvent::FromThrift(const ThriftValue& value) {
  UNILOG_RETURN_NOT_OK(Schema().Validate(value));
  ClientEvent ev;
  UNILOG_ASSIGN_OR_RETURN(int64_t init,
                          value.FindField(kFieldInitiator)->AsI64());
  if (init < 0 || init > 3) return Status::InvalidArgument("bad initiator");
  ev.initiator = static_cast<EventInitiator>(init);
  ev.event_name = value.FindField(kFieldEventName)->string_value();
  ev.user_id = value.FindField(kFieldUserId)->i64_value();
  ev.session_id = value.FindField(kFieldSessionId)->string_value();
  ev.ip = value.FindField(kFieldIp)->string_value();
  ev.timestamp = value.FindField(kFieldTimestamp)->i64_value();
  if (const ThriftValue* d = value.FindField(kFieldEventDetails)) {
    for (const auto& [k, v] : d->map_value().entries) {
      if (!k.is_string() || !v.is_string()) {
        return Status::InvalidArgument("details must be map<string,string>");
      }
      ev.details.emplace_back(k.string_value(), v.string_value());
    }
  }
  return ev;
}

const StructSchema& ClientEvent::Schema() {
  static const StructSchema* kSchema = [] {
    auto* s = new StructSchema("client_event");
    Status st;
    st = s->AddField({kFieldInitiator, "event_initiator", TType::kI32, true});
    st = s->AddField({kFieldEventName, "event_name", TType::kString, true});
    st = s->AddField({kFieldUserId, "user_id", TType::kI64, true});
    st = s->AddField({kFieldSessionId, "session_id", TType::kString, true});
    st = s->AddField({kFieldIp, "ip", TType::kString, true});
    st = s->AddField({kFieldTimestamp, "timestamp", TType::kI64, true});
    st = s->AddField({kFieldEventDetails, "event_details", TType::kMap, false});
    (void)st;
    return s;
  }();
  return *kSchema;
}

const std::string* ClientEvent::FindDetail(std::string_view key) const {
  for (const auto& [k, v] : details) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool ClientEvent::operator==(const ClientEvent& other) const {
  return initiator == other.initiator && event_name == other.event_name &&
         user_id == other.user_id && session_id == other.session_id &&
         ip == other.ip && timestamp == other.timestamp &&
         details == other.details;
}

// ---------------------------------------------------------------------------
// Framed batch I/O

void ClientEventWriter::Add(const ClientEvent& event) {
  scratch_.clear();
  event.SerializeTo(&scratch_);
  PutLengthPrefixed(out_, scratch_);
  ++count_;
}

Status ClientEventReader::Next(ClientEvent* event) {
  if (pos_ >= data_.size()) return Status::NotFound("end of stream");
  Decoder dec(data_.substr(pos_));
  std::string_view record;
  UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
  pos_ += dec.position();
  UNILOG_ASSIGN_OR_RETURN(*event, ClientEvent::Deserialize(record));
  return Status::OK();
}

Status ClientEventReader::NextEventNameOnly(std::string* event_name) {
  if (pos_ >= data_.size()) return Status::NotFound("end of stream");
  Decoder dec(data_.substr(pos_));
  std::string_view record;
  UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
  pos_ += dec.position();

  CompactReader r(record);
  r.BeginStruct();
  event_name->clear();
  while (true) {
    int16_t id;
    TType type;
    bool stop = false, bval = false;
    UNILOG_RETURN_NOT_OK(r.ReadFieldHeader(&id, &type, &stop, &bval));
    if (stop) break;
    if (id == ClientEvent::kFieldEventName && type == TType::kString) {
      UNILOG_RETURN_NOT_OK(r.ReadString(event_name));
      // Still must leave the record well-formed, but since records are
      // length-framed we can stop scanning here.
      return Status::OK();
    }
    UNILOG_RETURN_NOT_OK(r.SkipValue(type, /*from_field_header=*/true));
  }
  if (event_name->empty()) {
    return Status::Corruption("record missing event_name");
  }
  return Status::OK();
}

}  // namespace unilog::events
