#ifndef UNILOG_EVENTS_CLIENT_EVENT_H_
#define UNILOG_EVENTS_CLIENT_EVENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "thrift/schema.h"
#include "thrift/value.h"

namespace unilog::events {

/// Who triggered the event (Table 2: {client, server} x {user, app}).
/// A user's timeline polling for new tweets is a client/app event; a click
/// is client/user; a server-rendered impression is server/app; etc.
enum class EventInitiator : int32_t {
  kClientUser = 0,
  kClientApp = 1,
  kServerUser = 2,
  kServerApp = 3,
};

const char* EventInitiatorName(EventInitiator e);

/// A client event: the unified log message format (Table 2). Every Twitter
/// client — web, iPhone, Android, iPad — logs the same structure with the
/// same field semantics, which is what makes session reconstruction a
/// simple group-by (§3.2).
///
/// Wire representation: unilog compact Thrift, with the field ids below.
/// The event_details field holds event-specific key-value pairs that teams
/// extend without central coordination.
struct ClientEvent {
  /// Thrift field ids (stable across schema evolution).
  static constexpr int16_t kFieldInitiator = 1;
  static constexpr int16_t kFieldEventName = 2;
  static constexpr int16_t kFieldUserId = 3;
  static constexpr int16_t kFieldSessionId = 4;
  static constexpr int16_t kFieldIp = 5;
  static constexpr int16_t kFieldTimestamp = 6;
  static constexpr int16_t kFieldEventDetails = 7;

  EventInitiator initiator = EventInitiator::kClientUser;
  std::string event_name;
  int64_t user_id = 0;
  std::string session_id;
  std::string ip;
  TimeMs timestamp = 0;
  std::vector<std::pair<std::string, std::string>> details;

  /// Serializes with the compact protocol (elephant-bird-style generated
  /// writer: no dynamic value materialization).
  void SerializeTo(std::string* out) const;
  std::string Serialize() const;

  /// Deserializes one event, skipping unknown fields (schema evolution).
  static Result<ClientEvent> Deserialize(std::string_view data);

  /// Conversions to/from the dynamic representation (used by the catalog's
  /// payload sampling).
  thrift::ThriftValue ToThrift() const;
  static Result<ClientEvent> FromThrift(const thrift::ThriftValue& value);

  /// The canonical client_event struct schema.
  static const thrift::StructSchema& Schema();

  /// Looks up a details key; nullptr when absent.
  const std::string* FindDetail(std::string_view key) const;

  bool operator==(const ClientEvent& other) const;
};

/// A framed batch of serialized client events: each record is a varint
/// length followed by the compact-Thrift bytes. This is the on-disk layout
/// of client event log files in the (simulated) warehouse.
class ClientEventWriter {
 public:
  explicit ClientEventWriter(std::string* out) : out_(out) {}
  void Add(const ClientEvent& event);
  size_t count() const { return count_; }

 private:
  std::string* out_;
  // Per-record serialization buffer, reused across Add calls so batched
  // writes stop allocating once its capacity warms up.
  std::string scratch_;
  size_t count_ = 0;
};

/// Streaming reader over a framed batch.
class ClientEventReader {
 public:
  explicit ClientEventReader(std::string_view data) : data_(data) {}

  /// Reads the next event. Returns NotFound at clean end-of-stream,
  /// Corruption on malformed framing.
  Status Next(ClientEvent* event);

  /// Reads only the event-name field of the next record, skipping the rest
  /// of the message — the cheap projection path used by scan-time
  /// optimizations. Returns NotFound at end-of-stream.
  Status NextEventNameOnly(std::string* event_name);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace unilog::events

#endif  // UNILOG_EVENTS_CLIENT_EVENT_H_
