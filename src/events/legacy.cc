#include "events/legacy.h"

#include <cstdio>
#include <cstdlib>

#include "common/json.h"
#include "common/strings.h"

namespace unilog::events {

namespace {

/// The action label an application-specific log would use: the last
/// component of the unified name (the action), which is all the legacy
/// world consistently recorded.
std::string ActionOf(const ClientEvent& event) {
  auto parts = Split(event.event_name, ':');
  return parts.empty() ? std::string("unknown") : parts.back();
}

}  // namespace

// ---------------------------------------------------------------------------
// Format A: nested JSON

std::string LegacyJsonFormat::Format(const ClientEvent& event) {
  Json inner = Json::Object();
  inner.Set("actionName", Json::Str(ActionOf(event)));
  inner.Set("timestampMs", Json::Int(event.timestamp));
  Json ctx = Json::Object();
  ctx.Set("userId", Json::Int(event.user_id));
  ctx.Set("clientIp", Json::Str(event.ip));
  Json details = Json::Object();
  for (const auto& [k, v] : event.details) {
    details.Set(k, Json::Str(v));
  }
  Json root = Json::Object();
  root.Set("eventData", inner);
  root.Set("requestContext", ctx);
  root.Set("params", details);
  root.Set("v", Json::Int(3));  // ad hoc version tag nobody documents
  return root.Dump();
}

Result<LegacyRecord> LegacyJsonFormat::Parse(std::string_view line) {
  UNILOG_ASSIGN_OR_RETURN(Json doc, Json::Parse(line));
  const Json& data = doc["eventData"];
  const Json& ctx = doc["requestContext"];
  if (!data.is_object() || !ctx.is_object()) {
    return Status::Corruption("legacy json: missing envelope");
  }
  if (!data["actionName"].is_string() || !data["timestampMs"].is_number() ||
      !ctx["userId"].is_number()) {
    return Status::Corruption("legacy json: missing fields");
  }
  LegacyRecord rec;
  rec.user_id = ctx["userId"].int_value();
  rec.timestamp = data["timestampMs"].int_value();
  rec.action = data["actionName"].string_value();
  rec.source = kCategory;
  return rec;
}

// ---------------------------------------------------------------------------
// Format B: tab-delimited

std::string LegacyDelimitedFormat::Format(const ClientEvent& event) {
  // Columns: epoch_seconds \t user_id \t ip \t action \t detail_blob
  std::string detail_blob;
  for (const auto& [k, v] : event.details) {
    if (!detail_blob.empty()) detail_blob += ";";
    detail_blob += k + "=" + v;
  }
  // Escape embedded tabs/newlines (the hazard §3.1 mentions).
  std::string safe_blob;
  for (char c : detail_blob) {
    if (c == '\t') {
      safe_blob += "\\t";
    } else if (c == '\n') {
      safe_blob += "\\n";
    } else {
      safe_blob.push_back(c);
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld\t%lld\t",
                static_cast<long long>(event.timestamp / kMillisPerSecond),
                static_cast<long long>(event.user_id));
  return std::string(buf) + event.ip + "\t" + ActionOf(event) + "\t" +
         safe_blob;
}

Result<LegacyRecord> LegacyDelimitedFormat::Parse(std::string_view line) {
  std::vector<std::string> cols = Split(line, '\t');
  if (cols.size() != 5) {
    return Status::Corruption("legacy delimited: expected 5 columns, got " +
                              std::to_string(cols.size()));
  }
  char* end = nullptr;
  long long secs = std::strtoll(cols[0].c_str(), &end, 10);
  if (end != cols[0].c_str() + cols[0].size()) {
    return Status::Corruption("legacy delimited: bad timestamp");
  }
  long long uid = std::strtoll(cols[1].c_str(), &end, 10);
  if (end != cols[1].c_str() + cols[1].size()) {
    return Status::Corruption("legacy delimited: bad user_id");
  }
  LegacyRecord rec;
  rec.timestamp = static_cast<TimeMs>(secs) * kMillisPerSecond;  // s → ms
  rec.user_id = uid;
  rec.action = cols[3];
  rec.source = kCategory;
  return rec;
}

// ---------------------------------------------------------------------------
// Format C: quasi natural language

std::string LegacyNaturalFormat::Format(const ClientEvent& event) {
  CivilTime c = ToCivil(event.timestamp);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02d %02d:%02d", c.year, c.month,
                c.day, c.hour, c.minute);
  std::string line = "user " + std::to_string(event.user_id) +
                     " performed " + ActionOf(event) + " at " + ts;
  const std::string* query = event.FindDetail("query");
  if (query != nullptr) {
    line += " [" + *query + "]";
  }
  return line;
}

Result<LegacyRecord> LegacyNaturalFormat::Parse(std::string_view line) {
  // Phrase-delimited: "user <id> performed <action> at <YYYY-MM-DD HH:MM>..."
  constexpr std::string_view kUser = "user ";
  constexpr std::string_view kPerformed = " performed ";
  constexpr std::string_view kAt = " at ";
  if (!StartsWith(line, kUser)) {
    return Status::Corruption("legacy natural: missing 'user' prefix");
  }
  size_t performed_pos = line.find(kPerformed);
  if (performed_pos == std::string_view::npos) {
    return Status::Corruption("legacy natural: missing 'performed'");
  }
  size_t at_pos = line.find(kAt, performed_pos + kPerformed.size());
  if (at_pos == std::string_view::npos) {
    return Status::Corruption("legacy natural: missing 'at'");
  }
  std::string uid_str(
      line.substr(kUser.size(), performed_pos - kUser.size()));
  char* end = nullptr;
  long long uid = std::strtoll(uid_str.c_str(), &end, 10);
  if (end != uid_str.c_str() + uid_str.size() || uid_str.empty()) {
    return Status::Corruption("legacy natural: bad user id");
  }
  std::string action(line.substr(performed_pos + kPerformed.size(),
                                 at_pos - performed_pos - kPerformed.size()));
  std::string_view ts = line.substr(at_pos + kAt.size());
  // Timestamp is exactly "YYYY-MM-DD HH:MM" (16 chars).
  if (ts.size() < 16) return Status::Corruption("legacy natural: bad time");
  CivilTime c;
  int fields = std::sscanf(std::string(ts.substr(0, 16)).c_str(),
                           "%d-%d-%d %d:%d", &c.year, &c.month, &c.day,
                           &c.hour, &c.minute);
  if (fields != 5) return Status::Corruption("legacy natural: bad time");
  LegacyRecord rec;
  rec.user_id = uid;
  rec.timestamp = FromCivil(c);  // minute resolution: seconds/ms lost
  rec.action = action;
  rec.source = kCategory;
  return rec;
}

Result<LegacyRecord> ParseLegacy(std::string_view category,
                                 std::string_view line) {
  if (category == LegacyJsonFormat::kCategory) {
    return LegacyJsonFormat::Parse(line);
  }
  if (category == LegacyDelimitedFormat::kCategory) {
    return LegacyDelimitedFormat::Parse(line);
  }
  if (category == LegacyNaturalFormat::kCategory) {
    return LegacyNaturalFormat::Parse(line);
  }
  return Status::NotFound("unknown legacy category: " + std::string(category));
}

}  // namespace unilog::events
