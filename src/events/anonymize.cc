#include "events/anonymize.h"

#include <cstdio>
#include <cstdlib>

#include "common/strings.h"

namespace unilog::events {

namespace {

// SplitMix64-based keyed mixer: not cryptographic, but stable, keyed, and
// well-distributed — the shape of a production HMAC pseudonymizer.
uint64_t KeyedMix(uint64_t key, uint64_t value) {
  uint64_t z = value + key * 0x9E3779B97F4A7C15ULL + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= key;
  return z ^ (z >> 31);
}

uint64_t HashBytes(uint64_t key, const std::string& s) {
  uint64_t h = key ^ 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return KeyedMix(key, h);
}

}  // namespace

int64_t PseudonymizeUserId(uint64_t key, int64_t user_id) {
  // Keep the pseudonym positive so it stays a plausible id.
  return static_cast<int64_t>(KeyedMix(key, static_cast<uint64_t>(user_id)) &
                              0x7FFFFFFFFFFFFFFFULL);
}

std::string PseudonymizeSessionId(uint64_t key,
                                  const std::string& session_id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "anon-%016llx",
                static_cast<unsigned long long>(HashBytes(key, session_id)));
  return buf;
}

Result<std::string> TruncateIp(const std::string& ip, int zero_octets) {
  if (zero_octets <= 0) return ip;
  if (zero_octets > 4) zero_octets = 4;
  std::vector<std::string> octets = Split(ip, '.');
  if (octets.size() != 4) {
    return Status::InvalidArgument("not an IPv4 dotted quad: " + ip);
  }
  for (const auto& o : octets) {
    if (o.empty() || o.size() > 3) {
      return Status::InvalidArgument("bad octet in ip: " + ip);
    }
    for (char c : o) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad octet in ip: " + ip);
      }
    }
    long v = std::strtol(o.c_str(), nullptr, 10);
    if (v > 255) return Status::InvalidArgument("octet out of range: " + ip);
  }
  for (int i = 0; i < zero_octets; ++i) {
    octets[3 - i] = "0";
  }
  return Join(octets, '.');
}

Status Anonymize(const AnonymizationPolicy& policy, ClientEvent* event) {
  if (policy.pseudonymize_user_ids) {
    event->user_id = PseudonymizeUserId(policy.user_id_key, event->user_id);
  }
  if (policy.pseudonymize_session_ids) {
    event->session_id =
        PseudonymizeSessionId(policy.user_id_key, event->session_id);
  }
  if (policy.ip_zero_octets > 0) {
    UNILOG_ASSIGN_OR_RETURN(event->ip,
                            TruncateIp(event->ip, policy.ip_zero_octets));
  }
  if (!policy.drop_detail_keys.empty() || !policy.redact_detail_keys.empty()) {
    std::vector<std::pair<std::string, std::string>> kept;
    kept.reserve(event->details.size());
    for (auto& [k, v] : event->details) {
      if (policy.drop_detail_keys.count(k)) continue;
      if (policy.redact_detail_keys.count(k)) {
        kept.emplace_back(k, "<redacted>");
      } else {
        kept.emplace_back(k, std::move(v));
      }
    }
    event->details = std::move(kept);
  }
  return Status::OK();
}

}  // namespace unilog::events
