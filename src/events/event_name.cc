#include "events/event_name.h"

#include "common/strings.h"

namespace unilog::events {

const char* NameComponentLabel(NameComponent c) {
  switch (c) {
    case NameComponent::kClient:
      return "client";
    case NameComponent::kPage:
      return "page";
    case NameComponent::kSection:
      return "section";
    case NameComponent::kComponent:
      return "component";
    case NameComponent::kElement:
      return "element";
    case NameComponent::kAction:
      return "action";
  }
  return "unknown";
}

Status ValidateComponent(NameComponent which, std::string_view value) {
  bool may_be_empty = which != NameComponent::kClient &&
                      which != NameComponent::kAction;
  if (value.empty()) {
    if (may_be_empty) return Status::OK();
    return Status::InvalidArgument(
        std::string(NameComponentLabel(which)) + " component must not be empty");
  }
  if (!IsLowerSnake(value)) {
    return Status::InvalidArgument(
        std::string(NameComponentLabel(which)) +
        " component must be lowercase snake_case: '" + std::string(value) +
        "'");
  }
  return Status::OK();
}

Result<EventName> EventName::Make(std::string_view client,
                                  std::string_view page,
                                  std::string_view section,
                                  std::string_view component,
                                  std::string_view element,
                                  std::string_view action) {
  const std::string_view values[kNameComponents] = {client, page,    section,
                                                    component, element, action};
  EventName name;
  for (int i = 0; i < kNameComponents; ++i) {
    UNILOG_RETURN_NOT_OK(
        ValidateComponent(static_cast<NameComponent>(i), values[i]));
    name.parts_[i] = std::string(values[i]);
  }
  return name;
}

Result<EventName> EventName::Parse(std::string_view name) {
  std::vector<std::string> parts = Split(name, ':');
  if (parts.size() != kNameComponents) {
    return Status::InvalidArgument(
        "event name must have exactly 6 components, got " +
        std::to_string(parts.size()) + ": '" + std::string(name) + "'");
  }
  return Make(parts[0], parts[1], parts[2], parts[3], parts[4], parts[5]);
}

std::string EventName::ToString() const {
  std::string out = parts_[0];
  for (int i = 1; i < kNameComponents; ++i) {
    out.push_back(':');
    out += parts_[i];
  }
  return out;
}

std::string EventName::Prefix(int depth) const {
  if (depth <= 0) return "";
  if (depth > kNameComponents) depth = kNameComponents;
  std::string out = parts_[0];
  for (int i = 1; i < depth; ++i) {
    out.push_back(':');
    out += parts_[i];
  }
  return out;
}

bool EventPattern::Matches(const EventName& name) const {
  return Matches(name.ToString());
}

bool EventPattern::Matches(std::string_view full_name) const {
  return GlobMatch(pattern_, full_name);
}

}  // namespace unilog::events
