#ifndef UNILOG_EVENTS_LEGACY_H_
#define UNILOG_EVENTS_LEGACY_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "events/client_event.h"

namespace unilog::events {

/// The application-specific logging world of §3.1, reproduced as three
/// deliberately-heterogeneous legacy formats. Each format captures the same
/// logical user action a unified client event would, but with the
/// idiosyncrasies the paper complains about:
///  - inconsistent field naming (userId vs user_id vs "user N"),
///  - inconsistent timestamp conventions (ms vs s vs minute-resolution text),
///  - no session id at all — sessions must be inferred from user id +
///    timestamps,
///  - a different Scribe category (and thus warehouse silo) per application.
///
/// The logical content recoverable from any legacy record:
struct LegacyRecord {
  int64_t user_id = 0;
  TimeMs timestamp = 0;      // normalized to ms; resolution varies by format
  std::string action;        // application-local action label
  std::string source;        // which legacy format produced it
};

/// Format A — "web frontend" JSON logs: nested JSON, camelCase keys,
/// millisecond timestamps buried two levels deep.
class LegacyJsonFormat {
 public:
  static constexpr const char* kCategory = "web_frontend_events";

  /// Down-converts a unified event into the legacy encoding.
  static std::string Format(const ClientEvent& event);

  /// Parses a legacy line back into the common logical record.
  static Result<LegacyRecord> Parse(std::string_view line);
};

/// Format B — "api" logs: tab-delimited columns, snake_case header
/// convention (user_id), *second*-resolution epoch timestamps, and the
/// action label in column 4. Embedded tabs in fields are the classic
/// delimiter hazard; Format escapes them as "\t" text.
class LegacyDelimitedFormat {
 public:
  static constexpr const char* kCategory = "api_request_log";

  static std::string Format(const ClientEvent& event);
  static Result<LegacyRecord> Parse(std::string_view line);
};

/// Format C — "search" logs in quasi natural language:
///   "user 1234 performed results_click at 2012-08-21 13:45 [extra...]"
/// Minute-resolution timestamps; certain phrases serve as delimiters.
class LegacyNaturalFormat {
 public:
  static constexpr const char* kCategory = "search_activity";

  static std::string Format(const ClientEvent& event);
  static Result<LegacyRecord> Parse(std::string_view line);
};

/// Dispatches Parse by category name.
Result<LegacyRecord> ParseLegacy(std::string_view category,
                                 std::string_view line);

}  // namespace unilog::events

#endif  // UNILOG_EVENTS_LEGACY_H_
