#include "columnar/scrubber.h"

#include "columnar/rcfile.h"
#include "events/client_event.h"
#include "obs/metrics.h"

namespace unilog::columnar {

namespace {

// True when any path component below the `root` prefix starts with '_'
// (the warehouse hidden convention — markers, caches, prior quarantines).
bool HiddenUnder(const std::string& root, const std::string& path) {
  size_t start = root.size();
  if (start < path.size() && path[start] == '/') ++start;
  while (start < path.size()) {
    if (path[start] == '_') return true;
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return false;
}

}  // namespace

std::string ScrubReport::ToString() const {
  return "checked=" + std::to_string(files_checked) +
         " skipped=" + std::to_string(files_skipped) +
         " quarantined=" + std::to_string(files_quarantined) +
         " rows=" + std::to_string(rows_verified);
}

Result<ScrubReport> ScrubColumnarDir(hdfs::MiniHdfs* fs,
                                     const std::string& root,
                                     obs::MetricsRegistry* metrics) {
  ScrubReport report;
  UNILOG_ASSIGN_OR_RETURN(auto files, fs->ListRecursive(root));
  for (const auto& file : files) {
    if (HiddenUnder(root, file.path)) {
      ++report.files_skipped;
      continue;
    }
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs->ReadFile(file.path));
    if (!IsRcFile(body)) {
      ++report.files_skipped;  // only columnar parts carry checksums
      continue;
    }
    ++report.files_checked;
    RcFileReader reader(body);
    std::vector<events::ClientEvent> events;
    Status st = reader.ReadAll(kAllColumns, &events);
    if (st.ok()) {
      report.rows_verified += events.size();
      continue;
    }
    if (!st.IsCorruption()) return st;
    size_t slash = file.path.rfind('/');
    std::string hidden = file.path.substr(0, slash + 1) + "_quarantined." +
                         file.path.substr(slash + 1);
    UNILOG_RETURN_NOT_OK(fs->Rename(file.path, hidden));
    ++report.files_quarantined;
    report.quarantined.push_back(hidden);
  }
  if (metrics != nullptr) {
    metrics->GetCounter("scrub.files_checked")
        ->Increment(report.files_checked);
    metrics->GetCounter("scrub.files_quarantined")
        ->Increment(report.files_quarantined);
    metrics->GetCounter("scrub.rows_verified")
        ->Increment(report.rows_verified);
  }
  return report;
}

}  // namespace unilog::columnar
