#ifndef UNILOG_COLUMNAR_RCFILE_H_
#define UNILOG_COLUMNAR_RCFILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/client_event.h"

namespace unilog::columnar {

/// A simplified RCFile (He et al., ICDE 2011): the columnar layout §4.2
/// considers as an alternative to session sequences and rejects. Rows are
/// batched into row groups; within a group each client-event field is
/// stored (and compressed) as its own column run, so a projection query
/// decompresses only the columns it touches.
///
/// The paper's argument, which bench_rcfile_alternative reproduces: this
/// "primarily focuses on reducing the running time of each map task;
/// without modification, RCFiles would not reduce the number of mappers
/// ... and the associated jobtracker traffic" — nor do they remove the
/// session group-by. Session sequences fix both at once.

/// The client-event columns, in storage order.
enum class EventColumn : int {
  kInitiator = 0,
  kEventName = 1,
  kUserId = 2,
  kSessionId = 3,
  kIp = 4,
  kTimestamp = 5,
  kDetails = 6,
};
inline constexpr int kEventColumns = 7;

/// A bitmask of columns to read.
using ColumnMask = uint32_t;
inline constexpr ColumnMask kAllColumns = (1u << kEventColumns) - 1;
inline ColumnMask ColumnBit(EventColumn c) {
  return 1u << static_cast<int>(c);
}

/// Writes client events into the columnar layout.
class RcFileWriter {
 public:
  /// `out` receives the file body; groups hold up to `rows_per_group` rows.
  explicit RcFileWriter(std::string* out, size_t rows_per_group = 1024);

  /// Appends one event. Never fails (memory-backed).
  void Add(const events::ClientEvent& event);

  /// Flushes the trailing partial group. Must be called exactly once, last.
  void Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  void FlushGroup();

  std::string* out_;
  size_t rows_per_group_;
  size_t rows_written_ = 0;
  bool finished_ = false;
  std::vector<events::ClientEvent> pending_;
};

/// Reads a columnar file, decompressing only the requested columns.
class RcFileReader {
 public:
  explicit RcFileReader(std::string_view data) : data_(data) {}

  /// Reads every row, populating only the fields whose columns are in
  /// `mask` (other fields keep their default values). Appends to `out`.
  Status ReadAll(ColumnMask mask, std::vector<events::ClientEvent>* out);

  /// Visits only the event-name column (the histogram/counting fast path).
  Status ForEachEventName(const std::function<void(std::string_view)>& fn);

  /// Compressed bytes actually decompressed by calls so far — the
  /// projection savings RCFile exists to provide.
  uint64_t bytes_touched() const { return bytes_touched_; }
  /// Total compressed column bytes in the file.
  Result<uint64_t> TotalColumnBytes() const;

 private:
  std::string_view data_;
  uint64_t bytes_touched_ = 0;
};

}  // namespace unilog::columnar

#endif  // UNILOG_COLUMNAR_RCFILE_H_
