#ifndef UNILOG_COLUMNAR_RCFILE_H_
#define UNILOG_COLUMNAR_RCFILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/client_event.h"
#include "events/event_name.h"

namespace unilog::obs {
class MetricsRegistry;
}  // namespace unilog::obs

namespace unilog::columnar {

/// A simplified RCFile (He et al., ICDE 2011): the columnar layout §4.2
/// considers as an alternative to session sequences. Rows are batched into
/// row groups; within a group each client-event field is stored (and
/// compressed) as its own column run, so a projection query decompresses
/// only the columns it touches.
///
/// Format v2 extends each row-group header with a zone map (min/max
/// timestamp, min/max user id) and per-group dictionaries for the
/// low-cardinality columns (event_name, initiator), both stored
/// *uncompressed* in the header. The column blobs for those two columns
/// then hold only dictionary ids. This buys the scan fast path three
/// skips, all before a single row is materialized:
///
///   1. zone-map skip     — a timestamp-range or user-id predicate that
///                          cannot match the group skips every blob;
///   2. dictionary skip   — an event-name predicate with no matching
///                          dictionary entry skips every blob;
///   3. encoded pruning   — surviving groups evaluate event-name
///                          predicates on varint dictionary ids and only
///                          materialize the selected rows.
///
/// Files keep backward read compatibility: v2 files begin with the magic
/// "RCF2"; anything else is decoded as the legacy v1 stream (no zone maps,
/// inline strings), on which predicates still work row-wise but no group
/// can be skipped.
///
/// Each v2 row group carries two FNV-1a checksums right after the header:
/// one over the header bytes (row count + zone map + dictionaries),
/// verified on every header parse, and one over the column-blob section,
/// verified only when the group is actually scanned — so zone-map skips
/// stay header-only while any flipped byte in either section is still a
/// Corruption error rather than silently different data.

/// The client-event columns, in storage order.
enum class EventColumn : int {
  kInitiator = 0,
  kEventName = 1,
  kUserId = 2,
  kSessionId = 3,
  kIp = 4,
  kTimestamp = 5,
  kDetails = 6,
};
inline constexpr int kEventColumns = 7;

/// A bitmask of columns to read.
using ColumnMask = uint32_t;
inline constexpr ColumnMask kAllColumns = (1u << kEventColumns) - 1;
inline ColumnMask ColumnBit(EventColumn c) {
  return 1u << static_cast<int>(c);
}

/// Hard ceiling on rows per group; headers claiming more are rejected as
/// corrupt before any allocation is sized from the claimed count.
inline constexpr uint64_t kMaxRowsPerGroup = 1u << 20;

/// What a scan should return and which rows it may drop. All predicates
/// are conjunctive; rows must satisfy every engaged predicate. Fields not
/// in `columns` keep their default values in the output events.
struct ScanSpec {
  ColumnMask columns = kAllColumns;
  /// Inclusive timestamp range.
  std::optional<int64_t> min_timestamp;
  std::optional<int64_t> max_timestamp;
  /// Exact-match event-name allowlist.
  std::optional<std::set<std::string>> event_names;
  /// Glob patterns (events::EventPattern syntax); each must match.
  std::vector<std::string> event_name_patterns;
  /// user_id allowlist.
  std::optional<std::set<int64_t>> user_ids;

  bool has_name_predicate() const {
    return event_names.has_value() || !event_name_patterns.empty();
  }
  bool has_predicates() const {
    return has_name_predicate() || min_timestamp.has_value() ||
           max_timestamp.has_value() || user_ids.has_value();
  }
};

/// Scan-side accounting, the numbers §4.2's economics argument is about.
struct ScanStats {
  uint64_t groups_total = 0;
  uint64_t groups_scanned = 0;
  /// Groups eliminated whole by a zone map or dictionary check.
  uint64_t groups_skipped = 0;
  /// Compressed bytes actually fed to the decompressor.
  uint64_t bytes_decompressed = 0;
  /// Rows in groups that were decoded.
  uint64_t rows_scanned = 0;
  /// Rows eliminated before materialization (skipped groups + predicate
  /// failures on encoded values).
  uint64_t rows_pruned = 0;
  uint64_t rows_returned = 0;
  /// Rows cut by a dictionary-domain verdict: the name predicate was
  /// evaluated once per dictionary entry and the row only compared its
  /// encoded id (or the whole group was dictionary-skipped) — the row's
  /// string was never touched. A subset of rows_pruned.
  uint64_t dict_domain_rows_pruned = 0;

  void MergeFrom(const ScanStats& other);
};

/// Increments the `columnar.*` counters (groups_scanned, groups_skipped,
/// bytes_decompressed, rows_pruned, rows_returned) labeled
/// {source=<source>} in `metrics`. No-op when `metrics` is null.
void ReportScanStats(const ScanStats& stats, obs::MetricsRegistry* metrics,
                     const std::string& source);

/// Row-wise evaluation of a ScanSpec's predicates against a fully decoded
/// event, with the glob patterns compiled once at construction. This is
/// the reference semantics the columnar fast path must agree with: legacy
/// (framed) parts are filtered with it directly, and shared scans use it
/// as the per-workflow residual filter over union-scanned rows. Borrows
/// `spec`; the spec must outlive the matcher.
class RowMatcher {
 public:
  explicit RowMatcher(const ScanSpec& spec);
  bool Matches(const events::ClientEvent& event) const;

 private:
  const ScanSpec* spec_;
  std::vector<events::EventPattern> patterns_;
};

/// True when `data` carries the v2 magic.
bool IsRcFile(std::string_view data);

/// Writer knobs.
struct RcFileWriterOptions {
  size_t rows_per_group = 1024;
  /// 2 (default) writes zone maps + dictionaries; 1 writes the legacy
  /// layout (for compatibility tests and old-file fixtures).
  int format_version = 2;
};

/// Writes client events into the columnar layout.
class RcFileWriter {
 public:
  /// `out` receives the file body; groups hold up to `rows_per_group` rows.
  explicit RcFileWriter(std::string* out, size_t rows_per_group = 1024);
  RcFileWriter(std::string* out, RcFileWriterOptions options);

  /// Appends one event. Fails with FailedPrecondition once Finish() has
  /// been called (appending then would corrupt the file tail).
  Status Add(const events::ClientEvent& event);

  /// Flushes the trailing partial group. Idempotent; must be called last.
  Status Finish();

  size_t rows_written() const { return rows_written_; }

 private:
  void FlushGroup();

  std::string* out_;
  RcFileWriterOptions options_;
  size_t rows_written_ = 0;
  bool finished_ = false;
  bool wrote_magic_ = false;
  std::vector<events::ClientEvent> pending_;
};

/// Reads a columnar file (either format version), decompressing only the
/// requested columns and — given a ScanSpec — skipping whole row groups
/// via zone maps and dictionaries.
class RcFileReader {
 public:
  explicit RcFileReader(std::string_view data);

  /// 1 or 2, from the file magic.
  int format_version() const { return version_; }

  /// Reads every row, populating only the fields whose columns are in
  /// `mask` (other fields keep their default values). Appends to `out`.
  /// Masks with bits outside the known columns are InvalidArgument.
  Status ReadAll(ColumnMask mask, std::vector<events::ClientEvent>* out);

  /// Predicate + projection scan. Appends the selected rows, in file
  /// order, to `out`; accumulates accounting into `stats` when non-null.
  Status Scan(const ScanSpec& spec, std::vector<events::ClientEvent>* out,
              ScanStats* stats = nullptr);

  /// Visits only the event-name column (the histogram/counting fast path).
  Status ForEachEventName(const std::function<void(std::string_view)>& fn);

  /// A row group's position, for group-parallel scans. `byte_length` (the
  /// group's full extent: header plus compressed blobs) is the byte
  /// weight morsel-driven scan scheduling packs by.
  struct RowGroupHandle {
    size_t offset = 0;
    uint64_t row_count = 0;
    uint64_t byte_length = 0;
  };

  /// Walks the file once (headers only, nothing decompressed) and returns
  /// a handle per row group, in file order.
  Result<std::vector<RowGroupHandle>> IndexGroups() const;

  /// Scans a single row group. Thread-safe: touches no reader state, so
  /// disjoint groups may be scanned concurrently; appending each group's
  /// output in handle order reproduces Scan() exactly.
  Status ScanGroup(const RowGroupHandle& group, const ScanSpec& spec,
                   std::vector<events::ClientEvent>* out,
                   ScanStats* stats) const;

  /// One scanned row group as typed column arrays — the zero-boxing
  /// output the vectorized dataflow engine consumes. Only the columns in
  /// the ScanSpec mask are populated (kDetails is not representable and
  /// its bit is ignored); each vector holds one entry per *selected* row,
  /// in file order. Event names and initiators stay dictionary-encoded
  /// (codes plus a shared dictionary of the distinct strings), so a v2
  /// group's strings are materialized once per distinct value, never per
  /// row; v1 groups fall back to per-row name strings in `name_strs`.
  struct ColumnarGroup {
    uint64_t rows = 0;
    std::vector<uint32_t> name_codes;
    std::shared_ptr<const std::vector<std::string>> name_dict;
    std::vector<std::string> name_strs;  // v1 only (no dictionary)
    /// Initiator display names (EventInitiatorName), <= 4 entries.
    std::vector<uint32_t> init_codes;
    std::shared_ptr<const std::vector<std::string>> init_dict;
    std::vector<int64_t> user_ids;
    std::vector<int64_t> timestamps;
    std::vector<std::string> session_ids;
    std::vector<std::string> ips;
  };

  /// ScanGroup with columnar output: selects exactly the same rows with
  /// the same accounting, but never materializes a ClientEvent.
  /// Thread-safe like ScanGroup.
  Status ScanGroupColumnar(const RowGroupHandle& group, const ScanSpec& spec,
                           ColumnarGroup* out, ScanStats* stats) const;

  /// Header-only statistics of one row group, for the cost-based planner:
  /// zone maps and dictionary names come straight from the v2 header
  /// (nothing is decompressed); `blob_bytes` is the compressed size of
  /// the group's column blobs. v1 groups report `has_zone_map` false with
  /// row/byte counts only.
  struct RowGroupStats {
    uint64_t row_count = 0;
    uint64_t blob_bytes = 0;
    bool has_zone_map = false;
    int64_t min_timestamp = 0, max_timestamp = 0;
    int64_t min_user_id = 0, max_user_id = 0;
    std::vector<std::string> event_names;  // dictionary entries, v2 only
    /// Initiator display names (EventInitiatorName), v2 only.
    std::vector<std::string> initiators;
  };

  /// Walks the file headers once and returns per-group stats in file
  /// order. Header-only: no blob is decompressed.
  Result<std::vector<RowGroupStats>> CollectGroupStats() const;

  /// A 64-bit content fingerprint of a v2 file, derived from the per-group
  /// FNV-1a header and blob checksums already embedded in the format — so
  /// it is computed header-only, without decompressing a single column
  /// blob. Any content change alters a group checksum and therefore the
  /// fingerprint; the Oink memoization layer uses it as the input half of
  /// a cache key. FailedPrecondition on v1 files (no embedded checksums;
  /// callers fall back to size+mtime), Corruption on malformed files.
  Result<uint64_t> ContentFingerprint() const;

  /// Compressed bytes actually decompressed by (non-const) calls so far —
  /// the projection savings RCFile exists to provide.
  uint64_t bytes_touched() const { return bytes_touched_; }
  /// Total compressed column bytes in the file.
  Result<uint64_t> TotalColumnBytes() const;

 private:
  std::string_view data_;
  int version_ = 1;
  size_t body_offset_ = 0;
  uint64_t bytes_touched_ = 0;
};

}  // namespace unilog::columnar

#endif  // UNILOG_COLUMNAR_RCFILE_H_
