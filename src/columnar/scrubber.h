#ifndef UNILOG_COLUMNAR_SCRUBBER_H_
#define UNILOG_COLUMNAR_SCRUBBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"

namespace unilog::obs {
class MetricsRegistry;
}  // namespace unilog::obs

namespace unilog::columnar {

/// What one scrub pass over a warehouse subtree found.
struct ScrubReport {
  uint64_t files_checked = 0;      // columnar parts fully verified or failed
  uint64_t files_skipped = 0;      // non-columnar or hidden files
  uint64_t files_quarantined = 0;  // checksum failures renamed aside
  uint64_t rows_verified = 0;      // rows materialized from healthy parts
  /// Post-rename hidden paths of the parts taken out of service.
  std::vector<std::string> quarantined;

  std::string ToString() const;
};

/// The MiniHdfs analog of HDFS's background block scanner, pointed at the
/// columnar layout's own checksums: walks every file under `root`,
/// fully reads each RCFile part (which verifies the per-group header and
/// blob FNV-1a checksums), and renames any part that fails with a
/// Corruption status to `_quarantined.<name>` — a hidden path that scans,
/// Oink manifests, and MapReduce input listings all ignore. Non-columnar
/// files and already-hidden paths are skipped; any other error (e.g. an
/// Unavailable read during a brownout) aborts the pass so the caller can
/// retry later.
///
/// When `metrics` is non-null the pass increments scrub.files_checked,
/// scrub.files_quarantined, and scrub.rows_verified counters.
Result<ScrubReport> ScrubColumnarDir(hdfs::MiniHdfs* fs,
                                     const std::string& root,
                                     obs::MetricsRegistry* metrics = nullptr);

}  // namespace unilog::columnar

#endif  // UNILOG_COLUMNAR_SCRUBBER_H_
