#include "columnar/rcfile.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "common/compress.h"
#include "events/event_name.h"
#include "obs/metrics.h"

namespace unilog::columnar {

namespace {

constexpr std::string_view kMagic = "RCF2";

/// FNV-1a over a byte range: the group checksum. Zone maps and
/// dictionaries live uncompressed in the header, where a flipped byte
/// would otherwise read back as silently different data (unlike the
/// compressed blobs, which usually fail Lz decoding).
uint32_t Fnv1a(std::string_view data) {
  uint32_t h = 2166136261u;
  for (unsigned char c : data) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

/// A parsed row-group header. In v2 the zone map and the dictionaries live
/// in the header, uncompressed, so group skipping touches no compressed
/// data; the dictionary entry views point into the file body and stay
/// valid for the reader's lifetime.
struct GroupHeader {
  uint64_t row_count = 0;
  int64_t min_ts = 0, max_ts = 0;
  int64_t min_uid = 0, max_uid = 0;
  std::vector<std::string_view> name_dict;
  std::vector<events::EventInitiator> init_dict;
  /// v2: checksum over the group's blob section, verified only when the
  /// group is actually scanned — a zone-map skip stays header-only.
  uint32_t blobs_checksum = 0;
  /// v2: the stored header checksum (already verified against the header
  /// bytes by ReadGroupHeader); kept so ContentFingerprint can fold the
  /// embedded checksums into a whole-file digest without re-hashing.
  uint32_t header_checksum = 0;
};

Status ReadGroupHeader(Decoder* dec, int version, GroupHeader* hdr) {
  const size_t header_begin = dec->position();
  UNILOG_RETURN_NOT_OK(dec->GetVarint64(&hdr->row_count));
  if (hdr->row_count == 0 || hdr->row_count > kMaxRowsPerGroup) {
    return Status::Corruption("rcfile: implausible row-group size");
  }
  if (version < 2) return Status::OK();
  UNILOG_RETURN_NOT_OK(dec->GetSignedVarint64(&hdr->min_ts));
  UNILOG_RETURN_NOT_OK(dec->GetSignedVarint64(&hdr->max_ts));
  UNILOG_RETURN_NOT_OK(dec->GetSignedVarint64(&hdr->min_uid));
  UNILOG_RETURN_NOT_OK(dec->GetSignedVarint64(&hdr->max_uid));
  uint64_t names = 0;
  UNILOG_RETURN_NOT_OK(dec->GetVarint64(&names));
  if (names > hdr->row_count) {
    return Status::Corruption("rcfile: dictionary larger than row group");
  }
  hdr->name_dict.resize(names);
  for (uint64_t i = 0; i < names; ++i) {
    UNILOG_RETURN_NOT_OK(dec->GetLengthPrefixed(&hdr->name_dict[i]));
  }
  uint64_t inits = 0;
  UNILOG_RETURN_NOT_OK(dec->GetVarint64(&inits));
  if (inits > 4) return Status::Corruption("rcfile: bad initiator dictionary");
  hdr->init_dict.resize(inits);
  for (uint64_t i = 0; i < inits; ++i) {
    uint64_t v = 0;
    UNILOG_RETURN_NOT_OK(dec->GetVarint64(&v));
    if (v > 3) return Status::Corruption("rcfile: bad initiator");
    hdr->init_dict[i] = static_cast<events::EventInitiator>(v);
  }
  // The uncompressed header (zone map + dictionaries) is checksummed: a
  // flipped dictionary byte must fail loudly, not read back as a
  // different event name.
  const size_t header_end = dec->position();
  uint32_t expected = 0;
  UNILOG_RETURN_NOT_OK(dec->GetVarint32(&expected));
  if (Fnv1a(dec->data().substr(header_begin, header_end - header_begin)) !=
      expected) {
    return Status::Corruption("rcfile: row-group header checksum mismatch");
  }
  hdr->header_checksum = expected;
  UNILOG_RETURN_NOT_OK(dec->GetVarint32(&hdr->blobs_checksum));
  return Status::OK();
}

/// Advances past a group's column blobs without decompressing any.
Status SkipBlobs(Decoder* dec) {
  for (int c = 0; c < kEventColumns; ++c) {
    std::string_view blob;
    UNILOG_RETURN_NOT_OK(dec->GetLengthPrefixed(&blob));
  }
  return Status::OK();
}

/// A ScanSpec with its glob patterns compiled once per scan.
struct CompiledSpec {
  explicit CompiledSpec(const ScanSpec& s) : spec(&s) {
    patterns.reserve(s.event_name_patterns.size());
    for (const auto& p : s.event_name_patterns) {
      patterns.emplace_back(p);
    }
  }

  bool NameMatches(std::string_view name) const {
    if (spec->event_names.has_value() &&
        spec->event_names->count(std::string(name)) == 0) {
      return false;
    }
    for (const auto& p : patterns) {
      if (!p.Matches(name)) return false;
    }
    return true;
  }

  const ScanSpec* spec;
  std::vector<events::EventPattern> patterns;
};

/// Per-group scratch: each needed column is decompressed at most once.
struct GroupBlobs {
  std::string_view compressed[kEventColumns];
  std::string decompressed[kEventColumns];
  bool done[kEventColumns] = {};

  Status Ensure(EventColumn column, ScanStats* stats) {
    int c = static_cast<int>(column);
    if (done[c]) return Status::OK();
    stats->bytes_decompressed += compressed[c].size();
    UNILOG_ASSIGN_OR_RETURN(decompressed[c], Lz::Decompress(compressed[c]));
    done[c] = true;
    return Status::OK();
  }
};

Status DecodeNameIds(std::string_view blob, const GroupHeader& hdr,
                     std::vector<uint32_t>* ids) {
  Decoder dec(blob);
  ids->resize(hdr.row_count);
  for (auto& id : *ids) {
    UNILOG_RETURN_NOT_OK(dec.GetVarint32(&id));
    if (id >= hdr.name_dict.size()) {
      return Status::Corruption("rcfile: event-name id out of range");
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("rcfile: column overrun");
  return Status::OK();
}

Status DecodeInt64Column(std::string_view blob, uint64_t row_count,
                         std::vector<int64_t>* values) {
  Decoder dec(blob);
  values->resize(row_count);
  for (auto& v : *values) {
    UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&v));
  }
  if (!dec.AtEnd()) return Status::Corruption("rcfile: column overrun");
  return Status::OK();
}

/// Decodes one column, assigning values only into the selected rows.
/// `out` rows for this group start at `out_base`; the k-th selected row
/// maps to (*out)[out_base + k]. Unselected values are parsed (the stream
/// is sequential) but never copied or allocated.
Status DecodeColumnSelected(std::string_view blob, EventColumn column,
                            const GroupHeader& hdr, int version,
                            const std::vector<uint8_t>& sel,
                            std::vector<events::ClientEvent>* out,
                            size_t out_base) {
  Decoder dec(blob);
  size_t k = out_base;
  for (uint64_t r = 0; r < hdr.row_count; ++r) {
    const bool keep = sel[r] != 0;
    events::ClientEvent* ev = keep ? &(*out)[k++] : nullptr;
    switch (column) {
      case EventColumn::kInitiator: {
        uint64_t v = 0;
        UNILOG_RETURN_NOT_OK(dec.GetVarint64(&v));
        if (version >= 2) {
          if (v >= hdr.init_dict.size()) {
            return Status::Corruption("rcfile: initiator id out of range");
          }
          if (keep) ev->initiator = hdr.init_dict[v];
        } else {
          if (v > 3) return Status::Corruption("rcfile: bad initiator");
          if (keep) ev->initiator = static_cast<events::EventInitiator>(v);
        }
        break;
      }
      case EventColumn::kEventName: {
        if (version >= 2) {
          uint32_t id = 0;
          UNILOG_RETURN_NOT_OK(dec.GetVarint32(&id));
          if (id >= hdr.name_dict.size()) {
            return Status::Corruption("rcfile: event-name id out of range");
          }
          if (keep) {
            ev->event_name.assign(hdr.name_dict[id].data(),
                                  hdr.name_dict[id].size());
          }
        } else {
          std::string_view sv;
          UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
          if (keep) ev->event_name.assign(sv.data(), sv.size());
        }
        break;
      }
      case EventColumn::kUserId: {
        int64_t v = 0;
        UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&v));
        if (keep) ev->user_id = v;
        break;
      }
      case EventColumn::kSessionId: {
        std::string_view sv;
        UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
        if (keep) ev->session_id.assign(sv.data(), sv.size());
        break;
      }
      case EventColumn::kIp: {
        std::string_view sv;
        UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
        if (keep) ev->ip.assign(sv.data(), sv.size());
        break;
      }
      case EventColumn::kTimestamp: {
        int64_t v = 0;
        UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&v));
        if (keep) ev->timestamp = v;
        break;
      }
      case EventColumn::kDetails: {
        uint64_t n = 0;
        UNILOG_RETURN_NOT_OK(dec.GetVarint64(&n));
        if (n > dec.remaining() / 2) {
          return Status::Corruption("rcfile: bad details count");
        }
        if (keep) {
          ev->details.clear();
          ev->details.reserve(n);
        }
        for (uint64_t i = 0; i < n; ++i) {
          std::string_view dk, dv;
          UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&dk));
          UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&dv));
          if (keep) {
            ev->details.emplace_back(std::string(dk), std::string(dv));
          }
        }
        break;
      }
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("rcfile: column overrun");
  return Status::OK();
}

/// The selection half of a group scan, shared by the event and columnar
/// materializers: header, group-level skips, blob section + checksum, and
/// the per-row selection bitmap from encoded/cheap columns. Columns
/// decoded for predicates stay cached in `name_ids` / `ts_vals` /
/// `uid_vals` so the materializer never decodes them twice.
struct GroupSelection {
  GroupHeader hdr;
  bool skipped = false;
  GroupBlobs blobs;
  std::vector<uint8_t> sel;
  std::vector<uint32_t> name_ids;
  std::vector<int64_t> ts_vals, uid_vals;
  size_t selected = 0;
};

Status SelectGroupRows(Decoder* dec, int version, const CompiledSpec& compiled,
                       GroupSelection* g, ScanStats* stats) {
  const ScanSpec& spec = *compiled.spec;
  GroupHeader& hdr = g->hdr;
  UNILOG_RETURN_NOT_OK(ReadGroupHeader(dec, version, &hdr));
  ++stats->groups_total;

  // Group-level skips, all header-only (v2; a v1 group has no zone map).
  std::vector<uint8_t> name_flags;
  if (version >= 2) {
    bool skip = false;
    if (spec.min_timestamp.has_value() && hdr.max_ts < *spec.min_timestamp) {
      skip = true;
    }
    if (spec.max_timestamp.has_value() && hdr.min_ts > *spec.max_timestamp) {
      skip = true;
    }
    if (!skip && spec.user_ids.has_value()) {
      auto it = spec.user_ids->lower_bound(hdr.min_uid);
      if (it == spec.user_ids->end() || *it > hdr.max_uid) skip = true;
    }
    bool dict_skip = false;
    if (!skip && compiled.spec->has_name_predicate()) {
      name_flags.resize(hdr.name_dict.size());
      bool any = false;
      for (size_t i = 0; i < hdr.name_dict.size(); ++i) {
        name_flags[i] = compiled.NameMatches(hdr.name_dict[i]) ? 1 : 0;
        any = any || name_flags[i] != 0;
      }
      if (!any) skip = dict_skip = true;
    }
    if (skip) {
      UNILOG_RETURN_NOT_OK(SkipBlobs(dec));
      ++stats->groups_skipped;
      stats->rows_pruned += hdr.row_count;
      if (dict_skip) stats->dict_domain_rows_pruned += hdr.row_count;
      g->skipped = true;
      return Status::OK();
    }
  }

  GroupBlobs& blobs = g->blobs;
  const size_t blobs_begin = dec->position();
  for (int c = 0; c < kEventColumns; ++c) {
    UNILOG_RETURN_NOT_OK(dec->GetLengthPrefixed(&blobs.compressed[c]));
  }
  if (version >= 2 &&
      Fnv1a(dec->data().substr(blobs_begin, dec->position() - blobs_begin)) !=
          hdr.blobs_checksum) {
    return Status::Corruption("rcfile: row-group blob checksum mismatch");
  }
  ++stats->groups_scanned;
  stats->rows_scanned += hdr.row_count;

  // Row selection on encoded / cheap columns, before materialization.
  std::vector<uint8_t>& sel = g->sel;
  sel.assign(hdr.row_count, 1);
  if (compiled.spec->has_name_predicate()) {
    UNILOG_RETURN_NOT_OK(blobs.Ensure(EventColumn::kEventName, stats));
    std::string_view blob =
        blobs.decompressed[static_cast<int>(EventColumn::kEventName)];
    if (version >= 2) {
      UNILOG_RETURN_NOT_OK(DecodeNameIds(blob, hdr, &g->name_ids));
      for (uint64_t r = 0; r < hdr.row_count; ++r) {
        if (name_flags[g->name_ids[r]] == 0) {
          sel[r] = 0;
          ++stats->dict_domain_rows_pruned;
        }
      }
    } else {
      Decoder col(blob);
      for (uint64_t r = 0; r < hdr.row_count; ++r) {
        std::string_view name;
        UNILOG_RETURN_NOT_OK(col.GetLengthPrefixed(&name));
        if (!compiled.NameMatches(name)) sel[r] = 0;
      }
      if (!col.AtEnd()) return Status::Corruption("rcfile: column overrun");
    }
  }
  if (spec.min_timestamp.has_value() || spec.max_timestamp.has_value()) {
    UNILOG_RETURN_NOT_OK(blobs.Ensure(EventColumn::kTimestamp, stats));
    UNILOG_RETURN_NOT_OK(DecodeInt64Column(
        blobs.decompressed[static_cast<int>(EventColumn::kTimestamp)],
        hdr.row_count, &g->ts_vals));
    for (uint64_t r = 0; r < hdr.row_count; ++r) {
      if (spec.min_timestamp.has_value() &&
          g->ts_vals[r] < *spec.min_timestamp) {
        sel[r] = 0;
      }
      if (spec.max_timestamp.has_value() &&
          g->ts_vals[r] > *spec.max_timestamp) {
        sel[r] = 0;
      }
    }
  }
  if (spec.user_ids.has_value()) {
    UNILOG_RETURN_NOT_OK(blobs.Ensure(EventColumn::kUserId, stats));
    UNILOG_RETURN_NOT_OK(DecodeInt64Column(
        blobs.decompressed[static_cast<int>(EventColumn::kUserId)],
        hdr.row_count, &g->uid_vals));
    for (uint64_t r = 0; r < hdr.row_count; ++r) {
      if (spec.user_ids->count(g->uid_vals[r]) == 0) sel[r] = 0;
    }
  }

  size_t selected = 0;
  for (uint64_t r = 0; r < hdr.row_count; ++r) selected += sel[r];
  g->selected = selected;
  stats->rows_pruned += hdr.row_count - selected;
  stats->rows_returned += selected;
  return Status::OK();
}

/// Scans one group at the decoder's position, leaving the decoder past it.
Status ScanOneGroup(Decoder* dec, int version, const CompiledSpec& compiled,
                    std::vector<events::ClientEvent>* out, ScanStats* stats) {
  const ScanSpec& spec = *compiled.spec;
  GroupSelection g;
  UNILOG_RETURN_NOT_OK(SelectGroupRows(dec, version, compiled, &g, stats));
  if (g.skipped) return Status::OK();
  const GroupHeader& hdr = g.hdr;

  const size_t out_base = out->size();
  out->resize(out_base + g.selected);
  if (g.selected == 0) return Status::OK();

  for (int c = 0; c < kEventColumns; ++c) {
    if ((spec.columns & (1u << c)) == 0) continue;
    auto column = static_cast<EventColumn>(c);
    // Columns already decoded for predicates are assigned from the cache.
    if (column == EventColumn::kTimestamp && !g.ts_vals.empty()) {
      size_t k = out_base;
      for (uint64_t r = 0; r < hdr.row_count; ++r) {
        if (g.sel[r]) (*out)[k++].timestamp = g.ts_vals[r];
      }
      continue;
    }
    if (column == EventColumn::kUserId && !g.uid_vals.empty()) {
      size_t k = out_base;
      for (uint64_t r = 0; r < hdr.row_count; ++r) {
        if (g.sel[r]) (*out)[k++].user_id = g.uid_vals[r];
      }
      continue;
    }
    if (column == EventColumn::kEventName && !g.name_ids.empty()) {
      size_t k = out_base;
      for (uint64_t r = 0; r < hdr.row_count; ++r) {
        if (g.sel[r]) {
          const std::string_view name = hdr.name_dict[g.name_ids[r]];
          (*out)[k++].event_name.assign(name.data(), name.size());
        }
      }
      continue;
    }
    UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
    UNILOG_RETURN_NOT_OK(
        DecodeColumnSelected(g.blobs.decompressed[c], column, hdr, version,
                             g.sel, out, out_base));
  }
  return Status::OK();
}

/// The columnar twin of ScanOneGroup: identical selection and accounting,
/// but the selected rows land in typed arrays and the dictionary-encoded
/// columns stay encoded (codes + a materialized-once dictionary).
Status ScanOneGroupColumnar(Decoder* dec, int version,
                            const CompiledSpec& compiled,
                            RcFileReader::ColumnarGroup* out,
                            ScanStats* stats) {
  const ScanSpec& spec = *compiled.spec;
  GroupSelection g;
  UNILOG_RETURN_NOT_OK(SelectGroupRows(dec, version, compiled, &g, stats));
  out->rows = g.selected;
  if (g.skipped || g.selected == 0) return Status::OK();
  const GroupHeader& hdr = g.hdr;

  for (int c = 0; c < kEventColumns; ++c) {
    if ((spec.columns & (1u << c)) == 0) continue;
    auto column = static_cast<EventColumn>(c);
    switch (column) {
      case EventColumn::kEventName: {
        if (version >= 2) {
          if (g.name_ids.empty()) {
            UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
            UNILOG_RETURN_NOT_OK(
                DecodeNameIds(g.blobs.decompressed[c], hdr, &g.name_ids));
          }
          auto dict = std::make_shared<std::vector<std::string>>();
          dict->reserve(hdr.name_dict.size());
          for (std::string_view sv : hdr.name_dict) dict->emplace_back(sv);
          out->name_codes.reserve(g.selected);
          for (uint64_t r = 0; r < hdr.row_count; ++r) {
            if (g.sel[r]) out->name_codes.push_back(g.name_ids[r]);
          }
          out->name_dict = std::move(dict);
        } else {
          UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
          Decoder col(g.blobs.decompressed[c]);
          out->name_strs.reserve(g.selected);
          for (uint64_t r = 0; r < hdr.row_count; ++r) {
            std::string_view sv;
            UNILOG_RETURN_NOT_OK(col.GetLengthPrefixed(&sv));
            if (g.sel[r]) out->name_strs.emplace_back(sv);
          }
          if (!col.AtEnd()) {
            return Status::Corruption("rcfile: column overrun");
          }
        }
        break;
      }
      case EventColumn::kInitiator: {
        UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
        Decoder col(g.blobs.decompressed[c]);
        auto dict = std::make_shared<std::vector<std::string>>();
        out->init_codes.reserve(g.selected);
        if (version >= 2) {
          dict->reserve(hdr.init_dict.size());
          for (events::EventInitiator init : hdr.init_dict) {
            dict->emplace_back(events::EventInitiatorName(init));
          }
          for (uint64_t r = 0; r < hdr.row_count; ++r) {
            uint64_t v = 0;
            UNILOG_RETURN_NOT_OK(col.GetVarint64(&v));
            if (v >= hdr.init_dict.size()) {
              return Status::Corruption("rcfile: initiator id out of range");
            }
            if (g.sel[r]) {
              out->init_codes.push_back(static_cast<uint32_t>(v));
            }
          }
        } else {
          uint32_t code_of[4] = {~0u, ~0u, ~0u, ~0u};
          for (uint64_t r = 0; r < hdr.row_count; ++r) {
            uint64_t v = 0;
            UNILOG_RETURN_NOT_OK(col.GetVarint64(&v));
            if (v > 3) return Status::Corruption("rcfile: bad initiator");
            if (!g.sel[r]) continue;
            if (code_of[v] == ~0u) {
              code_of[v] = static_cast<uint32_t>(dict->size());
              dict->emplace_back(events::EventInitiatorName(
                  static_cast<events::EventInitiator>(v)));
            }
            out->init_codes.push_back(code_of[v]);
          }
        }
        if (!col.AtEnd()) return Status::Corruption("rcfile: column overrun");
        out->init_dict = std::move(dict);
        break;
      }
      case EventColumn::kUserId: {
        if (g.uid_vals.empty()) {
          UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
          UNILOG_RETURN_NOT_OK(DecodeInt64Column(
              g.blobs.decompressed[c], hdr.row_count, &g.uid_vals));
        }
        out->user_ids.reserve(g.selected);
        for (uint64_t r = 0; r < hdr.row_count; ++r) {
          if (g.sel[r]) out->user_ids.push_back(g.uid_vals[r]);
        }
        break;
      }
      case EventColumn::kTimestamp: {
        if (g.ts_vals.empty()) {
          UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
          UNILOG_RETURN_NOT_OK(DecodeInt64Column(
              g.blobs.decompressed[c], hdr.row_count, &g.ts_vals));
        }
        out->timestamps.reserve(g.selected);
        for (uint64_t r = 0; r < hdr.row_count; ++r) {
          if (g.sel[r]) out->timestamps.push_back(g.ts_vals[r]);
        }
        break;
      }
      case EventColumn::kSessionId:
      case EventColumn::kIp: {
        UNILOG_RETURN_NOT_OK(g.blobs.Ensure(column, stats));
        Decoder col(g.blobs.decompressed[c]);
        std::vector<std::string>& dst = column == EventColumn::kSessionId
                                            ? out->session_ids
                                            : out->ips;
        dst.reserve(g.selected);
        for (uint64_t r = 0; r < hdr.row_count; ++r) {
          std::string_view sv;
          UNILOG_RETURN_NOT_OK(col.GetLengthPrefixed(&sv));
          if (g.sel[r]) dst.emplace_back(sv);
        }
        if (!col.AtEnd()) return Status::Corruption("rcfile: column overrun");
        break;
      }
      case EventColumn::kDetails:
        // Key-value pairs have no typed-array representation; the
        // relational layer never exposes the column.
        break;
    }
  }
  return Status::OK();
}

/// Encodes one column of a v1 or v2 row group. For v2, `name_ids` /
/// `init_ids` carry the per-row dictionary ids.
std::string EncodeColumn(const std::vector<events::ClientEvent>& rows,
                         EventColumn column, int version,
                         const std::vector<uint32_t>& name_ids,
                         const std::vector<uint32_t>& init_ids) {
  std::string out;
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& ev = rows[i];
    switch (column) {
      case EventColumn::kInitiator:
        if (version >= 2) {
          PutVarint32(&out, init_ids[i]);
        } else {
          PutVarint64(&out, static_cast<uint64_t>(ev.initiator));
        }
        break;
      case EventColumn::kEventName:
        if (version >= 2) {
          PutVarint32(&out, name_ids[i]);
        } else {
          PutLengthPrefixed(&out, ev.event_name);
        }
        break;
      case EventColumn::kUserId:
        PutSignedVarint64(&out, ev.user_id);
        break;
      case EventColumn::kSessionId:
        PutLengthPrefixed(&out, ev.session_id);
        break;
      case EventColumn::kIp:
        PutLengthPrefixed(&out, ev.ip);
        break;
      case EventColumn::kTimestamp:
        PutSignedVarint64(&out, ev.timestamp);
        break;
      case EventColumn::kDetails: {
        PutVarint64(&out, ev.details.size());
        for (const auto& [k, v] : ev.details) {
          PutLengthPrefixed(&out, k);
          PutLengthPrefixed(&out, v);
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace

void ScanStats::MergeFrom(const ScanStats& other) {
  groups_total += other.groups_total;
  groups_scanned += other.groups_scanned;
  groups_skipped += other.groups_skipped;
  bytes_decompressed += other.bytes_decompressed;
  rows_scanned += other.rows_scanned;
  rows_pruned += other.rows_pruned;
  rows_returned += other.rows_returned;
  dict_domain_rows_pruned += other.dict_domain_rows_pruned;
}

void ReportScanStats(const ScanStats& stats, obs::MetricsRegistry* metrics,
                     const std::string& source) {
  if (metrics == nullptr) return;
  obs::Labels labels{{"source", source}};
  metrics->GetCounter("columnar.groups_scanned", labels)
      ->Increment(stats.groups_scanned);
  metrics->GetCounter("columnar.groups_skipped", labels)
      ->Increment(stats.groups_skipped);
  metrics->GetCounter("columnar.bytes_decompressed", labels)
      ->Increment(stats.bytes_decompressed);
  metrics->GetCounter("columnar.rows_pruned", labels)
      ->Increment(stats.rows_pruned);
  metrics->GetCounter("columnar.rows_returned", labels)
      ->Increment(stats.rows_returned);
  metrics->GetCounter("columnar.dict_domain_rows_pruned", labels)
      ->Increment(stats.dict_domain_rows_pruned);
}

RowMatcher::RowMatcher(const ScanSpec& spec) : spec_(&spec) {
  patterns_.reserve(spec.event_name_patterns.size());
  for (const auto& p : spec.event_name_patterns) {
    patterns_.emplace_back(p);
  }
}

bool RowMatcher::Matches(const events::ClientEvent& event) const {
  if (spec_->min_timestamp && event.timestamp < *spec_->min_timestamp) {
    return false;
  }
  if (spec_->max_timestamp && event.timestamp > *spec_->max_timestamp) {
    return false;
  }
  if (spec_->event_names && !spec_->event_names->count(event.event_name)) {
    return false;
  }
  for (const auto& pattern : patterns_) {
    if (!pattern.Matches(event.event_name)) return false;
  }
  if (spec_->user_ids && !spec_->user_ids->count(event.user_id)) {
    return false;
  }
  return true;
}

bool IsRcFile(std::string_view data) {
  return data.size() >= kMagic.size() &&
         data.substr(0, kMagic.size()) == kMagic;
}

RcFileWriter::RcFileWriter(std::string* out, size_t rows_per_group)
    : RcFileWriter(out, RcFileWriterOptions{rows_per_group, 2}) {}

RcFileWriter::RcFileWriter(std::string* out, RcFileWriterOptions options)
    : out_(out), options_(options) {
  if (options_.rows_per_group == 0) options_.rows_per_group = 1;
  if (options_.rows_per_group > kMaxRowsPerGroup) {
    options_.rows_per_group = kMaxRowsPerGroup;
  }
}

Status RcFileWriter::Add(const events::ClientEvent& event) {
  if (finished_) {
    return Status::FailedPrecondition(
        "rcfile: Add() after Finish() would corrupt the file tail");
  }
  pending_.push_back(event);
  ++rows_written_;
  if (pending_.size() >= options_.rows_per_group) FlushGroup();
  return Status::OK();
}

void RcFileWriter::FlushGroup() {
  if (pending_.empty()) return;
  const int version = options_.format_version;

  if (version < 2) {
    PutVarint64(out_, pending_.size());
    for (int c = 0; c < kEventColumns; ++c) {
      std::string column = EncodeColumn(pending_, static_cast<EventColumn>(c),
                                        version, {}, {});
      PutLengthPrefixed(out_, Lz::Compress(column));
    }
    pending_.clear();
    return;
  }

  if (!wrote_magic_) {
    out_->append(kMagic);
    wrote_magic_ = true;
  }

  // v2 group = header | header checksum | blob checksum | blobs. The
  // header and blob sections are built in scratch buffers so each can be
  // checksummed as the exact byte range the reader will re-hash.
  std::string header;
  PutVarint64(&header, pending_.size());

  // Zone map over the group.
  int64_t min_ts = pending_[0].timestamp, max_ts = pending_[0].timestamp;
  int64_t min_uid = pending_[0].user_id, max_uid = pending_[0].user_id;
  for (const auto& ev : pending_) {
    min_ts = std::min<int64_t>(min_ts, ev.timestamp);
    max_ts = std::max<int64_t>(max_ts, ev.timestamp);
    min_uid = std::min(min_uid, ev.user_id);
    max_uid = std::max(max_uid, ev.user_id);
  }
  PutSignedVarint64(&header, min_ts);
  PutSignedVarint64(&header, max_ts);
  PutSignedVarint64(&header, min_uid);
  PutSignedVarint64(&header, max_uid);

  // Dictionaries in first-appearance order (deterministic).
  std::vector<uint32_t> name_ids, init_ids;
  std::map<std::string_view, uint32_t> name_index;
  std::vector<std::string_view> name_entries;
  name_ids.reserve(pending_.size());
  for (const auto& ev : pending_) {
    auto [it, inserted] = name_index.try_emplace(
        ev.event_name, static_cast<uint32_t>(name_entries.size()));
    if (inserted) name_entries.push_back(ev.event_name);
    name_ids.push_back(it->second);
  }
  uint32_t init_index[4] = {~0u, ~0u, ~0u, ~0u};
  std::vector<uint32_t> init_entries;
  init_ids.reserve(pending_.size());
  for (const auto& ev : pending_) {
    auto v = static_cast<uint32_t>(ev.initiator);
    if (init_index[v] == ~0u) {
      init_index[v] = static_cast<uint32_t>(init_entries.size());
      init_entries.push_back(v);
    }
    init_ids.push_back(init_index[v]);
  }
  PutVarint64(&header, name_entries.size());
  for (const auto& name : name_entries) PutLengthPrefixed(&header, name);
  PutVarint64(&header, init_entries.size());
  for (uint32_t v : init_entries) PutVarint32(&header, v);

  std::string blobs;
  for (int c = 0; c < kEventColumns; ++c) {
    std::string column = EncodeColumn(pending_, static_cast<EventColumn>(c),
                                      version, name_ids, init_ids);
    PutLengthPrefixed(&blobs, Lz::Compress(column));
  }

  out_->append(header);
  PutVarint32(out_, Fnv1a(header));
  PutVarint32(out_, Fnv1a(blobs));
  out_->append(blobs);
  pending_.clear();
}

Status RcFileWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  FlushGroup();
  return Status::OK();
}

RcFileReader::RcFileReader(std::string_view data) : data_(data) {
  if (IsRcFile(data)) {
    version_ = 2;
    body_offset_ = kMagic.size();
  }
}

Status RcFileReader::ReadAll(ColumnMask mask,
                             std::vector<events::ClientEvent>* out) {
  ScanSpec spec;
  spec.columns = mask;
  return Scan(spec, out, nullptr);
}

Status RcFileReader::Scan(const ScanSpec& spec,
                          std::vector<events::ClientEvent>* out,
                          ScanStats* stats) {
  if ((spec.columns & ~kAllColumns) != 0) {
    return Status::InvalidArgument("rcfile: column mask has unknown bits");
  }
  CompiledSpec compiled(spec);
  ScanStats local;
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  while (!dec.AtEnd()) {
    UNILOG_RETURN_NOT_OK(ScanOneGroup(&dec, version_, compiled, out, &local));
  }
  bytes_touched_ += local.bytes_decompressed;
  if (stats != nullptr) stats->MergeFrom(local);
  return Status::OK();
}

Status RcFileReader::ForEachEventName(
    const std::function<void(std::string_view)>& fn) {
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  while (!dec.AtEnd()) {
    GroupHeader hdr;
    UNILOG_RETURN_NOT_OK(ReadGroupHeader(&dec, version_, &hdr));
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view compressed;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&compressed));
      if (static_cast<EventColumn>(c) != EventColumn::kEventName) continue;
      bytes_touched_ += compressed.size();
      UNILOG_ASSIGN_OR_RETURN(std::string column, Lz::Decompress(compressed));
      if (version_ >= 2) {
        std::vector<uint32_t> ids;
        UNILOG_RETURN_NOT_OK(DecodeNameIds(column, hdr, &ids));
        for (uint32_t id : ids) fn(hdr.name_dict[id]);
      } else {
        Decoder col(column);
        for (uint64_t r = 0; r < hdr.row_count; ++r) {
          std::string_view name;
          UNILOG_RETURN_NOT_OK(col.GetLengthPrefixed(&name));
          fn(name);
        }
      }
    }
  }
  return Status::OK();
}

Result<std::vector<RcFileReader::RowGroupHandle>> RcFileReader::IndexGroups()
    const {
  std::vector<RowGroupHandle> groups;
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  while (!dec.AtEnd()) {
    RowGroupHandle handle;
    handle.offset = dec.position();
    GroupHeader hdr;
    UNILOG_RETURN_NOT_OK(ReadGroupHeader(&dec, version_, &hdr));
    handle.row_count = hdr.row_count;
    UNILOG_RETURN_NOT_OK(SkipBlobs(&dec));
    handle.byte_length = dec.position() - handle.offset;
    groups.push_back(handle);
  }
  return groups;
}

Status RcFileReader::ScanGroup(const RowGroupHandle& group,
                               const ScanSpec& spec,
                               std::vector<events::ClientEvent>* out,
                               ScanStats* stats) const {
  if ((spec.columns & ~kAllColumns) != 0) {
    return Status::InvalidArgument("rcfile: column mask has unknown bits");
  }
  CompiledSpec compiled(spec);
  ScanStats local;
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(group.offset));
  UNILOG_RETURN_NOT_OK(ScanOneGroup(&dec, version_, compiled, out, &local));
  if (stats != nullptr) stats->MergeFrom(local);
  return Status::OK();
}

Status RcFileReader::ScanGroupColumnar(const RowGroupHandle& group,
                                       const ScanSpec& spec,
                                       ColumnarGroup* out,
                                       ScanStats* stats) const {
  if ((spec.columns & ~kAllColumns) != 0) {
    return Status::InvalidArgument("rcfile: column mask has unknown bits");
  }
  CompiledSpec compiled(spec);
  ScanStats local;
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(group.offset));
  UNILOG_RETURN_NOT_OK(
      ScanOneGroupColumnar(&dec, version_, compiled, out, &local));
  if (stats != nullptr) stats->MergeFrom(local);
  return Status::OK();
}

Result<std::vector<RcFileReader::RowGroupStats>>
RcFileReader::CollectGroupStats() const {
  std::vector<RowGroupStats> out;
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  while (!dec.AtEnd()) {
    GroupHeader hdr;
    UNILOG_RETURN_NOT_OK(ReadGroupHeader(&dec, version_, &hdr));
    RowGroupStats st;
    st.row_count = hdr.row_count;
    if (version_ >= 2) {
      st.has_zone_map = true;
      st.min_timestamp = hdr.min_ts;
      st.max_timestamp = hdr.max_ts;
      st.min_user_id = hdr.min_uid;
      st.max_user_id = hdr.max_uid;
      st.event_names.reserve(hdr.name_dict.size());
      for (std::string_view sv : hdr.name_dict) st.event_names.emplace_back(sv);
      st.initiators.reserve(hdr.init_dict.size());
      for (events::EventInitiator init : hdr.init_dict) {
        st.initiators.emplace_back(events::EventInitiatorName(init));
      }
    }
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view blob;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&blob));
      st.blob_bytes += blob.size();
    }
    out.push_back(std::move(st));
  }
  return out;
}

Result<uint64_t> RcFileReader::ContentFingerprint() const {
  if (version_ < 2) {
    return Status::FailedPrecondition(
        "rcfile: v1 files carry no embedded checksums to fingerprint");
  }
  // FNV-1a over (row_count, header checksum, blob checksum) per group, in
  // file order. Header-only: SkipBlobs never touches compressed data.
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (i * 8));
      h *= 1099511628211ull;
    }
  };
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  while (!dec.AtEnd()) {
    GroupHeader hdr;
    UNILOG_RETURN_NOT_OK(ReadGroupHeader(&dec, version_, &hdr));
    UNILOG_RETURN_NOT_OK(SkipBlobs(&dec));
    mix(hdr.row_count);
    mix(hdr.header_checksum);
    mix(hdr.blobs_checksum);
  }
  return h;
}

Result<uint64_t> RcFileReader::TotalColumnBytes() const {
  Decoder dec(data_);
  UNILOG_RETURN_NOT_OK(dec.Skip(body_offset_));
  uint64_t total = 0;
  while (!dec.AtEnd()) {
    GroupHeader hdr;
    UNILOG_RETURN_NOT_OK(ReadGroupHeader(&dec, version_, &hdr));
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view compressed;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&compressed));
      total += compressed.size();
    }
  }
  return total;
}

}  // namespace unilog::columnar
