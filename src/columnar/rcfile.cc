#include "columnar/rcfile.h"

#include "common/coding.h"
#include "common/compress.h"

namespace unilog::columnar {

namespace {

/// Encodes one column of a row group as framed values.
std::string EncodeColumn(const std::vector<events::ClientEvent>& rows,
                         EventColumn column) {
  std::string out;
  for (const auto& ev : rows) {
    switch (column) {
      case EventColumn::kInitiator:
        PutVarint64(&out, static_cast<uint64_t>(ev.initiator));
        break;
      case EventColumn::kEventName:
        PutLengthPrefixed(&out, ev.event_name);
        break;
      case EventColumn::kUserId:
        PutSignedVarint64(&out, ev.user_id);
        break;
      case EventColumn::kSessionId:
        PutLengthPrefixed(&out, ev.session_id);
        break;
      case EventColumn::kIp:
        PutLengthPrefixed(&out, ev.ip);
        break;
      case EventColumn::kTimestamp:
        PutSignedVarint64(&out, ev.timestamp);
        break;
      case EventColumn::kDetails: {
        PutVarint64(&out, ev.details.size());
        for (const auto& [k, v] : ev.details) {
          PutLengthPrefixed(&out, k);
          PutLengthPrefixed(&out, v);
        }
        break;
      }
    }
  }
  return out;
}

Status DecodeColumn(std::string_view blob, EventColumn column,
                    std::vector<events::ClientEvent>* rows) {
  Decoder dec(blob);
  for (auto& ev : *rows) {
    switch (column) {
      case EventColumn::kInitiator: {
        uint64_t v;
        UNILOG_RETURN_NOT_OK(dec.GetVarint64(&v));
        if (v > 3) return Status::Corruption("rcfile: bad initiator");
        ev.initiator = static_cast<events::EventInitiator>(v);
        break;
      }
      case EventColumn::kEventName: {
        std::string_view sv;
        UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
        ev.event_name.assign(sv.data(), sv.size());
        break;
      }
      case EventColumn::kUserId:
        UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&ev.user_id));
        break;
      case EventColumn::kSessionId: {
        std::string_view sv;
        UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
        ev.session_id.assign(sv.data(), sv.size());
        break;
      }
      case EventColumn::kIp: {
        std::string_view sv;
        UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sv));
        ev.ip.assign(sv.data(), sv.size());
        break;
      }
      case EventColumn::kTimestamp:
        UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&ev.timestamp));
        break;
      case EventColumn::kDetails: {
        uint64_t n;
        UNILOG_RETURN_NOT_OK(dec.GetVarint64(&n));
        ev.details.clear();
        ev.details.reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          std::string_view k, v;
          UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&k));
          UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&v));
          ev.details.emplace_back(std::string(k), std::string(v));
        }
        break;
      }
    }
  }
  if (!dec.AtEnd()) return Status::Corruption("rcfile: column overrun");
  return Status::OK();
}

}  // namespace

RcFileWriter::RcFileWriter(std::string* out, size_t rows_per_group)
    : out_(out), rows_per_group_(rows_per_group == 0 ? 1 : rows_per_group) {}

void RcFileWriter::Add(const events::ClientEvent& event) {
  pending_.push_back(event);
  ++rows_written_;
  if (pending_.size() >= rows_per_group_) FlushGroup();
}

void RcFileWriter::FlushGroup() {
  if (pending_.empty()) return;
  PutVarint64(out_, pending_.size());
  for (int c = 0; c < kEventColumns; ++c) {
    std::string column =
        EncodeColumn(pending_, static_cast<EventColumn>(c));
    PutLengthPrefixed(out_, Lz::Compress(column));
  }
  pending_.clear();
}

void RcFileWriter::Finish() {
  if (finished_) return;
  finished_ = true;
  FlushGroup();
}

Status RcFileReader::ReadAll(ColumnMask mask,
                             std::vector<events::ClientEvent>* out) {
  Decoder dec(data_);
  while (!dec.AtEnd()) {
    uint64_t row_count;
    UNILOG_RETURN_NOT_OK(dec.GetVarint64(&row_count));
    std::vector<events::ClientEvent> rows(row_count);
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view compressed;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&compressed));
      if ((mask & (1u << c)) == 0) continue;  // skip without decompressing
      bytes_touched_ += compressed.size();
      UNILOG_ASSIGN_OR_RETURN(std::string column, Lz::Decompress(compressed));
      UNILOG_RETURN_NOT_OK(
          DecodeColumn(column, static_cast<EventColumn>(c), &rows));
    }
    for (auto& row : rows) out->push_back(std::move(row));
  }
  return Status::OK();
}

Status RcFileReader::ForEachEventName(
    const std::function<void(std::string_view)>& fn) {
  Decoder dec(data_);
  while (!dec.AtEnd()) {
    uint64_t row_count;
    UNILOG_RETURN_NOT_OK(dec.GetVarint64(&row_count));
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view compressed;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&compressed));
      if (static_cast<EventColumn>(c) != EventColumn::kEventName) continue;
      bytes_touched_ += compressed.size();
      UNILOG_ASSIGN_OR_RETURN(std::string column, Lz::Decompress(compressed));
      Decoder col(column);
      for (uint64_t r = 0; r < row_count; ++r) {
        std::string_view name;
        UNILOG_RETURN_NOT_OK(col.GetLengthPrefixed(&name));
        fn(name);
      }
    }
  }
  return Status::OK();
}

Result<uint64_t> RcFileReader::TotalColumnBytes() const {
  Decoder dec(data_);
  uint64_t total = 0;
  while (!dec.AtEnd()) {
    uint64_t row_count;
    UNILOG_RETURN_NOT_OK(dec.GetVarint64(&row_count));
    (void)row_count;
    for (int c = 0; c < kEventColumns; ++c) {
      std::string_view compressed;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&compressed));
      total += compressed.size();
    }
  }
  return total;
}

}  // namespace unilog::columnar
