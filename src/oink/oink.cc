#include "oink/oink.h"

namespace unilog::oink {

Status Oink::RegisterJob(JobSpec spec) {
  if (started_) {
    return Status::FailedPrecondition("cannot register after Start");
  }
  if (spec.name.empty()) return Status::InvalidArgument("job needs a name");
  if (spec.period <= 0) return Status::InvalidArgument("period must be > 0");
  if (!spec.run) return Status::InvalidArgument("job needs a run function");
  if (job_index_.count(spec.name)) {
    return Status::AlreadyExists("job already registered: " + spec.name);
  }
  for (const auto& dep : spec.dependencies) {
    if (dep == spec.name) {
      return Status::InvalidArgument("job depends on itself: " + spec.name);
    }
    if (!job_index_.count(dep)) {
      return Status::NotFound("unknown dependency '" + dep + "' of job '" +
                              spec.name + "' (register dependencies first)");
    }
  }
  job_index_.emplace(spec.name, jobs_.size());
  jobs_.push_back(std::move(spec));
  return Status::OK();
}

void Oink::Start(TimeMs epoch) {
  if (started_) return;
  started_ = true;
  epoch_ = epoch;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    ScheduleJob(i, epoch, /*attempt=*/1);
  }
}

void Oink::ScheduleJob(size_t job_index, TimeMs period_start, int attempt) {
  const JobSpec& spec = jobs_[job_index];
  // First attempt fires once the period has closed (plus start delay);
  // retries fire retry_interval later than "now".
  TimeMs when = attempt == 1
                    ? period_start + spec.period + spec.start_delay
                    : sim_->Now() + spec.retry_interval;
  sim_->At(when, [this, job_index, period_start, attempt]() {
    TryRun(job_index, period_start, attempt);
  });
}

void Oink::TryRun(size_t job_index, TimeMs period_start, int attempt) {
  const JobSpec& spec = jobs_[job_index];

  // Dependency gate: every dependency must have completed this period.
  for (const auto& dep : spec.dependencies) {
    if (!completed_.count({dep, period_start})) {
      ++dependency_waits_;
      if (spec.max_attempts == 0 || attempt < spec.max_attempts) {
        ScheduleJob(job_index, period_start, attempt + 1);
      }
      return;
    }
  }

  ExecutionTrace trace;
  trace.job = spec.name;
  trace.period_start = period_start;
  trace.started_at = sim_->Now();
  Status st = spec.run(period_start);
  trace.finished_at = sim_->Now();
  trace.success = st.ok();
  trace.message = st.ok() ? "" : st.ToString();
  traces_.push_back(trace);

  if (st.ok()) {
    ++runs_succeeded_;
    completed_.insert({spec.name, period_start});
    // Schedule the next period.
    ScheduleJob(job_index, period_start + spec.period, /*attempt=*/1);
  } else {
    ++runs_failed_;
    if (spec.max_attempts == 0 || attempt < spec.max_attempts) {
      ScheduleJob(job_index, period_start, attempt + 1);
    } else {
      // Exhausted: give up on this period, move to the next one.
      ScheduleJob(job_index, period_start + spec.period, /*attempt=*/1);
    }
  }
}

bool Oink::Completed(const std::string& job, TimeMs period_start) const {
  return completed_.count({job, period_start}) > 0;
}

std::vector<ExecutionTrace> Oink::TracesFor(const std::string& job) const {
  std::vector<ExecutionTrace> out;
  for (const auto& trace : traces_) {
    if (trace.job == job) out.push_back(trace);
  }
  return out;
}

}  // namespace unilog::oink
