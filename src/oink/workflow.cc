#include "oink/workflow.h"

#include <algorithm>
#include <utility>

#include "columnar/rcfile.h"
#include "dataflow/plan_fingerprint.h"
#include "dataflow/relation_serde.h"

namespace unilog::oink {

namespace {

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Type-tagged literal token for the canonical plan text; strings are
/// length-prefixed so no literal can collide with another's serialization.
std::string LiteralToken(const dataflow::Value& v) {
  if (v.is_int()) return "i:" + std::to_string(v.int_value());
  if (v.is_bool()) return std::string("b:") + (v.bool_value() ? "1" : "0");
  if (v.is_real()) {
    uint64_t bits = 0;
    double d = v.real_value();
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    return "r:" + HexU64(bits);
  }
  const std::string& s = v.str_value();
  return "s:" + std::to_string(s.size()) + ":" + s;
}

bool IsResidualOp(const std::string& op) {
  return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

bool EvalClause(const dataflow::Value& v, const std::string& op,
                const dataflow::Value& lit) {
  if (op == "==") return v == lit;
  if (op == "!=") return !(v == lit);
  if (op == "<") return v < lit;
  if (op == "<=") return !(lit < v);
  if (op == ">") return lit < v;
  return !(v < lit);  // >=
}

}  // namespace

WorkflowEngine::WorkflowEngine(hdfs::MiniHdfs* fs, OinkOptions options,
                               obs::MetricsRegistry* metrics,
                               exec::Executor* exec)
    : fs_(fs),
      options_(std::move(options)),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      exec_(exec),
      cache_(fs,
             ArtifactCacheOptions{options_.cache_root,
                                  options_.cache_byte_budget},
             metrics_) {
  workflows_run_ = metrics_->GetCounter("oink.workflows_run");
  bytes_saved_ = metrics_->GetCounter("oink.bytes_saved");
  shared_scans_ = metrics_->GetCounter("oink.shared_scans");
  shared_scan_fanout_ = metrics_->GetCounter("oink.shared_scan_fanout");
  scan_bytes_ = metrics_->GetCounter("oink.scan_bytes_decompressed");
  verified_hits_ = metrics_->GetCounter("oink.verified_hits");
  stats_cache_hits_ = metrics_->GetCounter("oink.stats_cache_hits");
  stats_cache_misses_ = metrics_->GetCounter("oink.stats_cache_misses");
}

Status WorkflowEngine::AddWorkflow(WorkflowSpec spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("oink workflow: name required");
  }
  if (by_name_.count(spec.name) != 0) {
    return Status::AlreadyExists("oink workflow: duplicate name " + spec.name);
  }
  if (!spec.input_dir) {
    return Status::InvalidArgument("oink workflow " + spec.name +
                                   ": input_dir required");
  }
  if (spec.project_cols.size() != spec.project_names.size()) {
    return Status::InvalidArgument("oink workflow " + spec.name +
                                   ": projection arity mismatch");
  }
  if (spec.stage && spec.stage_id.empty()) {
    return Status::InvalidArgument(
        "oink workflow " + spec.name +
        ": stage requires a stage_id (its cache-key identity)");
  }

  // Dry-run the plan against a plan-only scan. This both validates it and
  // yields the exact spec/visible state the canonical serialization (and
  // later the real scan build) will have.
  auto scan = dataflow::ColumnarEventScan::PlanOnly();
  Planned planned;
  planned.spec = std::move(spec);
  const WorkflowSpec& wf = planned.spec;
  for (const auto& clause : wf.filters) {
    if (scan->PushFilter(clause.column, clause.op, clause.literal)) continue;
    // Residual clause: must be evaluable row-wise on the scan output.
    bool known = std::find(scan->columns().begin(), scan->columns().end(),
                           clause.column) != scan->columns().end();
    if (!known) {
      return Status::InvalidArgument("oink workflow " + wf.name +
                                     ": unknown filter column " +
                                     clause.column);
    }
    if (!IsResidualOp(clause.op)) {
      return Status::InvalidArgument("oink workflow " + wf.name +
                                     ": unsupported filter op " + clause.op +
                                     " on column " + clause.column);
    }
    planned.residuals.push_back(clause);
  }
  // Residual clauses are conjunctive, so their order never affects
  // results; sort them canonically so two workflows differing only in
  // filter registration order share one canonical plan (and one cache
  // key), and planner reorderings at execution time can never leak into
  // the fingerprint.
  std::stable_sort(planned.residuals.begin(), planned.residuals.end(),
                   [](const FilterClause& a, const FilterClause& b) {
                     return a.column + " " + a.op + " " +
                                LiteralToken(a.literal) <
                            b.column + " " + b.op + " " +
                                LiteralToken(b.literal);
                   });
  if (!wf.project_cols.empty()) {
    for (const auto& col : wf.project_cols) {
      bool known = std::find(scan->columns().begin(), scan->columns().end(),
                             col) != scan->columns().end();
      if (!known) {
        return Status::InvalidArgument("oink workflow " + wf.name +
                                       ": unknown projected column " + col);
      }
    }
    // Residual clauses read scan-output columns, so the scan stays
    // unprojected when any exist and the projection runs afterwards.
    if (planned.residuals.empty()) {
      if (!scan->PushProject(wf.project_cols, wf.project_names)) {
        return Status::InvalidArgument("oink workflow " + wf.name +
                                       ": projection not pushable");
      }
      planned.projection_pushed = true;
    }
  }

  std::string plan = "spec=" + dataflow::CanonicalScanSpec(scan->spec());
  plan += "\nvisible=";
  for (const auto& [name, source] : scan->visible()) {
    plan += name + ":" + std::to_string(static_cast<int>(source)) + ",";
  }
  plan += "\nresiduals=";
  if (planned.residuals.empty()) {
    plan += "-";
  } else {
    for (const auto& clause : planned.residuals) {
      plan += clause.column + " " + clause.op + " " +
              LiteralToken(clause.literal) + ";";
    }
  }
  plan += "\nlate_project=";
  if (planned.projection_pushed || wf.project_cols.empty()) {
    plan += "-";
  } else {
    for (size_t i = 0; i < wf.project_cols.size(); ++i) {
      plan += wf.project_cols[i] + "->" + wf.project_names[i] + ",";
    }
  }
  plan += "\nstage=" + (wf.stage ? wf.stage_id : std::string("-"));
  planned.canonical_plan = std::move(plan);

  by_name_[wf.name] = workflows_.size();
  workflows_.push_back(std::move(planned));
  return Status::OK();
}

std::shared_ptr<dataflow::ColumnarEventScan> WorkflowEngine::BuildScan(
    const std::shared_ptr<dataflow::ColumnarEventScan>& base,
    const Planned& plan) const {
  auto scan = std::static_pointer_cast<dataflow::ColumnarEventScan>(
      base->Clone());
  for (const auto& clause : plan.spec.filters) {
    // Pushability depends only on the clause, so the outcome here matches
    // the AddWorkflow dry run; rejected clauses are plan.residuals.
    scan->PushFilter(clause.column, clause.op, clause.literal);
  }
  if (plan.projection_pushed) {
    scan->PushProject(plan.spec.project_cols, plan.spec.project_names);
  }
  return scan;
}

Result<dataflow::Relation> WorkflowEngine::FinishPlan(
    const Planned& plan, dataflow::Relation rel) const {
  for (const auto& clause : plan.residuals) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, rel.ColumnIndex(clause.column));
    rel = rel.Filter(
        [&clause, idx](const dataflow::Row& row) {
          return EvalClause(row[idx], clause.op, clause.literal);
        },
        exec_);
  }
  if (!plan.projection_pushed && !plan.spec.project_cols.empty()) {
    UNILOG_ASSIGN_OR_RETURN(dataflow::Relation projected,
                            rel.Project(plan.spec.project_cols, exec_));
    UNILOG_ASSIGN_OR_RETURN(
        rel, dataflow::Relation::FromRows(
                 plan.spec.project_names,
                 std::vector<dataflow::Row>(projected.rows())));
  }
  if (plan.spec.stage) {
    UNILOG_ASSIGN_OR_RETURN(rel, plan.spec.stage(rel));
  }
  return rel;
}

Result<dataflow::Relation> WorkflowEngine::FinishPlanBatch(
    const Planned& plan, dataflow::BatchRelation batch,
    const dataflow::TableStats& stats,
    std::vector<dataflow::FilterExpr> filters) const {
  for (const auto& clause : plan.residuals) {
    filters.push_back({clause.column, clause.op, clause.literal});
  }
  if (options_.enable_planner && filters.size() > 1) {
    filters = dataflow::OrderFilters(stats, std::move(filters));
  }
  if (!filters.empty()) {
    UNILOG_ASSIGN_OR_RETURN(batch, batch.Filter(filters, exec_));
  }
  if (!plan.projection_pushed && !plan.spec.project_cols.empty()) {
    UNILOG_ASSIGN_OR_RETURN(
        batch, batch.ProjectAs(plan.spec.project_cols, plan.spec.project_names,
                               exec_));
  }
  UNILOG_ASSIGN_OR_RETURN(dataflow::Relation rel, batch.ToRelation());
  if (plan.spec.stage) {
    UNILOG_ASSIGN_OR_RETURN(rel, plan.spec.stage(rel));
  }
  return rel;
}

Result<std::string> WorkflowEngine::DirManifest(const hdfs::MiniHdfs* fs,
                                                const std::string& dir) {
  UNILOG_ASSIGN_OR_RETURN(auto listing, fs->ListRecursive(dir));
  std::string out = "manifest-v1\n";
  for (const auto& entry : listing) {
    if (dataflow::IsHiddenWarehousePath(dir, entry.path)) continue;
    out += entry.path;
    out += ' ';
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs->ReadFile(entry.path));
    bool fingerprinted = false;
    if (columnar::IsRcFile(body)) {
      columnar::RcFileReader reader(body);
      Result<uint64_t> fp = reader.ContentFingerprint();
      if (fp.ok()) {
        out += "rcfp:" + HexU64(*fp);
        fingerprinted = true;
      } else if (!fp.status().IsFailedPrecondition()) {
        // v1 files legitimately lack checksums (size+mtime below); any
        // other failure is real corruption the scan would also hit.
        return fp.status();
      }
    }
    if (!fingerprinted) {
      out += "szmt:" + std::to_string(entry.size) + ":" +
             std::to_string(entry.mtime);
    }
    out += '\n';
  }
  return out;
}

Status WorkflowEngine::RunTick(int64_t period_index) {
  last_tick_ = TickStats{};
  explain_.clear();

  std::map<std::string, std::vector<size_t>> by_dir;
  for (size_t i = 0; i < workflows_.size(); ++i) {
    by_dir[workflows_[i].spec.input_dir(period_index)].push_back(i);
  }

  for (const auto& [dir, idxs] : by_dir) {
    UNILOG_ASSIGN_OR_RETURN(std::string manifest, DirManifest(fs_, dir));
    if (options_.explain) {
      explain_.push_back("[oink t=" + std::to_string(period_index) + "] dir=" +
                         dir + " manifest_fp=" +
                         HexU64(dataflow::Fingerprint::OfBytes(manifest)) +
                         " workflows=" + std::to_string(idxs.size()));
    }

    // Identical (plan, inputs) fingerprints collapse to one computation;
    // sorted by key, so tick order is deterministic.
    std::map<std::string, std::vector<size_t>> by_key;
    for (size_t i : idxs) {
      dataflow::Fingerprint fp;
      fp.Mix("oink-plan-v1\n");
      fp.Mix(workflows_[i].canonical_plan);
      fp.Mix("\n#inputs\n");
      fp.Mix(manifest);
      by_key[fp.Hex()].push_back(i);
    }

    struct Pending {
      std::string key;
      std::vector<size_t> members;
      /// Set when this is a verify_cache recomputation of a hit: the
      /// cached serialized bytes the recomputation must reproduce.
      std::optional<std::string> verify_against;
    };
    std::vector<Pending> pending;

    for (const auto& [key, members] : by_key) {
      last_tick_.workflows += members.size();
      workflows_run_->Increment(members.size());
      if (!options_.enable_cache) {
        pending.push_back({key, members, std::nullopt});
        continue;
      }
      Result<CacheArtifact> got = cache_.Get(key, manifest);
      if (got.ok()) {
        UNILOG_ASSIGN_OR_RETURN(dataflow::Relation rel,
                                dataflow::DeserializeRelation(got->payload));
        last_tick_.cache_hits++;
        last_tick_.bytes_saved += got->cold_cost_bytes;
        bytes_saved_->Increment(got->cold_cost_bytes);
        for (size_t m : members) {
          results_[workflows_[m].spec.name] = rel;
          if (options_.explain) {
            explain_.push_back("[oink] " + workflows_[m].spec.name + " key=" +
                               key + " HIT saved=" +
                               std::to_string(got->cold_cost_bytes));
          }
        }
        if (options_.verify_cache) {
          pending.push_back({key, members, std::move(got->payload)});
        }
        continue;
      }
      if (!got.status().IsNotFound()) return got.status();
      last_tick_.cache_misses++;
      if (options_.explain) {
        for (size_t m : members) {
          explain_.push_back("[oink] " + workflows_[m].spec.name + " key=" +
                             key + " MISS");
        }
      }
      pending.push_back({key, members, std::nullopt});
    }
    if (pending.empty()) continue;

    UNILOG_ASSIGN_OR_RETURN(
        auto base, dataflow::ColumnarEventScan::Open(fs_, dir, metrics_));

    const bool batch_mode = options_.use_batch_engine;
    const bool shared =
        options_.enable_shared_scans && pending.size() >= 2;
    // Planner statistics are header-only (v2 zone maps + dictionaries,
    // nothing decompressed), collected once per directory.
    dataflow::TableStats table_stats;
    if (batch_mode && options_.enable_planner) {
      const dataflow::TableStatsCache::CacheStats before = stats_cache_.stats();
      UNILOG_ASSIGN_OR_RETURN(table_stats, base->Stats(&stats_cache_));
      const dataflow::TableStatsCache::CacheStats after = stats_cache_.stats();
      const uint64_t hits = (after.stat_hits - before.stat_hits) +
                            (after.content_hits - before.content_hits);
      const uint64_t misses = after.misses - before.misses;
      last_tick_.stats_cache_hits += hits;
      last_tick_.stats_cache_misses += misses;
      stats_cache_hits_->Increment(hits);
      stats_cache_misses_->Increment(misses);
    }

    std::vector<std::shared_ptr<dataflow::ColumnarEventScan>> scans;
    scans.reserve(pending.size());
    // Per-pending clauses the batch Filter kernel must run because the
    // planner chose an eager scan (empty under pushdown).
    std::vector<std::vector<dataflow::FilterExpr>> eager_filters(
        pending.size());
    for (size_t pi = 0; pi < pending.size(); ++pi) {
      const Planned& plan = workflows_[pending[pi].members[0]];
      if (batch_mode && options_.enable_planner && !shared &&
          !plan.projection_pushed && !plan.spec.filters.empty()) {
        // Cost the pushdown the scan would do (the clauses PushFilter
        // absorbs, mirrored against a plan-only probe) against decoding
        // everything and filtering in the batch kernel. Eager is only
        // legal when the projection stays late (every filter column is
        // still visible to the kernel).
        auto probe = dataflow::ColumnarEventScan::PlanOnly();
        std::vector<dataflow::FilterExpr> pushed;
        for (const auto& clause : plan.spec.filters) {
          if (probe->PushFilter(clause.column, clause.op, clause.literal)) {
            pushed.push_back({clause.column, clause.op, clause.literal});
          }
        }
        if (!pushed.empty()) {
          dataflow::ScanPlan sp = dataflow::PlanScan(
              table_stats, pushed, dataflow::JobCostModel{});
          if (options_.explain) {
            explain_.push_back(
                "[oink] " + plan.spec.name + " scan=" +
                (sp.strategy == dataflow::ScanStrategy::kEager ? "eager"
                                                               : "pushdown") +
                " sel=" + std::to_string(sp.selectivity) +
                " pushdown_ms=" + std::to_string(sp.pushdown_ms) +
                " eager_ms=" + std::to_string(sp.eager_ms));
          }
          if (sp.strategy == dataflow::ScanStrategy::kEager) {
            // Scan unfiltered; every clause (pushable or residual) runs
            // in the batch kernel instead. Same rows, same bytes out.
            scans.push_back(
                std::static_pointer_cast<dataflow::ColumnarEventScan>(
                    base->Clone()));
            for (const auto& clause : plan.spec.filters) {
              bool residual = std::any_of(
                  plan.residuals.begin(), plan.residuals.end(),
                  [&clause](const FilterClause& r) {
                    return r.column == clause.column && r.op == clause.op &&
                           LiteralToken(r.literal) ==
                               LiteralToken(clause.literal);
                  });
              if (!residual) {
                eager_filters[pi].push_back(
                    {clause.column, clause.op, clause.literal});
              }
            }
            continue;
          }
        }
      }
      scans.push_back(BuildScan(base, plan));
    }

    std::vector<dataflow::Relation> scanned;
    std::vector<dataflow::BatchRelation> scanned_batches;
    std::vector<uint64_t> costs(pending.size(), 0);
    columnar::ScanStats scan_stats;
    if (shared) {
      if (batch_mode) {
        UNILOG_ASSIGN_OR_RETURN(
            scanned_batches, dataflow::ColumnarEventScan::
                                 MaterializeSharedBatches(scans, exec_,
                                                          &scan_stats));
      } else {
        UNILOG_ASSIGN_OR_RETURN(
            scanned, dataflow::ColumnarEventScan::MaterializeShared(
                         scans, exec_, &scan_stats));
      }
      // The union scan's bytes are shared work: attribute an even split to
      // each plan, so warm bytes_saved over all of them sums to the total.
      for (auto& c : costs) c = scan_stats.bytes_decompressed / costs.size();
      last_tick_.shared_scan_groups++;
      last_tick_.shared_scan_fanout += scans.size();
      shared_scans_->Increment();
      shared_scan_fanout_->Increment(scans.size());
      if (options_.explain) {
        explain_.push_back(
            "[oink] shared-scan dir=" + dir + " fanout=" +
            std::to_string(scans.size()) + " bytes_decompressed=" +
            std::to_string(scan_stats.bytes_decompressed));
      }
    } else {
      for (size_t i = 0; i < scans.size(); ++i) {
        if (batch_mode) {
          UNILOG_ASSIGN_OR_RETURN(dataflow::BatchRelation rel,
                                  scans[i]->MaterializeBatches(exec_));
          scanned_batches.push_back(std::move(rel));
        } else {
          UNILOG_ASSIGN_OR_RETURN(dataflow::Relation rel,
                                  scans[i]->Materialize(exec_));
          scanned.push_back(std::move(rel));
        }
        costs[i] = scans[i]->last_stats().bytes_decompressed;
        scan_stats.MergeFrom(scans[i]->last_stats());
      }
    }
    last_tick_.scan_bytes_decompressed += scan_stats.bytes_decompressed;
    scan_bytes_->Increment(scan_stats.bytes_decompressed);

    for (size_t pi = 0; pi < pending.size(); ++pi) {
      Pending& p = pending[pi];
      const Planned& plan = workflows_[p.members[0]];
      dataflow::Relation rel;
      if (batch_mode) {
        UNILOG_ASSIGN_OR_RETURN(
            rel, FinishPlanBatch(plan, std::move(scanned_batches[pi]),
                                 table_stats, std::move(eager_filters[pi])));
      } else {
        UNILOG_ASSIGN_OR_RETURN(rel, FinishPlan(plan, std::move(scanned[pi])));
      }
      std::string serialized = dataflow::SerializeRelation(rel);
      if (p.verify_against.has_value()) {
        if (serialized != *p.verify_against) {
          return Status::Internal(
              "oink verify_cache: cached result for '" + plan.spec.name +
              "' (key " + p.key +
              ") diverges from recomputation — plan under-keyed or cache "
              "corrupt");
        }
        last_tick_.verified_hits++;
        verified_hits_->Increment();
        if (options_.explain) {
          explain_.push_back("[oink] " + plan.spec.name + " key=" + p.key +
                             " VERIFIED");
        }
        continue;
      }
      for (size_t m : p.members) {
        results_[workflows_[m].spec.name] = rel;
      }
      if (options_.enable_cache) {
        CacheArtifact artifact;
        artifact.manifest = manifest;
        artifact.cold_cost_bytes = costs[pi];
        artifact.payload = std::move(serialized);
        UNILOG_RETURN_NOT_OK(cache_.Put(p.key, artifact));
      }
    }
  }
  return Status::OK();
}

Result<dataflow::Relation> WorkflowEngine::ResultFor(
    const std::string& name) const {
  auto it = results_.find(name);
  if (it == results_.end()) {
    return Status::NotFound("oink workflow: no result yet for " + name);
  }
  return it->second;
}

Result<std::string> WorkflowEngine::CanonicalPlanFor(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("oink workflow: unknown workflow " + name);
  }
  return workflows_[it->second].canonical_plan;
}

Status RegisterEngineJob(Oink* oink, WorkflowEngine* engine, JobSpec spec) {
  if (spec.period <= 0) {
    return Status::InvalidArgument("oink engine job: period must be positive");
  }
  const TimeMs period = spec.period;
  spec.run = [engine, period](TimeMs period_start) {
    return engine->RunTick(static_cast<int64_t>(period_start / period));
  };
  return oink->RegisterJob(std::move(spec));
}

}  // namespace unilog::oink
