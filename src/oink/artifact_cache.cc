#include "oink/artifact_cache.h"

#include <algorithm>

#include "common/coding.h"
#include "common/compress.h"
#include "dataflow/plan_fingerprint.h"

namespace unilog::oink {

namespace {
constexpr std::string_view kMagic = "OKC1";
}  // namespace

ArtifactCache::ArtifactCache(hdfs::MiniHdfs* fs, ArtifactCacheOptions options,
                             obs::MetricsRegistry* metrics)
    : fs_(fs), options_(std::move(options)), metrics_(metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  hits_ = metrics_->GetCounter("oink.cache_hits");
  misses_ = metrics_->GetCounter("oink.cache_misses");
  evictions_ = metrics_->GetCounter("oink.cache_evictions");
  corrupt_ = metrics_->GetCounter("oink.cache_corrupt");
  stale_ = metrics_->GetCounter("oink.cache_stale");
  bytes_gauge_ = metrics_->GetGauge("oink.cache_bytes");
}

std::string ArtifactCache::PathFor(const std::string& key) const {
  return options_.root + "/" + key + ".okc";
}

Status ArtifactCache::EnsureLoaded() {
  if (loaded_) return Status::OK();
  loaded_ = true;
  if (!fs_->IsDir(options_.root)) return Status::OK();
  UNILOG_ASSIGN_OR_RETURN(auto listing, fs_->ListRecursive(options_.root));
  // Listing order is lexicographic, not recency — close enough for a
  // rebuilt LRU seed; real use order reasserts itself as probes Touch.
  for (const auto& entry : listing) {
    size_t slash = entry.path.rfind('/');
    std::string base = entry.path.substr(slash + 1);
    if (base.size() <= 4 || base.substr(base.size() - 4) != ".okc") continue;
    Insert(base.substr(0, base.size() - 4), entry.size);
  }
  return Status::OK();
}

void ArtifactCache::Touch(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.splice(lru_.end(), lru_, it->second.lru_pos);
}

void ArtifactCache::Insert(const std::string& key, uint64_t size) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    resident_bytes_b_ -= it->second.size;
    it->second.size = size;
    resident_bytes_b_ += size;
    lru_.splice(lru_.end(), lru_, it->second.lru_pos);
  } else {
    lru_.push_back(key);
    entries_[key] = Entry{size, std::prev(lru_.end())};
    resident_bytes_b_ += size;
  }
  bytes_gauge_->Set(static_cast<int64_t>(resident_bytes_b_));
}

void ArtifactCache::Forget(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  resident_bytes_b_ -= it->second.size;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  bytes_gauge_->Set(static_cast<int64_t>(resident_bytes_b_));
}

Status ArtifactCache::DropDegraded(const std::string& key,
                                   obs::Counter* reason) {
  reason->Increment();
  misses_->Increment();
  Forget(key);
  if (fs_->Exists(PathFor(key))) {
    UNILOG_RETURN_NOT_OK(fs_->Delete(PathFor(key)));
  }
  return Status::NotFound("oink cache: entry dropped");
}

Result<CacheArtifact> ArtifactCache::Get(const std::string& key,
                                         const std::string& expected_manifest) {
  UNILOG_RETURN_NOT_OK(EnsureLoaded());
  const std::string path = PathFor(key);
  if (!fs_->Exists(path)) {
    misses_->Increment();
    return Status::NotFound("oink cache: no entry");
  }
  UNILOG_ASSIGN_OR_RETURN(std::string raw, fs_->ReadFile(path));

  Decoder dec(raw);
  std::string_view magic;
  uint64_t stored_total_fnv = 0;
  if (!dec.GetBytes(kMagic.size(), &magic).ok() || magic != kMagic ||
      !dec.GetVarint64(&stored_total_fnv).ok()) {
    return DropDegraded(key, corrupt_);
  }
  std::string_view remainder = raw;
  remainder.remove_prefix(dec.position());
  if (dataflow::Fingerprint::OfBytes(remainder) != stored_total_fnv) {
    return DropDegraded(key, corrupt_);
  }

  uint64_t payload_fnv = 0;
  CacheArtifact artifact;
  std::string_view manifest, compressed;
  if (!dec.GetVarint64(&payload_fnv).ok() ||
      !dec.GetVarint64(&artifact.cold_cost_bytes).ok() ||
      !dec.GetLengthPrefixed(&manifest).ok() ||
      !dec.GetLengthPrefixed(&compressed).ok() || !dec.AtEnd()) {
    return DropDegraded(key, corrupt_);
  }
  if (manifest != expected_manifest) {
    // The plan would read different bytes now than when this was cached
    // (e.g. a late part landed in the hour). Recompute, never serve stale.
    return DropDegraded(key, stale_);
  }
  Result<std::string> payload = Lz::Decompress(compressed);
  if (!payload.ok() ||
      dataflow::Fingerprint::OfBytes(*payload) != payload_fnv) {
    return DropDegraded(key, corrupt_);
  }

  artifact.manifest = std::string(manifest);
  artifact.payload = std::move(*payload);
  Touch(key);
  hits_->Increment();
  return artifact;
}

Status ArtifactCache::Put(const std::string& key,
                          const CacheArtifact& artifact) {
  UNILOG_RETURN_NOT_OK(EnsureLoaded());

  std::string body;
  PutVarint64(&body, dataflow::Fingerprint::OfBytes(artifact.payload));
  PutVarint64(&body, artifact.cold_cost_bytes);
  PutLengthPrefixed(&body, artifact.manifest);
  PutLengthPrefixed(&body, Lz::Compress(artifact.payload));

  std::string file;
  file.reserve(kMagic.size() + 10 + body.size());
  file.append(kMagic);
  PutVarint64(&file, dataflow::Fingerprint::OfBytes(body));
  file.append(body);

  const std::string path = PathFor(key);
  if (fs_->Exists(path)) {
    UNILOG_RETURN_NOT_OK(fs_->Delete(path));
  }
  UNILOG_RETURN_NOT_OK(fs_->WriteFile(path, file));
  Insert(key, file.size());

  // Budget enforcement; the entry just written is at the MRU end and so
  // survives unless it alone exceeds the whole budget.
  while (options_.byte_budget > 0 && resident_bytes_b_ > options_.byte_budget &&
         lru_.size() > 1) {
    const std::string victim = lru_.front();
    Forget(victim);
    if (fs_->Exists(PathFor(victim))) {
      UNILOG_RETURN_NOT_OK(fs_->Delete(PathFor(victim)));
    }
    evictions_->Increment();
  }
  return Status::OK();
}

Status ArtifactCache::Evict(const std::string& key) {
  UNILOG_RETURN_NOT_OK(EnsureLoaded());
  if (entries_.count(key) == 0 && !fs_->Exists(PathFor(key))) {
    return Status::OK();
  }
  Forget(key);
  if (fs_->Exists(PathFor(key))) {
    UNILOG_RETURN_NOT_OK(fs_->Delete(PathFor(key)));
  }
  evictions_->Increment();
  return Status::OK();
}

}  // namespace unilog::oink
