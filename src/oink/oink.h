#ifndef UNILOG_OINK_OINK_H_
#define UNILOG_OINK_OINK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "sim/simulator.h"

namespace unilog::oink {

/// Declaration of a recurring analytics job (§3: "Oink... schedules
/// recurring jobs at fixed intervals... handles dataflow dependencies
/// between jobs... preserves execution traces for audit purposes").
struct JobSpec {
  std::string name;
  /// Recurrence period (e.g. hourly, daily). Periods are aligned to
  /// multiples of `period` from the scheduler's epoch.
  TimeMs period = kMillisPerDay;
  /// Jobs (same period grid) whose current-period run must have succeeded
  /// before this job runs.
  std::vector<std::string> dependencies;
  /// The work. Receives the period start; a non-OK return is recorded and
  /// retried.
  std::function<Status(TimeMs period_start)> run;
  /// Delay after the period closes before the job is eligible.
  TimeMs start_delay = kMillisPerMinute;
  /// Retry interval after a failure or unmet dependency.
  TimeMs retry_interval = 5 * kMillisPerMinute;
  /// Give up after this many failed attempts per period (0 = unlimited).
  int max_attempts = 0;
};

/// One audit-trail record: "when a job began, how long it lasted, whether
/// it completed successfully".
struct ExecutionTrace {
  std::string job;
  TimeMs period_start = 0;
  TimeMs started_at = 0;
  TimeMs finished_at = 0;
  bool success = false;
  std::string message;  // error text on failure
};

/// The Oink workflow manager: schedules periodic jobs on the simulator,
/// runs them in dependency order within each period, retries failures, and
/// keeps execution traces.
class Oink {
 public:
  explicit Oink(Simulator* sim) : sim_(sim) {}

  Oink(const Oink&) = delete;
  Oink& operator=(const Oink&) = delete;

  /// Registers a job; fails on duplicate names, self-dependency, or
  /// unknown dependencies (dependencies must be registered first).
  Status RegisterJob(JobSpec spec);

  /// Starts scheduling; `epoch` anchors the period grid (first period is
  /// [epoch, epoch + period)).
  void Start(TimeMs epoch);

  /// True if `job` completed successfully for the period containing `t`.
  bool Completed(const std::string& job, TimeMs period_start) const;

  const std::vector<ExecutionTrace>& traces() const { return traces_; }

  /// Traces for one job, in execution order.
  std::vector<ExecutionTrace> TracesFor(const std::string& job) const;

  uint64_t runs_succeeded() const { return runs_succeeded_; }
  uint64_t runs_failed() const { return runs_failed_; }
  uint64_t dependency_waits() const { return dependency_waits_; }

 private:
  void ScheduleJob(size_t job_index, TimeMs period_start, int attempt);
  void TryRun(size_t job_index, TimeMs period_start, int attempt);

  Simulator* sim_;
  std::vector<JobSpec> jobs_;
  std::map<std::string, size_t> job_index_;
  std::set<std::pair<std::string, TimeMs>> completed_;
  std::vector<ExecutionTrace> traces_;
  bool started_ = false;
  TimeMs epoch_ = 0;
  uint64_t runs_succeeded_ = 0;
  uint64_t runs_failed_ = 0;
  uint64_t dependency_waits_ = 0;
};

}  // namespace unilog::oink

#endif  // UNILOG_OINK_OINK_H_
