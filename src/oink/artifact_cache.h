#ifndef UNILOG_OINK_ARTIFACT_CACHE_H_
#define UNILOG_OINK_ARTIFACT_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"

namespace unilog::oink {

/// One cached intermediate result, as stored and as returned by Get.
struct CacheArtifact {
  /// The full input manifest the result was computed from. Stored verbatim
  /// (not just its hash) so a hit re-verifies the inputs byte-for-byte —
  /// a 64-bit key collision can steer a probe to this artifact, but never
  /// get a stale or foreign result served.
  std::string manifest;
  /// Bytes the cold computation decompressed to produce this result; a hit
  /// credits this much to oink.bytes_saved.
  uint64_t cold_cost_bytes = 0;
  /// Serialized relation bytes (dataflow::SerializeRelation).
  std::string payload;
};

struct ArtifactCacheOptions {
  /// Directory the artifacts live in. The '_' basename keeps warehouse
  /// scans and the delivery audit from counting cache files as log data
  /// (same convention as _audit/ and other bookkeeping dirs).
  std::string root = "/warehouse/_cache";
  /// Total artifact bytes kept on disk; least-recently-used entries are
  /// evicted past this. 0 means unlimited.
  uint64_t byte_budget = 64ull * 1024 * 1024;
};

/// Content-addressed store for Oink intermediate results, kept in sim-HDFS
/// so cached work survives engine restarts the way Twitter's warehouse
/// outlives any one Oink run. Keys are plan+input fingerprints (hex);
/// artifacts are checksummed end-to-end and compressed.
///
/// File format ("OKC1"): magic | varint whole-file FNV-64 (over everything
/// after it) | varint payload FNV-64 (over the *decompressed* payload) |
/// varint cold_cost_bytes | length-prefixed manifest | length-prefixed
/// compressed payload. Any truncation, bit flip, or parse failure makes a
/// probe delete the entry and report a miss — corrupt bytes are never
/// returned, and a recompute repairs the cache.
class ArtifactCache {
 public:
  ArtifactCache(hdfs::MiniHdfs* fs, ArtifactCacheOptions options = {},
                obs::MetricsRegistry* metrics = nullptr);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// Probes for `key`. NotFound on a miss — including the degraded cases,
  /// which additionally delete the entry: checksum/parse corruption, and a
  /// *stale* entry whose stored manifest differs from `expected_manifest`
  /// (the inputs changed under the same plan, e.g. a late-arriving part).
  /// Any other error status is a real fault (e.g. HDFS unavailable).
  Result<CacheArtifact> Get(const std::string& key,
                            const std::string& expected_manifest);

  /// Stores an artifact under `key`, replacing any existing entry, then
  /// evicts least-recently-used entries beyond the byte budget (never the
  /// entry just written).
  Status Put(const std::string& key, const CacheArtifact& artifact);

  /// Drops one entry if present (used after a verify_cache divergence).
  Status Evict(const std::string& key);

  uint64_t hits() const { return hits_->value(); }
  uint64_t misses() const { return misses_->value(); }
  uint64_t evictions() const { return evictions_->value(); }
  uint64_t corrupt_entries() const { return corrupt_->value(); }
  uint64_t stale_entries() const { return stale_->value(); }
  uint64_t resident_bytes() const { return resident_bytes_b_; }

  const ArtifactCacheOptions& options() const { return options_; }

 private:
  std::string PathFor(const std::string& key) const;
  /// Lists the cache root and rebuilds the LRU index; a fresh engine over
  /// an existing warehouse inherits the persisted artifacts.
  Status EnsureLoaded();
  void Touch(const std::string& key);
  void Forget(const std::string& key);
  void Insert(const std::string& key, uint64_t size);
  /// Deletes the entry and records a degraded probe; always returns
  /// NotFound so callers treat every degraded case as a plain miss.
  Status DropDegraded(const std::string& key, obs::Counter* reason);

  hdfs::MiniHdfs* fs_;
  ArtifactCacheOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;

  bool loaded_ = false;
  /// LRU order: front = coldest, back = most recently used.
  std::list<std::string> lru_;
  struct Entry {
    uint64_t size = 0;
    std::list<std::string>::iterator lru_pos;
  };
  std::map<std::string, Entry> entries_;
  uint64_t resident_bytes_b_ = 0;

  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* corrupt_;
  obs::Counter* stale_;
  obs::Gauge* bytes_gauge_;
};

}  // namespace unilog::oink

#endif  // UNILOG_OINK_ARTIFACT_CACHE_H_
