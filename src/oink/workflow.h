#ifndef UNILOG_OINK_WORKFLOW_H_
#define UNILOG_OINK_WORKFLOW_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/columnar_scan.h"
#include "dataflow/relation.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "oink/artifact_cache.h"
#include "oink/oink.h"

namespace unilog::oink {

/// One FILTER clause of a workflow plan: `column op literal`. Clauses the
/// columnar scan can absorb (timestamp ranges, event-name / user-id
/// equality, event-name globs) are pushed into the ScanSpec; the rest run
/// as residual row filters after the scan, identically on the shared-scan
/// and independent paths.
struct FilterClause {
  std::string column;
  std::string op;  // == != < <= > >= matches
  dataflow::Value literal;
};

/// A recurring analytics workflow over one warehouse directory per period:
/// scan -> filters -> optional projection -> optional relational stage.
/// The declarative prefix (everything but `stage`) is what the engine
/// canonicalizes into the plan fingerprint; `stage` is opaque code, so it
/// must be paired with a `stage_id` that callers bump whenever its logic
/// changes — the moral equivalent of a UDF version in the cache key.
struct WorkflowSpec {
  std::string name;
  /// The input directory for a given period index (e.g. hour 17 of the
  /// simulated epoch -> "/warehouse/web_events/2010/06/01/17").
  std::function<std::string(int64_t period_index)> input_dir;
  std::vector<FilterClause> filters;
  /// Optional projection: keep `project_cols` renamed to `project_names`
  /// (empty = keep all scan columns). Sizes must match.
  std::vector<std::string> project_cols;
  std::vector<std::string> project_names;
  /// Optional deterministic relational tail (group-bys, joins against
  /// static relations, ...). Must be a pure function of its input.
  std::function<Result<dataflow::Relation>(const dataflow::Relation&)> stage;
  /// Cache-key identity of `stage`; required when `stage` is set.
  std::string stage_id;
};

/// Tuning knobs for the memoizing engine.
struct OinkOptions {
  /// Probe/fill the artifact cache.
  bool enable_cache = true;
  /// Batch same-directory workflows into one union scan per tick.
  bool enable_shared_scans = true;
  /// Paranoia mode for CI: every cache hit is *also* recomputed and the
  /// serialized bytes compared; divergence fails the tick with Internal.
  /// Catches under-keyed plans (e.g. a stage whose stage_id went stale).
  bool verify_cache = false;
  /// Record an EXPLAIN-style trace of every tick in explain_log().
  bool explain = false;
  /// Execute miss-path plans on the vectorized batch engine (columnar
  /// scan batches + batch Filter/ProjectAs) instead of the row engine.
  /// Results are byte-identical either way; cache keys do not depend on
  /// the execution engine.
  bool use_batch_engine = true;
  /// Cost-based planning over header-only v2 stats: order conjunctive
  /// residual filters most-selective-first and choose pushdown-vs-eager
  /// scans. Pure execution strategy — never changes results, canonical
  /// plans, or cache keys.
  bool enable_planner = true;
  uint64_t cache_byte_budget = 64ull * 1024 * 1024;
  std::string cache_root = "/warehouse/_cache";
};

/// Per-tick accounting (also mirrored into oink.* metrics).
struct TickStats {
  uint64_t workflows = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Bytes the tick actually decompressed scanning warehouse files — the
  /// "work done" measure cold/warm benchmarks compare.
  uint64_t scan_bytes_decompressed = 0;
  /// Union scans executed / total workflows they fanned out to.
  uint64_t shared_scan_groups = 0;
  uint64_t shared_scan_fanout = 0;
  /// Sum of the cold costs of the artifacts that hit.
  uint64_t bytes_saved = 0;
  /// Hits recomputed and byte-compared under verify_cache.
  uint64_t verified_hits = 0;
  /// Planner-stats cache traffic this tick: files resolved from the
  /// TableStatsCache (by stat or content key) vs files whose RCFile
  /// headers had to be walked. On a warm warehouse misses stay 0.
  uint64_t stats_cache_hits = 0;
  uint64_t stats_cache_misses = 0;
};

/// The memoizing, shared-scan Oink execution layer (§3's "Oink manages
/// hundreds of periodic jobs, many scanning the same hourly data"). Each
/// tick it (1) fingerprints every workflow's plan together with a manifest
/// of the input bytes, (2) serves byte-identical cached results for
/// fingerprints seen before, (3) batches the remaining workflows that read
/// the same directory into one union PushdownScan fanned out per workflow,
/// and (4) caches the new results, content-addressed, in sim-HDFS under
/// the warehouse so later runs (or a restarted engine) reuse them.
class WorkflowEngine {
 public:
  /// `fs` is the warehouse file system. Metrics land in `metrics` (a
  /// private registry when null); scans/filters parallelize on `exec`
  /// (serial when null) with byte-identical output either way.
  explicit WorkflowEngine(hdfs::MiniHdfs* fs, OinkOptions options = {},
                          obs::MetricsRegistry* metrics = nullptr,
                          exec::Executor* exec = nullptr);

  WorkflowEngine(const WorkflowEngine&) = delete;
  WorkflowEngine& operator=(const WorkflowEngine&) = delete;

  /// Registers a workflow; validates the plan (column names, op/projection
  /// arity, stage_id presence) against the scan schema and precomputes its
  /// canonical plan serialization. Fails on duplicate names.
  Status AddWorkflow(WorkflowSpec spec);

  /// Runs every workflow for one period. Deterministic: the same
  /// registered workflows over the same warehouse bytes produce the same
  /// results, metrics deltas aside, whether served cold, from cache, or
  /// through a shared scan, at any executor thread count.
  Status RunTick(int64_t period_index);

  /// Latest computed relation for a workflow (NotFound before its first
  /// successful tick).
  Result<dataflow::Relation> ResultFor(const std::string& name) const;

  /// The canonical plan serialization (stable across runs; for tests and
  /// EXPLAIN output).
  Result<std::string> CanonicalPlanFor(const std::string& name) const;

  const TickStats& last_tick() const { return last_tick_; }
  /// EXPLAIN trace of the last tick (empty unless options.explain).
  const std::vector<std::string>& explain_log() const { return explain_; }
  ArtifactCache* cache() { return &cache_; }
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Canonical manifest of the file bytes a scan of `dir` would read:
  /// sorted paths, each with a content fingerprint — RCFile v2 parts use
  /// their embedded per-group checksums (no decompression), other files
  /// fall back to size+mtime. Hidden paths (any '_'-prefixed component
  /// below `dir`, e.g. a nested _cache subtree) are skipped, matching the
  /// scan's own listing rule — cached artifacts never fingerprint
  /// themselves into the inputs they memoize.
  static Result<std::string> DirManifest(const hdfs::MiniHdfs* fs,
                                         const std::string& dir);

 private:
  struct Planned {
    WorkflowSpec spec;
    std::string canonical_plan;
    std::vector<FilterClause> residuals;
    bool projection_pushed = false;
  };

  /// Clones `base` and pushes spec/filters/projection per `wf`, mirroring
  /// exactly what plan canonicalization did against the plan-only scan.
  std::shared_ptr<dataflow::ColumnarEventScan> BuildScan(
      const std::shared_ptr<dataflow::ColumnarEventScan>& base,
      const Planned& plan) const;

  /// Residual filters + late projection + stage, shared by the cold path
  /// and verify_cache recomputation.
  Result<dataflow::Relation> FinishPlan(const Planned& plan,
                                        dataflow::Relation rel) const;

  /// FinishPlan's vectorized twin: `filters` (eager-scan clauses, usually
  /// empty) plus the plan's residuals run through the batch Filter kernel
  /// — planner-ordered by estimated selectivity when enable_planner —
  /// then late projection via ProjectAs before the boxed stage. Output is
  /// byte-identical to FinishPlan over the same scan rows.
  Result<dataflow::Relation> FinishPlanBatch(
      const Planned& plan, dataflow::BatchRelation batch,
      const dataflow::TableStats& stats,
      std::vector<dataflow::FilterExpr> filters) const;

  hdfs::MiniHdfs* fs_;
  OinkOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  exec::Executor* exec_;
  ArtifactCache cache_;

  std::vector<Planned> workflows_;
  std::map<std::string, size_t> by_name_;
  std::map<std::string, dataflow::Relation> results_;
  TickStats last_tick_;
  std::vector<std::string> explain_;
  /// Memoized per-part planner statistics, keyed by path|size|mtime and
  /// content fingerprint — repeated ticks over a warm warehouse plan
  /// without re-reading any RCFile header.
  dataflow::TableStatsCache stats_cache_;

  obs::Counter* workflows_run_;
  obs::Counter* bytes_saved_;
  obs::Counter* shared_scans_;
  obs::Counter* shared_scan_fanout_;
  obs::Counter* scan_bytes_;
  obs::Counter* verified_hits_;
  obs::Counter* stats_cache_hits_;
  obs::Counter* stats_cache_misses_;
};

/// Hooks a WorkflowEngine into the classic Oink scheduler: registers
/// `spec` (its `run` is replaced) so each period runs one engine tick with
/// period_index = period_start / spec.period. Dependencies, retries and
/// execution traces keep working exactly as for hand-written jobs.
Status RegisterEngineJob(Oink* oink, WorkflowEngine* engine, JobSpec spec);

}  // namespace unilog::oink

#endif  // UNILOG_OINK_WORKFLOW_H_
