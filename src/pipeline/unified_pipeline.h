#ifndef UNILOG_PIPELINE_UNIFIED_PIPELINE_H_
#define UNILOG_PIPELINE_UNIFIED_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.h"
#include "exec/executor.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "dataflow/cost_model.h"
#include "obs/delivery_audit.h"
#include "obs/metrics.h"
#include "pipeline/daily_pipeline.h"
#include "scribe/cluster.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace unilog::pipeline {

/// Everything configurable about a unified-pipeline run.
struct UnifiedPipelineOptions {
  scribe::ClusterTopology topology;
  scribe::ScribeOptions scribe;
  scribe::LogMoverOptions mover;
  dataflow::JobCostModel cost_model;
  uint64_t seed = 42;
  std::string category = "client_events";
  /// > 1: the pipeline owns a unilog::exec Executor with this many threads
  /// and runs the log mover's CPU stages (per-file decompress, per-part
  /// frame+compress) on it. Staged warehouse bytes are identical at any
  /// value (the mover's ordering guarantee). Ignored when mover.executor
  /// is already set by the caller.
  int ingest_threads = 1;
};

/// The whole paper in one object: the Figure-1 Scribe delivery fleet, the
/// §4.2 daily job graph over the warehouse it fills, a unified metrics
/// registry every component reports into, and the delivery audit that
/// proves no log entry goes missing uncounted. This is the facade benches
/// and integration tests assemble instead of wiring the pieces by hand.
class UnifiedLoggingPipeline {
 public:
  explicit UnifiedLoggingPipeline(Simulator* sim,
                                  UnifiedPipelineOptions options = {});

  UnifiedLoggingPipeline(const UnifiedLoggingPipeline&) = delete;
  UnifiedLoggingPipeline& operator=(const UnifiedLoggingPipeline&) = delete;

  /// Starts the Scribe fleet (aggregators, daemons, log mover).
  Status Start();

  /// Schedules a generated workload as daemon Log calls on the sim clock.
  Status DriveWorkload(workload::WorkloadGenerator* generator);

  /// Runs the daily job graph for `date` and publishes both passes' cost
  /// accounting into the registry (job.*{job=histogram|sessionize}).
  Result<DailyJobResult> RunDailyJob(TimeMs date, const UserTable& users);

  // --- Observability ---
  obs::DeliverySnapshot Audit() const { return audit_.Snapshot(); }
  Status CheckDeliveryAudit() const { return audit_.Check(); }
  std::string MetricsTextReport() const { return metrics_.TextReport(); }
  Json MetricsJsonReport() const { return metrics_.JsonReport(); }

  // --- Component access ---
  scribe::ScribeCluster* cluster() { return &cluster_; }
  const scribe::ScribeCluster* cluster() const { return &cluster_; }
  obs::MetricsRegistry* metrics() { return &metrics_; }
  DailyPipeline* daily() { return &daily_; }
  Simulator* sim() { return sim_; }

 private:
  Simulator* sim_;
  UnifiedPipelineOptions options_;
  obs::MetricsRegistry metrics_;
  // Declared before cluster_: the mover holds a borrowed pointer to it.
  std::unique_ptr<exec::Executor> ingest_exec_;
  scribe::ScribeCluster cluster_;
  obs::DeliveryAudit audit_;
  DailyPipeline daily_;
};

}  // namespace unilog::pipeline

#endif  // UNILOG_PIPELINE_UNIFIED_PIPELINE_H_
