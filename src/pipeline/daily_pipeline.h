#ifndef UNILOG_PIPELINE_DAILY_PIPELINE_H_
#define UNILOG_PIPELINE_DAILY_PIPELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "dataflow/cost_model.h"
#include "dataflow/mapreduce.h"
#include "events/rollup.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/cluster.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"
#include "sessions/session_sequence.h"
#include "workload/generator.h"

namespace unilog::pipeline {

/// Per-user attributes for rollup breakdowns and demographic joins
/// (country, logged-in status) — the "users table" of §5.2.
class UserTable {
 public:
  struct Attributes {
    std::string country;
    bool logged_in = true;
  };

  void Add(int64_t user_id, Attributes attributes);
  const Attributes* Find(int64_t user_id) const;
  size_t size() const { return users_.size(); }

  static UserTable FromWorkload(const workload::WorkloadGenerator& generator);

 private:
  std::map<int64_t, Attributes> users_;
};

/// Output of one day's §4.2 job graph.
struct DailyJobResult {
  sessions::EventHistogram histogram;
  sessions::EventDictionary dictionary;
  std::vector<sessions::SessionSequence> sequences;
  events::RollupAggregator rollups;
  catalog::EventCatalog catalog;
  /// Cost accounting of the two MapReduce passes (histogram/dictionary
  /// job and session-reconstruction job).
  dataflow::JobStats histogram_job;
  dataflow::JobStats sessionize_job;
};

/// The daily job graph over the warehouse (§4.2): pass 1 scans client
/// event logs to build the histogram + dictionary (and the rollup
/// aggregates and catalog as by-products); pass 2 reconstructs sessions
/// via the big group-by, encodes them through the dictionary, and
/// materializes the session-sequence relation.
class DailyPipeline {
 public:
  DailyPipeline(hdfs::MiniHdfs* warehouse, dataflow::JobCostModel cost_model,
                std::string category = "client_events")
      : warehouse_(warehouse),
        cost_model_(cost_model),
        category_(std::move(category)) {}

  /// Attaches the unilog::exec engine: both MapReduce passes then fan
  /// their map tasks and reduce groups across worker threads. Histogram
  /// and rollup by-products accumulate in per-task state merged in input
  /// order, so DailyJobResult is byte-identical to a serial run at any
  /// thread count.
  void set_executor(exec::Executor* exec) { exec_ = exec; }

  /// Runs both passes for the date containing `date` and writes the
  /// sequence partition. Requires at least one warehouse hour of logs for
  /// that date.
  Result<DailyJobResult> RunForDate(TimeMs date, const UserTable& users);

  /// The warehouse hour directories for a date that actually exist.
  std::vector<std::string> HourDirsFor(TimeMs date) const;

 private:
  hdfs::MiniHdfs* warehouse_;
  dataflow::JobCostModel cost_model_;
  std::string category_;
  exec::Executor* exec_ = nullptr;
};

/// Schedules every event of a generated workload as a Scribe daemon Log
/// call at the event's timestamp (datacenter chosen round-robin by user).
/// Call before sim->Run(); the generator must not have been consumed.
Status DriveWorkloadThroughScribe(Simulator* sim,
                                  scribe::ScribeCluster* cluster,
                                  workload::WorkloadGenerator* generator,
                                  const std::string& category);

}  // namespace unilog::pipeline

#endif  // UNILOG_PIPELINE_DAILY_PIPELINE_H_
