#include "pipeline/unified_pipeline.h"

namespace unilog::pipeline {

UnifiedLoggingPipeline::UnifiedLoggingPipeline(Simulator* sim,
                                               UnifiedPipelineOptions options)
    : sim_(sim),
      options_(std::move(options)),
      metrics_(sim),
      cluster_(sim, options_.topology, options_.scribe, options_.mover,
               options_.seed, &metrics_),
      audit_(&cluster_),
      daily_(cluster_.warehouse(), options_.cost_model, options_.category) {}

Status UnifiedLoggingPipeline::Start() { return cluster_.Start(); }

Status UnifiedLoggingPipeline::DriveWorkload(
    workload::WorkloadGenerator* generator) {
  return DriveWorkloadThroughScribe(sim_, &cluster_, generator,
                                    options_.category);
}

Result<DailyJobResult> UnifiedLoggingPipeline::RunDailyJob(
    TimeMs date, const UserTable& users) {
  Result<DailyJobResult> result = daily_.RunForDate(date, users);
  if (result.ok()) {
    dataflow::PublishJobStats(&metrics_, "histogram", result->histogram_job);
    dataflow::PublishJobStats(&metrics_, "sessionize", result->sessionize_job);
  }
  return result;
}

}  // namespace unilog::pipeline
