#include "pipeline/unified_pipeline.h"

namespace unilog::pipeline {

namespace {

/// Builds the pipeline-owned ingest executor (nullptr for the serial
/// path) and points the mover options at it — runs after options_ is
/// initialized and before cluster_ copies the mover options.
std::unique_ptr<exec::Executor> MakeIngestExec(UnifiedPipelineOptions* o) {
  if (o->ingest_threads <= 1 || o->mover.executor != nullptr) return nullptr;
  exec::ExecOptions eo;
  eo.threads = o->ingest_threads;
  auto executor = std::make_unique<exec::Executor>(eo);
  o->mover.executor = executor.get();
  return executor;
}

}  // namespace

UnifiedLoggingPipeline::UnifiedLoggingPipeline(Simulator* sim,
                                               UnifiedPipelineOptions options)
    : sim_(sim),
      options_(std::move(options)),
      metrics_(sim),
      ingest_exec_(MakeIngestExec(&options_)),
      cluster_(sim, options_.topology, options_.scribe, options_.mover,
               options_.seed, &metrics_),
      audit_(&cluster_),
      daily_(cluster_.warehouse(), options_.cost_model, options_.category) {
  if (ingest_exec_ != nullptr) ingest_exec_->set_metrics(&metrics_);
}

Status UnifiedLoggingPipeline::Start() { return cluster_.Start(); }

Status UnifiedLoggingPipeline::DriveWorkload(
    workload::WorkloadGenerator* generator) {
  return DriveWorkloadThroughScribe(sim_, &cluster_, generator,
                                    options_.category);
}

Result<DailyJobResult> UnifiedLoggingPipeline::RunDailyJob(
    TimeMs date, const UserTable& users) {
  Result<DailyJobResult> result = daily_.RunForDate(date, users);
  if (result.ok()) {
    dataflow::PublishJobStats(&metrics_, "histogram", result->histogram_job);
    dataflow::PublishJobStats(&metrics_, "sessionize", result->sessionize_job);
  }
  return result;
}

}  // namespace unilog::pipeline
