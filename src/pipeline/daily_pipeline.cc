#include "pipeline/daily_pipeline.h"

#include <algorithm>
#include <memory>

#include "common/coding.h"
#include "events/client_event.h"
#include "events/event_name.h"
#include "sessions/sessionizer.h"

namespace unilog::pipeline {

void UserTable::Add(int64_t user_id, Attributes attributes) {
  users_[user_id] = std::move(attributes);
}

const UserTable::Attributes* UserTable::Find(int64_t user_id) const {
  auto it = users_.find(user_id);
  return it == users_.end() ? nullptr : &it->second;
}

UserTable UserTable::FromWorkload(
    const workload::WorkloadGenerator& generator) {
  UserTable table;
  for (const auto& user : generator.users()) {
    table.Add(user.user_id, {user.country, user.logged_in});
  }
  return table;
}

std::vector<std::string> DailyPipeline::HourDirsFor(TimeMs date) const {
  std::vector<std::string> dirs;
  TimeMs day = TruncateToDay(date);
  for (int hour = 0; hour < 24; ++hour) {
    std::string dir = "/logs/" + category_ + "/" +
                      HourPartitionPath(day + hour * kMillisPerHour);
    if (warehouse_->Exists(dir)) dirs.push_back(dir);
  }
  return dirs;
}

Result<DailyJobResult> DailyPipeline::RunForDate(TimeMs date,
                                                 const UserTable& users) {
  std::vector<std::string> hour_dirs = HourDirsFor(date);
  if (hour_dirs.empty()) {
    return Status::NotFound("no warehouse logs for " + DateString(date) +
                            " under /logs/" + category_);
  }

  DailyJobResult result;

  // ---- Pass 1: histogram + dictionary job (plus rollups & catalog).
  {
    dataflow::MapReduceJob job(warehouse_, cost_model_);
    job.set_executor(exec_);
    // A landed part that fails its RCFile checksums is quarantined (renamed
    // `_quarantined.*`) rather than failing the day: the paper's pipeline
    // keeps running when one aggregator ships a bad file.
    job.set_quarantine_fs(warehouse_);
    // Warehoused hours may be framed-compressed or columnar (RCFile v2)
    // depending on the mover's columnar_categories; sniff per file.
    job.set_input_format(dataflow::InputFormat::CompressedFramedOrColumnar());
    for (const auto& dir : hour_dirs) {
      UNILOG_RETURN_NOT_OK(job.AddInputDir(dir));
    }
    // The histogram and rollups are map-side by-products; each map task
    // accumulates into private state, merged in input order after the map
    // phase — the same stream a serial scan would have produced.
    struct Pass1Locals : dataflow::TaskLocal {
      sessions::EventHistogram histogram;
      events::RollupAggregator rollups;
    };
    const UserTable* user_table = &users;
    job.set_map_with_state(
        [user_table](const std::string& record, dataflow::Emitter* emitter,
                     dataflow::TaskLocal* state) -> Status {
          auto* locals = static_cast<Pass1Locals*>(state);
          UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                                  events::ClientEvent::Deserialize(record));
          locals->histogram.Add(ev.event_name, &record);
          // Rollup by-products: country/logged-in from the users table.
          auto parsed = events::EventName::Parse(ev.event_name);
          if (parsed.ok()) {
            const UserTable::Attributes* attrs = user_table->Find(ev.user_id);
            locals->rollups.Add(
                *parsed, attrs != nullptr ? attrs->country : "unknown",
                attrs != nullptr && attrs->logged_in);
          }
          emitter->Emit(ev.event_name, "");
          return Status::OK();
        },
        [] { return std::make_unique<Pass1Locals>(); },
        [&result](dataflow::TaskLocal* state) {
          auto* locals = static_cast<Pass1Locals*>(state);
          result.histogram.Merge(locals->histogram);
          result.rollups.Merge(locals->rollups);
        });
    job.set_reduce([](const std::string& key,
                      const std::vector<std::string>& values,
                      dataflow::Emitter* emitter) -> Status {
      emitter->Emit(key, std::to_string(values.size()));
      return Status::OK();
    });
    UNILOG_RETURN_NOT_OK(job.Run().status());
    result.histogram_job = job.stats();
  }
  UNILOG_ASSIGN_OR_RETURN(
      result.dictionary,
      sessions::EventDictionary::FromSortedCounts(
          result.histogram.SortedByFrequency()));
  result.catalog =
      catalog::EventCatalog::Build(result.histogram, result.dictionary);
  // Rebuild-daily catalog semantics (§4.3): inherit yesterday's manual
  // descriptions, then persist today's catalog to its known location.
  std::string yesterday_catalog =
      "/catalog/" + DateString(TruncateToDay(date) - kMillisPerDay) + ".json";
  if (warehouse_->Exists(yesterday_catalog)) {
    auto previous =
        catalog::EventCatalog::LoadFrom(*warehouse_, yesterday_catalog);
    if (previous.ok()) result.catalog.InheritDescriptions(*previous);
  }
  UNILOG_RETURN_NOT_OK(result.catalog.SaveTo(
      warehouse_, "/catalog/" + DateString(date) + ".json"));

  // ---- Pass 2: session reconstruction (the big group-by) + encoding.
  {
    dataflow::MapReduceJob job(warehouse_, cost_model_);
    job.set_executor(exec_);
    job.set_quarantine_fs(warehouse_);
    job.set_input_format(dataflow::InputFormat::CompressedFramedOrColumnar());
    for (const auto& dir : hour_dirs) {
      UNILOG_RETURN_NOT_OK(job.AddInputDir(dir));
    }
    // Map: key = (user_id, session_id); value = the whole serialized event
    // (this is exactly the data shuffling §4.1 complains about).
    job.set_map([](const std::string& record,
                   dataflow::Emitter* emitter) -> Status {
      UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                              events::ClientEvent::Deserialize(record));
      std::string key;
      PutSignedVarint64(&key, ev.user_id);
      key.push_back('|');
      key += ev.session_id;
      emitter->Emit(std::move(key), record);
      return Status::OK();
    });
    // Reduce emits encoded sequences as values (no shared state, so
    // reduce groups may run concurrently); they are decoded from the job
    // output below, which arrives in deterministic key order.
    const sessions::EventDictionary* dict = &result.dictionary;
    job.set_reduce([dict](const std::string& /*key*/,
                          const std::vector<std::string>& values,
                          dataflow::Emitter* emitter) -> Status {
      sessions::Sessionizer sessionizer;
      for (const auto& record : values) {
        UNILOG_ASSIGN_OR_RETURN(events::ClientEvent ev,
                                events::ClientEvent::Deserialize(record));
        sessionizer.Add(ev);
      }
      for (const auto& session : sessionizer.Build()) {
        UNILOG_ASSIGN_OR_RETURN(sessions::SessionSequence seq,
                                sessions::EncodeSession(session, *dict));
        std::string blob;
        sessions::AppendSequenceRecord(&blob, seq);
        emitter->Emit(std::to_string(session.user_id), std::move(blob));
      }
      return Status::OK();
    });
    UNILOG_ASSIGN_OR_RETURN(auto output, job.Run());
    result.sessionize_job = job.stats();
    for (const auto& [key, blob] : output) {
      sessions::SequenceRecordReader reader(blob);
      sessions::SessionSequence seq;
      UNILOG_RETURN_NOT_OK(reader.Next(&seq));
      result.sequences.push_back(std::move(seq));
    }
  }

  // Deterministic order for downstream consumers (stable: ties keep the
  // job-output key order, itself deterministic).
  std::stable_sort(result.sequences.begin(), result.sequences.end(),
                   [](const sessions::SessionSequence& a,
                      const sessions::SessionSequence& b) {
                     if (a.user_id != b.user_id) return a.user_id < b.user_id;
                     return a.session_id < b.session_id;
                   });

  // ---- Materialize the sequence partition.
  UNILOG_RETURN_NOT_OK(sessions::SequenceStore::WriteDaily(
      warehouse_, date, result.sequences, result.dictionary));
  return result;
}

Status DriveWorkloadThroughScribe(Simulator* sim,
                                  scribe::ScribeCluster* cluster,
                                  workload::WorkloadGenerator* generator,
                                  const std::string& category) {
  size_t dc_count = cluster->datacenter_count();
  return generator->Generate([sim, cluster, dc_count, category](
                                 const events::ClientEvent& ev) {
    size_t dc = static_cast<size_t>(ev.user_id) % dc_count;
    std::string message = ev.Serialize();
    sim->At(ev.timestamp, [cluster, dc, category,
                           message = std::move(message)]() {
      cluster->Log(dc, scribe::LogEntry{category, message});
    });
  });
}

}  // namespace unilog::pipeline
