#ifndef UNILOG_COMMON_STRINGS_H_
#define UNILOG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace unilog {

/// Splits `s` on every occurrence of `sep`. Empty pieces are kept, so
/// Split("a::b", ':') == {"a", "", "b"} and Split("", ':') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, char sep);
std::string Join(const std::vector<std::string_view>& pieces, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// True if every character is an ASCII lowercase letter, digit, or
/// underscore — the character set permitted for event-name components.
bool IsLowerSnake(std::string_view s);

/// Simple glob match where '*' matches any run of characters (including
/// empty) and all other characters match literally. Used for event-name
/// component wildcards.
bool GlobMatch(std::string_view pattern, std::string_view text);

/// Formats a count of bytes as a human-readable string ("1.5 MiB").
std::string HumanBytes(uint64_t bytes);

/// Formats a number with thousands separators ("1,234,567").
std::string WithCommas(uint64_t n);

}  // namespace unilog

#endif  // UNILOG_COMMON_STRINGS_H_
