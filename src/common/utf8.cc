#include "common/utf8.h"

namespace unilog {

bool IsValidCodePoint(uint32_t cp) {
  if (cp > kMaxCodePoint) return false;
  if (cp >= kSurrogateLo && cp <= kSurrogateHi) return false;
  return true;
}

int Utf8EncodedLength(uint32_t cp) {
  if (!IsValidCodePoint(cp)) return 0;
  if (cp < 0x80) return 1;
  if (cp < 0x800) return 2;
  if (cp < 0x10000) return 3;
  return 4;
}

Status AppendUtf8(std::string* out, uint32_t cp) {
  if (!IsValidCodePoint(cp)) {
    return Status::InvalidArgument("invalid unicode code point");
  }
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return Status::OK();
}

Result<std::string> EncodeUtf8(const std::vector<uint32_t>& cps) {
  std::string out;
  out.reserve(cps.size());
  for (uint32_t cp : cps) {
    UNILOG_RETURN_NOT_OK(AppendUtf8(&out, cp));
  }
  return out;
}

Status DecodeOneUtf8(std::string_view s, size_t* pos, uint32_t* cp) {
  if (*pos >= s.size()) return Status::Corruption("utf8: read past end");
  uint8_t b0 = static_cast<uint8_t>(s[*pos]);
  int len;
  uint32_t value;
  if (b0 < 0x80) {
    len = 1;
    value = b0;
  } else if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    value = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    value = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    value = b0 & 0x07;
  } else {
    return Status::Corruption("utf8: invalid leading byte");
  }
  if (*pos + len > s.size()) {
    return Status::Corruption("utf8: truncated sequence");
  }
  for (int i = 1; i < len; ++i) {
    uint8_t b = static_cast<uint8_t>(s[*pos + i]);
    if ((b & 0xC0) != 0x80) {
      return Status::Corruption("utf8: invalid continuation byte");
    }
    value = (value << 6) | (b & 0x3F);
  }
  // Reject overlong encodings and invalid scalar values.
  static constexpr uint32_t kMinForLen[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (value < kMinForLen[len]) {
    return Status::Corruption("utf8: overlong encoding");
  }
  if (!IsValidCodePoint(value)) {
    return Status::Corruption("utf8: invalid scalar value");
  }
  *pos += len;
  *cp = value;
  return Status::OK();
}

Result<std::vector<uint32_t>> DecodeUtf8(std::string_view s) {
  std::vector<uint32_t> cps;
  cps.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    uint32_t cp;
    UNILOG_RETURN_NOT_OK(DecodeOneUtf8(s, &pos, &cp));
    cps.push_back(cp);
  }
  return cps;
}

size_t Utf8Length(std::string_view s) {
  size_t n = 0;
  for (char c : s) {
    if ((static_cast<uint8_t>(c) & 0xC0) != 0x80) ++n;
  }
  return n;
}

}  // namespace unilog
