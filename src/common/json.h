#ifndef UNILOG_COMMON_JSON_H_
#define UNILOG_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog {

/// A minimal JSON document model. The paper's first-generation frontend
/// logs captured user interactions "in JSON format... often nested several
/// layers deep" (§3.1); the legacy-format baseline reproduces that world,
/// and the client event catalog exports JSON. This is deliberately a small,
/// strict parser: no comments, no trailing commas, UTF-8 passthrough.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}

  static Json Null() { return Json(); }
  static Json Bool(bool v);
  static Json Number(double v);
  static Json Int(int64_t v);
  static Json Str(std::string v);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  int64_t int_value() const { return static_cast<int64_t>(number_); }
  const std::string& string_value() const { return string_; }
  const std::vector<Json>& array_items() const { return array_; }
  const std::map<std::string, Json>& object_items() const { return object_; }

  /// Object field access; returns a shared null for missing keys.
  const Json& operator[](const std::string& key) const;
  /// Array element access; returns a shared null when out of range.
  const Json& at(size_t i) const;

  /// Object/array mutation.
  void Set(const std::string& key, Json value);
  void Push(Json value);

  /// Serializes to compact JSON text.
  std::string Dump() const;

  /// Parses a complete JSON document. Trailing garbage is an error.
  static Result<Json> Parse(std::string_view text);

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace unilog

#endif  // UNILOG_COMMON_JSON_H_
