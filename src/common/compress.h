#ifndef UNILOG_COMMON_COMPRESS_H_
#define UNILOG_COMMON_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace unilog {

/// A self-contained LZ77-family block compressor. The paper's aggregators
/// compress log data "on the fly" as it is written to staging HDFS, and the
/// materialized session sequences are stored compressed; this codec plays
/// that role (no external zlib dependency — built from scratch per the
/// reproduction rules).
///
/// Format: a varint uncompressed length, then a token stream. Each token is
/// either a literal run (tag 0x00, varint length, raw bytes) or a back-
/// reference (tag 0x01, varint distance >= 1, varint length >= kMinMatch)
/// into the previously decoded output. Greedy parsing with a hash chain
/// over 4-byte prefixes; 64 KiB window.
class Lz {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kWindow = 64 * 1024;
  static constexpr int kMaxChainSteps = 32;

  /// Compresses `input`. Never fails; incompressible data grows by a few
  /// bytes of framing.
  static std::string Compress(std::string_view input);

  /// Decompresses a block produced by Compress. Returns Corruption on
  /// malformed input.
  static Result<std::string> Decompress(std::string_view block);
};

}  // namespace unilog

#endif  // UNILOG_COMMON_COMPRESS_H_
