#ifndef UNILOG_COMMON_COMPRESS_H_
#define UNILOG_COMMON_COMPRESS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog {

/// A self-contained LZ77-family block compressor. The paper's aggregators
/// compress log data "on the fly" as it is written to staging HDFS, and the
/// materialized session sequences are stored compressed; this codec plays
/// that role (no external zlib dependency — built from scratch per the
/// reproduction rules).
///
/// Format: a varint uncompressed length, then a token stream. Each token is
/// either a literal run (tag 0x00, varint length, raw bytes) or a back-
/// reference (tag 0x01, varint distance >= 1, varint length >= kMinMatch)
/// into the previously decoded output. Greedy parsing with a hash chain
/// over 4-byte prefixes; 64 KiB window.
class Lz {
 public:
  static constexpr size_t kMinMatch = 4;
  static constexpr size_t kWindow = 64 * 1024;
  static constexpr int kMaxChainSteps = 32;

  /// Reusable compression state: the 64K-entry hash head table and the
  /// per-position chain array, both kept across calls so the ingest hot
  /// path (one Compress per staged file / per roll) stops paying two
  /// vector allocations — 256 KiB of head table plus 4 bytes per input
  /// byte — per call. Head entries are epoch-tagged, so reuse needs no
  /// per-call clear either; output is byte-identical to a fresh-state
  /// compressor on every input (asserted by tests and
  /// bench_sequence_compression).
  ///
  /// Not thread-safe; one Compressor per thread. Lz::Pooled() hands out a
  /// thread-local instance.
  class Compressor {
   public:
    Compressor() = default;

    Compressor(const Compressor&) = delete;
    Compressor& operator=(const Compressor&) = delete;

    /// Clears *out and writes the compressed block into it, reusing the
    /// string's capacity. Never fails; incompressible data grows by a few
    /// bytes of framing.
    void CompressTo(std::string_view input, std::string* out);

    /// Convenience wrapper returning a fresh string.
    std::string Compress(std::string_view input);

   private:
    // head_[h] = (epoch << 32) | (pos + 1). An entry whose epoch differs
    // from epoch_ is logically empty, which resets the table per call
    // without touching its 512 KiB.
    std::vector<uint64_t> head_;
    // prev_[i]: previous chain position for i (+1). Entries are written at
    // insertion before they can be read through a chain, so stale values
    // from earlier inputs are never observed.
    std::vector<uint32_t> prev_;
    uint32_t epoch_ = 0;
  };

  /// Compresses `input` using a thread-local pooled Compressor, so every
  /// existing call site gets state reuse for free. Output is byte-identical
  /// to CompressReference.
  static std::string Compress(std::string_view input);

  /// The thread-local pooled Compressor (for callers that also want the
  /// CompressTo output-buffer reuse, e.g. the log mover's workers).
  static Compressor& Pooled();

  /// Fresh-state reference: allocates and discards the hash-chain state on
  /// every call, the pre-pooling behavior. Kept as the equivalence baseline
  /// for tests and the ingest benches' before/after comparison.
  static std::string CompressReference(std::string_view input);

  /// Decompresses a block produced by Compress. Returns Corruption on
  /// malformed input.
  static Result<std::string> Decompress(std::string_view block);

  /// Cursor-style decompressor that decodes a block token by token, on
  /// demand. The broker tier stores produce batches as opaque compressed
  /// blobs whose record frames are parsed front to back; a reader that
  /// only needs the leading frames (hour-boundary reads, dedup head
  /// trims) decodes just enough output to cover them and leaves the tail
  /// tokens untouched.
  ///
  /// The caller owns the input block and must keep it alive for the
  /// decompressor's lifetime. Decoding stops on whole-token boundaries,
  /// so output() may run slightly past the requested target.
  class IncrementalDecompressor {
   public:
    explicit IncrementalDecompressor(std::string_view block);

    IncrementalDecompressor(const IncrementalDecompressor&) = delete;
    IncrementalDecompressor& operator=(const IncrementalDecompressor&) =
        delete;

    /// Decodes tokens until output() holds at least `target` bytes or the
    /// block is exhausted. Reaching the true end of the block before
    /// `target` is not an error as long as the block's length header
    /// agrees; malformed input returns Corruption (sticky).
    Status DecodeUntil(size_t target);

    /// Bytes decoded so far. Grows monotonically across DecodeUntil calls.
    const std::string& output() const { return out_; }

    /// The block's declared uncompressed size.
    uint64_t expected_size() const { return expected_; }

    /// True once every token has been decoded.
    bool done() const { return rest_.empty(); }

   private:
    std::string_view rest_;  // undecoded token stream
    std::string out_;
    uint64_t expected_ = 0;
    Status status_ = Status::OK();
  };

  /// Process-wide count of compression calls (CompressTo and wrappers).
  /// Tests use these probes to assert the batched delivery path compresses
  /// payload bytes exactly once between daemon and warehouse landing.
  static uint64_t CompressCallCount();

  /// Process-wide count of decompression calls (Decompress plus every
  /// IncrementalDecompressor constructed).
  static uint64_t DecompressCallCount();

  /// Resets both probe counters to zero.
  static void ResetCompressionProbes();
};

}  // namespace unilog

#endif  // UNILOG_COMMON_COMPRESS_H_
