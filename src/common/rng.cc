#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace unilog {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v;
  do {
    v = Next64();
  } while (v >= limit);
  return v % n;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation for large means.
    double v = mean + std::sqrt(mean) * Gaussian();
    if (v < 0.0) v = 0.0;
    return static_cast<uint64_t>(std::llround(v));
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

double Rng::Gaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-18;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

size_t Rng::PickWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next64() ^ 0xA02BDBF7BB3C0A7ULL); }

ZipfianSampler::ZipfianSampler(size_t n, double theta) {
  if (n == 0) n = 1;
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

size_t ZipfianSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfianSampler::Pmf(size_t i) const {
  if (i >= cdf_.size()) return 0.0;
  if (i == 0) return cdf_[0];
  return cdf_[i] - cdf_[i - 1];
}

}  // namespace unilog
