#ifndef UNILOG_COMMON_UTF8_H_
#define UNILOG_COMMON_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog {

/// UTF-8 codec used by session sequences: each client event name maps to a
/// unicode code point, and a session is stored as the UTF-8 encoding of the
/// code-point sequence (§4.2 of the paper). Frequent events get small code
/// points, so frequent events cost fewer bytes — a form of variable-length
/// coding.

/// Maximum valid unicode code point (the paper: "Unicode comprises 1.1
/// million available code points").
inline constexpr uint32_t kMaxCodePoint = 0x10FFFF;

/// First/last UTF-16 surrogate code points; not encodable in UTF-8.
inline constexpr uint32_t kSurrogateLo = 0xD800;
inline constexpr uint32_t kSurrogateHi = 0xDFFF;

/// True if `cp` is a scalar value that UTF-8 can encode.
bool IsValidCodePoint(uint32_t cp);

/// Number of bytes the UTF-8 encoding of `cp` occupies (1-4), or 0 if
/// invalid.
int Utf8EncodedLength(uint32_t cp);

/// Appends the UTF-8 encoding of `cp` to `out`. Returns InvalidArgument for
/// surrogates or out-of-range values.
Status AppendUtf8(std::string* out, uint32_t cp);

/// Encodes a whole code-point sequence.
Result<std::string> EncodeUtf8(const std::vector<uint32_t>& cps);

/// Decodes a UTF-8 string into code points. Returns Corruption on malformed
/// input (truncated sequences, overlong encodings, surrogates).
Result<std::vector<uint32_t>> DecodeUtf8(std::string_view s);

/// Decodes a single code point starting at `s[pos]`, advancing pos. Returns
/// Corruption on malformed input.
Status DecodeOneUtf8(std::string_view s, size_t* pos, uint32_t* cp);

/// Number of code points in a valid UTF-8 string (counts leading bytes only;
/// does not validate).
size_t Utf8Length(std::string_view s);

}  // namespace unilog

#endif  // UNILOG_COMMON_UTF8_H_
