#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace unilog {

namespace {
const Json& SharedNull() {
  static const Json* kNull = new Json();
  return *kNull;
}
}  // namespace

Json Json::Bool(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

Json Json::Number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = v;
  return j;
}

Json Json::Int(int64_t v) { return Number(static_cast<double>(v)); }

Json Json::Str(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json& Json::operator[](const std::string& key) const {
  if (type_ == Type::kObject) {
    auto it = object_.find(key);
    if (it != object_.end()) return it->second;
  }
  return SharedNull();
}

const Json& Json::at(size_t i) const {
  if (type_ == Type::kArray && i < array_.size()) return array_[i];
  return SharedNull();
}

void Json::Set(const std::string& key, Json value) {
  type_ = Type::kObject;
  object_[key] = std::move(value);
}

void Json::Push(Json value) {
  type_ = Type::kArray;
  array_.push_back(std::move(value));
}

namespace {

void DumpString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber: {
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(number_));
        *out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
        *out += buf;
      }
      break;
    }
    case Type::kString:
      DumpString(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out->push_back(',');
        array_[i].DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out->push_back(',');
        first = false;
        DumpString(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> ParseDocument() {
    Json value;
    UNILOG_RETURN_NOT_OK(ParseValue(&value));
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::Corruption("json: trailing garbage");
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Status::Corruption("json: eof");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        UNILOG_RETURN_NOT_OK(ParseString(&s));
        *out = Json::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::OK();
        }
        return Status::Corruption("json: bad literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::OK();
        }
        return Status::Corruption("json: bad literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Json::Null();
          return Status::OK();
        }
        return Status::Corruption("json: bad literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Status::Corruption("json: expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Status::Corruption("json: bad \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Status::Corruption("json: bad hex digit");
              }
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported;
            // they do not occur in the simulated logs).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Status::Corruption("json: bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::Corruption("json: unterminated string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool any = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
      any = true;
    }
    if (!any) return Status::Corruption("json: expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Status::Corruption("json: bad number: " + token);
    }
    *out = Json::Number(v);
    return Status::OK();
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      UNILOG_RETURN_NOT_OK(ParseValue(&item));
      out->Push(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Status::Corruption("json: expected ','");
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      UNILOG_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Status::Corruption("json: expected ':'");
      Json value;
      UNILOG_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Status::Corruption("json: expected ','");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  Parser p(text);
  return p.ParseDocument();
}

}  // namespace unilog
