#ifndef UNILOG_COMMON_CODING_H_
#define UNILOG_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace unilog {

/// Low-level byte coding primitives shared by the thrift protocol, the
/// session-sequence encoder, and the simulated HDFS file formats. All
/// multi-byte fixed-width values are little-endian.

/// Appends an unsigned LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

/// Appends a 32-bit varint.
void PutVarint32(std::string* dst, uint32_t v);

/// ZigZag-encodes a signed value so that small magnitudes get small varints.
uint64_t ZigZagEncode64(int64_t v);
int64_t ZigZagDecode64(uint64_t v);
uint32_t ZigZagEncode32(int32_t v);
int32_t ZigZagDecode32(uint32_t v);

/// Appends a zigzag-varint-encoded signed value.
void PutSignedVarint64(std::string* dst, int64_t v);

/// Appends fixed-width little-endian values.
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

/// Appends a varint length prefix followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Cursor over an input buffer for decoding. Decoding functions return a
/// Corruption status on truncated or malformed input and leave the cursor
/// position unspecified.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data), pos_(0) {}

  Status GetVarint64(uint64_t* v);
  Status GetVarint32(uint32_t* v);
  Status GetSignedVarint64(int64_t* v);
  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetLengthPrefixed(std::string_view* value);
  /// Reads exactly n raw bytes.
  Status GetBytes(size_t n, std::string_view* value);
  /// Skips n raw bytes.
  Status Skip(size_t n);

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  /// The whole underlying buffer (for checksumming decoded byte ranges by
  /// position).
  std::string_view data() const { return data_; }

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace unilog

#endif  // UNILOG_COMMON_CODING_H_
