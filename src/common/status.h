#ifndef UNILOG_COMMON_STATUS_H_
#define UNILOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace unilog {

/// Error categories used throughout unilog. Modeled after the
/// RocksDB/Arrow convention: library code never throws; every fallible
/// operation returns a Status (or a Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kFailedPrecondition,
  kUnavailable,
  kOutOfRange,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status encapsulates the success or failure of an operation together
/// with a diagnostic message. Statuses are cheap to copy in the OK case
/// (empty message) and are intended to be returned by value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define UNILOG_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::unilog::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

/// Assigns the value of a Result<T> expression to `lhs`, returning the error
/// status from the enclosing function if the Result holds an error.
#define UNILOG_ASSIGN_OR_RETURN(lhs, rexpr)    \
  auto UNILOG_CONCAT_(_res_, __LINE__) = (rexpr);            \
  if (!UNILOG_CONCAT_(_res_, __LINE__).ok())                 \
    return UNILOG_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(UNILOG_CONCAT_(_res_, __LINE__)).value()

#define UNILOG_CONCAT_IMPL_(a, b) a##b
#define UNILOG_CONCAT_(a, b) UNILOG_CONCAT_IMPL_(a, b)

}  // namespace unilog

#endif  // UNILOG_COMMON_STATUS_H_
