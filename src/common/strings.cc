#include "common/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace unilog {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, char sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += pieces[i];
  }
  return out;
}

std::string Join(const std::vector<std::string_view>& pieces, char sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool IsLowerSnake(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative wildcard match with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string HumanBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string WithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace unilog
