#include "common/sim_time.h"

#include <cstdio>

namespace unilog {

namespace {

// Days-from-civil / civil-from-days (Howard Hinnant's algorithms), valid for
// the full simulated range.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t year = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned day = doy - (153 * mp + 2) / 5 + 1;
  const unsigned month = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(year + (month <= 2));
  *m = static_cast<int>(month);
  *d = static_cast<int>(day);
}

// Floor division that works for negative timestamps too.
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

int64_t FloorMod(int64_t a, int64_t b) { return a - FloorDiv(a, b) * b; }

}  // namespace

CivilTime ToCivil(TimeMs t) {
  CivilTime c;
  int64_t days = FloorDiv(t, kMillisPerDay);
  int64_t rem = FloorMod(t, kMillisPerDay);
  CivilFromDays(days, &c.year, &c.month, &c.day);
  c.hour = static_cast<int>(rem / kMillisPerHour);
  rem %= kMillisPerHour;
  c.minute = static_cast<int>(rem / kMillisPerMinute);
  rem %= kMillisPerMinute;
  c.second = static_cast<int>(rem / kMillisPerSecond);
  c.millisecond = static_cast<int>(rem % kMillisPerSecond);
  return c;
}

TimeMs FromCivil(const CivilTime& c) {
  int64_t days = DaysFromCivil(c.year, c.month, c.day);
  return days * kMillisPerDay + c.hour * kMillisPerHour +
         c.minute * kMillisPerMinute + c.second * kMillisPerSecond +
         c.millisecond;
}

TimeMs MakeDate(int year, int month, int day) {
  CivilTime c;
  c.year = year;
  c.month = month;
  c.day = day;
  return FromCivil(c);
}

TimeMs TruncateToHour(TimeMs t) {
  return FloorDiv(t, kMillisPerHour) * kMillisPerHour;
}

TimeMs TruncateToDay(TimeMs t) {
  return FloorDiv(t, kMillisPerDay) * kMillisPerDay;
}

std::string HourPartitionPath(TimeMs t) {
  CivilTime c = ToCivil(t);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d/%02d/%02d/%02d", c.year, c.month,
                c.day, c.hour);
  return buf;
}

std::string DateString(TimeMs t) {
  CivilTime c = ToCivil(t);
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string TimestampString(TimeMs t) {
  CivilTime c = ToCivil(t);
  char buf[28];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                c.year, c.month, c.day, c.hour, c.minute, c.second,
                c.millisecond);
  return buf;
}

}  // namespace unilog
