#ifndef UNILOG_COMMON_RNG_H_
#define UNILOG_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace unilog {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// splitmix64. All randomness in unilog — workload generation, failure
/// injection, sampling — flows through explicitly-seeded Rng instances so
/// that simulations and tests are exactly reproducible.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x5DEECE66DULL);

  /// Next raw 64-bit value.
  uint64_t Next64();

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0). Used for
  /// Poisson-process interarrival times.
  double Exponential(double mean);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Gaussian (mean 0, stddev 1) via Box-Muller.
  double Gaussian();

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with a positive sum.
  size_t PickWeighted(const std::vector<double>& weights);

  /// Forks a new independent generator deterministically derived from this
  /// one; used to give each simulated component its own stream.
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Samples from a Zipfian distribution over {0, 1, ..., n-1} with skew
/// parameter `theta` (typical web-workload skews: 0.8-1.2). Rank 0 is the
/// most popular item. Precomputes the harmonic normalization once.
class ZipfianSampler {
 public:
  /// `n` must be >= 1; `theta` must be > 0 and != 1 is not required
  /// (theta == 1 handled).
  ZipfianSampler(size_t n, double theta);

  /// Draws one sample (an item rank in [0, n)).
  size_t Sample(Rng& rng) const;

  /// Probability mass of rank `i`.
  double Pmf(size_t i) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative distribution, size n
};

}  // namespace unilog

#endif  // UNILOG_COMMON_RNG_H_
