#ifndef UNILOG_COMMON_SIM_TIME_H_
#define UNILOG_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace unilog {

/// Simulated wall-clock time, in milliseconds since the Unix epoch. The
/// discrete-event simulator advances a virtual clock of this type; all log
/// timestamps, session gaps, and hourly partitions are expressed in it.
using TimeMs = int64_t;

inline constexpr TimeMs kMillisPerSecond = 1000;
inline constexpr TimeMs kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr TimeMs kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr TimeMs kMillisPerDay = 24 * kMillisPerHour;

/// The paper's standard sessionization gap: "following standard practices,
/// we use a 30-minute inactivity interval to delimit user sessions" (§4.2).
inline constexpr TimeMs kSessionInactivityGapMs = 30 * kMillisPerMinute;

/// Broken-down UTC time.
struct CivilTime {
  int year = 1970;
  int month = 1;  // 1-12
  int day = 1;    // 1-31
  int hour = 0;   // 0-23
  int minute = 0;
  int second = 0;
  int millisecond = 0;
};

/// Converts a timestamp to broken-down UTC time.
CivilTime ToCivil(TimeMs t);

/// Converts broken-down UTC time to a timestamp.
TimeMs FromCivil(const CivilTime& c);

/// Convenience constructor: midnight UTC of the given date.
TimeMs MakeDate(int year, int month, int day);

/// Truncates to the start of the containing hour / day.
TimeMs TruncateToHour(TimeMs t);
TimeMs TruncateToDay(TimeMs t);

/// Formats the per-category, per-hour warehouse partition path fragment the
/// paper describes: "YYYY/MM/DD/HH" (§2).
std::string HourPartitionPath(TimeMs t);

/// "YYYY-MM-DD" for daily partitions and reports.
std::string DateString(TimeMs t);

/// "YYYY-MM-DD HH:MM:SS.mmm" for human-readable traces.
std::string TimestampString(TimeMs t);

}  // namespace unilog

#endif  // UNILOG_COMMON_SIM_TIME_H_
