#include "common/compress.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/coding.h"

namespace unilog {

namespace {

// Relaxed is sufficient: the probes are monotonically increasing tallies
// read only at quiescence points in tests and benches.
std::atomic<uint64_t> g_compress_calls{0};
std::atomic<uint64_t> g_decompress_calls{0};

constexpr size_t kHashBits = 16;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(std::string* out, std::string_view input, size_t begin,
                  size_t end) {
  if (begin >= end) return;
  out->push_back('\x00');
  PutVarint64(out, end - begin);
  out->append(input.data() + begin, end - begin);
}

}  // namespace

void Lz::Compressor::CompressTo(std::string_view input, std::string* out) {
  g_compress_calls.fetch_add(1, std::memory_order_relaxed);
  out->clear();
  PutVarint64(out, input.size());
  if (input.empty()) return;

  if (head_.empty()) head_.assign(kHashSize, 0);
  if (++epoch_ == 0) {
    // The 32-bit epoch wrapped: entries tagged with the old epoch 0 would
    // read as live again, so hard-reset once every 2^32 calls.
    std::fill(head_.begin(), head_.end(), 0);
    epoch_ = 1;
  }
  if (prev_.size() < input.size()) prev_.resize(input.size());
  const uint64_t epoch_tag = static_cast<uint64_t>(epoch_) << 32;

  // head entry for hash h: most recent position with hash h (+1, 0 =
  // empty). Entries from earlier epochs (earlier inputs) are empty.
  auto head_get = [&](uint32_t h) -> uint32_t {
    uint64_t e = head_[h];
    return (e >> 32) == epoch_ ? static_cast<uint32_t>(e) : 0;
  };
  auto head_set = [&](uint32_t h, uint32_t pos_plus_1) {
    head_[h] = epoch_tag | pos_plus_1;
  };

  size_t literal_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= input.size()) {
    uint32_t h = Hash4(input.data() + i);
    size_t best_len = 0;
    size_t best_dist = 0;
    uint32_t cand = head_get(h);
    int steps = 0;
    while (cand != 0 && steps < kMaxChainSteps) {
      size_t pos = cand - 1;
      if (i - pos > kWindow) break;
      // Extend the match.
      size_t len = 0;
      size_t max_len = input.size() - i;
      while (len < max_len && input[pos + len] == input[i + len]) ++len;
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_dist = i - pos;
      }
      cand = prev_[pos];
      ++steps;
    }

    if (best_len >= kMinMatch) {
      EmitLiterals(out, input, literal_start, i);
      out->push_back('\x01');
      PutVarint64(out, best_dist);
      PutVarint64(out, best_len);
      // Insert hash entries for the skipped region (sparsely for speed).
      size_t match_end = i + best_len;
      size_t insert_end =
          match_end + kMinMatch <= input.size() ? match_end
                                                : (input.size() >= kMinMatch
                                                       ? input.size() - kMinMatch + 1
                                                       : 0);
      size_t step = best_len > 64 ? 4 : 1;
      for (size_t j = i; j < insert_end; j += step) {
        uint32_t hj = Hash4(input.data() + j);
        prev_[j] = head_get(hj);
        head_set(hj, static_cast<uint32_t>(j + 1));
      }
      i = match_end;
      literal_start = i;
    } else {
      prev_[i] = head_get(h);
      head_set(h, static_cast<uint32_t>(i + 1));
      ++i;
    }
  }
  EmitLiterals(out, input, literal_start, input.size());
}

std::string Lz::Compressor::Compress(std::string_view input) {
  std::string out;
  CompressTo(input, &out);
  return out;
}

Lz::Compressor& Lz::Pooled() {
  thread_local Compressor compressor;
  return compressor;
}

std::string Lz::Compress(std::string_view input) {
  return Pooled().Compress(input);
}

std::string Lz::CompressReference(std::string_view input) {
  Compressor fresh;
  return fresh.Compress(input);
}

Result<std::string> Lz::Decompress(std::string_view block) {
  g_decompress_calls.fetch_add(1, std::memory_order_relaxed);
  Decoder dec(block);
  uint64_t expected_len;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&expected_len));
  std::string out;
  out.reserve(expected_len);
  while (!dec.AtEnd()) {
    std::string_view tag;
    UNILOG_RETURN_NOT_OK(dec.GetBytes(1, &tag));
    if (tag[0] == '\x00') {
      std::string_view lit;
      UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&lit));
      out.append(lit.data(), lit.size());
    } else if (tag[0] == '\x01') {
      uint64_t dist, len;
      UNILOG_RETURN_NOT_OK(dec.GetVarint64(&dist));
      UNILOG_RETURN_NOT_OK(dec.GetVarint64(&len));
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("lz: bad match distance");
      }
      size_t src = out.size() - dist;
      // Byte-by-byte copy: matches may overlap their own output.
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      return Status::Corruption("lz: bad token tag");
    }
  }
  if (out.size() != expected_len) {
    return Status::Corruption("lz: length mismatch");
  }
  return out;
}

Lz::IncrementalDecompressor::IncrementalDecompressor(std::string_view block) {
  g_decompress_calls.fetch_add(1, std::memory_order_relaxed);
  Decoder dec(block);
  Status st = dec.GetVarint64(&expected_);
  if (!st.ok()) {
    status_ = st;
    return;
  }
  rest_ = block.substr(dec.position());
  // Cap the reservation: a corrupt header must not drive a huge allocation.
  out_.reserve(static_cast<size_t>(
      std::min<uint64_t>(expected_, 1u << 20)));
}

Status Lz::IncrementalDecompressor::DecodeUntil(size_t target) {
  if (!status_.ok()) return status_;
  while (out_.size() < target) {
    if (rest_.empty()) {
      // True end of block: only an error if the length header disagrees.
      if (out_.size() != expected_) {
        status_ = Status::Corruption("lz: truncated block");
        return status_;
      }
      return Status::OK();
    }
    Decoder dec(rest_);
    std::string_view tag;
    status_ = dec.GetBytes(1, &tag);
    if (!status_.ok()) return status_;
    if (tag[0] == '\x00') {
      std::string_view lit;
      status_ = dec.GetLengthPrefixed(&lit);
      if (!status_.ok()) return status_;
      out_.append(lit.data(), lit.size());
    } else if (tag[0] == '\x01') {
      uint64_t dist, len;
      status_ = dec.GetVarint64(&dist);
      if (!status_.ok()) return status_;
      status_ = dec.GetVarint64(&len);
      if (!status_.ok()) return status_;
      if (dist == 0 || dist > out_.size()) {
        status_ = Status::Corruption("lz: bad match distance");
        return status_;
      }
      size_t src = out_.size() - dist;
      // Byte-by-byte copy: matches may overlap their own output.
      for (uint64_t k = 0; k < len; ++k) {
        out_.push_back(out_[src + k]);
      }
    } else {
      status_ = Status::Corruption("lz: bad token tag");
      return status_;
    }
    if (out_.size() > expected_) {
      status_ = Status::Corruption("lz: length mismatch");
      return status_;
    }
    rest_ = rest_.substr(dec.position());
  }
  return Status::OK();
}

uint64_t Lz::CompressCallCount() {
  return g_compress_calls.load(std::memory_order_relaxed);
}

uint64_t Lz::DecompressCallCount() {
  return g_decompress_calls.load(std::memory_order_relaxed);
}

void Lz::ResetCompressionProbes() {
  g_compress_calls.store(0, std::memory_order_relaxed);
  g_decompress_calls.store(0, std::memory_order_relaxed);
}

}  // namespace unilog
