#include "common/status.h"

namespace unilog {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace unilog
