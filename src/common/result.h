#ifndef UNILOG_COMMON_RESULT_H_
#define UNILOG_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace unilog {

/// Result<T> holds either a value of type T or a non-OK Status explaining
/// why the value could not be produced. It is the return type of every
/// fallible operation that yields a value (Arrow's arrow::Result idiom).
///
/// Accessing value() on an error Result aborts the process: callers must
/// check ok() first (or use UNILOG_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& value() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& value() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when this Result holds an
  /// error.
  T value_or(T fallback) const {
    if (ok()) return *value_;
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace unilog

#endif  // UNILOG_COMMON_RESULT_H_
