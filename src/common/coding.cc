#include "common/coding.h"

namespace unilog {

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarint32(std::string* dst, uint32_t v) {
  PutVarint64(dst, v);
}

uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

uint32_t ZigZagEncode32(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^ static_cast<uint32_t>(v >> 31);
}

int32_t ZigZagDecode32(uint32_t v) {
  return static_cast<int32_t>(v >> 1) ^ -static_cast<int32_t>(v & 1);
}

void PutSignedVarint64(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode64(v));
}

void PutFixed32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    dst->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Status Decoder::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("truncated varint");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status Decoder::GetVarint32(uint32_t* v) {
  uint64_t v64;
  UNILOG_RETURN_NOT_OK(GetVarint64(&v64));
  if (v64 > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *v = static_cast<uint32_t>(v64);
  return Status::OK();
}

Status Decoder::GetSignedVarint64(int64_t* v) {
  uint64_t raw;
  UNILOG_RETURN_NOT_OK(GetVarint64(&raw));
  *v = ZigZagDecode64(raw);
  return Status::OK();
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  uint32_t result = 0;
  for (int i = 0; i < 4; ++i) {
    result |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++]))
              << (8 * i);
  }
  *v = result;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) {
    result |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
              << (8 * i);
  }
  *v = result;
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string_view* value) {
  uint64_t len;
  UNILOG_RETURN_NOT_OK(GetVarint64(&len));
  return GetBytes(static_cast<size_t>(len), value);
}

Status Decoder::GetBytes(size_t n, std::string_view* value) {
  if (remaining() < n) return Status::Corruption("truncated bytes");
  *value = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status Decoder::Skip(size_t n) {
  if (remaining() < n) return Status::Corruption("skip past end");
  pos_ += n;
  return Status::OK();
}

}  // namespace unilog
