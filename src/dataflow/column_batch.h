#ifndef UNILOG_DATAFLOW_COLUMN_BATCH_H_
#define UNILOG_DATAFLOW_COLUMN_BATCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/relation.h"

namespace unilog::dataflow {

/// Physical layout of one column inside a ColumnBatch. Columns are typed
/// flat arrays so the batch kernels run tight loops instead of per-row
/// std::variant dispatch; kDict carries per-batch dictionary-encoded
/// strings (codes + a shared dictionary), which is how RCFile v2 group
/// dictionaries flow through Filter/Project/GroupBy without a per-row
/// string ever being materialized.
enum class ColumnKind {
  kInt64,   // Value::Int
  kDouble,  // Value::Real
  kBool,    // Value::Bool
  kString,  // Value::Str, one std::string per row
  kDict,    // Value::Str, codes into a shared dictionary
  kValue,   // mixed-type fallback, one Value per row
};

/// Immutable column payload. Exactly one of the per-kind vectors is
/// populated (per `kind`); columns are shared between batches by
/// shared_ptr, so Project and selection-only Filter are O(1) per column.
struct ColumnData {
  ColumnKind kind = ColumnKind::kValue;
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint8_t> b1;
  std::vector<std::string> str;
  std::vector<uint32_t> codes;
  std::shared_ptr<const std::vector<std::string>> dict;
  std::vector<Value> vals;

  size_t size() const;
  /// Approximate heap footprint of the populated payload, the byte weight
  /// morsel-driven scheduling packs by. Shared dictionaries are charged to
  /// every column referencing them.
  uint64_t byte_size() const;
  /// Row `row` as a boxed Value (the facade back into the row engine).
  Value ValueAt(size_t row) const;
};

using ColumnPtr = std::shared_ptr<const ColumnData>;

/// Dictionaries larger than this fall back to plain kString columns: at
/// that point per-row codes stop paying for the indirection (and the
/// dictionary itself would dominate the batch).
inline constexpr size_t kMaxDictEntries = 256;

/// A batch of rows stored column-wise, with an optional selection vector.
/// Filter never copies column data — it only narrows the selection (a
/// sorted list of live row indices); downstream kernels iterate selected
/// rows only. All columns must have the same raw row count.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  ColumnBatch(std::vector<ColumnPtr> cols, size_t rows)
      : cols_(std::move(cols)), rows_(rows) {}

  size_t num_cols() const { return cols_.size(); }
  const ColumnPtr& col(size_t c) const { return cols_[c]; }
  /// Rows physically present in the columns.
  size_t raw_rows() const { return rows_; }
  /// Rows surviving the selection (== raw_rows() when unselected).
  size_t selected_rows() const { return has_sel_ ? sel_.size() : rows_; }

  bool has_selection() const { return has_sel_; }
  const std::vector<uint32_t>& selection() const { return sel_; }
  /// Installs a selection (ascending raw-row indices).
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }
  /// The raw row index of the k-th selected row.
  size_t RowIndex(size_t k) const { return has_sel_ ? sel_[k] : k; }

  /// Replaces the column set (same raw row count / selection).
  void SetColumns(std::vector<ColumnPtr> cols) { cols_ = std::move(cols); }
  /// Appends a column; the batch must be dense (no selection), since a
  /// freshly built column has one entry per physical row.
  void AppendColumn(ColumnPtr col) { cols_.push_back(std::move(col)); }

  /// Approximate heap footprint: selection vector plus every column's
  /// byte_size().
  uint64_t byte_size() const;

  /// Dense copy applying the selection. Dictionary columns keep their
  /// dictionary (codes are gathered, entries are not re-materialized).
  ColumnBatch Compact() const;

  /// Builds a typed column from boxed values: uniformly-typed inputs get
  /// flat arrays, all-string inputs get a first-appearance dictionary
  /// unless the cardinality exceeds kMaxDictEntries (then plain strings),
  /// mixed inputs fall back to kValue.
  static ColumnPtr BuildColumn(const std::vector<Value>& vals);

 private:
  std::vector<ColumnPtr> cols_;
  size_t rows_ = 0;
  bool has_sel_ = false;
  std::vector<uint32_t> sel_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_COLUMN_BATCH_H_
