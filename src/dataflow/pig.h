#ifndef UNILOG_DATAFLOW_PIG_H_
#define UNILOG_DATAFLOW_PIG_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/relation.h"

namespace unilog::dataflow {

class PushdownScan;

/// A miniature Pig Latin interpreter over the Relation layer, sufficient
/// to run the paper's §5.2 scripts verbatim (modulo quoting style):
///
///   define CountClientEvents CountClientEvents('$EVENTS');
///   raw = load '/session_sequences/$DATE' using SessionSequencesLoader();
///   generated = foreach raw generate CountClientEvents(sequence) as n;
///   grouped = group generated all;
///   count = foreach grouped generate SUM(n);
///   dump count;
///
/// Supported statements (case-insensitive keywords):
///   alias = LOAD 'path' USING Loader('arg', ...);
///   alias = FILTER rel BY <operand> <op> <operand>;      op: == != < <= > >= matches
///   alias = FOREACH rel GENERATE item [AS name], ...;    item: column | udf(args) | agg(col)
///   alias = GROUP rel ALL;  |  alias = GROUP rel BY col [, col];
///   alias = DISTINCT rel;
///   alias = ORDER rel BY col [ASC|DESC];
///   alias = LIMIT rel n;
///   alias = JOIN rel1 BY col1, rel2 BY col2;
///   DEFINE alias Factory('arg', ...);
///   DUMP alias;
///   DESCRIBE alias;
/// Aggregates (valid in FOREACH over a grouped relation): COUNT, SUM, MIN,
/// MAX, COUNT_DISTINCT, plus COUNT(*) via COUNT(rel-column or *).
/// `$PARAM` placeholders are substituted before parsing.
class PigInterpreter {
 public:
  /// A scalar UDF: row-level function of evaluated argument values.
  using ScalarUdf = std::function<Result<Value>(const std::vector<Value>& args)>;
  /// A UDF factory invoked by DEFINE with string constructor args.
  using UdfFactory =
      std::function<Result<ScalarUdf>(const std::vector<std::string>& args)>;
  /// A loader: path + args → relation.
  using Loader = std::function<Result<Relation>(
      const std::string& path, const std::vector<std::string>& args)>;
  /// A pushdown-capable loader: path + args → deferred scan. LOAD binds
  /// the scan instead of materializing; an immediately-following FILTER
  /// (column op literal) or pure-projection FOREACH is fused into it, and
  /// rows only materialize at the first non-fusible consumer.
  using ScanLoader = std::function<Result<std::shared_ptr<PushdownScan>>(
      const std::string& path, const std::vector<std::string>& args)>;

  PigInterpreter() = default;

  /// Attaches the unilog::exec engine: FILTER, row-level FOREACH, grouped
  /// FOREACH (GroupBy) and JOIN then fan rows out across worker threads,
  /// with outputs merged deterministically — script output is
  /// byte-identical to the serial interpreter at any thread count.
  /// Registered UDFs must be safe to call concurrently.
  void set_executor(exec::Executor* exec) { exec_ = exec; }

  /// Registers a loader usable in LOAD ... USING <name>(...).
  void RegisterLoader(const std::string& name, Loader loader);

  /// Registers a pushdown scan loader. Scan loaders are looked up before
  /// plain loaders of the same name.
  void RegisterScanLoader(const std::string& name, ScanLoader loader);

  /// Registers a UDF factory usable in DEFINE <alias> <name>(...). The
  /// factory may also be used directly in GENERATE with no DEFINE, in
  /// which case it is constructed with no arguments.
  void RegisterUdfFactory(const std::string& name, UdfFactory factory);

  /// Sets a $PARAM substitution.
  void SetParam(const std::string& name, const std::string& value);

  /// Runs a whole script (statements separated by ';'). Output of DUMP and
  /// DESCRIBE statements is appended to output().
  Status Run(const std::string& script);

  /// The relation bound to an alias; NotFound if undefined.
  Result<Relation> Lookup(const std::string& alias) const;

  /// Accumulated DUMP/DESCRIBE output lines.
  const std::vector<std::string>& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

 private:
  struct GroupedRelation {
    /// When `scan` is set, `data` holds only the schema (zero rows); the
    /// rows live behind the deferred scan until Materialized() runs it.
    Relation data;                    // the pre-group rows
    std::vector<std::string> keys;    // empty = GROUP ALL
    bool grouped = false;
    std::shared_ptr<PushdownScan> scan;
  };

  Status ExecuteStatement(const std::string& statement);
  Result<GroupedRelation> EvalExpression(class PigTokens* tokens);
  Result<GroupedRelation> LookupRel(const std::string& alias) const;
  /// Runs a deferred scan (pass-through for eager relations). The scan
  /// object is shared across alias copies, so repeat materializations hit
  /// its cache.
  Result<Relation> Materialized(const GroupedRelation& rel) const;

  exec::Executor* exec_ = nullptr;
  std::map<std::string, Loader> loaders_;
  std::map<std::string, ScanLoader> scan_loaders_;
  std::map<std::string, UdfFactory> factories_;
  std::map<std::string, ScalarUdf> defined_udfs_;
  std::map<std::string, std::string> params_;
  std::map<std::string, GroupedRelation> aliases_;
  std::vector<std::string> output_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_PIG_H_
