#include "dataflow/column_batch.h"

#include <map>

namespace unilog::dataflow {

size_t ColumnData::size() const {
  switch (kind) {
    case ColumnKind::kInt64:
      return i64.size();
    case ColumnKind::kDouble:
      return f64.size();
    case ColumnKind::kBool:
      return b1.size();
    case ColumnKind::kString:
      return str.size();
    case ColumnKind::kDict:
      return codes.size();
    case ColumnKind::kValue:
      return vals.size();
  }
  return 0;
}

uint64_t ColumnData::byte_size() const {
  uint64_t bytes = i64.size() * sizeof(int64_t) + f64.size() * sizeof(double) +
                   b1.size() + codes.size() * sizeof(uint32_t) +
                   vals.size() * sizeof(Value);
  for (const std::string& s : str) bytes += sizeof(std::string) + s.size();
  if (dict != nullptr) {
    for (const std::string& s : *dict) bytes += sizeof(std::string) + s.size();
  }
  return bytes;
}

Value ColumnData::ValueAt(size_t row) const {
  switch (kind) {
    case ColumnKind::kInt64:
      return Value::Int(i64[row]);
    case ColumnKind::kDouble:
      return Value::Real(f64[row]);
    case ColumnKind::kBool:
      return Value::Bool(b1[row] != 0);
    case ColumnKind::kString:
      return Value::Str(str[row]);
    case ColumnKind::kDict:
      return Value::Str((*dict)[codes[row]]);
    case ColumnKind::kValue:
      return vals[row];
  }
  return Value();
}

uint64_t ColumnBatch::byte_size() const {
  uint64_t bytes = sel_.size() * sizeof(uint32_t);
  for (const ColumnPtr& col : cols_) {
    if (col != nullptr) bytes += col->byte_size();
  }
  return bytes;
}

ColumnBatch ColumnBatch::Compact() const {
  if (!has_sel_) return *this;
  std::vector<ColumnPtr> cols;
  cols.reserve(cols_.size());
  for (const ColumnPtr& src : cols_) {
    auto dst = std::make_shared<ColumnData>();
    dst->kind = src->kind;
    switch (src->kind) {
      case ColumnKind::kInt64:
        dst->i64.reserve(sel_.size());
        for (uint32_t r : sel_) dst->i64.push_back(src->i64[r]);
        break;
      case ColumnKind::kDouble:
        dst->f64.reserve(sel_.size());
        for (uint32_t r : sel_) dst->f64.push_back(src->f64[r]);
        break;
      case ColumnKind::kBool:
        dst->b1.reserve(sel_.size());
        for (uint32_t r : sel_) dst->b1.push_back(src->b1[r]);
        break;
      case ColumnKind::kString:
        dst->str.reserve(sel_.size());
        for (uint32_t r : sel_) dst->str.push_back(src->str[r]);
        break;
      case ColumnKind::kDict:
        dst->dict = src->dict;
        dst->codes.reserve(sel_.size());
        for (uint32_t r : sel_) dst->codes.push_back(src->codes[r]);
        break;
      case ColumnKind::kValue:
        dst->vals.reserve(sel_.size());
        for (uint32_t r : sel_) dst->vals.push_back(src->vals[r]);
        break;
    }
    cols.push_back(std::move(dst));
  }
  return ColumnBatch(std::move(cols), sel_.size());
}

ColumnPtr ColumnBatch::BuildColumn(const std::vector<Value>& vals) {
  auto col = std::make_shared<ColumnData>();
  bool all_int = true, all_real = true, all_bool = true, all_str = true;
  for (const Value& v : vals) {
    all_int = all_int && v.is_int();
    all_real = all_real && v.is_real();
    all_bool = all_bool && v.is_bool();
    all_str = all_str && v.is_str();
  }
  if (vals.empty() || all_int) {
    col->kind = ColumnKind::kInt64;
    col->i64.reserve(vals.size());
    for (const Value& v : vals) col->i64.push_back(v.int_value());
    return col;
  }
  if (all_real) {
    col->kind = ColumnKind::kDouble;
    col->f64.reserve(vals.size());
    for (const Value& v : vals) col->f64.push_back(v.real_value());
    return col;
  }
  if (all_bool) {
    col->kind = ColumnKind::kBool;
    col->b1.reserve(vals.size());
    for (const Value& v : vals) col->b1.push_back(v.bool_value() ? 1 : 0);
    return col;
  }
  if (all_str) {
    // First-appearance dictionary, overflowing to plain strings when the
    // cardinality stops paying for the indirection.
    std::map<std::string, uint32_t> index;
    auto entries = std::make_shared<std::vector<std::string>>();
    std::vector<uint32_t> codes;
    codes.reserve(vals.size());
    bool overflow = false;
    for (const Value& v : vals) {
      auto [it, inserted] =
          index.try_emplace(v.str_value(), static_cast<uint32_t>(entries->size()));
      if (inserted) {
        if (entries->size() >= kMaxDictEntries) {
          overflow = true;
          break;
        }
        entries->push_back(v.str_value());
      }
      codes.push_back(it->second);
    }
    if (!overflow) {
      col->kind = ColumnKind::kDict;
      col->codes = std::move(codes);
      col->dict = std::move(entries);
      return col;
    }
    col->kind = ColumnKind::kString;
    col->str.reserve(vals.size());
    for (const Value& v : vals) col->str.push_back(v.str_value());
    return col;
  }
  col->kind = ColumnKind::kValue;
  col->vals = vals;
  return col;
}

}  // namespace unilog::dataflow
