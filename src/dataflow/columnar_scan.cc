#include "dataflow/columnar_scan.h"

#include <algorithm>
#include <set>

#include "common/compress.h"
#include "dataflow/plan_fingerprint.h"
#include "events/client_event.h"
#include "events/event_name.h"

namespace unilog::dataflow {

namespace {

using columnar::EventColumn;

/// The six relational columns a client-event scan exposes (details stays
/// a storage-only column; the eager loader never exposed it either).
const std::vector<std::pair<std::string, EventColumn>> kDefaultVisible = {
    {"initiator", EventColumn::kInitiator},
    {"event_name", EventColumn::kEventName},
    {"user_id", EventColumn::kUserId},
    {"session_id", EventColumn::kSessionId},
    {"ip", EventColumn::kIp},
    {"timestamp", EventColumn::kTimestamp},
};

Value ColumnValue(const events::ClientEvent& ev, EventColumn col) {
  switch (col) {
    case EventColumn::kInitiator:
      return Value::Str(events::EventInitiatorName(ev.initiator));
    case EventColumn::kEventName:
      return Value::Str(ev.event_name);
    case EventColumn::kUserId:
      return Value::Int(ev.user_id);
    case EventColumn::kSessionId:
      return Value::Str(ev.session_id);
    case EventColumn::kIp:
      return Value::Str(ev.ip);
    case EventColumn::kTimestamp:
      return Value::Int(ev.timestamp);
    case EventColumn::kDetails:
      break;
  }
  return Value();
}

/// Projects one event into a relation row under a visible-column list.
Row ProjectEvent(
    const events::ClientEvent& event,
    const std::vector<std::pair<std::string, EventColumn>>& visible) {
  Row row;
  row.reserve(visible.size());
  for (const auto& [name, source] : visible) {
    row.push_back(ColumnValue(event, source));
  }
  return row;
}

ColumnPtr MakeInt64Column(std::vector<int64_t> v) {
  auto col = std::make_shared<ColumnData>();
  col->kind = ColumnKind::kInt64;
  col->i64 = std::move(v);
  return col;
}

ColumnPtr MakeStringColumn(std::vector<std::string> v) {
  auto col = std::make_shared<ColumnData>();
  col->kind = ColumnKind::kString;
  col->str = std::move(v);
  return col;
}

ColumnPtr MakeDictColumn(std::vector<uint32_t> codes,
                         std::shared_ptr<const std::vector<std::string>> dict) {
  auto col = std::make_shared<ColumnData>();
  col->kind = ColumnKind::kDict;
  col->codes = std::move(codes);
  col->dict = std::move(dict);
  return col;
}

/// Typed columns of one scanned columnar group, indexed by source event
/// column. Builds lazily and moves the group's arrays, so each source is
/// converted at most once and shared by every consumer referencing it.
class GroupColumnSource {
 public:
  explicit GroupColumnSource(columnar::RcFileReader::ColumnarGroup cg)
      : cg_(std::move(cg)) {}

  size_t rows() const { return cg_.rows; }

  const ColumnPtr& Get(EventColumn source) {
    ColumnPtr& slot = by_source_[static_cast<int>(source)];
    if (slot != nullptr) return slot;
    switch (source) {
      case EventColumn::kInitiator:
        slot = MakeDictColumn(std::move(cg_.init_codes), cg_.init_dict);
        break;
      case EventColumn::kEventName:
        slot = cg_.name_dict != nullptr
                   ? MakeDictColumn(std::move(cg_.name_codes), cg_.name_dict)
                   : MakeStringColumn(std::move(cg_.name_strs));
        break;
      case EventColumn::kUserId:
        slot = MakeInt64Column(std::move(cg_.user_ids));
        break;
      case EventColumn::kSessionId:
        slot = MakeStringColumn(std::move(cg_.session_ids));
        break;
      case EventColumn::kIp:
        slot = MakeStringColumn(std::move(cg_.ips));
        break;
      case EventColumn::kTimestamp:
        slot = MakeInt64Column(std::move(cg_.timestamps));
        break;
      case EventColumn::kDetails:
        slot = std::make_shared<ColumnData>();
        break;
    }
    return slot;
  }

  /// Batch for a visible projection over this group's columns.
  ColumnBatch BatchFor(
      const std::vector<std::pair<std::string, EventColumn>>& visible) {
    std::vector<ColumnPtr> cols;
    cols.reserve(visible.size());
    for (const auto& [name, source] : visible) cols.push_back(Get(source));
    return ColumnBatch(std::move(cols), cg_.rows);
  }

 private:
  columnar::RcFileReader::ColumnarGroup cg_;
  ColumnPtr by_source_[columnar::kEventColumns];
};

/// Batch for a legacy (row-decoded) unit: boxed values through
/// BuildColumn, per visible column.
ColumnBatch BatchFromEvents(
    const std::vector<events::ClientEvent>& events,
    const std::vector<std::pair<std::string, EventColumn>>& visible) {
  std::vector<ColumnPtr> cols;
  cols.reserve(visible.size());
  std::vector<Value> vals(events.size());
  for (const auto& [name, source] : visible) {
    for (size_t i = 0; i < events.size(); ++i) {
      vals[i] = ColumnValue(events[i], source);
    }
    cols.push_back(ColumnBatch::BuildColumn(vals));
  }
  return ColumnBatch(std::move(cols), events.size());
}

/// CompiledSpec-equivalent name check for the batch residual path (the
/// rcfile one is file-local): allowlist membership plus every glob.
bool NameMatchesSpec(const columnar::ScanSpec& spec,
                     const std::vector<events::EventPattern>& patterns,
                     std::string_view name) {
  if (spec.event_names.has_value() &&
      spec.event_names->count(std::string(name)) == 0) {
    return false;
  }
  for (const auto& p : patterns) {
    if (!p.Matches(name)) return false;
  }
  return true;
}

/// RowMatcher::Matches over typed group columns: selects the rows of
/// [0, rows) the member spec admits. Dictionary name columns evaluate
/// the name predicate once per dictionary entry; rows that predicate
/// rejects are counted into `dict_pruned` (their strings were never
/// touched).
std::vector<uint32_t> ResidualSelect(
    const columnar::ScanSpec& spec,
    const std::vector<events::EventPattern>& patterns,
    GroupColumnSource* source, uint64_t* dict_pruned) {
  const size_t rows = source->rows();
  std::vector<uint8_t> keep(rows, 1);
  if (spec.min_timestamp.has_value() || spec.max_timestamp.has_value()) {
    const ColumnData& ts = *source->Get(EventColumn::kTimestamp);
    for (size_t r = 0; r < rows; ++r) {
      if (spec.min_timestamp.has_value() && ts.i64[r] < *spec.min_timestamp) {
        keep[r] = 0;
      }
      if (spec.max_timestamp.has_value() && ts.i64[r] > *spec.max_timestamp) {
        keep[r] = 0;
      }
    }
  }
  if (spec.has_name_predicate()) {
    const ColumnData& names = *source->Get(EventColumn::kEventName);
    if (names.kind == ColumnKind::kDict) {
      std::vector<uint8_t> verdict(names.dict->size());
      for (size_t d = 0; d < names.dict->size(); ++d) {
        verdict[d] = NameMatchesSpec(spec, patterns, (*names.dict)[d]) ? 1 : 0;
      }
      for (size_t r = 0; r < rows; ++r) {
        if (verdict[names.codes[r]] == 0) {
          keep[r] = 0;
          ++*dict_pruned;
        }
      }
    } else {
      for (size_t r = 0; r < rows; ++r) {
        if (!NameMatchesSpec(spec, patterns, names.str[r])) keep[r] = 0;
      }
    }
  }
  if (spec.user_ids.has_value()) {
    const ColumnData& uids = *source->Get(EventColumn::kUserId);
    for (size_t r = 0; r < rows; ++r) {
      if (spec.user_ids->count(uids.i64[r]) == 0) keep[r] = 0;
    }
  }
  std::vector<uint32_t> sel;
  sel.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    if (keep[r]) sel.push_back(static_cast<uint32_t>(r));
  }
  return sel;
}

/// Byte weights for morsel-driven scan scheduling: a columnar unit weighs
/// its row group's full extent (header + compressed blobs), a legacy unit
/// its whole file body. Templated so the private ScanUnit type never
/// needs naming here.
template <typename UnitVec>
std::vector<uint64_t> UnitWeights(const UnitVec& units) {
  std::vector<uint64_t> weights(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    weights[i] = units[i].is_columnar
                     ? units[i].group.byte_length
                     : static_cast<uint64_t>(units[i].file->body.size());
  }
  return weights;
}

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// Header-only TableStats of one file body (the unit the stats cache
/// memoizes): v2 rowgroup zone maps and dictionaries via
/// CollectGroupStats, legacy bodies contribute bytes only.
Result<TableStats> FileTableStats(const std::string& body) {
  TableStats total;
  if (columnar::IsRcFile(body)) {
    columnar::RcFileReader reader(body);
    UNILOG_ASSIGN_OR_RETURN(auto groups, reader.CollectGroupStats());
    for (const auto& gs : groups) {
      TableStats t;
      t.total_rows = gs.row_count;
      t.row_groups = 1;
      t.data_bytes = gs.blob_bytes;
      if (gs.has_zone_map) {
        t.min_timestamp = gs.min_timestamp;
        t.max_timestamp = gs.max_timestamp;
        t.min_user_id = gs.min_user_id;
        t.max_user_id = gs.max_user_id;
        for (const auto& name : gs.event_names) {
          t.name_rows[name] = gs.row_count;
        }
        for (const auto& name : gs.initiators) {
          t.initiator_rows[name] = gs.row_count;
        }
        t.from_v2 = true;
      }
      total.Merge(t);
    }
  } else {
    TableStats t;
    t.data_bytes = body.size();
    total.Merge(t);
  }
  return total;
}

}  // namespace

bool IsHiddenWarehousePath(const std::string& dir, const std::string& path) {
  // Listings hand back absolute paths under `dir`; anything else is
  // checked whole (defensive — never out of bounds).
  size_t start = path.compare(0, dir.size(), dir) == 0 ? dir.size() : 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    if (path[start] == '_') return true;
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  return false;
}

Result<std::shared_ptr<ColumnarEventScan>> ColumnarEventScan::Open(
    const hdfs::MiniHdfs* fs, const std::string& dir,
    obs::MetricsRegistry* metrics) {
  auto files = std::make_shared<std::vector<LoadedFile>>();
  UNILOG_ASSIGN_OR_RETURN(auto listing, fs->ListRecursive(dir));
  for (const auto& entry : listing) {
    if (IsHiddenWarehousePath(dir, entry.path)) continue;
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs->ReadFile(entry.path));
    files->push_back({entry.path, std::move(body), entry.size, entry.mtime});
  }

  auto scan = std::shared_ptr<ColumnarEventScan>(new ColumnarEventScan());
  scan->files_ = std::move(files);
  scan->source_ = dir;
  scan->metrics_ = metrics;
  scan->visible_ = kDefaultVisible;
  scan->SyncColumnMask();
  return scan;
}

std::shared_ptr<ColumnarEventScan> ColumnarEventScan::PlanOnly() {
  auto scan = std::shared_ptr<ColumnarEventScan>(new ColumnarEventScan());
  scan->files_ = std::make_shared<std::vector<LoadedFile>>();
  scan->source_ = "(plan-only)";
  scan->visible_ = kDefaultVisible;
  scan->SyncColumnMask();
  return scan;
}

const std::vector<std::string>& ColumnarEventScan::columns() const {
  return column_names_;
}

std::shared_ptr<PushdownScan> ColumnarEventScan::Clone() const {
  return std::shared_ptr<ColumnarEventScan>(new ColumnarEventScan(*this));
}

std::optional<EventColumn> ColumnarEventScan::Resolve(
    const std::string& name) const {
  for (const auto& [visible_name, source] : visible_) {
    if (visible_name == name) return source;
  }
  return std::nullopt;
}

void ColumnarEventScan::SyncColumnMask() {
  column_names_.clear();
  columnar::ColumnMask mask = 0;
  for (const auto& [name, source] : visible_) {
    column_names_.push_back(name);
    mask |= columnar::ColumnBit(source);
  }
  spec_.columns = mask;
}

bool ColumnarEventScan::PushFilter(const std::string& column,
                                   const std::string& op,
                                   const Value& literal) {
  std::optional<EventColumn> source = Resolve(column);
  if (!source.has_value()) return false;

  auto tighten_min = [this](int64_t v) {
    spec_.min_timestamp =
        spec_.min_timestamp ? std::max(*spec_.min_timestamp, v) : v;
  };
  auto tighten_max = [this](int64_t v) {
    spec_.max_timestamp =
        spec_.max_timestamp ? std::min(*spec_.max_timestamp, v) : v;
  };
  auto intersect =
      [](auto& target, const auto& value) {
        if (!target.has_value()) {
          target.emplace();
          target->insert(value);
        } else if (target->count(value)) {
          target->clear();
          target->insert(value);
        } else {
          // Contradictory equalities: empty allowlist (zero rows, still
          // correct — and every group gets dictionary-skipped).
          target->clear();
        }
      };

  switch (*source) {
    case EventColumn::kTimestamp: {
      if (!literal.is_int()) return false;
      int64_t v = literal.int_value();
      if (op == "==") {
        tighten_min(v);
        tighten_max(v);
      } else if (op == "<=") {
        tighten_max(v);
      } else if (op == ">=") {
        tighten_min(v);
      } else if (op == "<") {
        // Strict bounds fold into the inclusive zone-map ranges; at the
        // integer extreme there is no representable inclusive bound.
        if (v == INT64_MIN) return false;
        tighten_max(v - 1);
      } else if (op == ">") {
        if (v == INT64_MAX) return false;
        tighten_min(v + 1);
      } else {
        return false;
      }
      cache_.reset();
      batch_cache_.reset();
      return true;
    }
    case EventColumn::kEventName: {
      if (!literal.is_str()) return false;
      if (op == "==") {
        intersect(spec_.event_names, literal.str_value());
      } else if (op == "matches") {
        spec_.event_name_patterns.push_back(literal.str_value());
      } else {
        return false;
      }
      cache_.reset();
      batch_cache_.reset();
      return true;
    }
    case EventColumn::kUserId: {
      if (!literal.is_int() || op != "==") return false;
      intersect(spec_.user_ids, literal.int_value());
      cache_.reset();
      batch_cache_.reset();
      return true;
    }
    default:
      return false;
  }
}

bool ColumnarEventScan::PushProject(const std::vector<std::string>& cols,
                                    const std::vector<std::string>& names) {
  if (cols.size() != names.size()) return false;
  std::vector<std::pair<std::string, EventColumn>> next;
  next.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    std::optional<EventColumn> source = Resolve(cols[i]);
    if (!source.has_value()) return false;
    next.push_back({names[i], *source});
  }
  visible_ = std::move(next);
  SyncColumnMask();
  cache_.reset();
  batch_cache_.reset();
  return true;
}

Result<std::vector<ColumnarEventScan::ScanUnit>> ColumnarEventScan::PlanUnits(
    const std::vector<LoadedFile>& files) {
  std::vector<ScanUnit> units;
  for (const auto& file : files) {
    if (columnar::IsRcFile(file.body)) {
      columnar::RcFileReader reader(file.body);
      UNILOG_ASSIGN_OR_RETURN(auto groups, reader.IndexGroups());
      for (const auto& group : groups) {
        units.push_back({&file, true, group});
      }
    } else {
      units.push_back({&file, false, {}});
    }
  }
  return units;
}

Status ColumnarEventScan::ScanUnitEvents(
    const ScanUnit& unit, const columnar::ScanSpec& spec,
    const columnar::RowMatcher& legacy_matcher,
    std::vector<events::ClientEvent>* events, columnar::ScanStats* stats) {
  if (unit.is_columnar) {
    columnar::RcFileReader reader(unit.file->body);
    return reader.ScanGroup(unit.group, spec, events, stats);
  }
  // Legacy framed-compressed part: no zone maps, so the whole file is
  // one always-scanned group filtered row-wise.
  stats->groups_total++;
  stats->groups_scanned++;
  stats->bytes_decompressed += unit.file->body.size();
  UNILOG_ASSIGN_OR_RETURN(std::string body, Lz::Decompress(unit.file->body));
  events::ClientEventReader reader(body);
  events::ClientEvent ev;
  while (true) {
    Status st = reader.Next(&ev);
    if (st.IsNotFound()) break;
    UNILOG_RETURN_NOT_OK(st);
    stats->rows_scanned++;
    if (legacy_matcher.Matches(ev)) {
      stats->rows_returned++;
      events->push_back(ev);
    } else {
      stats->rows_pruned++;
    }
  }
  return Status::OK();
}

Result<Relation> ColumnarEventScan::Materialize(exec::Executor* exec) {
  if (cache_.has_value()) return *cache_;

  // Units carry their own reader state, so bodies share nothing but the
  // immutable file set and the spec.
  UNILOG_ASSIGN_OR_RETURN(std::vector<ScanUnit> units, PlanUnits(*files_));

  columnar::RowMatcher legacy_matcher(spec_);
  std::vector<std::vector<Row>> row_slots(units.size());
  std::vector<columnar::ScanStats> stat_slots(units.size());

  auto run_unit = [&](size_t i) -> Status {
    std::vector<events::ClientEvent> events;
    UNILOG_RETURN_NOT_OK(ScanUnitEvents(units[i], spec_, legacy_matcher,
                                        &events, &stat_slots[i]));
    std::vector<Row>& rows = row_slots[i];
    rows.reserve(events.size());
    for (const auto& event : events) {
      rows.push_back(ProjectEvent(event, visible_));
    }
    return Status::OK();
  };

  if (exec != nullptr) {
    UNILOG_RETURN_NOT_OK(exec->ParallelForMorsels(
        "columnar_scan", UnitWeights(units), morsel_options_,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            UNILOG_RETURN_NOT_OK(run_unit(i));
          }
          return Status::OK();
        }));
  } else {
    for (size_t i = 0; i < units.size(); ++i) {
      UNILOG_RETURN_NOT_OK(run_unit(i));
    }
  }

  // In-order merge: unit order is file order (sorted listing) x group
  // order, which matches what a serial scan of the same files yields.
  last_stats_ = columnar::ScanStats();
  std::vector<Row> merged;
  size_t total = 0;
  for (const auto& slot : row_slots) total += slot.size();
  merged.reserve(total);
  for (size_t i = 0; i < units.size(); ++i) {
    last_stats_.MergeFrom(stat_slots[i]);
    for (auto& row : row_slots[i]) {
      merged.push_back(std::move(row));
    }
  }
  columnar::ReportScanStats(last_stats_, metrics_, source_);

  UNILOG_ASSIGN_OR_RETURN(Relation rel,
                          Relation::FromRows(column_names_, std::move(merged)));
  cache_ = rel;
  return rel;
}

Result<std::vector<Relation>> ColumnarEventScan::MaterializeShared(
    const std::vector<std::shared_ptr<ColumnarEventScan>>& members,
    exec::Executor* exec, columnar::ScanStats* stats_out) {
  if (members.empty()) return std::vector<Relation>{};
  for (const auto& member : members) {
    if (member == nullptr || member->files_ != members[0]->files_) {
      return Status::InvalidArgument(
          "shared scan members must be clones of one opened scan");
    }
  }

  std::vector<columnar::ScanSpec> specs;
  specs.reserve(members.size());
  for (const auto& member : members) specs.push_back(member->spec_);
  const columnar::ScanSpec merged_spec = MergeScanSpecs(specs);

  UNILOG_ASSIGN_OR_RETURN(std::vector<ScanUnit> units,
                          PlanUnits(*members[0]->files_));

  // Residual matchers re-tighten the union rows per member; compiled once,
  // shared read-only across scan units.
  std::vector<columnar::RowMatcher> residual;
  residual.reserve(members.size());
  for (const auto& member : members) residual.emplace_back(member->spec_);
  columnar::RowMatcher merged_matcher(merged_spec);

  // row_slots[m][u]: member m's rows from unit u, merged in unit order so
  // each member's output is byte-identical to its independent scan.
  std::vector<std::vector<std::vector<Row>>> row_slots(
      members.size(), std::vector<std::vector<Row>>(units.size()));
  std::vector<columnar::ScanStats> stat_slots(units.size());

  auto run_unit = [&](size_t u) -> Status {
    std::vector<events::ClientEvent> events;
    UNILOG_RETURN_NOT_OK(ScanUnitEvents(units[u], merged_spec, merged_matcher,
                                        &events, &stat_slots[u]));
    for (size_t m = 0; m < members.size(); ++m) {
      std::vector<Row>& rows = row_slots[m][u];
      for (const auto& event : events) {
        if (!residual[m].Matches(event)) continue;
        rows.push_back(ProjectEvent(event, members[m]->visible_));
      }
    }
    return Status::OK();
  };

  if (exec != nullptr) {
    UNILOG_RETURN_NOT_OK(exec->ParallelForMorsels(
        "shared_scan", UnitWeights(units), members[0]->morsel_options_,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t u = begin; u < end; ++u) {
            UNILOG_RETURN_NOT_OK(run_unit(u));
          }
          return Status::OK();
        }));
  } else {
    for (size_t u = 0; u < units.size(); ++u) {
      UNILOG_RETURN_NOT_OK(run_unit(u));
    }
  }

  columnar::ScanStats total;
  for (const auto& stats : stat_slots) total.MergeFrom(stats);
  columnar::ReportScanStats(total, members[0]->metrics_, members[0]->source_);
  if (stats_out != nullptr) stats_out->MergeFrom(total);

  std::vector<Relation> out;
  out.reserve(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    std::vector<Row> merged;
    size_t n = 0;
    for (const auto& slot : row_slots[m]) n += slot.size();
    merged.reserve(n);
    for (auto& slot : row_slots[m]) {
      for (auto& row : slot) merged.push_back(std::move(row));
    }
    UNILOG_ASSIGN_OR_RETURN(
        Relation rel,
        Relation::FromRows(members[m]->column_names_, std::move(merged)));
    members[m]->last_stats_ = total;
    members[m]->cache_ = rel;
    out.push_back(std::move(rel));
  }
  return out;
}

Result<BatchRelation> ColumnarEventScan::MaterializeBatches(
    exec::Executor* exec) {
  if (batch_cache_.has_value()) return *batch_cache_;

  UNILOG_ASSIGN_OR_RETURN(std::vector<ScanUnit> units, PlanUnits(*files_));

  columnar::RowMatcher legacy_matcher(spec_);
  std::vector<ColumnBatch> batch_slots(units.size());
  std::vector<columnar::ScanStats> stat_slots(units.size());

  auto run_unit = [&](size_t i) -> Status {
    if (units[i].is_columnar) {
      columnar::RcFileReader reader(units[i].file->body);
      columnar::RcFileReader::ColumnarGroup cg;
      UNILOG_RETURN_NOT_OK(reader.ScanGroupColumnar(units[i].group, spec_, &cg,
                                                    &stat_slots[i]));
      GroupColumnSource source(std::move(cg));
      batch_slots[i] = source.BatchFor(visible_);
    } else {
      std::vector<events::ClientEvent> events;
      UNILOG_RETURN_NOT_OK(ScanUnitEvents(units[i], spec_, legacy_matcher,
                                          &events, &stat_slots[i]));
      batch_slots[i] = BatchFromEvents(events, visible_);
    }
    return Status::OK();
  };

  if (exec != nullptr) {
    UNILOG_RETURN_NOT_OK(exec->ParallelForMorsels(
        "columnar_scan_batch", UnitWeights(units), morsel_options_,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t i = begin; i < end; ++i) {
            UNILOG_RETURN_NOT_OK(run_unit(i));
          }
          return Status::OK();
        }));
  } else {
    for (size_t i = 0; i < units.size(); ++i) {
      UNILOG_RETURN_NOT_OK(run_unit(i));
    }
  }

  last_stats_ = columnar::ScanStats();
  for (const auto& stats : stat_slots) last_stats_.MergeFrom(stats);
  columnar::ReportScanStats(last_stats_, metrics_, source_);

  // Unit order is file order (sorted listing) x group order — the same
  // merge the row path does, so ToRelation() is byte-identical to it.
  std::vector<ColumnBatch> batches;
  batches.reserve(batch_slots.size());
  for (ColumnBatch& b : batch_slots) {
    if (b.raw_rows() > 0) batches.push_back(std::move(b));
  }
  UNILOG_ASSIGN_OR_RETURN(
      BatchRelation rel,
      BatchRelation::FromBatches(column_names_, std::move(batches)));
  batch_cache_ = rel;
  return rel;
}

Result<std::vector<BatchRelation>> ColumnarEventScan::MaterializeSharedBatches(
    const std::vector<std::shared_ptr<ColumnarEventScan>>& members,
    exec::Executor* exec, columnar::ScanStats* stats_out) {
  if (members.empty()) return std::vector<BatchRelation>{};
  for (const auto& member : members) {
    if (member == nullptr || member->files_ != members[0]->files_) {
      return Status::InvalidArgument(
          "shared scan members must be clones of one opened scan");
    }
  }

  std::vector<columnar::ScanSpec> specs;
  specs.reserve(members.size());
  for (const auto& member : members) specs.push_back(member->spec_);
  const columnar::ScanSpec merged_spec = MergeScanSpecs(specs);

  UNILOG_ASSIGN_OR_RETURN(std::vector<ScanUnit> units,
                          PlanUnits(*members[0]->files_));

  // Per-member glob patterns compiled once, shared read-only by units.
  std::vector<std::vector<events::EventPattern>> member_patterns(
      members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    member_patterns[m].reserve(members[m]->spec_.event_name_patterns.size());
    for (const auto& p : members[m]->spec_.event_name_patterns) {
      member_patterns[m].emplace_back(p);
    }
  }
  std::vector<columnar::RowMatcher> residual;
  residual.reserve(members.size());
  for (const auto& member : members) residual.emplace_back(member->spec_);
  columnar::RowMatcher merged_matcher(merged_spec);

  // batch_slots[m][u]: member m's batch from unit u. Columnar units decode
  // once and every member's batch references the same column arrays, with
  // only the selection vector (and projection) per member.
  std::vector<std::vector<ColumnBatch>> batch_slots(
      members.size(), std::vector<ColumnBatch>(units.size()));
  std::vector<columnar::ScanStats> stat_slots(units.size());

  auto run_unit = [&](size_t u) -> Status {
    if (units[u].is_columnar) {
      columnar::RcFileReader reader(units[u].file->body);
      columnar::RcFileReader::ColumnarGroup cg;
      UNILOG_RETURN_NOT_OK(reader.ScanGroupColumnar(units[u].group, merged_spec,
                                                    &cg, &stat_slots[u]));
      GroupColumnSource source(std::move(cg));
      for (size_t m = 0; m < members.size(); ++m) {
        ColumnBatch b = source.BatchFor(members[m]->visible_);
        if (members[m]->spec_.has_predicates()) {
          b.SetSelection(ResidualSelect(members[m]->spec_, member_patterns[m],
                                        &source,
                                        &stat_slots[u].dict_domain_rows_pruned));
        }
        batch_slots[m][u] = std::move(b);
      }
    } else {
      std::vector<events::ClientEvent> events;
      UNILOG_RETURN_NOT_OK(ScanUnitEvents(units[u], merged_spec,
                                          merged_matcher, &events,
                                          &stat_slots[u]));
      for (size_t m = 0; m < members.size(); ++m) {
        std::vector<events::ClientEvent> kept;
        kept.reserve(events.size());
        for (const auto& event : events) {
          if (residual[m].Matches(event)) kept.push_back(event);
        }
        batch_slots[m][u] = BatchFromEvents(kept, members[m]->visible_);
      }
    }
    return Status::OK();
  };

  if (exec != nullptr) {
    UNILOG_RETURN_NOT_OK(exec->ParallelForMorsels(
        "shared_scan_batch", UnitWeights(units), members[0]->morsel_options_,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t u = begin; u < end; ++u) {
            UNILOG_RETURN_NOT_OK(run_unit(u));
          }
          return Status::OK();
        }));
  } else {
    for (size_t u = 0; u < units.size(); ++u) {
      UNILOG_RETURN_NOT_OK(run_unit(u));
    }
  }

  columnar::ScanStats total;
  for (const auto& stats : stat_slots) total.MergeFrom(stats);
  columnar::ReportScanStats(total, members[0]->metrics_, members[0]->source_);
  if (stats_out != nullptr) stats_out->MergeFrom(total);

  std::vector<BatchRelation> out;
  out.reserve(members.size());
  for (size_t m = 0; m < members.size(); ++m) {
    std::vector<ColumnBatch> batches;
    batches.reserve(units.size());
    for (ColumnBatch& b : batch_slots[m]) {
      if (b.selected_rows() > 0) batches.push_back(std::move(b));
    }
    UNILOG_ASSIGN_OR_RETURN(
        BatchRelation rel,
        BatchRelation::FromBatches(members[m]->column_names_,
                                   std::move(batches)));
    members[m]->last_stats_ = total;
    members[m]->batch_cache_ = rel;
    out.push_back(std::move(rel));
  }
  return out;
}

Result<TableStats> ColumnarEventScan::Stats() const { return Stats(nullptr); }

Result<TableStats> ColumnarEventScan::Stats(TableStatsCache* cache) const {
  TableStats total;
  for (const auto& file : *files_) {
    if (cache != nullptr) {
      const std::string stat_key = file.path + "|" + std::to_string(file.size) +
                                   "|" + std::to_string(file.mtime);
      if (auto hit = cache->FindByStat(stat_key)) {
        total.Merge(*hit);
        continue;
      }
      // Content key: the header-only v2 fingerprint, or size+mtime for
      // files without embedded checksums (mirrors the Oink manifest).
      std::string content_key;
      if (columnar::IsRcFile(file.body)) {
        columnar::RcFileReader reader(file.body);
        Result<uint64_t> fp = reader.ContentFingerprint();
        if (fp.ok()) {
          content_key = "rcfp:" + HexU64(*fp);
        } else if (!fp.status().IsFailedPrecondition()) {
          return fp.status();
        }
      }
      if (content_key.empty()) {
        content_key = "szmt:" + std::to_string(file.size) + ":" +
                      std::to_string(file.mtime);
      }
      if (auto hit = cache->FindByContent(stat_key, content_key)) {
        total.Merge(*hit);
        continue;
      }
      UNILOG_ASSIGN_OR_RETURN(TableStats t, FileTableStats(file.body));
      cache->Put(stat_key, content_key, t);
      total.Merge(t);
      continue;
    }
    UNILOG_ASSIGN_OR_RETURN(TableStats t, FileTableStats(file.body));
    total.Merge(t);
  }
  return total;
}

}  // namespace unilog::dataflow
