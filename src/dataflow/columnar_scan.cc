#include "dataflow/columnar_scan.h"

#include <algorithm>
#include <set>

#include "common/compress.h"
#include "events/client_event.h"
#include "events/event_name.h"

namespace unilog::dataflow {

namespace {

using columnar::EventColumn;

/// The six relational columns a client-event scan exposes (details stays
/// a storage-only column; the eager loader never exposed it either).
const std::vector<std::pair<std::string, EventColumn>> kDefaultVisible = {
    {"initiator", EventColumn::kInitiator},
    {"event_name", EventColumn::kEventName},
    {"user_id", EventColumn::kUserId},
    {"session_id", EventColumn::kSessionId},
    {"ip", EventColumn::kIp},
    {"timestamp", EventColumn::kTimestamp},
};

Value ColumnValue(const events::ClientEvent& ev, EventColumn col) {
  switch (col) {
    case EventColumn::kInitiator:
      return Value::Str(events::EventInitiatorName(ev.initiator));
    case EventColumn::kEventName:
      return Value::Str(ev.event_name);
    case EventColumn::kUserId:
      return Value::Int(ev.user_id);
    case EventColumn::kSessionId:
      return Value::Str(ev.session_id);
    case EventColumn::kIp:
      return Value::Str(ev.ip);
    case EventColumn::kTimestamp:
      return Value::Int(ev.timestamp);
    case EventColumn::kDetails:
      break;
  }
  return Value();
}

/// Row-wise predicate evaluation for legacy (non-columnar) files, with
/// the glob patterns compiled once per materialization.
struct RowPredicate {
  const columnar::ScanSpec* spec;
  std::vector<events::EventPattern> patterns;

  explicit RowPredicate(const columnar::ScanSpec& s) : spec(&s) {
    patterns.reserve(s.event_name_patterns.size());
    for (const auto& p : s.event_name_patterns) {
      patterns.emplace_back(p);
    }
  }

  bool Passes(const events::ClientEvent& ev) const {
    if (spec->min_timestamp && ev.timestamp < *spec->min_timestamp) {
      return false;
    }
    if (spec->max_timestamp && ev.timestamp > *spec->max_timestamp) {
      return false;
    }
    if (spec->event_names && !spec->event_names->count(ev.event_name)) {
      return false;
    }
    for (const auto& pattern : patterns) {
      if (!pattern.Matches(ev.event_name)) return false;
    }
    if (spec->user_ids && !spec->user_ids->count(ev.user_id)) {
      return false;
    }
    return true;
  }
};

}  // namespace

Result<std::shared_ptr<ColumnarEventScan>> ColumnarEventScan::Open(
    const hdfs::MiniHdfs* fs, const std::string& dir,
    obs::MetricsRegistry* metrics) {
  auto files = std::make_shared<std::vector<LoadedFile>>();
  UNILOG_ASSIGN_OR_RETURN(auto listing, fs->ListRecursive(dir));
  for (const auto& entry : listing) {
    size_t slash = entry.path.rfind('/');
    if (entry.path[slash + 1] == '_') continue;
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs->ReadFile(entry.path));
    files->push_back({entry.path, std::move(body)});
  }

  auto scan = std::shared_ptr<ColumnarEventScan>(new ColumnarEventScan());
  scan->files_ = std::move(files);
  scan->source_ = dir;
  scan->metrics_ = metrics;
  scan->visible_ = kDefaultVisible;
  scan->SyncColumnMask();
  return scan;
}

const std::vector<std::string>& ColumnarEventScan::columns() const {
  return column_names_;
}

std::shared_ptr<PushdownScan> ColumnarEventScan::Clone() const {
  return std::shared_ptr<ColumnarEventScan>(new ColumnarEventScan(*this));
}

std::optional<EventColumn> ColumnarEventScan::Resolve(
    const std::string& name) const {
  for (const auto& [visible_name, source] : visible_) {
    if (visible_name == name) return source;
  }
  return std::nullopt;
}

void ColumnarEventScan::SyncColumnMask() {
  column_names_.clear();
  columnar::ColumnMask mask = 0;
  for (const auto& [name, source] : visible_) {
    column_names_.push_back(name);
    mask |= columnar::ColumnBit(source);
  }
  spec_.columns = mask;
}

bool ColumnarEventScan::PushFilter(const std::string& column,
                                   const std::string& op,
                                   const Value& literal) {
  std::optional<EventColumn> source = Resolve(column);
  if (!source.has_value()) return false;

  auto tighten_min = [this](int64_t v) {
    spec_.min_timestamp =
        spec_.min_timestamp ? std::max(*spec_.min_timestamp, v) : v;
  };
  auto tighten_max = [this](int64_t v) {
    spec_.max_timestamp =
        spec_.max_timestamp ? std::min(*spec_.max_timestamp, v) : v;
  };
  auto intersect =
      [](auto& target, const auto& value) {
        if (!target.has_value()) {
          target.emplace();
          target->insert(value);
        } else if (target->count(value)) {
          target->clear();
          target->insert(value);
        } else {
          // Contradictory equalities: empty allowlist (zero rows, still
          // correct — and every group gets dictionary-skipped).
          target->clear();
        }
      };

  switch (*source) {
    case EventColumn::kTimestamp: {
      if (!literal.is_int()) return false;
      int64_t v = literal.int_value();
      if (op == "==") {
        tighten_min(v);
        tighten_max(v);
      } else if (op == "<=") {
        tighten_max(v);
      } else if (op == ">=") {
        tighten_min(v);
      } else if (op == "<") {
        // Strict bounds fold into the inclusive zone-map ranges; at the
        // integer extreme there is no representable inclusive bound.
        if (v == INT64_MIN) return false;
        tighten_max(v - 1);
      } else if (op == ">") {
        if (v == INT64_MAX) return false;
        tighten_min(v + 1);
      } else {
        return false;
      }
      cache_.reset();
      return true;
    }
    case EventColumn::kEventName: {
      if (!literal.is_str()) return false;
      if (op == "==") {
        intersect(spec_.event_names, literal.str_value());
      } else if (op == "matches") {
        spec_.event_name_patterns.push_back(literal.str_value());
      } else {
        return false;
      }
      cache_.reset();
      return true;
    }
    case EventColumn::kUserId: {
      if (!literal.is_int() || op != "==") return false;
      intersect(spec_.user_ids, literal.int_value());
      cache_.reset();
      return true;
    }
    default:
      return false;
  }
}

bool ColumnarEventScan::PushProject(const std::vector<std::string>& cols,
                                    const std::vector<std::string>& names) {
  if (cols.size() != names.size()) return false;
  std::vector<std::pair<std::string, EventColumn>> next;
  next.reserve(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    std::optional<EventColumn> source = Resolve(cols[i]);
    if (!source.has_value()) return false;
    next.push_back({names[i], *source});
  }
  visible_ = std::move(next);
  SyncColumnMask();
  cache_.reset();
  return true;
}

Result<Relation> ColumnarEventScan::Materialize(exec::Executor* exec) {
  if (cache_.has_value()) return *cache_;

  // Plan: one unit per (columnar file, row group); one unit per legacy
  // file. Units carry their own reader state, so bodies share nothing
  // but the immutable file set and the spec.
  struct ScanUnit {
    const LoadedFile* file = nullptr;
    bool is_columnar = false;
    columnar::RcFileReader::RowGroupHandle group;
  };
  std::vector<ScanUnit> units;
  for (const auto& file : *files_) {
    if (columnar::IsRcFile(file.body)) {
      columnar::RcFileReader reader(file.body);
      UNILOG_ASSIGN_OR_RETURN(auto groups, reader.IndexGroups());
      for (const auto& group : groups) {
        units.push_back({&file, true, group});
      }
    } else {
      units.push_back({&file, false, {}});
    }
  }

  RowPredicate legacy_predicate(spec_);
  std::vector<std::vector<Row>> row_slots(units.size());
  std::vector<columnar::ScanStats> stat_slots(units.size());

  auto run_unit = [&](size_t i) -> Status {
    const ScanUnit& unit = units[i];
    std::vector<Row>& rows = row_slots[i];
    columnar::ScanStats& stats = stat_slots[i];
    std::vector<events::ClientEvent> events;
    if (unit.is_columnar) {
      columnar::RcFileReader reader(unit.file->body);
      UNILOG_RETURN_NOT_OK(
          reader.ScanGroup(unit.group, spec_, &events, &stats));
    } else {
      // Legacy framed-compressed part: no zone maps, so the whole file is
      // one always-scanned group filtered row-wise.
      stats.groups_total++;
      stats.groups_scanned++;
      stats.bytes_decompressed += unit.file->body.size();
      UNILOG_ASSIGN_OR_RETURN(std::string body,
                              Lz::Decompress(unit.file->body));
      events::ClientEventReader reader(body);
      events::ClientEvent ev;
      while (true) {
        Status st = reader.Next(&ev);
        if (st.IsNotFound()) break;
        UNILOG_RETURN_NOT_OK(st);
        stats.rows_scanned++;
        if (legacy_predicate.Passes(ev)) {
          stats.rows_returned++;
          events.push_back(ev);
        } else {
          stats.rows_pruned++;
        }
      }
    }
    rows.reserve(events.size());
    for (const auto& event : events) {
      Row row;
      row.reserve(visible_.size());
      for (const auto& [name, source] : visible_) {
        row.push_back(ColumnValue(event, source));
      }
      rows.push_back(std::move(row));
    }
    return Status::OK();
  };

  if (exec != nullptr) {
    UNILOG_RETURN_NOT_OK(
        exec->ParallelForStatus("columnar_scan", units.size(), run_unit));
  } else {
    for (size_t i = 0; i < units.size(); ++i) {
      UNILOG_RETURN_NOT_OK(run_unit(i));
    }
  }

  // In-order merge: unit order is file order (sorted listing) x group
  // order, which matches what a serial scan of the same files yields.
  last_stats_ = columnar::ScanStats();
  std::vector<Row> merged;
  size_t total = 0;
  for (const auto& slot : row_slots) total += slot.size();
  merged.reserve(total);
  for (size_t i = 0; i < units.size(); ++i) {
    last_stats_.MergeFrom(stat_slots[i]);
    for (auto& row : row_slots[i]) {
      merged.push_back(std::move(row));
    }
  }
  columnar::ReportScanStats(last_stats_, metrics_, source_);

  UNILOG_ASSIGN_OR_RETURN(Relation rel,
                          Relation::FromRows(column_names_, std::move(merged)));
  cache_ = rel;
  return rel;
}

}  // namespace unilog::dataflow
