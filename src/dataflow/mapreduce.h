#ifndef UNILOG_DATAFLOW_MAPREDUCE_H_
#define UNILOG_DATAFLOW_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/cost_model.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"

namespace unilog::dataflow {

/// How a simulated map task turns a file body into records. Matches the
/// Hadoop InputFormat role — and, like Elephant Bird, hides the
/// decompress/deserialize boilerplate from job authors.
struct InputFormat {
  /// Decompresses/decodes a raw on-disk file body; identity by default.
  std::function<Result<std::string>(std::string_view body)> decode;
  /// Splits the decoded body into records. Default: varint-framed records.
  std::function<Result<std::vector<std::string>>(std::string_view decoded)>
      split;

  /// The standard format for unilog warehouse files: LZ decompression +
  /// varint framing.
  static InputFormat CompressedFramed();
  /// CompressedFramed that also accepts columnar (RCFile v2) parts: a file
  /// carrying the RCF2 magic is decoded by reading every row and
  /// re-framing the serialized events, so map functions see the same
  /// compact-Thrift records either way. This is the format for warehouse
  /// directories that may mix layouts (LogMoverOptions::columnar_categories
  /// plus legacy hours).
  static InputFormat CompressedFramedOrColumnar();
  /// Framed records without compression.
  static InputFormat Framed();
  /// Newline-delimited text (legacy logs).
  static InputFormat Lines();
  /// Like CompressedFramed, but the InputFormat-level `accept` predicate
  /// can drop whole files before any record is produced — this is where
  /// Elephant Twin's index push-down hooks in (§6).
  InputFormat WithFileFilter(
      std::function<bool(const std::string& path)> accept) const;

  /// Optional pre-scan file filter (predicate push-down); nullptr = all.
  std::function<bool(const std::string& path)> accept_file;
};

/// Collects intermediate or final key/value pairs.
class Emitter {
 public:
  void Emit(std::string key, std::string value) {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return pairs_;
  }
  std::vector<std::pair<std::string, std::string>>& mutable_pairs() {
    return pairs_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> pairs_;
};

/// The shuffle of the unilog::exec engine: groups per-task emissions with
/// a stable, input-order-preserving merge. For every key, values appear in
/// (task index, emission order) — exactly the order the serial engine
/// produces by concatenating task outputs before grouping. Consumes the
/// emitters' pairs. Exposed for the determinism/property test suite.
std::map<std::string, std::vector<std::string>> StableShuffle(
    std::vector<Emitter>* per_task, uint64_t* bytes_shuffled);

/// Base class for per-map-task by-product state (histograms, rollups):
/// jobs whose map function accumulates outside the emitter subclass this,
/// so every map task mutates private state and Run() merges the pieces in
/// input order — deterministic at any thread count.
struct TaskLocal {
  virtual ~TaskLocal() = default;
};

/// A simulated MapReduce job over MiniHdfs files: one map task per HDFS
/// block, hash-partitioned shuffle, one reduce wave. Executes locally and
/// deterministically while charging the JobCostModel for task startups,
/// scans, and shuffles — the same bookkeeping a Hadoop jobtracker would
/// see from the paper's Pig scripts.
///
/// With an exec::Executor attached (set_executor), map tasks fan out one
/// per input file, the shuffle merge preserves input order, and reduce
/// groups run concurrently with outputs emitted in key order — so the
/// final output is byte-identical to the serial engine at any thread
/// count. Map/reduce functions must then be safe to call from multiple
/// threads at once (each task receives a private Emitter; shared
/// accumulation goes through the TaskLocal machinery).
class MapReduceJob {
 public:
  /// Map function: one input record → zero or more (key, value) pairs.
  using MapFn =
      std::function<Status(const std::string& record, Emitter* emitter)>;
  /// Map function with per-task by-product state.
  using MapWithStateFn = std::function<Status(
      const std::string& record, Emitter* emitter, TaskLocal* state)>;
  /// Reduce function: one key and all its values → zero or more outputs.
  using ReduceFn = std::function<Status(
      const std::string& key, const std::vector<std::string>& values,
      Emitter* emitter)>;

  MapReduceJob(const hdfs::MiniHdfs* fs, JobCostModel cost_model)
      : fs_(fs), cost_model_(cost_model) {}

  /// Adds every file under `dir` (recursively) as input; skips files whose
  /// basename starts with '_' (markers). NotFound directories are an
  /// error.
  Status AddInputDir(const std::string& dir);
  /// Adds one file.
  void AddInputFile(const std::string& path) { inputs_.push_back(path); }
  size_t input_file_count() const { return inputs_.size(); }

  void set_input_format(InputFormat format) { format_ = std::move(format); }
  void set_map(MapFn map) { map_ = std::move(map); }
  /// Map with per-task state: `create` makes one state object per map
  /// task; after the map phase Run() calls `merge` once per task, in input
  /// order, on the calling thread.
  void set_map_with_state(MapWithStateFn map,
                          std::function<std::unique_ptr<TaskLocal>()> create,
                          std::function<void(TaskLocal*)> merge);
  /// Optional; omitting the reducer yields a map-only job whose map outputs
  /// are the final outputs.
  void set_reduce(ReduceFn reduce) { reduce_ = std::move(reduce); }
  void set_num_reducers(uint64_t n) { num_reducers_ = n; }
  /// Attaches the parallel execution engine; nullptr (the default) or a
  /// serial executor keeps the historical single-threaded code path.
  void set_executor(exec::Executor* exec) { exec_ = exec; }
  /// Tolerates corrupt inputs: an input whose decode/split fails with a
  /// Corruption status (e.g. an RCFile v2 part with a bad block checksum)
  /// is renamed to `_quarantined.<name>` on `fs` — hidden from future
  /// AddInputDir scans — counted in stats().corrupt_inputs_quarantined,
  /// and skipped, instead of failing the whole job. Without this (the
  /// default) any corrupt input fails the run, the historical behavior.
  void set_quarantine_fs(hdfs::MiniHdfs* fs) { quarantine_fs_ = fs; }

  /// Runs the job. Returns final (key, value) outputs sorted by key.
  Result<std::vector<std::pair<std::string, std::string>>> Run();

  /// Cost accounting of the last Run().
  const JobStats& stats() const { return stats_; }

 private:
  Result<std::vector<std::pair<std::string, std::string>>> RunSerial();
  Result<std::vector<std::pair<std::string, std::string>>> RunParallel();
  Result<std::vector<std::string>> SplitBody(std::string_view body) const;
  Status QuarantineInput(const std::string& path);

  const hdfs::MiniHdfs* fs_;
  JobCostModel cost_model_;
  std::vector<std::string> inputs_;
  InputFormat format_ = InputFormat::CompressedFramed();
  MapFn map_;
  MapWithStateFn map_with_state_;
  std::function<std::unique_ptr<TaskLocal>()> create_state_;
  std::function<void(TaskLocal*)> merge_state_;
  ReduceFn reduce_;
  uint64_t num_reducers_ = 16;
  exec::Executor* exec_ = nullptr;
  hdfs::MiniHdfs* quarantine_fs_ = nullptr;
  JobStats stats_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_MAPREDUCE_H_
