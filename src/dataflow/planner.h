#ifndef UNILOG_DATAFLOW_PLANNER_H_
#define UNILOG_DATAFLOW_PLANNER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/cost_model.h"
#include "dataflow/vector_engine.h"

namespace unilog::dataflow {

/// Header-only table statistics for one scan input: zone maps and
/// event-name dictionaries aggregated from RCFile v2 rowgroup headers
/// (no blob is decompressed to collect them). Legacy v1 groups and
/// non-columnar files contribute row/byte totals only, with `from_v2`
/// false, so estimates degrade to priors instead of lying.
struct TableStats {
  uint64_t total_rows = 0;
  uint64_t row_groups = 0;
  /// On-disk bytes of the scanned files (cost-model currency).
  uint64_t data_bytes = 0;
  std::optional<int64_t> min_timestamp, max_timestamp;
  std::optional<int64_t> min_user_id, max_user_id;
  /// Upper bound on rows per event name: the sum of row counts of the
  /// groups whose dictionary contains the name. Absent name => 0 rows.
  std::map<std::string, uint64_t> name_rows;
  /// True when every contributing group carried v2 zone maps.
  bool from_v2 = false;

  void Merge(const TableStats& other);
};

/// Canonical `column op literal-token` text of one clause — exactly the
/// per-residual serialization inside the Oink canonical plan, reused here
/// as the deterministic tie-break for planner orderings so equal-cost
/// clauses never reorder between runs.
std::string CanonicalFilterClause(const FilterExpr& e);

/// Estimated fraction of rows satisfying the clause, in [0, 1].
/// Zone-map-backed columns (timestamp/user_id ranges, event_name
/// dictionary membership) use the stats; everything else falls back to
/// fixed priors (equality 0.1, range 0.3, matches 0.2, != complemented).
double EstimateClauseSelectivity(const TableStats& stats, const FilterExpr& e);

/// Orders conjunctive clauses most-selective-first (cheapest way to
/// shrink the selection early), ties broken by CanonicalFilterClause.
/// Deterministic: a permutation of the input always yields the same
/// output sequence.
std::vector<FilterExpr> OrderFilters(const TableStats& stats,
                                     std::vector<FilterExpr> exprs);

/// How the scan feeds the filter stack. kPushdown folds predicates into
/// the scan (skip groups via zone maps, decode match columns first);
/// kEager decodes everything and lets the batch Filter kernel do the
/// work — cheaper when predicates barely filter (pushdown's re-decode of
/// match columns outweighs the skipped rows).
enum class ScanStrategy { kPushdown, kEager };

struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kPushdown;
  /// Modeled costs of both alternatives (cost-model milliseconds).
  double pushdown_ms = 0;
  double eager_ms = 0;
  /// Estimated fraction of rows surviving all clauses.
  double selectivity = 1.0;
};

/// Chooses pushdown vs eager under the JobCostModel scan currency.
/// Deterministic; no clauses => eager (pushdown has nothing to skip
/// with), ties => pushdown.
ScanPlan PlanScan(const TableStats& stats,
                  const std::vector<FilterExpr>& clauses,
                  const JobCostModel& model);

/// Hash-join build side: build the smaller input, ties keep the row
/// engine's traditional right build.
JoinBuildSide ChooseBuildSide(uint64_t left_rows, uint64_t right_rows);

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_PLANNER_H_
