#ifndef UNILOG_DATAFLOW_PLANNER_H_
#define UNILOG_DATAFLOW_PLANNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "dataflow/cost_model.h"
#include "dataflow/vector_engine.h"

namespace unilog::dataflow {

/// Header-only table statistics for one scan input: zone maps and
/// event-name dictionaries aggregated from RCFile v2 rowgroup headers
/// (no blob is decompressed to collect them). Legacy v1 groups and
/// non-columnar files contribute row/byte totals only, with `from_v2`
/// false, so estimates degrade to priors instead of lying.
struct TableStats {
  uint64_t total_rows = 0;
  uint64_t row_groups = 0;
  /// On-disk bytes of the scanned files (cost-model currency).
  uint64_t data_bytes = 0;
  std::optional<int64_t> min_timestamp, max_timestamp;
  std::optional<int64_t> min_user_id, max_user_id;
  /// Upper bound on rows per event name: the sum of row counts of the
  /// groups whose dictionary contains the name. Absent name => 0 rows.
  std::map<std::string, uint64_t> name_rows;
  /// Same bound per initiator display name (EventInitiatorName), from the
  /// v2 initiator dictionaries — the code-domain statistic initiator
  /// predicates are estimated with. Absent initiator => 0 rows.
  std::map<std::string, uint64_t> initiator_rows;
  /// True when every contributing group carried v2 zone maps.
  bool from_v2 = false;

  void Merge(const TableStats& other);
};

/// Memoizes per-file TableStats so repeated planning over a warm
/// warehouse never re-reads RCFile headers. Two-level keying:
///
///   1. stat key (path|size|mtime) — resolved without touching a single
///      file byte; hits when the file is literally unchanged in place.
///   2. content key ("rcfp:<fingerprint>" from the header-only
///      RcFileReader::ContentFingerprint, or "szmt:<size>:<mtime>" for
///      non-v2 files) — hits when a file was renamed or rewritten with
///      identical content; the new stat key is recorded as an alias so
///      the next lookup resolves at level 1.
///
/// Values are shared_ptr<const TableStats> for pointer stability; entries
/// are never evicted (a warehouse's part count is bounded). Thread-safe.
class TableStatsCache {
 public:
  struct CacheStats {
    uint64_t stat_hits = 0;
    uint64_t content_hits = 0;
    uint64_t misses = 0;
  };

  /// Level-1 lookup by stat key; null on miss.
  std::shared_ptr<const TableStats> FindByStat(const std::string& stat_key);
  /// Level-2 lookup by content key; records `stat_key` as an alias on a
  /// hit so the file resolves at level 1 next time. Null on miss (which
  /// is also counted — call only after FindByStat missed).
  std::shared_ptr<const TableStats> FindByContent(const std::string& stat_key,
                                                  const std::string& content_key);
  /// Inserts the stats under both keys.
  void Put(const std::string& stat_key, const std::string& content_key,
           TableStats stats);

  CacheStats stats() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const TableStats>> by_stat_;
  std::map<std::string, std::shared_ptr<const TableStats>> by_content_;
  CacheStats stats_;
};

/// Canonical `column op literal-token` text of one clause — exactly the
/// per-residual serialization inside the Oink canonical plan, reused here
/// as the deterministic tie-break for planner orderings so equal-cost
/// clauses never reorder between runs.
std::string CanonicalFilterClause(const FilterExpr& e);

/// Estimated fraction of rows satisfying the clause, in [0, 1].
/// Zone-map-backed columns (timestamp/user_id ranges, event_name
/// dictionary membership) use the stats; everything else falls back to
/// fixed priors (equality 0.1, range 0.3, matches 0.2, != complemented).
double EstimateClauseSelectivity(const TableStats& stats, const FilterExpr& e);

/// Orders conjunctive clauses most-selective-first (cheapest way to
/// shrink the selection early), ties broken by CanonicalFilterClause.
/// Deterministic: a permutation of the input always yields the same
/// output sequence.
std::vector<FilterExpr> OrderFilters(const TableStats& stats,
                                     std::vector<FilterExpr> exprs);

/// How the scan feeds the filter stack. kPushdown folds predicates into
/// the scan (skip groups via zone maps, decode match columns first);
/// kEager decodes everything and lets the batch Filter kernel do the
/// work — cheaper when predicates barely filter (pushdown's re-decode of
/// match columns outweighs the skipped rows).
enum class ScanStrategy { kPushdown, kEager };

struct ScanPlan {
  ScanStrategy strategy = ScanStrategy::kPushdown;
  /// Modeled costs of both alternatives (cost-model milliseconds).
  double pushdown_ms = 0;
  double eager_ms = 0;
  /// Estimated fraction of rows surviving all clauses.
  double selectivity = 1.0;
};

/// Chooses pushdown vs eager under the JobCostModel scan currency.
/// Deterministic; no clauses => eager (pushdown has nothing to skip
/// with), ties => pushdown.
ScanPlan PlanScan(const TableStats& stats,
                  const std::vector<FilterExpr>& clauses,
                  const JobCostModel& model);

/// Hash-join build side: build the smaller input, ties keep the row
/// engine's traditional right build.
JoinBuildSide ChooseBuildSide(uint64_t left_rows, uint64_t right_rows);

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_PLANNER_H_
