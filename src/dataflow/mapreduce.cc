#include "dataflow/mapreduce.h"

#include <algorithm>

#include "columnar/rcfile.h"
#include "common/compress.h"
#include "common/strings.h"
#include "events/client_event.h"
#include "scribe/message.h"

namespace unilog::dataflow {

InputFormat InputFormat::CompressedFramed() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return Lz::Decompress(body);
  };
  f.split = [](std::string_view decoded) {
    return scribe::UnframeMessages(decoded);
  };
  return f;
}

InputFormat InputFormat::CompressedFramedOrColumnar() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    if (!columnar::IsRcFile(body)) return Lz::Decompress(body);
    // Columnar part: materialize every row and re-frame the serialized
    // events so split() and the map function see the usual record stream.
    columnar::RcFileReader reader(body);
    std::vector<events::ClientEvent> events;
    UNILOG_RETURN_NOT_OK(reader.ReadAll(columnar::kAllColumns, &events));
    std::string framed;
    for (const auto& ev : events) {
      scribe::AppendFramed(&framed, ev.Serialize());
    }
    return framed;
  };
  f.split = [](std::string_view decoded) {
    return scribe::UnframeMessages(decoded);
  };
  return f;
}

InputFormat InputFormat::Framed() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  f.split = [](std::string_view decoded) {
    return scribe::UnframeMessages(decoded);
  };
  return f;
}

InputFormat InputFormat::Lines() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  f.split = [](std::string_view decoded) -> Result<std::vector<std::string>> {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < decoded.size()) {
      size_t pos = decoded.find('\n', start);
      if (pos == std::string_view::npos) {
        lines.emplace_back(decoded.substr(start));
        break;
      }
      if (pos > start) lines.emplace_back(decoded.substr(start, pos - start));
      start = pos + 1;
    }
    return lines;
  };
  return f;
}

InputFormat InputFormat::WithFileFilter(
    std::function<bool(const std::string& path)> accept) const {
  InputFormat f = *this;
  f.accept_file = std::move(accept);
  return f;
}

Status MapReduceJob::AddInputDir(const std::string& dir) {
  UNILOG_ASSIGN_OR_RETURN(auto files, fs_->ListRecursive(dir));
  for (const auto& file : files) {
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;  // _SUCCESS, _dictionary, ...
    inputs_.push_back(file.path);
  }
  return Status::OK();
}

void MapReduceJob::set_map_with_state(
    MapWithStateFn map, std::function<std::unique_ptr<TaskLocal>()> create,
    std::function<void(TaskLocal*)> merge) {
  map_with_state_ = std::move(map);
  create_state_ = std::move(create);
  merge_state_ = std::move(merge);
}

std::map<std::string, std::vector<std::string>> StableShuffle(
    std::vector<Emitter>* per_task, uint64_t* bytes_shuffled) {
  std::map<std::string, std::vector<std::string>> groups;
  for (Emitter& task : *per_task) {
    for (auto& [key, value] : task.mutable_pairs()) {
      if (bytes_shuffled != nullptr) {
        *bytes_shuffled += key.size() + value.size();
      }
      groups[std::move(key)].push_back(std::move(value));
    }
  }
  return groups;
}

Result<std::vector<std::string>> MapReduceJob::SplitBody(
    std::string_view body) const {
  auto decoded = format_.decode(body);
  if (!decoded.ok()) return decoded.status();
  return format_.split(*decoded);
}

Status MapReduceJob::QuarantineInput(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string hidden =
      path.substr(0, slash + 1) + "_quarantined." + path.substr(slash + 1);
  UNILOG_RETURN_NOT_OK(quarantine_fs_->Rename(path, hidden));
  ++stats_.corrupt_inputs_quarantined;
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>> MapReduceJob::Run() {
  if (!map_ && !map_with_state_) {
    return Status::FailedPrecondition("no map function");
  }
  stats_ = JobStats{};
  if (exec_ != nullptr && exec_->parallel()) return RunParallel();
  return RunSerial();
}

// The historical single-threaded engine, kept as its own code path:
// threads=1 must execute exactly what it always has.
Result<std::vector<std::pair<std::string, std::string>>>
MapReduceJob::RunSerial() {
  // ----- Map phase: one task per HDFS block of each accepted input file.
  Emitter map_out;
  for (const auto& path : inputs_) {
    if (format_.accept_file && !format_.accept_file(path)) {
      continue;  // predicate push-down skipped this file entirely
    }
    UNILOG_ASSIGN_OR_RETURN(auto st, fs_->Stat(path));
    stats_.map_tasks += st.block_count;
    stats_.bytes_scanned += st.size;
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs_->ReadFile(path));
    auto records_or = SplitBody(body);
    if (!records_or.ok()) {
      if (quarantine_fs_ != nullptr && records_or.status().IsCorruption()) {
        UNILOG_RETURN_NOT_OK(QuarantineInput(path));
        continue;
      }
      return records_or.status();
    }
    const std::vector<std::string>& records = *records_or;
    std::unique_ptr<TaskLocal> state;
    if (map_with_state_) state = create_state_();
    for (const auto& record : records) {
      ++stats_.records_read;
      if (map_with_state_) {
        UNILOG_RETURN_NOT_OK(map_with_state_(record, &map_out, state.get()));
      } else {
        UNILOG_RETURN_NOT_OK(map_(record, &map_out));
      }
    }
    if (state != nullptr) merge_state_(state.get());
  }
  stats_.records_emitted = map_out.pairs().size();

  std::vector<std::pair<std::string, std::string>> output;
  if (!reduce_) {
    // Map-only job: outputs are the map emissions, sorted for determinism.
    output = std::move(map_out.mutable_pairs());
    std::stable_sort(
        output.begin(), output.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    stats_.records_output = output.size();
    stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
    return output;
  }

  // ----- Shuffle: group by key (sorted map = the sort/merge phase).
  std::map<std::string, std::vector<std::string>> groups;
  for (auto& [key, value] : map_out.mutable_pairs()) {
    stats_.bytes_shuffled += key.size() + value.size();
    groups[std::move(key)].push_back(std::move(value));
  }
  stats_.reduce_tasks =
      std::min<uint64_t>(num_reducers_, std::max<size_t>(1, groups.size()));

  // ----- Reduce phase.
  Emitter reduce_out;
  for (const auto& [key, values] : groups) {
    UNILOG_RETURN_NOT_OK(reduce_(key, values, &reduce_out));
  }
  output = std::move(reduce_out.mutable_pairs());
  std::stable_sort(
      output.begin(), output.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  stats_.records_output = output.size();
  stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
  return output;
}

// The unilog::exec engine: map tasks fan out one per accepted input file,
// the shuffle merge is stable and input-order-preserving, and reduce
// groups run concurrently with outputs concatenated in key order. Every
// phase writes only to per-task slots, so the final output is
// byte-identical to RunSerial() at any thread count.
Result<std::vector<std::pair<std::string, std::string>>>
MapReduceJob::RunParallel() {
  // ----- Plan: accept-filter, stat and read bodies on the calling thread
  // (MiniHdfs access stays single-threaded; decode/map is the hot part).
  std::vector<std::string> bodies;
  std::vector<std::string> accepted;
  for (const auto& path : inputs_) {
    if (format_.accept_file && !format_.accept_file(path)) continue;
    UNILOG_ASSIGN_OR_RETURN(auto st, fs_->Stat(path));
    stats_.map_tasks += st.block_count;
    stats_.bytes_scanned += st.size;
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs_->ReadFile(path));
    bodies.push_back(std::move(body));
    accepted.push_back(path);
  }

  // ----- Map phase: one task per file, each with a private emitter (and
  // private by-product state).
  size_t num_tasks = bodies.size();
  std::vector<Emitter> task_out(num_tasks);
  std::vector<uint64_t> task_records(num_tasks, 0);
  // Corrupt inputs are flagged per slot inside the workers and renamed
  // aside afterwards on the calling thread (MiniHdfs stays single-threaded).
  std::vector<uint8_t> corrupt(num_tasks, 0);
  std::vector<std::unique_ptr<TaskLocal>> task_state(num_tasks);
  if (map_with_state_) {
    for (auto& state : task_state) state = create_state_();
  }
  UNILOG_RETURN_NOT_OK(
      exec_->ParallelForStatus("map", num_tasks, [&](size_t i) -> Status {
        auto records_or = SplitBody(bodies[i]);
        if (!records_or.ok()) {
          if (quarantine_fs_ != nullptr &&
              records_or.status().IsCorruption()) {
            corrupt[i] = 1;
            return Status::OK();
          }
          return records_or.status();
        }
        const std::vector<std::string>& records = *records_or;
        task_records[i] = records.size();
        for (const auto& record : records) {
          if (map_with_state_) {
            UNILOG_RETURN_NOT_OK(
                map_with_state_(record, &task_out[i], task_state[i].get()));
          } else {
            UNILOG_RETURN_NOT_OK(map_(record, &task_out[i]));
          }
        }
        return Status::OK();
      }));
  for (size_t i = 0; i < num_tasks; ++i) {
    if (corrupt[i] != 0) {
      UNILOG_RETURN_NOT_OK(QuarantineInput(accepted[i]));
      continue;
    }
    stats_.records_read += task_records[i];
    stats_.records_emitted += task_out[i].pairs().size();
    if (task_state[i] != nullptr) merge_state_(task_state[i].get());
  }

  std::vector<std::pair<std::string, std::string>> output;
  if (!reduce_) {
    // Map-only: concatenate per-task emissions in input order — identical
    // to the serial engine's single-emitter stream — then sort stably.
    for (Emitter& task : task_out) {
      for (auto& pair : task.mutable_pairs()) output.push_back(std::move(pair));
    }
    std::stable_sort(
        output.begin(), output.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    stats_.records_output = output.size();
    stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
    return output;
  }

  // ----- Shuffle: hash-partition keys so partitions group concurrently.
  // Each partition scans the task emitters in input order, so per-key
  // value order matches StableShuffle (and therefore the serial engine);
  // each key lives in exactly one partition, so the partition count never
  // affects the result.
  size_t num_parts = static_cast<size_t>(exec_->threads()) * 2;
  std::vector<std::map<std::string, std::vector<std::string>>> parts(
      num_parts);
  std::vector<uint64_t> part_bytes(num_parts, 0);
  exec_->ParallelFor("shuffle", num_parts, [&](size_t p) {
    std::hash<std::string_view> hasher;
    for (Emitter& task : task_out) {
      for (auto& [key, value] : task.mutable_pairs()) {
        if (hasher(key) % num_parts != p) continue;
        part_bytes[p] += key.size() + value.size();
        parts[p][key].push_back(std::move(value));
      }
    }
  });
  size_t num_groups = 0;
  for (size_t p = 0; p < num_parts; ++p) {
    stats_.bytes_shuffled += part_bytes[p];
    num_groups += parts[p].size();
  }
  stats_.reduce_tasks =
      std::min<uint64_t>(num_reducers_, std::max<size_t>(1, num_groups));

  // ----- Reduce phase: groups in global key order, one emitter each.
  using Group = std::pair<const std::string*, const std::vector<std::string>*>;
  std::vector<Group> groups;
  groups.reserve(num_groups);
  for (const auto& part : parts) {
    for (const auto& [key, values] : part) groups.emplace_back(&key, &values);
  }
  std::sort(groups.begin(), groups.end(),
            [](const Group& a, const Group& b) { return *a.first < *b.first; });
  std::vector<Emitter> reduce_out(groups.size());
  UNILOG_RETURN_NOT_OK(
      exec_->ParallelForStatus("reduce", groups.size(), [&](size_t g) {
        return reduce_(*groups[g].first, *groups[g].second, &reduce_out[g]);
      }));
  for (Emitter& group : reduce_out) {
    for (auto& pair : group.mutable_pairs()) output.push_back(std::move(pair));
  }
  std::stable_sort(
      output.begin(), output.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  stats_.records_output = output.size();
  stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
  return output;
}

}  // namespace unilog::dataflow
