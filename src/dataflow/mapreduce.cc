#include "dataflow/mapreduce.h"

#include <algorithm>

#include "common/compress.h"
#include "common/strings.h"
#include "scribe/message.h"

namespace unilog::dataflow {

InputFormat InputFormat::CompressedFramed() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return Lz::Decompress(body);
  };
  f.split = [](std::string_view decoded) {
    return scribe::UnframeMessages(decoded);
  };
  return f;
}

InputFormat InputFormat::Framed() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  f.split = [](std::string_view decoded) {
    return scribe::UnframeMessages(decoded);
  };
  return f;
}

InputFormat InputFormat::Lines() {
  InputFormat f;
  f.decode = [](std::string_view body) -> Result<std::string> {
    return std::string(body);
  };
  f.split = [](std::string_view decoded) -> Result<std::vector<std::string>> {
    std::vector<std::string> lines;
    size_t start = 0;
    while (start < decoded.size()) {
      size_t pos = decoded.find('\n', start);
      if (pos == std::string_view::npos) {
        lines.emplace_back(decoded.substr(start));
        break;
      }
      if (pos > start) lines.emplace_back(decoded.substr(start, pos - start));
      start = pos + 1;
    }
    return lines;
  };
  return f;
}

InputFormat InputFormat::WithFileFilter(
    std::function<bool(const std::string& path)> accept) const {
  InputFormat f = *this;
  f.accept_file = std::move(accept);
  return f;
}

Status MapReduceJob::AddInputDir(const std::string& dir) {
  UNILOG_ASSIGN_OR_RETURN(auto files, fs_->ListRecursive(dir));
  for (const auto& file : files) {
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;  // _SUCCESS, _dictionary, ...
    inputs_.push_back(file.path);
  }
  return Status::OK();
}

Result<std::vector<std::pair<std::string, std::string>>> MapReduceJob::Run() {
  if (!map_) return Status::FailedPrecondition("no map function");
  stats_ = JobStats{};

  // ----- Map phase: one task per HDFS block of each accepted input file.
  Emitter map_out;
  for (const auto& path : inputs_) {
    if (format_.accept_file && !format_.accept_file(path)) {
      continue;  // predicate push-down skipped this file entirely
    }
    UNILOG_ASSIGN_OR_RETURN(auto st, fs_->Stat(path));
    stats_.map_tasks += st.block_count;
    stats_.bytes_scanned += st.size;
    UNILOG_ASSIGN_OR_RETURN(std::string body, fs_->ReadFile(path));
    UNILOG_ASSIGN_OR_RETURN(std::string decoded, format_.decode(body));
    UNILOG_ASSIGN_OR_RETURN(auto records, format_.split(decoded));
    for (const auto& record : records) {
      ++stats_.records_read;
      UNILOG_RETURN_NOT_OK(map_(record, &map_out));
    }
  }
  stats_.records_emitted = map_out.pairs().size();

  std::vector<std::pair<std::string, std::string>> output;
  if (!reduce_) {
    // Map-only job: outputs are the map emissions, sorted for determinism.
    output = std::move(map_out.mutable_pairs());
    std::stable_sort(
        output.begin(), output.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    stats_.records_output = output.size();
    stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
    return output;
  }

  // ----- Shuffle: group by key (sorted map = the sort/merge phase).
  std::map<std::string, std::vector<std::string>> groups;
  for (auto& [key, value] : map_out.mutable_pairs()) {
    stats_.bytes_shuffled += key.size() + value.size();
    groups[std::move(key)].push_back(std::move(value));
  }
  stats_.reduce_tasks =
      std::min<uint64_t>(num_reducers_, std::max<size_t>(1, groups.size()));

  // ----- Reduce phase.
  Emitter reduce_out;
  for (const auto& [key, values] : groups) {
    UNILOG_RETURN_NOT_OK(reduce_(key, values, &reduce_out));
  }
  output = std::move(reduce_out.mutable_pairs());
  std::stable_sort(
      output.begin(), output.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  stats_.records_output = output.size();
  stats_.modeled_ms = ModelWallTimeMs(cost_model_, stats_);
  return output;
}

}  // namespace unilog::dataflow
