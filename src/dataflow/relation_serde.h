#ifndef UNILOG_DATAFLOW_RELATION_SERDE_H_
#define UNILOG_DATAFLOW_RELATION_SERDE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "dataflow/relation.h"

namespace unilog::dataflow {

/// Deterministic byte serialization of a Relation, the payload format of
/// the Oink intermediate-result cache. Two relations with equal schemas
/// and equal rows (in order) serialize to identical bytes — doubles are
/// stored as their exact IEEE-754 bit pattern, so "byte-identical cold
/// and warm runs" extends to floating-point aggregates.
///
/// Layout: "REL1" magic | varint column count | length-prefixed names |
/// varint row count | rows as (tag byte, payload) values. Tags: 0 int
/// (zigzag varint), 1 real (fixed64 bit pattern), 2 str (length-prefixed),
/// 3 bool (one byte).
std::string SerializeRelation(const Relation& relation);

/// Inverse of SerializeRelation. Corruption on any malformed input
/// (truncation, unknown tag, arity drift, trailing bytes) — never a crash
/// or a silently different relation.
Result<Relation> DeserializeRelation(std::string_view data);

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_RELATION_SERDE_H_
