#ifndef UNILOG_DATAFLOW_PLAN_FINGERPRINT_H_
#define UNILOG_DATAFLOW_PLAN_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "columnar/rcfile.h"

namespace unilog::dataflow {

/// 64-bit FNV-1a accumulator used for plan and input fingerprints in the
/// Oink memoization layer. Deterministic across platforms and runs: the
/// digest depends only on the bytes mixed in, never on addresses or
/// iteration order of unordered containers (callers mix canonical,
/// pre-sorted serializations).
class Fingerprint {
 public:
  void Mix(std::string_view bytes);
  void MixU64(uint64_t v);

  uint64_t value() const { return h_; }
  /// 16 lowercase hex digits — the content-addressed artifact name.
  std::string Hex() const;

  static uint64_t OfBytes(std::string_view bytes);

 private:
  uint64_t h_ = 1469598103934665603ull;
};

/// Canonical text serialization of a ScanSpec: two specs that constrain
/// the same rows and columns the same way produce identical strings
/// (allowlists are stored sorted; glob patterns are emitted sorted and
/// deduplicated since they are conjunctive). The plan half of an Oink
/// cache key is built from this, so a key changes iff the plan changes.
std::string CanonicalScanSpec(const columnar::ScanSpec& spec);

/// Union-merges per-workflow ScanSpecs into the single spec a shared scan
/// runs with. The merged spec is *weaker* than every input: any row some
/// input spec accepts is accepted by the merge (bounds widen to the
/// loosest, allowlists union, and a constraint survives only when every
/// input imposes one). The merged column mask is the OR of the input
/// masks plus every column a residual re-filter will need to evaluate
/// (timestamp / event-name / user-id predicates), so per-workflow
/// residual filters over the shared rows see exactly the values an
/// independent scan would have decoded.
columnar::ScanSpec MergeScanSpecs(
    const std::vector<columnar::ScanSpec>& specs);

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_PLAN_FINGERPRINT_H_
