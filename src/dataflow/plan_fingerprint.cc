#include "dataflow/plan_fingerprint.h"

#include <algorithm>
#include <cstdio>

namespace unilog::dataflow {

void Fingerprint::Mix(std::string_view bytes) {
  for (unsigned char c : bytes) {
    h_ ^= c;
    h_ *= 1099511628211ull;
  }
}

void Fingerprint::MixU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= static_cast<unsigned char>(v >> (i * 8));
    h_ *= 1099511628211ull;
  }
}

std::string Fingerprint::Hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

uint64_t Fingerprint::OfBytes(std::string_view bytes) {
  Fingerprint fp;
  fp.Mix(bytes);
  return fp.value();
}

std::string CanonicalScanSpec(const columnar::ScanSpec& spec) {
  std::string out = "scanspec-v1{cols=";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%x", spec.columns);
  out += buf;
  auto bound = [&](const char* name, const std::optional<int64_t>& v) {
    out += ";";
    out += name;
    out += "=";
    if (v.has_value()) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(*v));
      out += buf;
    } else {
      out += "-";
    }
  };
  bound("min_ts", spec.min_timestamp);
  bound("max_ts", spec.max_timestamp);

  out += ";names=";
  if (spec.event_names.has_value()) {
    // std::set iterates sorted; an empty allowlist ("()") is distinct from
    // no allowlist ("-").
    out += "(";
    bool first = true;
    for (const auto& name : *spec.event_names) {
      if (!first) out += ",";
      first = false;
      out += name;
    }
    out += ")";
  } else {
    out += "-";
  }

  out += ";patterns=(";
  std::vector<std::string> patterns = spec.event_name_patterns;
  std::sort(patterns.begin(), patterns.end());
  patterns.erase(std::unique(patterns.begin(), patterns.end()),
                 patterns.end());
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (i > 0) out += ",";
    out += patterns[i];
  }
  out += ")";

  out += ";uids=";
  if (spec.user_ids.has_value()) {
    out += "(";
    bool first = true;
    for (int64_t id : *spec.user_ids) {
      if (!first) out += ",";
      first = false;
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(id));
      out += buf;
    }
    out += ")";
  } else {
    out += "-";
  }
  out += "}";
  return out;
}

columnar::ScanSpec MergeScanSpecs(
    const std::vector<columnar::ScanSpec>& specs) {
  columnar::ScanSpec merged;
  if (specs.empty()) return merged;

  merged.columns = 0;
  bool all_min = true, all_max = true, all_names = true, all_uids = true;
  bool any_ts = false, any_name = false, any_uid = false;
  for (const auto& spec : specs) {
    merged.columns |= spec.columns;
    all_min = all_min && spec.min_timestamp.has_value();
    all_max = all_max && spec.max_timestamp.has_value();
    all_names = all_names && spec.event_names.has_value();
    all_uids = all_uids && spec.user_ids.has_value();
    any_ts = any_ts || spec.min_timestamp.has_value() ||
             spec.max_timestamp.has_value();
    any_name = any_name || spec.has_name_predicate();
    any_uid = any_uid || spec.user_ids.has_value();
  }

  if (all_min) {
    int64_t v = *specs[0].min_timestamp;
    for (const auto& spec : specs) v = std::min(v, *spec.min_timestamp);
    merged.min_timestamp = v;
  }
  if (all_max) {
    int64_t v = *specs[0].max_timestamp;
    for (const auto& spec : specs) v = std::max(v, *spec.max_timestamp);
    merged.max_timestamp = v;
  }
  if (all_names) {
    merged.event_names.emplace();
    for (const auto& spec : specs) {
      merged.event_names->insert(spec.event_names->begin(),
                                 spec.event_names->end());
    }
  }
  if (all_uids) {
    merged.user_ids.emplace();
    for (const auto& spec : specs) {
      merged.user_ids->insert(spec.user_ids->begin(), spec.user_ids->end());
    }
  }
  // Patterns are per-spec conjunctive; the merge may only keep a pattern
  // every input imposes (sorted for a canonical result).
  std::vector<std::string> common = specs[0].event_name_patterns;
  std::sort(common.begin(), common.end());
  common.erase(std::unique(common.begin(), common.end()), common.end());
  for (size_t i = 1; i < specs.size() && !common.empty(); ++i) {
    std::vector<std::string> next;
    for (const auto& p : common) {
      if (std::find(specs[i].event_name_patterns.begin(),
                    specs[i].event_name_patterns.end(),
                    p) != specs[i].event_name_patterns.end()) {
        next.push_back(p);
      }
    }
    common = std::move(next);
  }
  merged.event_name_patterns = std::move(common);

  // Residual filters re-evaluate predicates row-wise on the shared
  // output, so every predicate column must be materialized.
  if (any_ts) merged.columns |= columnar::ColumnBit(columnar::EventColumn::kTimestamp);
  if (any_name) merged.columns |= columnar::ColumnBit(columnar::EventColumn::kEventName);
  if (any_uid) merged.columns |= columnar::ColumnBit(columnar::EventColumn::kUserId);
  return merged;
}

}  // namespace unilog::dataflow
