#include "dataflow/pig.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "dataflow/columnar_scan.h"

namespace unilog::dataflow {

namespace {

enum class TokType { kIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokType type = TokType::kEnd;
  std::string text;
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

/// Token stream over one statement.
class PigTokens {
 public:
  static Result<PigTokens> Lex(const std::string& text) {
    PigTokens out;
    size_t i = 0;
    while (i < text.size()) {
      char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t end = text.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("pig: unterminated string literal");
        }
        out.tokens_.push_back(
            Token{TokType::kString, text.substr(i + 1, end - i - 1)});
        i = end + 1;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t start = i;
        while (i < text.size() && IsIdentChar(text[i])) ++i;
        out.tokens_.push_back(
            Token{TokType::kIdent, text.substr(start, i - start)});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
        size_t start = i;
        ++i;
        while (i < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[i])) ||
                text[i] == '.')) {
          ++i;
        }
        out.tokens_.push_back(
            Token{TokType::kNumber, text.substr(start, i - start)});
        continue;
      }
      // Two-char comparison symbols.
      if (i + 1 < text.size()) {
        std::string two = text.substr(i, 2);
        if (two == "==" || two == "!=" || two == "<=" || two == ">=") {
          out.tokens_.push_back(Token{TokType::kSymbol, two});
          i += 2;
          continue;
        }
      }
      static const std::string kSingles = "=(),*<>";
      if (kSingles.find(c) != std::string::npos) {
        out.tokens_.push_back(Token{TokType::kSymbol, std::string(1, c)});
        ++i;
        continue;
      }
      return Status::InvalidArgument(std::string("pig: bad character '") + c +
                                     "'");
    }
    return out;
  }

  const Token& Peek() const {
    static const Token kEnd{};
    return pos_ < tokens_.size() ? tokens_[pos_] : kEnd;
  }
  Token Next() {
    Token t = Peek();
    if (pos_ < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return pos_ >= tokens_.size(); }

  /// True (and consumes) if the next token is the given keyword
  /// (case-insensitive identifier).
  bool ConsumeKeyword(const std::string& kw) {
    if (Peek().type == TokType::kIdent && ToLower(Peek().text) == kw) {
      Next();
      return true;
    }
    return false;
  }
  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokType::kIdent && ToLower(Peek().text) == kw;
  }
  bool ConsumeSymbol(const std::string& s) {
    if (Peek().type == TokType::kSymbol && Peek().text == s) {
      Next();
      return true;
    }
    return false;
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().type != TokType::kIdent) {
      return Status::InvalidArgument(std::string("pig: expected ") + what);
    }
    return Next().text;
  }
  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) {
      return Status::InvalidArgument("pig: expected '" + s + "'");
    }
    return Status::OK();
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

namespace {

/// Splits a script into ';'-terminated statements, respecting quotes and
/// stripping '--' line comments.
std::vector<std::string> SplitStatements(const std::string& script) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < script.size(); ++i) {
    char c = script[i];
    if (!in_string && c == '-' && i + 1 < script.size() &&
        script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      if (!Trim(current).empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!Trim(current).empty()) out.push_back(current);
  return out;
}

/// Parses a parenthesized list of string/number/ident constructor args.
Result<std::vector<std::string>> ParseCtorArgs(PigTokens* t) {
  std::vector<std::string> args;
  UNILOG_RETURN_NOT_OK(t->ExpectSymbol("("));
  if (t->ConsumeSymbol(")")) return args;
  while (true) {
    const Token& tok = t->Peek();
    if (tok.type != TokType::kString && tok.type != TokType::kNumber &&
        tok.type != TokType::kIdent) {
      return Status::InvalidArgument("pig: bad constructor argument");
    }
    args.push_back(t->Next().text);
    if (t->ConsumeSymbol(")")) return args;
    UNILOG_RETURN_NOT_OK(t->ExpectSymbol(","));
  }
}

struct Operand {
  enum class Kind { kColumn, kLiteral } kind = Kind::kColumn;
  std::string column;
  Value literal;
};

Result<Operand> ParseOperand(PigTokens* t) {
  Operand op;
  const Token& tok = t->Peek();
  if (tok.type == TokType::kIdent) {
    op.kind = Operand::Kind::kColumn;
    op.column = t->Next().text;
    return op;
  }
  if (tok.type == TokType::kNumber) {
    std::string text = t->Next().text;
    op.kind = Operand::Kind::kLiteral;
    if (text.find('.') != std::string::npos) {
      op.literal = Value::Real(std::strtod(text.c_str(), nullptr));
    } else {
      op.literal = Value::Int(std::strtoll(text.c_str(), nullptr, 10));
    }
    return op;
  }
  if (tok.type == TokType::kString) {
    op.kind = Operand::Kind::kLiteral;
    op.literal = Value::Str(t->Next().text);
    return op;
  }
  return Status::InvalidArgument("pig: expected column or literal");
}

/// Compares two values under a comparison operator.
bool CompareValues(const Value& a, const std::string& op, const Value& b) {
  // Numeric comparison when either side is numeric.
  bool numeric = (a.is_int() || a.is_real()) && (b.is_int() || b.is_real());
  if (op == "==") return numeric ? a.AsNumber() == b.AsNumber() : a == b;
  if (op == "!=") return numeric ? a.AsNumber() != b.AsNumber() : !(a == b);
  if (numeric) {
    double x = a.AsNumber(), y = b.AsNumber();
    if (op == "<") return x < y;
    if (op == "<=") return x <= y;
    if (op == ">") return x > y;
    if (op == ">=") return x >= y;
  } else {
    if (op == "<") return a < b;
    if (op == "<=") return !(b < a);
    if (op == ">") return b < a;
    if (op == ">=") return !(a < b);
  }
  return false;
}

/// One GENERATE item, parsed.
struct GenItem {
  enum class Kind { kColumn, kUdf, kAggregate } kind = Kind::kColumn;
  std::string column;           // kColumn: source column
  std::string udf_name;         // kUdf
  std::vector<Operand> args;    // kUdf arguments
  Aggregate::Op agg_op = Aggregate::Op::kCount;  // kAggregate
  std::string agg_column;       // kAggregate input (may be "*" for COUNT)
  std::string as;               // output name ("" = default)
};

/// Rewrites `literal op column` as `column op' literal` (matches has no
/// flipped form; == and != are symmetric).
std::string FlipComparison(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;
}

bool AggregateOpFor(const std::string& name_lower, Aggregate::Op* op) {
  if (name_lower == "count") {
    *op = Aggregate::Op::kCount;
    return true;
  }
  if (name_lower == "sum") {
    *op = Aggregate::Op::kSum;
    return true;
  }
  if (name_lower == "min") {
    *op = Aggregate::Op::kMin;
    return true;
  }
  if (name_lower == "max") {
    *op = Aggregate::Op::kMax;
    return true;
  }
  if (name_lower == "count_distinct") {
    *op = Aggregate::Op::kCountDistinct;
    return true;
  }
  return false;
}

}  // namespace

void PigInterpreter::RegisterLoader(const std::string& name, Loader loader) {
  loaders_[ToLower(name)] = std::move(loader);
}

void PigInterpreter::RegisterScanLoader(const std::string& name,
                                        ScanLoader loader) {
  scan_loaders_[ToLower(name)] = std::move(loader);
}

void PigInterpreter::RegisterUdfFactory(const std::string& name,
                                        UdfFactory factory) {
  factories_[ToLower(name)] = std::move(factory);
}

void PigInterpreter::SetParam(const std::string& name,
                              const std::string& value) {
  params_[name] = value;
}

Result<PigInterpreter::GroupedRelation> PigInterpreter::LookupRel(
    const std::string& alias) const {
  auto it = aliases_.find(alias);
  if (it == aliases_.end()) {
    return Status::NotFound("pig: undefined alias: " + alias);
  }
  return it->second;
}

Result<Relation> PigInterpreter::Lookup(const std::string& alias) const {
  UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(alias));
  if (rel.grouped) {
    return Status::FailedPrecondition(
        "pig: alias '" + alias + "' is grouped; FOREACH it first");
  }
  return Materialized(rel);
}

Result<Relation> PigInterpreter::Materialized(
    const GroupedRelation& rel) const {
  if (rel.scan == nullptr) return rel.data;
  return rel.scan->Materialize(exec_);
}

Status PigInterpreter::Run(const std::string& script) {
  // $PARAM substitution (textual, including inside quotes, like pig
  // -param).
  std::string substituted;
  substituted.reserve(script.size());
  for (size_t i = 0; i < script.size(); ++i) {
    if (script[i] == '$' && i + 1 < script.size() &&
        (std::isalnum(static_cast<unsigned char>(script[i + 1])) ||
         script[i + 1] == '_')) {
      size_t j = i + 1;
      while (j < script.size() &&
             (std::isalnum(static_cast<unsigned char>(script[j])) ||
              script[j] == '_')) {
        ++j;
      }
      std::string name = script.substr(i + 1, j - i - 1);
      auto it = params_.find(name);
      if (it == params_.end()) {
        return Status::InvalidArgument("pig: undefined parameter $" + name);
      }
      substituted += it->second;
      i = j - 1;
    } else {
      substituted.push_back(script[i]);
    }
  }

  for (const std::string& statement : SplitStatements(substituted)) {
    Status st = ExecuteStatement(statement);
    if (!st.ok()) {
      return Status::InvalidArgument(st.message() + " [in statement: " +
                                     std::string(Trim(statement)) + "]");
    }
  }
  return Status::OK();
}

Status PigInterpreter::ExecuteStatement(const std::string& statement) {
  UNILOG_ASSIGN_OR_RETURN(PigTokens tokens, PigTokens::Lex(statement));
  PigTokens* t = &tokens;

  if (t->ConsumeKeyword("define")) {
    UNILOG_ASSIGN_OR_RETURN(std::string alias, t->ExpectIdent("udf alias"));
    UNILOG_ASSIGN_OR_RETURN(std::string factory_name,
                            t->ExpectIdent("udf factory"));
    auto fit = factories_.find(ToLower(factory_name));
    if (fit == factories_.end()) {
      return Status::NotFound("pig: unknown UDF factory: " + factory_name);
    }
    UNILOG_ASSIGN_OR_RETURN(std::vector<std::string> args, ParseCtorArgs(t));
    UNILOG_ASSIGN_OR_RETURN(ScalarUdf udf, fit->second(args));
    defined_udfs_[alias] = std::move(udf);
    return Status::OK();
  }

  if (t->ConsumeKeyword("dump")) {
    UNILOG_ASSIGN_OR_RETURN(std::string alias, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(Relation rel, Lookup(alias));
    for (const Row& row : rel.rows()) {
      std::string line = "(";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) line += ", ";
        line += row[i].ToString();
      }
      line += ")";
      output_.push_back(std::move(line));
    }
    return Status::OK();
  }

  if (t->ConsumeKeyword("describe")) {
    UNILOG_ASSIGN_OR_RETURN(std::string alias, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(alias));
    std::string line = alias + ": {";
    const auto& cols = rel.data.columns();
    for (size_t i = 0; i < cols.size(); ++i) {
      if (i > 0) line += ", ";
      line += cols[i];
    }
    line += "}";
    if (rel.grouped) line += " (grouped)";
    // DESCRIBE on a deferred scan reads only the schema — it must not
    // trigger materialization.
    if (rel.scan != nullptr) line += " (columnar scan)";
    output_.push_back(std::move(line));
    return Status::OK();
  }

  // alias = <expression>
  UNILOG_ASSIGN_OR_RETURN(std::string alias, t->ExpectIdent("alias"));
  UNILOG_RETURN_NOT_OK(t->ExpectSymbol("="));
  UNILOG_ASSIGN_OR_RETURN(GroupedRelation result, EvalExpression(t));
  if (!t->AtEnd()) return Status::InvalidArgument("pig: trailing tokens");
  aliases_[alias] = std::move(result);
  return Status::OK();
}

Result<PigInterpreter::GroupedRelation> PigInterpreter::EvalExpression(
    PigTokens* t) {
  GroupedRelation out;

  if (t->ConsumeKeyword("load")) {
    if (t->Peek().type != TokType::kString) {
      return Status::InvalidArgument("pig: LOAD expects a quoted path");
    }
    std::string path = t->Next().text;
    if (!t->ConsumeKeyword("using")) {
      return Status::InvalidArgument("pig: LOAD requires USING <loader>");
    }
    UNILOG_ASSIGN_OR_RETURN(std::string loader_name,
                            t->ExpectIdent("loader name"));
    auto sit = scan_loaders_.find(ToLower(loader_name));
    if (sit != scan_loaders_.end()) {
      UNILOG_ASSIGN_OR_RETURN(std::vector<std::string> args, ParseCtorArgs(t));
      UNILOG_ASSIGN_OR_RETURN(out.scan, sit->second(path, args));
      out.data = Relation(out.scan->columns());
      return out;
    }
    auto lit = loaders_.find(ToLower(loader_name));
    if (lit == loaders_.end()) {
      return Status::NotFound("pig: unknown loader: " + loader_name);
    }
    UNILOG_ASSIGN_OR_RETURN(std::vector<std::string> args, ParseCtorArgs(t));
    UNILOG_ASSIGN_OR_RETURN(out.data, lit->second(path, args));
    return out;
  }

  if (t->ConsumeKeyword("filter")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    if (rel.grouped) {
      return Status::FailedPrecondition("pig: cannot FILTER a grouped alias");
    }
    if (!t->ConsumeKeyword("by")) {
      return Status::InvalidArgument("pig: FILTER requires BY");
    }
    UNILOG_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(t));
    std::string op;
    if (t->PeekKeyword("matches")) {
      t->Next();
      op = "matches";
    } else if (t->Peek().type == TokType::kSymbol) {
      op = t->Next().text;
    } else {
      return Status::InvalidArgument("pig: expected comparison operator");
    }
    UNILOG_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(t));

    if (rel.scan != nullptr) {
      // Pushdown: a column-vs-literal predicate is offered to the scan
      // (cloned, so the source alias keeps its own plan). `lit op col` is
      // flipped to `col op' lit`; `matches` needs the pattern on the
      // right. Anything the scan declines falls through to the eager
      // materialize-then-filter path below.
      const Operand* col_op = nullptr;
      const Operand* lit_op = nullptr;
      std::string scan_op = op;
      if (lhs.kind == Operand::Kind::kColumn &&
          rhs.kind == Operand::Kind::kLiteral) {
        col_op = &lhs;
        lit_op = &rhs;
      } else if (lhs.kind == Operand::Kind::kLiteral &&
                 rhs.kind == Operand::Kind::kColumn && op != "matches") {
        col_op = &rhs;
        lit_op = &lhs;
        scan_op = FlipComparison(op);
      }
      if (col_op != nullptr) {
        std::shared_ptr<PushdownScan> clone = rel.scan->Clone();
        if (clone->PushFilter(col_op->column, scan_op, lit_op->literal)) {
          out.scan = std::move(clone);
          out.data = Relation(out.scan->columns());
          return out;
        }
      }
      UNILOG_ASSIGN_OR_RETURN(rel.data, Materialized(rel));
      rel.scan.reset();
    }

    // Resolve column indices once.
    auto resolve = [&rel](const Operand& o) -> Result<int64_t> {
      if (o.kind == Operand::Kind::kLiteral) return int64_t{-1};
      UNILOG_ASSIGN_OR_RETURN(size_t idx, rel.data.ColumnIndex(o.column));
      return static_cast<int64_t>(idx);
    };
    UNILOG_ASSIGN_OR_RETURN(int64_t li, resolve(lhs));
    UNILOG_ASSIGN_OR_RETURN(int64_t ri, resolve(rhs));

    out.data = rel.data.Filter([&, li, ri](const Row& row) {
      const Value& a = li >= 0 ? row[static_cast<size_t>(li)] : lhs.literal;
      const Value& b = ri >= 0 ? row[static_cast<size_t>(ri)] : rhs.literal;
      if (op == "matches") {
        return b.is_str() && a.is_str() &&
               GlobMatch(b.str_value(), a.str_value());
      }
      return CompareValues(a, op, b);
    }, exec_);
    return out;
  }

  if (t->ConsumeKeyword("foreach")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    if (!t->ConsumeKeyword("generate")) {
      return Status::InvalidArgument("pig: FOREACH requires GENERATE");
    }
    // Parse items.
    std::vector<GenItem> items;
    while (true) {
      GenItem item;
      UNILOG_ASSIGN_OR_RETURN(std::string name, t->ExpectIdent("expression"));
      std::string lower = ToLower(name);
      Aggregate::Op agg_op;
      if (t->ConsumeSymbol("(")) {
        if (AggregateOpFor(lower, &agg_op)) {
          item.kind = GenItem::Kind::kAggregate;
          item.agg_op = agg_op;
          if (t->ConsumeSymbol("*")) {
            item.agg_column = "*";
          } else {
            UNILOG_ASSIGN_OR_RETURN(item.agg_column,
                                    t->ExpectIdent("aggregate column"));
          }
          UNILOG_RETURN_NOT_OK(t->ExpectSymbol(")"));
        } else {
          item.kind = GenItem::Kind::kUdf;
          item.udf_name = name;
          if (!t->ConsumeSymbol(")")) {
            while (true) {
              UNILOG_ASSIGN_OR_RETURN(Operand arg, ParseOperand(t));
              item.args.push_back(std::move(arg));
              if (t->ConsumeSymbol(")")) break;
              UNILOG_RETURN_NOT_OK(t->ExpectSymbol(","));
            }
          }
        }
      } else {
        item.kind = GenItem::Kind::kColumn;
        item.column = name;
      }
      if (t->ConsumeKeyword("as")) {
        UNILOG_ASSIGN_OR_RETURN(item.as, t->ExpectIdent("output name"));
      }
      items.push_back(std::move(item));
      if (!t->ConsumeSymbol(",")) break;
    }

    bool has_aggregate = false;
    for (const auto& item : items) {
      if (item.kind == GenItem::Kind::kAggregate) has_aggregate = true;
    }

    if (rel.scan != nullptr) {
      // Pushdown: a pure column projection (with optional AS renames)
      // narrows the scan's column mask instead of materializing. UDFs and
      // aggregates are not fusible.
      bool pure_projection = !has_aggregate;
      for (const auto& item : items) {
        if (item.kind != GenItem::Kind::kColumn) pure_projection = false;
      }
      if (pure_projection) {
        std::vector<std::string> cols;
        std::vector<std::string> names;
        for (const auto& item : items) {
          cols.push_back(item.column);
          names.push_back(item.as.empty() ? item.column : item.as);
        }
        std::shared_ptr<PushdownScan> clone = rel.scan->Clone();
        if (clone->PushProject(cols, names)) {
          out.scan = std::move(clone);
          out.data = Relation(out.scan->columns());
          return out;
        }
      }
      UNILOG_ASSIGN_OR_RETURN(rel.data, Materialized(rel));
      rel.scan.reset();
    }

    if (rel.grouped || has_aggregate) {
      if (!rel.grouped) {
        return Status::FailedPrecondition(
            "pig: aggregate functions require GROUP first");
      }
      // Build the GroupBy spec: key columns + aggregates, then project in
      // the requested order.
      std::vector<Aggregate> aggs;
      std::vector<std::string> out_cols;
      for (auto& item : items) {
        if (item.kind == GenItem::Kind::kColumn) {
          bool is_key = false;
          for (const auto& k : rel.keys) {
            if (k == item.column) is_key = true;
          }
          if (!is_key) {
            return Status::InvalidArgument(
                "pig: non-aggregate column '" + item.column +
                "' must be a group key");
          }
          out_cols.push_back(item.as.empty() ? item.column : item.as);
        } else if (item.kind == GenItem::Kind::kAggregate) {
          Aggregate agg;
          agg.op = item.agg_op;
          if (item.agg_column == "*") {
            if (agg.op != Aggregate::Op::kCount) {
              return Status::InvalidArgument("pig: only COUNT(*) allowed");
            }
          } else {
            agg.column = item.agg_column;
          }
          agg.as = item.as.empty()
                       ? (item.agg_column == "*" ? "count"
                                                 : "agg_" + item.agg_column)
                       : item.as;
          out_cols.push_back(agg.as);
          aggs.push_back(std::move(agg));
        } else {
          return Status::InvalidArgument(
              "pig: scalar UDFs not allowed in grouped FOREACH");
        }
      }
      UNILOG_ASSIGN_OR_RETURN(Relation grouped,
                              rel.data.GroupBy(rel.keys, aggs, exec_));
      // Rename key columns if AS was used, then project requested order.
      // GroupBy output = keys..., aggs...; map names.
      std::vector<std::string> project;
      size_t agg_index = 0;
      for (auto& item : items) {
        if (item.kind == GenItem::Kind::kColumn) {
          project.push_back(item.column);
        } else {
          project.push_back(aggs[agg_index++].as);
        }
      }
      UNILOG_ASSIGN_OR_RETURN(out.data, grouped.Project(project));
      return out;
    }

    // Row-level FOREACH: build output row by row.
    std::vector<std::string> out_cols;
    for (size_t i = 0; i < items.size(); ++i) {
      const GenItem& item = items[i];
      if (!item.as.empty()) {
        out_cols.push_back(item.as);
      } else if (item.kind == GenItem::Kind::kColumn) {
        out_cols.push_back(item.column);
      } else {
        out_cols.push_back("expr_" + std::to_string(i));
      }
    }
    // Resolve column indices and UDFs.
    struct ResolvedItem {
      const GenItem* item;
      int64_t column_index = -1;
      const ScalarUdf* udf = nullptr;
      ScalarUdf owned_udf;
      std::vector<int64_t> arg_indices;  // -1 = literal
    };
    std::vector<ResolvedItem> resolved;
    for (const auto& item : items) {
      ResolvedItem r;
      r.item = &item;
      if (item.kind == GenItem::Kind::kColumn) {
        UNILOG_ASSIGN_OR_RETURN(size_t idx, rel.data.ColumnIndex(item.column));
        r.column_index = static_cast<int64_t>(idx);
      } else {
        auto uit = defined_udfs_.find(item.udf_name);
        if (uit != defined_udfs_.end()) {
          r.udf = &uit->second;
        } else {
          auto fit = factories_.find(ToLower(item.udf_name));
          if (fit == factories_.end()) {
            return Status::NotFound("pig: unknown function: " + item.udf_name);
          }
          UNILOG_ASSIGN_OR_RETURN(r.owned_udf, fit->second({}));
          // r.udf stays null: the struct is about to be moved into the
          // vector, so the call site uses owned_udf directly.
        }
        for (const auto& arg : item.args) {
          if (arg.kind == Operand::Kind::kLiteral) {
            r.arg_indices.push_back(-1);
          } else {
            UNILOG_ASSIGN_OR_RETURN(size_t idx,
                                    rel.data.ColumnIndex(arg.column));
            r.arg_indices.push_back(static_cast<int64_t>(idx));
          }
        }
      }
      resolved.push_back(std::move(r));
    }
    auto generate_one = [&](const Row& row, Row* out_row) -> Status {
      out_row->reserve(resolved.size());
      for (const auto& r : resolved) {
        if (r.item->kind == GenItem::Kind::kColumn) {
          out_row->push_back(row[static_cast<size_t>(r.column_index)]);
        } else {
          std::vector<Value> args;
          for (size_t a = 0; a < r.arg_indices.size(); ++a) {
            args.push_back(r.arg_indices[a] >= 0
                               ? row[static_cast<size_t>(r.arg_indices[a])]
                               : r.item->args[a].literal);
          }
          const ScalarUdf& fn = r.udf != nullptr ? *r.udf : r.owned_udf;
          UNILOG_ASSIGN_OR_RETURN(Value v, fn(args));
          out_row->push_back(std::move(v));
        }
      }
      return Status::OK();
    };
    if (exec_ == nullptr || !exec_->parallel()) {
      out.data = Relation(out_cols);
      for (const Row& row : rel.data.rows()) {
        Row out_row;
        UNILOG_RETURN_NOT_OK(generate_one(row, &out_row));
        UNILOG_RETURN_NOT_OK(out.data.AddRow(std::move(out_row)));
      }
      return out;
    }
    // Parallel FOREACH: each row writes its own output slot; row order is
    // preserved by construction.
    const std::vector<Row>& in_rows = rel.data.rows();
    std::vector<Row> out_rows(in_rows.size());
    UNILOG_RETURN_NOT_OK(exec_->ParallelForStatus(
        "foreach", in_rows.size(),
        [&](size_t i) { return generate_one(in_rows[i], &out_rows[i]); }));
    UNILOG_ASSIGN_OR_RETURN(out.data,
                            Relation::FromRows(out_cols, std::move(out_rows)));
    return out;
  }

  if (t->ConsumeKeyword("group")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    if (rel.grouped) {
      return Status::FailedPrecondition("pig: alias is already grouped");
    }
    UNILOG_ASSIGN_OR_RETURN(out.data, Materialized(rel));
    out.grouped = true;
    if (t->ConsumeKeyword("all")) {
      return out;
    }
    if (!t->ConsumeKeyword("by")) {
      return Status::InvalidArgument("pig: GROUP requires ALL or BY");
    }
    while (true) {
      UNILOG_ASSIGN_OR_RETURN(std::string key, t->ExpectIdent("group key"));
      UNILOG_RETURN_NOT_OK(out.data.ColumnIndex(key).status());
      out.keys.push_back(key);
      if (!t->ConsumeSymbol(",")) break;
    }
    return out;
  }

  if (t->ConsumeKeyword("distinct")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    UNILOG_ASSIGN_OR_RETURN(Relation input, Materialized(rel));
    out.data = input.Distinct(exec_);
    return out;
  }

  if (t->ConsumeKeyword("order")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    if (!t->ConsumeKeyword("by")) {
      return Status::InvalidArgument("pig: ORDER requires BY");
    }
    UNILOG_ASSIGN_OR_RETURN(std::string col, t->ExpectIdent("order column"));
    bool descending = false;
    if (t->ConsumeKeyword("desc")) {
      descending = true;
    } else {
      t->ConsumeKeyword("asc");
    }
    UNILOG_ASSIGN_OR_RETURN(Relation input, Materialized(rel));
    UNILOG_ASSIGN_OR_RETURN(out.data, input.OrderBy(col, descending, exec_));
    return out;
  }

  if (t->ConsumeKeyword("limit")) {
    UNILOG_ASSIGN_OR_RETURN(std::string src, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rel, LookupRel(src));
    if (t->Peek().type != TokType::kNumber) {
      return Status::InvalidArgument("pig: LIMIT requires a number");
    }
    long long n = std::strtoll(t->Next().text.c_str(), nullptr, 10);
    UNILOG_ASSIGN_OR_RETURN(Relation input, Materialized(rel));
    out.data = input.Limit(static_cast<size_t>(n < 0 ? 0 : n));
    return out;
  }

  if (t->ConsumeKeyword("join")) {
    UNILOG_ASSIGN_OR_RETURN(std::string left, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation lrel, LookupRel(left));
    if (!t->ConsumeKeyword("by")) {
      return Status::InvalidArgument("pig: JOIN requires BY");
    }
    UNILOG_ASSIGN_OR_RETURN(std::string lcol, t->ExpectIdent("join column"));
    UNILOG_RETURN_NOT_OK(t->ExpectSymbol(","));
    UNILOG_ASSIGN_OR_RETURN(std::string right, t->ExpectIdent("alias"));
    UNILOG_ASSIGN_OR_RETURN(GroupedRelation rrel, LookupRel(right));
    if (!t->ConsumeKeyword("by")) {
      return Status::InvalidArgument("pig: JOIN requires BY on both sides");
    }
    UNILOG_ASSIGN_OR_RETURN(std::string rcol, t->ExpectIdent("join column"));
    UNILOG_ASSIGN_OR_RETURN(Relation linput, Materialized(lrel));
    UNILOG_ASSIGN_OR_RETURN(Relation rinput, Materialized(rrel));
    UNILOG_ASSIGN_OR_RETURN(out.data, linput.Join(rinput, lcol, rcol, exec_));
    return out;
  }

  return Status::InvalidArgument("pig: unknown operator");
}

}  // namespace unilog::dataflow
