#ifndef UNILOG_DATAFLOW_COLUMNAR_SCAN_H_
#define UNILOG_DATAFLOW_COLUMNAR_SCAN_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "columnar/rcfile.h"
#include "common/result.h"
#include "common/status.h"
#include "dataflow/planner.h"
#include "dataflow/relation.h"
#include "dataflow/vector_engine.h"
#include "hdfs/mini_hdfs.h"

namespace unilog::dataflow {

/// True when any path component of `path` below the `dir` prefix starts
/// with '_' — the warehouse convention for metadata and cache subtrees
/// (_SUCCESS-style markers, /warehouse/_cache artifacts). Scans and the
/// Oink input manifests both ignore hidden paths, so cached intermediate
/// results written next to the data can never feed back into a scan, an
/// input fingerprint, or delivery accounting.
bool IsHiddenWarehousePath(const std::string& dir, const std::string& path);

/// A deferred table scan the Pig layer can push work into. LOAD with a
/// scan loader binds one of these instead of materializing a Relation;
/// an immediately-following FILTER (column op literal) or FOREACH (pure
/// column projection) is then absorbed into the scan, and the relation
/// only materializes when a non-fusible operator consumes it — the
/// pushdown-instead-of-materialize-then-filter plan the paper's loaders
/// ("abstracting over details of the physical layout") enable.
class PushdownScan {
 public:
  virtual ~PushdownScan() = default;

  /// The schema the scan would materialize (respecting pushed
  /// projections/renames), available without scanning anything.
  virtual const std::vector<std::string>& columns() const = 0;

  /// Aliases must stay independent: Pig clones before tightening, so
  /// `filtered = FILTER raw BY ...` never mutates `raw`'s plan.
  virtual std::shared_ptr<PushdownScan> Clone() const = 0;

  /// Attempts to absorb the predicate `column op literal` (ops: == != <
  /// <= > >= matches, as in Pig FILTER). Returns false when this
  /// predicate cannot be fused; the caller then materializes and filters.
  virtual bool PushFilter(const std::string& column, const std::string& op,
                          const Value& literal) = 0;

  /// Attempts to absorb a projection of `cols` (current visible names)
  /// renamed to `names`. False when any column is not fusible.
  virtual bool PushProject(const std::vector<std::string>& cols,
                           const std::vector<std::string>& names) = 0;

  /// Runs the scan (or returns the cached result of a previous run).
  /// With a parallel executor, row groups fan out across worker threads
  /// and are merged in file/group order, so the output is byte-identical
  /// to a serial scan at any thread count.
  virtual Result<Relation> Materialize(exec::Executor* exec) = 0;
};

/// PushdownScan over a warehouse directory of client-event files, in
/// either format: columnar RCFile v2 parts get zone-map/dictionary group
/// skipping and encoded-id predicate pruning; legacy framed-compressed
/// parts are decoded and filtered row-wise (correct everywhere, fast on
/// columnar data). Visible columns: {initiator, event_name, user_id,
/// session_id, ip, timestamp}.
class ColumnarEventScan : public PushdownScan {
 public:
  /// Reads the file bodies under `dir` (entries with any '_'-prefixed
  /// path component below `dir` are ignored — see IsHiddenWarehousePath).
  /// Scan accounting is reported into `metrics` (labels {source=<dir>})
  /// at each materialization; may be null.
  static Result<std::shared_ptr<ColumnarEventScan>> Open(
      const hdfs::MiniHdfs* fs, const std::string& dir,
      obs::MetricsRegistry* metrics = nullptr);

  /// A plan-only scan over an empty file set: filters and projections push
  /// exactly as on an opened scan, so the Oink layer canonicalizes a
  /// workflow's plan (spec + visible columns) without touching storage.
  /// Materialize yields an empty relation.
  static std::shared_ptr<ColumnarEventScan> PlanOnly();

  /// One union scan fanned out to many per-workflow outputs — the Oink
  /// shared-scan fast path. Every member must be a Clone() of the same
  /// opened scan (they share one immutable file set); the files are
  /// scanned once with the MergeScanSpecs union of the member specs, and
  /// each row fans out through each member's residual RowMatcher and
  /// projection. Output i is byte-identical to members[i]->Materialize on
  /// the same files, at any thread count (scan units and residual filters
  /// run on `exec`; slots merge in unit order). The union scan's
  /// accounting lands in `stats_out` (may be null) and in each member's
  /// last_stats(); members' caches are filled so later Materialize calls
  /// are free.
  static Result<std::vector<Relation>> MaterializeShared(
      const std::vector<std::shared_ptr<ColumnarEventScan>>& members,
      exec::Executor* exec, columnar::ScanStats* stats_out = nullptr);

  const std::vector<std::string>& columns() const override;
  std::shared_ptr<PushdownScan> Clone() const override;
  bool PushFilter(const std::string& column, const std::string& op,
                  const Value& literal) override;
  bool PushProject(const std::vector<std::string>& cols,
                   const std::vector<std::string>& names) override;
  Result<Relation> Materialize(exec::Executor* exec) override;

  /// Materialize's vectorized twin: the same rows and columns, as typed
  /// column batches (one per scan unit, merged in unit order) —
  /// `MaterializeBatches(e)->ToRelation()` is byte-identical to
  /// `Materialize(e)` at any thread count. RCFile v2 group dictionaries
  /// pass through as dictionary columns: event-name/initiator strings are
  /// materialized once per distinct value per group, never per row.
  Result<BatchRelation> MaterializeBatches(exec::Executor* exec);

  /// The shared-scan fast path in batch form: units are decoded once
  /// under the union spec, each member re-tightens with its residual
  /// predicates as a selection vector over *shared* column arrays (no
  /// per-member copy), then projects its visible columns. Output i
  /// converted ToRelation() is byte-identical to members[i]->Materialize
  /// on the same files. Fills members' batch caches, not their row
  /// caches.
  static Result<std::vector<BatchRelation>> MaterializeSharedBatches(
      const std::vector<std::shared_ptr<ColumnarEventScan>>& members,
      exec::Executor* exec, columnar::ScanStats* stats_out = nullptr);

  /// Header-only planner statistics over the file set: v2 rowgroup zone
  /// maps and dictionaries aggregated via RcFileReader::CollectGroupStats
  /// (nothing decompressed); legacy files contribute bytes only.
  Result<TableStats> Stats() const;

  /// Stats() through a TableStatsCache: each file first resolves by
  /// path|size|mtime (no bytes touched), then by content fingerprint
  /// (headers only), and only a miss walks the rowgroup headers. Repeated
  /// planning over a warm warehouse becomes pure map lookups.
  Result<TableStats> Stats(TableStatsCache* cache) const;

  /// Morsel packing knobs for the parallel materialize paths (scan units
  /// weighted by row-group byte length; legacy files by body size).
  void set_morsel_options(const exec::MorselOptions& options) {
    morsel_options_ = options;
  }
  const exec::MorselOptions& morsel_options() const { return morsel_options_; }

  /// The accumulated spec (for tests and EXPLAIN-style debugging).
  const columnar::ScanSpec& spec() const { return spec_; }
  /// Visible output columns after pushed projections: (name, source).
  const std::vector<std::pair<std::string, columnar::EventColumn>>& visible()
      const {
    return visible_;
  }
  /// Accounting of the last Materialize run.
  const columnar::ScanStats& last_stats() const { return last_stats_; }

 private:
  struct LoadedFile {
    std::string path;
    std::string body;
    /// Listing metadata, captured at Open: the stats-cache key half that
    /// never touches the body.
    uint64_t size = 0;
    int64_t mtime = 0;
  };

  /// One independently scannable work item: a columnar row group or a
  /// whole legacy file.
  struct ScanUnit {
    const LoadedFile* file = nullptr;
    bool is_columnar = false;
    columnar::RcFileReader::RowGroupHandle group;
  };

  ColumnarEventScan() = default;

  /// One unit per (columnar file, row group); one unit per legacy file,
  /// in file order (sorted listing) x group order.
  static Result<std::vector<ScanUnit>> PlanUnits(
      const std::vector<LoadedFile>& files);

  /// Scans one unit under `spec` into `events`, accounting into `stats`.
  /// `legacy_matcher` must be a RowMatcher over the same spec (compiled
  /// once per scan; used for the row-wise legacy-file path).
  static Status ScanUnitEvents(const ScanUnit& unit,
                               const columnar::ScanSpec& spec,
                               const columnar::RowMatcher& legacy_matcher,
                               std::vector<events::ClientEvent>* events,
                               columnar::ScanStats* stats);

  /// Resolves a visible column name to its source event column.
  std::optional<columnar::EventColumn> Resolve(const std::string& name) const;
  void SyncColumnMask();

  std::shared_ptr<const std::vector<LoadedFile>> files_;
  std::string source_;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Visible output columns: (name, source column), in output order.
  std::vector<std::pair<std::string, columnar::EventColumn>> visible_;
  std::vector<std::string> column_names_;
  columnar::ScanSpec spec_;
  exec::MorselOptions morsel_options_;
  std::optional<Relation> cache_;
  std::optional<BatchRelation> batch_cache_;
  columnar::ScanStats last_stats_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_COLUMNAR_SCAN_H_
