#ifndef UNILOG_DATAFLOW_RELATION_H_
#define UNILOG_DATAFLOW_RELATION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/executor.h"

namespace unilog::dataflow {

/// A scalar value in the Pig-like relational layer.
class Value {
 public:
  Value() : repr_(int64_t{0}) {}
  static Value Int(int64_t v) { return Value(Repr(v)); }
  static Value Real(double v) { return Value(Repr(v)); }
  static Value Str(std::string v) { return Value(Repr(std::move(v))); }
  static Value Bool(bool v) { return Value(Repr(v)); }

  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_real() const { return std::holds_alternative<double>(repr_); }
  bool is_str() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }

  int64_t int_value() const { return std::get<int64_t>(repr_); }
  double real_value() const { return std::get<double>(repr_); }
  const std::string& str_value() const { return std::get<std::string>(repr_); }
  bool bool_value() const { return std::get<bool>(repr_); }

  /// Numeric view (int widened to double); 0 for non-numeric.
  double AsNumber() const;

  /// Total order: by type index, then value — used for sorting and keys.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const { return repr_ == other.repr_; }

  std::string ToString() const;

 private:
  using Repr = std::variant<int64_t, double, std::string, bool>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}
  Repr repr_;
};

using Row = std::vector<Value>;

/// Aggregation specs for GroupBy, mirroring Pig's COUNT/SUM/MIN/MAX and
/// the COUNT-distinct variant §5.2 uses for "sessions containing at least
/// one instance".
struct Aggregate {
  enum class Op { kCount, kSum, kMin, kMax, kCountDistinct };
  Op op = Op::kCount;
  /// Input column (ignored for kCount).
  std::string column;
  /// Output column name.
  std::string as;
};

/// An in-memory relation (named columns + rows): the data model of the
/// Pig-like layer. Operators are purely functional (return new relations)
/// and Status-checked, so a misspelled column is an error, not garbage
/// output — one of §3.1's complaints about the legacy world.
///
/// Operators accept an optional exec::Executor. With a parallel executor,
/// rows fan out across worker threads and results are merged in row (or
/// key) order, so output is byte-identical to the serial path at any
/// thread count — including floating-point aggregates, because per-group
/// accumulation order is preserved, never reassociated. Caller-supplied
/// predicates/functions must then be reentrant.
class Relation {
 public:
  Relation() = default;
  explicit Relation(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  /// Builds a relation from pre-assembled rows (the pattern parallel
  /// producers use); every row must match the schema arity.
  static Result<Relation> FromRows(std::vector<std::string> columns,
                                   std::vector<Row> rows);

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }

  /// Appends a row; fails on arity mismatch.
  Status AddRow(Row row);

  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Row-level accessor by column name (checked).
  Result<Value> Get(const Row& row, const std::string& column) const;

  // --- Operators ---

  /// Keeps rows where `predicate` returns true. The predicate receives the
  /// row and a bound accessor for column lookups.
  using Predicate = std::function<bool(const Row& row)>;
  Relation Filter(const Predicate& predicate,
                  exec::Executor* exec = nullptr) const;

  /// Keeps only the named columns, in the given order.
  Result<Relation> Project(const std::vector<std::string>& cols,
                           exec::Executor* exec = nullptr) const;

  /// Adds a computed column.
  Result<Relation> WithColumn(const std::string& name,
                              std::function<Value(const Row&)> fn,
                              exec::Executor* exec = nullptr) const;

  /// Groups by key columns and applies aggregates. Output columns: keys
  /// then aggregate outputs. Output sorted by key. Parallel grouping
  /// hash-partitions rows by key, so each group is accumulated by exactly
  /// one task in original row order (SUM stays bit-identical).
  Result<Relation> GroupBy(const std::vector<std::string>& keys,
                           const std::vector<Aggregate>& aggs,
                           exec::Executor* exec = nullptr) const;

  /// Inner hash join on left_col == right_col. Output columns: all left
  /// columns then all right columns except the join column. The build side
  /// is sequential; probes fan out with outputs merged in probe-row order.
  Result<Relation> Join(const Relation& right, const std::string& left_col,
                        const std::string& right_col,
                        exec::Executor* exec = nullptr) const;

  /// Distinct full rows, keeping the first occurrence of each. Parallel
  /// dedup hash-partitions rows so each distinct row is owned by one
  /// shard; survivors merge by first-occurrence index, so the output is
  /// identical to the serial pass at any thread count.
  Relation Distinct(exec::Executor* exec = nullptr) const;

  /// Sorts by one column (stable). Parallel sort orders chunks under the
  /// (key, original index) total order and k-way merges them — the exact
  /// stable_sort output at any thread count.
  Result<Relation> OrderBy(const std::string& column, bool descending,
                           exec::Executor* exec = nullptr) const;

  Relation Limit(size_t n) const;

  /// Tab-separated rendering for examples and debugging (header + rows).
  std::string ToString(size_t max_rows = 20) const;

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_RELATION_H_
