#include "dataflow/planner.h"

#include <algorithm>
#include <cstring>

#include "events/event_name.h"

namespace unilog::dataflow {

namespace {

// Fallback priors when no statistic covers the clause.
constexpr double kEqPrior = 0.1;
constexpr double kRangePrior = 0.3;
constexpr double kMatchesPrior = 0.2;

// Share of a rowgroup's blob bytes holding the predicate-bearing encoded
// columns (timestamp, event-name ids) out of the seven column blobs: the
// bytes a pushdown scan decodes twice (once to select, once to
// materialize survivors).
constexpr double kPredicateColumnShare = 2.0 / 7.0;

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string LiteralToken(const Value& v) {
  if (v.is_int()) return "i:" + std::to_string(v.int_value());
  if (v.is_bool()) return std::string("b:") + (v.bool_value() ? "1" : "0");
  if (v.is_real()) {
    uint64_t bits = 0;
    double d = v.real_value();
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    return "r:" + HexU64(bits);
  }
  const std::string& s = v.str_value();
  return "s:" + std::to_string(s.size()) + ":" + s;
}

/// Fraction of the [min, max] zone covered by `v op lit` for an integer
/// column with an (inclusive) zone map.
double RangeFraction(int64_t min, int64_t max, const std::string& op,
                     int64_t lit) {
  const double span = static_cast<double>(max) - static_cast<double>(min) + 1;
  const double below =  // rows with value < lit (uniform assumption)
      Clamp01((static_cast<double>(lit) - static_cast<double>(min)) / span);
  const double at_most = Clamp01(
      (static_cast<double>(lit) - static_cast<double>(min) + 1) / span);
  if (op == "<") return below;
  if (op == "<=") return at_most;
  if (op == ">") return 1.0 - at_most;
  if (op == ">=") return 1.0 - below;
  if (op == "==") return lit < min || lit > max ? 0.0 : Clamp01(1.0 / span);
  if (op == "!=") return lit < min || lit > max ? 1.0 : 1.0 - Clamp01(1.0 / span);
  return kRangePrior;
}

double Prior(const std::string& op) {
  if (op == "==") return kEqPrior;
  if (op == "!=") return 1.0 - kEqPrior;
  if (op == "matches") return kMatchesPrior;
  return kRangePrior;
}

}  // namespace

void TableStats::Merge(const TableStats& other) {
  if (other.total_rows == 0 && other.row_groups == 0 &&
      other.data_bytes == 0) {
    return;
  }
  const bool was_empty = total_rows == 0 && row_groups == 0 && data_bytes == 0;
  total_rows += other.total_rows;
  row_groups += other.row_groups;
  data_bytes += other.data_bytes;
  auto merge_bound = [](std::optional<int64_t>* mine,
                        const std::optional<int64_t>& theirs, bool lower) {
    if (!theirs.has_value()) return;
    if (!mine->has_value()) {
      *mine = theirs;
    } else {
      *mine = lower ? std::min(**mine, *theirs) : std::max(**mine, *theirs);
    }
  };
  merge_bound(&min_timestamp, other.min_timestamp, true);
  merge_bound(&max_timestamp, other.max_timestamp, false);
  merge_bound(&min_user_id, other.min_user_id, true);
  merge_bound(&max_user_id, other.max_user_id, false);
  for (const auto& [name, rows] : other.name_rows) name_rows[name] += rows;
  for (const auto& [name, rows] : other.initiator_rows) {
    initiator_rows[name] += rows;
  }
  from_v2 = (was_empty || from_v2) && other.from_v2;
}

std::shared_ptr<const TableStats> TableStatsCache::FindByStat(
    const std::string& stat_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_stat_.find(stat_key);
  if (it == by_stat_.end()) return nullptr;
  ++stats_.stat_hits;
  return it->second;
}

std::shared_ptr<const TableStats> TableStatsCache::FindByContent(
    const std::string& stat_key, const std::string& content_key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_content_.find(content_key);
  if (it == by_content_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.content_hits;
  by_stat_[stat_key] = it->second;  // alias: next lookup is stat-only
  return it->second;
}

void TableStatsCache::Put(const std::string& stat_key,
                          const std::string& content_key, TableStats stats) {
  auto value = std::make_shared<const TableStats>(std::move(stats));
  std::lock_guard<std::mutex> lock(mu_);
  by_stat_[stat_key] = value;
  by_content_[content_key] = value;
}

TableStatsCache::CacheStats TableStatsCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string CanonicalFilterClause(const FilterExpr& e) {
  return e.column + " " + e.op + " " + LiteralToken(e.literal);
}

double EstimateClauseSelectivity(const TableStats& stats,
                                 const FilterExpr& e) {
  if (stats.total_rows == 0) return Prior(e.op);

  if (e.column == "timestamp" && e.literal.is_int() &&
      stats.min_timestamp.has_value() && stats.max_timestamp.has_value() &&
      e.op != "matches") {
    return Clamp01(RangeFraction(*stats.min_timestamp, *stats.max_timestamp,
                                 e.op, e.literal.int_value()));
  }
  if (e.column == "user_id" && e.literal.is_int() &&
      stats.min_user_id.has_value() && stats.max_user_id.has_value() &&
      e.op != "matches") {
    return Clamp01(RangeFraction(*stats.min_user_id, *stats.max_user_id, e.op,
                                 e.literal.int_value()));
  }
  if (e.column == "event_name" && e.literal.is_str() &&
      !stats.name_rows.empty()) {
    const double total = static_cast<double>(stats.total_rows);
    if (e.op == "==" || e.op == "!=") {
      auto it = stats.name_rows.find(e.literal.str_value());
      const double hit =
          it == stats.name_rows.end()
              ? 0.0
              : Clamp01(static_cast<double>(it->second) / total);
      return e.op == "==" ? hit : 1.0 - hit;
    }
    if (e.op == "matches") {
      events::EventPattern pattern(e.literal.str_value());
      uint64_t rows = 0;
      for (const auto& [name, n] : stats.name_rows) {
        if (pattern.Matches(name)) rows += n;
      }
      return Clamp01(static_cast<double>(rows) / total);
    }
  }
  // Initiator predicates estimate from the v2 initiator dictionaries,
  // exactly as event_name does from the name dictionaries.
  if (e.column == "initiator" && e.literal.is_str() &&
      !stats.initiator_rows.empty()) {
    const double total = static_cast<double>(stats.total_rows);
    if (e.op == "==" || e.op == "!=") {
      auto it = stats.initiator_rows.find(e.literal.str_value());
      const double hit =
          it == stats.initiator_rows.end()
              ? 0.0
              : Clamp01(static_cast<double>(it->second) / total);
      return e.op == "==" ? hit : 1.0 - hit;
    }
    if (e.op == "matches") {
      events::EventPattern pattern(e.literal.str_value());
      uint64_t rows = 0;
      for (const auto& [name, n] : stats.initiator_rows) {
        if (pattern.Matches(name)) rows += n;
      }
      return Clamp01(static_cast<double>(rows) / total);
    }
  }
  return Prior(e.op);
}

std::vector<FilterExpr> OrderFilters(const TableStats& stats,
                                     std::vector<FilterExpr> exprs) {
  struct Keyed {
    double sel;
    std::string token;
    size_t idx;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(exprs.size());
  for (size_t i = 0; i < exprs.size(); ++i) {
    keyed.push_back(
        {EstimateClauseSelectivity(stats, exprs[i]),
         CanonicalFilterClause(exprs[i]), i});
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    if (a.sel != b.sel) return a.sel < b.sel;
    return a.token < b.token;
  });
  std::vector<FilterExpr> out;
  out.reserve(exprs.size());
  for (const Keyed& k : keyed) out.push_back(std::move(exprs[k.idx]));
  return out;
}

ScanPlan PlanScan(const TableStats& stats,
                  const std::vector<FilterExpr>& clauses,
                  const JobCostModel& model) {
  ScanPlan plan;
  double sel = 1.0;
  for (const FilterExpr& e : clauses) {
    sel *= EstimateClauseSelectivity(stats, e);
  }
  plan.selectivity = Clamp01(sel);

  const double bytes = static_cast<double>(stats.data_bytes);
  const double per_ms = static_cast<double>(model.scan_bytes_per_ms);
  plan.eager_ms = bytes / per_ms;
  // Pushdown decodes the predicate columns for every row, then only the
  // surviving rows' remaining columns.
  plan.pushdown_ms =
      (bytes * kPredicateColumnShare +
       bytes * plan.selectivity * (1.0 - kPredicateColumnShare)) /
      per_ms;

  if (clauses.empty()) {
    plan.strategy = ScanStrategy::kEager;
  } else {
    plan.strategy = plan.eager_ms < plan.pushdown_ms ? ScanStrategy::kEager
                                                     : ScanStrategy::kPushdown;
  }
  return plan;
}

JoinBuildSide ChooseBuildSide(uint64_t left_rows, uint64_t right_rows) {
  return left_rows < right_rows ? JoinBuildSide::kLeft : JoinBuildSide::kRight;
}

}  // namespace unilog::dataflow
