#include "dataflow/relation_serde.h"

#include <cstring>

#include "common/coding.h"

namespace unilog::dataflow {

namespace {

constexpr std::string_view kMagic = "REL1";

constexpr uint8_t kTagInt = 0;
constexpr uint8_t kTagReal = 1;
constexpr uint8_t kTagStr = 2;
constexpr uint8_t kTagBool = 3;

void PutValue(std::string* out, const Value& value) {
  if (value.is_int()) {
    out->push_back(static_cast<char>(kTagInt));
    PutSignedVarint64(out, value.int_value());
  } else if (value.is_real()) {
    out->push_back(static_cast<char>(kTagReal));
    uint64_t bits = 0;
    double v = value.real_value();
    std::memcpy(&bits, &v, sizeof(bits));
    PutFixed64(out, bits);
  } else if (value.is_str()) {
    out->push_back(static_cast<char>(kTagStr));
    PutLengthPrefixed(out, value.str_value());
  } else {
    out->push_back(static_cast<char>(kTagBool));
    out->push_back(value.bool_value() ? 1 : 0);
  }
}

Status GetValue(Decoder* dec, Value* value) {
  std::string_view tag_byte;
  UNILOG_RETURN_NOT_OK(dec->GetBytes(1, &tag_byte));
  switch (static_cast<uint8_t>(tag_byte[0])) {
    case kTagInt: {
      int64_t v = 0;
      UNILOG_RETURN_NOT_OK(dec->GetSignedVarint64(&v));
      *value = Value::Int(v);
      return Status::OK();
    }
    case kTagReal: {
      uint64_t bits = 0;
      UNILOG_RETURN_NOT_OK(dec->GetFixed64(&bits));
      double v = 0;
      std::memcpy(&v, &bits, sizeof(v));
      *value = Value::Real(v);
      return Status::OK();
    }
    case kTagStr: {
      std::string_view sv;
      UNILOG_RETURN_NOT_OK(dec->GetLengthPrefixed(&sv));
      *value = Value::Str(std::string(sv));
      return Status::OK();
    }
    case kTagBool: {
      std::string_view b;
      UNILOG_RETURN_NOT_OK(dec->GetBytes(1, &b));
      if (b[0] != 0 && b[0] != 1) {
        return Status::Corruption("relation serde: bad bool payload");
      }
      *value = Value::Bool(b[0] == 1);
      return Status::OK();
    }
    default:
      return Status::Corruption("relation serde: unknown value tag");
  }
}

}  // namespace

std::string SerializeRelation(const Relation& relation) {
  std::string out;
  out.append(kMagic);
  PutVarint64(&out, relation.columns().size());
  for (const auto& name : relation.columns()) {
    PutLengthPrefixed(&out, name);
  }
  PutVarint64(&out, relation.rows().size());
  for (const auto& row : relation.rows()) {
    for (const auto& value : row) {
      PutValue(&out, value);
    }
  }
  return out;
}

Result<Relation> DeserializeRelation(std::string_view data) {
  Decoder dec(data);
  std::string_view magic;
  UNILOG_RETURN_NOT_OK(dec.GetBytes(kMagic.size(), &magic));
  if (magic != kMagic) {
    return Status::Corruption("relation serde: bad magic");
  }
  uint64_t ncols = 0;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&ncols));
  if (ncols > dec.remaining()) {
    return Status::Corruption("relation serde: implausible column count");
  }
  std::vector<std::string> columns;
  columns.reserve(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    std::string_view name;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
    columns.emplace_back(name);
  }
  uint64_t nrows = 0;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&nrows));
  // Every value consumes at least one tag byte, so a plausible row count
  // is bounded by the remaining bytes — sized allocations never trust the
  // claimed count alone. Zero-column rows consume nothing; cap them hard.
  if ((ncols > 0 && nrows > dec.remaining()) ||
      (ncols == 0 && nrows > (1u << 20))) {
    return Status::Corruption("relation serde: implausible row count");
  }
  std::vector<Row> rows;
  rows.reserve(nrows);
  for (uint64_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint64_t c = 0; c < ncols; ++c) {
      Value value;
      UNILOG_RETURN_NOT_OK(GetValue(&dec, &value));
      row.push_back(std::move(value));
    }
    rows.push_back(std::move(row));
  }
  if (!dec.AtEnd()) {
    return Status::Corruption("relation serde: trailing bytes");
  }
  return Relation::FromRows(std::move(columns), std::move(rows));
}

}  // namespace unilog::dataflow
