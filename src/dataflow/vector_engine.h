#ifndef UNILOG_DATAFLOW_VECTOR_ENGINE_H_
#define UNILOG_DATAFLOW_VECTOR_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/column_batch.h"
#include "dataflow/relation.h"
#include "exec/executor.h"

namespace unilog::dataflow {

/// One conjunctive predicate `column op literal` for the batch Filter
/// kernel. Ops: == != < <= > >= (Value total order, as the Oink residual
/// filters evaluate them) and `matches` (event-name glob; both sides must
/// be strings, as in Pig).
struct FilterExpr {
  std::string column;
  std::string op;
  Value literal;
};

/// Reference semantics of one FilterExpr against a boxed value — the row
/// engine side of every batch-vs-row equivalence test, and exactly the
/// clause evaluation the Oink workflow engine applies to residual filters.
bool EvalFilterOp(const Value& v, const std::string& op, const Value& literal);

/// Which side of a hash join is built into the table. The output is
/// byte-identical either way (probe order is restored when building on
/// the left); the planner picks the smaller side.
enum class JoinBuildSide { kAuto, kLeft, kRight };

/// Accounting the batch kernels accumulate when a caller passes a sink.
struct KernelStats {
  /// Rows cut at a dictionary-domain step: the predicate was evaluated
  /// once per dictionary entry and the row only compared its int32 code —
  /// its string was never touched.
  uint64_t dict_domain_rows_pruned = 0;
  /// Selected rows entering / surviving the kernel.
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;

  void MergeFrom(const KernelStats& other);
};

/// A relation stored as typed column batches — the vectorized twin of
/// Relation. Every kernel is byte-compatible with the row engine: for any
/// BatchRelation b built from Relation r, kernel(b).ToRelation() equals
/// the same row-engine operator applied to r, byte-for-byte under
/// SerializeRelation — including floating-point aggregates (per-group
/// accumulation stays in original row order) and the join key semantics
/// (Int(1) and Real(1) hash-match, exactly as Relation::Join). Kernels
/// accept the same exec::Executor contract: parallel output is identical
/// to serial at any thread count.
class BatchRelation {
 public:
  BatchRelation() = default;

  /// Row-major -> columnar conversion, chunking into batches of
  /// `batch_rows`. Column types are inferred per batch (see
  /// ColumnBatch::BuildColumn).
  static Result<BatchRelation> FromRelation(const Relation& rel,
                                            size_t batch_rows = 1024);

  /// Assembles from pre-built batches (the scan path). Every batch must
  /// have one column per schema name.
  static Result<BatchRelation> FromBatches(std::vector<std::string> columns,
                                           std::vector<ColumnBatch> batches);

  /// Columnar -> row-major conversion (applies selections).
  Result<Relation> ToRelation() const;

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<ColumnBatch>& batches() const { return batches_; }
  Result<size_t> ColumnIndex(const std::string& name) const;
  /// Rows surviving all selections, across batches.
  size_t TotalRows() const;

  // --- Kernels ---

  /// Conjunctive predicate evaluation -> narrowed selection vectors. No
  /// column data is copied or boxed. Each batch compiles the conjunction
  /// into a single-pass program: every conjunct on a dictionary column is
  /// folded into one per-entry verdict table (the matching code set,
  /// computed once per group dictionary), so rows compare int32 codes and
  /// the strings of filtered-out rows are never touched; dictionary steps
  /// run first (cheapest). Conjunction commutes, so the surviving set is
  /// identical to evaluating the conjuncts in input order. Parallel
  /// batches are scheduled as byte-weighted morsels (`morsels`); outputs
  /// land in per-batch slots, so results stay byte-identical at any
  /// thread count and morsel size.
  Result<BatchRelation> Filter(const std::vector<FilterExpr>& exprs,
                               exec::Executor* exec = nullptr,
                               KernelStats* stats = nullptr,
                               const exec::MorselOptions& morsels = {}) const;

  /// Keeps the named columns in order; O(1) per column per batch.
  Result<BatchRelation> Project(const std::vector<std::string>& cols,
                                exec::Executor* exec = nullptr) const;

  /// Project + rename (the Oink late-projection shape).
  Result<BatchRelation> ProjectAs(const std::vector<std::string>& cols,
                                  const std::vector<std::string>& names,
                                  exec::Executor* exec = nullptr) const;

  /// Adds a computed column; `fn` sees the boxed row, as in the row
  /// engine. Batches are compacted first so the new column is dense.
  Result<BatchRelation> WithColumn(const std::string& name,
                                   std::function<Value(const Row&)> fn,
                                   exec::Executor* exec = nullptr) const;

  /// Hash aggregation on encoded keys. Output columns: keys then
  /// aggregate outputs, sorted by key (Value order) — identical to
  /// Relation::GroupBy, including Status failure of SUM over non-numeric
  /// values and bit-identical double SUMs (each group accumulates in
  /// original row order, serial or parallel).
  Result<Relation> GroupBy(const std::vector<std::string>& keys,
                           const std::vector<Aggregate>& aggs,
                           exec::Executor* exec = nullptr) const;

  /// Fused Filter + GroupBy: the late-materialization pipeline shape. One
  /// pass per batch evaluates the compiled filter program and accumulates
  /// surviving rows straight into the aggregation hash table — no
  /// intermediate selection vector or batch is materialized, and
  /// dictionary-keyed batches resolve their group once per (batch, code).
  /// Output is byte-identical to Filter(exprs).GroupBy(keys, aggs): group
  /// identity uses the same encoded keys, and per-group accumulation
  /// stays in global row order (the serial path walks rows in order; the
  /// parallel path delegates to the sharded GroupBy, whose shards do the
  /// same), so double SUMs are bit-exact at any thread count.
  Result<Relation> FilterGroupBy(const std::vector<FilterExpr>& exprs,
                                 const std::vector<std::string>& keys,
                                 const std::vector<Aggregate>& aggs,
                                 exec::Executor* exec = nullptr,
                                 KernelStats* stats = nullptr,
                                 const exec::MorselOptions& morsels = {}) const;

  /// Inner hash join on left_col == right_col with Relation::Join's exact
  /// key semantics and output order (left-row-major, right rows in input
  /// order). `side` picks the build side; kAuto builds the smaller input.
  Result<BatchRelation> Join(const BatchRelation& right,
                             const std::string& left_col,
                             const std::string& right_col,
                             exec::Executor* exec = nullptr,
                             JoinBuildSide side = JoinBuildSide::kAuto) const;

 private:
  std::vector<std::string> columns_;
  std::vector<ColumnBatch> batches_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_VECTOR_ENGINE_H_
