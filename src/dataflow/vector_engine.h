#ifndef UNILOG_DATAFLOW_VECTOR_ENGINE_H_
#define UNILOG_DATAFLOW_VECTOR_ENGINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "dataflow/column_batch.h"
#include "dataflow/relation.h"
#include "exec/executor.h"

namespace unilog::dataflow {

/// One conjunctive predicate `column op literal` for the batch Filter
/// kernel. Ops: == != < <= > >= (Value total order, as the Oink residual
/// filters evaluate them) and `matches` (event-name glob; both sides must
/// be strings, as in Pig).
struct FilterExpr {
  std::string column;
  std::string op;
  Value literal;
};

/// Reference semantics of one FilterExpr against a boxed value — the row
/// engine side of every batch-vs-row equivalence test, and exactly the
/// clause evaluation the Oink workflow engine applies to residual filters.
bool EvalFilterOp(const Value& v, const std::string& op, const Value& literal);

/// Which side of a hash join is built into the table. The output is
/// byte-identical either way (probe order is restored when building on
/// the left); the planner picks the smaller side.
enum class JoinBuildSide { kAuto, kLeft, kRight };

/// A relation stored as typed column batches — the vectorized twin of
/// Relation. Every kernel is byte-compatible with the row engine: for any
/// BatchRelation b built from Relation r, kernel(b).ToRelation() equals
/// the same row-engine operator applied to r, byte-for-byte under
/// SerializeRelation — including floating-point aggregates (per-group
/// accumulation stays in original row order) and the join key semantics
/// (Int(1) and Real(1) hash-match, exactly as Relation::Join). Kernels
/// accept the same exec::Executor contract: parallel output is identical
/// to serial at any thread count.
class BatchRelation {
 public:
  BatchRelation() = default;

  /// Row-major -> columnar conversion, chunking into batches of
  /// `batch_rows`. Column types are inferred per batch (see
  /// ColumnBatch::BuildColumn).
  static Result<BatchRelation> FromRelation(const Relation& rel,
                                            size_t batch_rows = 1024);

  /// Assembles from pre-built batches (the scan path). Every batch must
  /// have one column per schema name.
  static Result<BatchRelation> FromBatches(std::vector<std::string> columns,
                                           std::vector<ColumnBatch> batches);

  /// Columnar -> row-major conversion (applies selections).
  Result<Relation> ToRelation() const;

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<ColumnBatch>& batches() const { return batches_; }
  Result<size_t> ColumnIndex(const std::string& name) const;
  /// Rows surviving all selections, across batches.
  size_t TotalRows() const;

  // --- Kernels ---

  /// Conjunctive predicate evaluation -> narrowed selection vectors. No
  /// column data is copied or boxed; dictionary columns evaluate string
  /// predicates once per dictionary entry, then per row on codes.
  Result<BatchRelation> Filter(const std::vector<FilterExpr>& exprs,
                               exec::Executor* exec = nullptr) const;

  /// Keeps the named columns in order; O(1) per column per batch.
  Result<BatchRelation> Project(const std::vector<std::string>& cols,
                                exec::Executor* exec = nullptr) const;

  /// Project + rename (the Oink late-projection shape).
  Result<BatchRelation> ProjectAs(const std::vector<std::string>& cols,
                                  const std::vector<std::string>& names,
                                  exec::Executor* exec = nullptr) const;

  /// Adds a computed column; `fn` sees the boxed row, as in the row
  /// engine. Batches are compacted first so the new column is dense.
  Result<BatchRelation> WithColumn(const std::string& name,
                                   std::function<Value(const Row&)> fn,
                                   exec::Executor* exec = nullptr) const;

  /// Hash aggregation on encoded keys. Output columns: keys then
  /// aggregate outputs, sorted by key (Value order) — identical to
  /// Relation::GroupBy, including Status failure of SUM over non-numeric
  /// values and bit-identical double SUMs (each group accumulates in
  /// original row order, serial or parallel).
  Result<Relation> GroupBy(const std::vector<std::string>& keys,
                           const std::vector<Aggregate>& aggs,
                           exec::Executor* exec = nullptr) const;

  /// Inner hash join on left_col == right_col with Relation::Join's exact
  /// key semantics and output order (left-row-major, right rows in input
  /// order). `side` picks the build side; kAuto builds the smaller input.
  Result<BatchRelation> Join(const BatchRelation& right,
                             const std::string& left_col,
                             const std::string& right_col,
                             exec::Executor* exec = nullptr,
                             JoinBuildSide side = JoinBuildSide::kAuto) const;

 private:
  std::vector<std::string> columns_;
  std::vector<ColumnBatch> batches_;
};

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_VECTOR_ENGINE_H_
