#include "dataflow/cost_model.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace unilog::dataflow {

void JobStats::Accumulate(const JobStats& other) {
  map_tasks += other.map_tasks;
  reduce_tasks += other.reduce_tasks;
  bytes_scanned += other.bytes_scanned;
  bytes_shuffled += other.bytes_shuffled;
  records_read += other.records_read;
  records_emitted += other.records_emitted;
  records_output += other.records_output;
  corrupt_inputs_quarantined += other.corrupt_inputs_quarantined;
  modeled_ms += other.modeled_ms;
}

std::string JobStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "maps=%llu reduces=%llu scanned=%llu shuffled=%llu "
                "read=%llu out=%llu modeled_ms=%.0f",
                static_cast<unsigned long long>(map_tasks),
                static_cast<unsigned long long>(reduce_tasks),
                static_cast<unsigned long long>(bytes_scanned),
                static_cast<unsigned long long>(bytes_shuffled),
                static_cast<unsigned long long>(records_read),
                static_cast<unsigned long long>(records_output),
                modeled_ms);
  std::string out = buf;
  if (corrupt_inputs_quarantined > 0) {
    out += " quarantined=" + std::to_string(corrupt_inputs_quarantined);
  }
  return out;
}

double ModelWallTimeMs(const JobCostModel& model, const JobStats& stats) {
  const double slots = static_cast<double>(std::max<uint64_t>(1, model.cluster_slots));

  double map_ms = 0;
  if (stats.map_tasks > 0) {
    // Average per-task work; waves = ceil(tasks / slots).
    double waves =
        std::max(1.0, static_cast<double>(
                          (stats.map_tasks + model.cluster_slots - 1) /
                          model.cluster_slots));
    double scan_per_task =
        static_cast<double>(stats.bytes_scanned) /
        static_cast<double>(stats.map_tasks) /
        static_cast<double>(model.scan_bytes_per_ms);
    map_ms = waves * (static_cast<double>(model.task_startup_ms) + scan_per_task);
  }

  double reduce_ms = 0;
  if (stats.reduce_tasks > 0) {
    double waves =
        std::max(1.0, static_cast<double>(
                          (stats.reduce_tasks + model.cluster_slots - 1) /
                          model.cluster_slots));
    double shuffle_total =
        static_cast<double>(stats.bytes_shuffled) /
        static_cast<double>(model.shuffle_bytes_per_ms);
    // Shuffle parallelizes across reducers up to the slot count.
    double shuffle_parallel =
        shuffle_total / std::min(slots, static_cast<double>(stats.reduce_tasks));
    reduce_ms = waves * static_cast<double>(model.task_startup_ms) +
                shuffle_parallel;
  }
  return map_ms + reduce_ms;
}

void PublishJobStats(obs::MetricsRegistry* metrics, const std::string& job,
                     const JobStats& stats) {
  obs::Labels labels{{"job", job}};
  metrics->GetCounter("job.runs", labels)->Increment();
  metrics->GetCounter("job.map_tasks", labels)->Increment(stats.map_tasks);
  metrics->GetCounter("job.reduce_tasks", labels)
      ->Increment(stats.reduce_tasks);
  metrics->GetCounter("job.bytes_scanned", labels)
      ->Increment(stats.bytes_scanned);
  metrics->GetCounter("job.bytes_shuffled", labels)
      ->Increment(stats.bytes_shuffled);
  metrics->GetCounter("job.records_read", labels)
      ->Increment(stats.records_read);
  metrics->GetCounter("job.records_output", labels)
      ->Increment(stats.records_output);
  metrics->GetHistogram("job.modeled_ms", labels)->Observe(stats.modeled_ms);
}

}  // namespace unilog::dataflow
