#include "dataflow/vector_engine.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <set>
#include <unordered_map>

#include "events/event_name.h"

namespace unilog::dataflow {

namespace {

enum class RelOp { kEq, kNe, kLt, kLe, kGt, kGe, kMatches };

std::optional<RelOp> ParseOp(const std::string& op) {
  if (op == "==") return RelOp::kEq;
  if (op == "!=") return RelOp::kNe;
  if (op == "<") return RelOp::kLt;
  if (op == "<=") return RelOp::kLe;
  if (op == ">") return RelOp::kGt;
  if (op == ">=") return RelOp::kGe;
  if (op == "matches") return RelOp::kMatches;
  return std::nullopt;
}

/// `v op lit` under the Value total order, for any comparable T.
template <typename T>
bool ApplyOp(RelOp op, const T& v, const T& lit) {
  switch (op) {
    case RelOp::kEq:
      return v == lit;
    case RelOp::kNe:
      return !(v == lit);
    case RelOp::kLt:
      return v < lit;
    case RelOp::kLe:
      return !(lit < v);
    case RelOp::kGt:
      return lit < v;
    case RelOp::kGe:
      return !(v < lit);
    case RelOp::kMatches:
      return false;
  }
  return false;
}

bool EvalOpOnValue(RelOp op, const Value& v, const Value& lit,
                   const events::EventPattern* pattern) {
  if (op == RelOp::kMatches) {
    return v.is_str() && lit.is_str() && pattern != nullptr &&
           pattern->Matches(v.str_value());
  }
  return ApplyOp<Value>(op, v, lit);
}

/// A representative boxed value of a typed column's element type, used to
/// resolve type-mismatched comparisons: the Value total order compares
/// mismatched types by type index alone, so the verdict is constant for
/// every row of the column.
Value RepresentativeValue(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt64:
      return Value::Int(0);
    case ColumnKind::kDouble:
      return Value::Real(0);
    case ColumnKind::kBool:
      return Value::Bool(false);
    case ColumnKind::kString:
    case ColumnKind::kDict:
      return Value::Str("");
    case ColumnKind::kValue:
      break;
  }
  return Value();
}

struct CompiledExpr {
  size_t col = 0;
  RelOp op = RelOp::kEq;
  Value literal;
  std::optional<events::EventPattern> pattern;
};

/// Narrows `sel` (selected raw-row indices of `batch`) in place by one
/// conjunct, using the typed fast path the column kind allows.
Status FilterOneExpr(const ColumnBatch& batch, const CompiledExpr& e,
                     std::vector<uint32_t>* sel) {
  const ColumnData& col = *batch.col(e.col);
  const events::EventPattern* pattern =
      e.pattern.has_value() ? &*e.pattern : nullptr;
  std::vector<uint32_t> kept;
  kept.reserve(sel->size());

  switch (col.kind) {
    case ColumnKind::kInt64: {
      if (!e.literal.is_int() || e.op == RelOp::kMatches) {
        if (EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                          pattern)) {
          return Status::OK();  // constant true: keep everything
        }
        sel->clear();
        return Status::OK();
      }
      const int64_t lit = e.literal.int_value();
      for (uint32_t r : *sel) {
        if (ApplyOp<int64_t>(e.op, col.i64[r], lit)) kept.push_back(r);
      }
      break;
    }
    case ColumnKind::kDouble: {
      if (!e.literal.is_real() || e.op == RelOp::kMatches) {
        if (EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                          pattern)) {
          return Status::OK();
        }
        sel->clear();
        return Status::OK();
      }
      const double lit = e.literal.real_value();
      for (uint32_t r : *sel) {
        if (ApplyOp<double>(e.op, col.f64[r], lit)) kept.push_back(r);
      }
      break;
    }
    case ColumnKind::kBool: {
      if (!e.literal.is_bool() || e.op == RelOp::kMatches) {
        if (EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                          pattern)) {
          return Status::OK();
        }
        sel->clear();
        return Status::OK();
      }
      const bool lit = e.literal.bool_value();
      for (uint32_t r : *sel) {
        if (ApplyOp<bool>(e.op, col.b1[r] != 0, lit)) kept.push_back(r);
      }
      break;
    }
    case ColumnKind::kDict: {
      // Evaluate the predicate once per dictionary entry, then map codes.
      const std::vector<std::string>& dict = *col.dict;
      std::vector<uint8_t> verdict(dict.size());
      for (size_t d = 0; d < dict.size(); ++d) {
        verdict[d] =
            EvalOpOnValue(e.op, Value::Str(dict[d]), e.literal, pattern) ? 1
                                                                         : 0;
      }
      for (uint32_t r : *sel) {
        if (verdict[col.codes[r]]) kept.push_back(r);
      }
      break;
    }
    case ColumnKind::kString: {
      if (e.op == RelOp::kMatches) {
        if (!e.literal.is_str() || pattern == nullptr) {
          sel->clear();
          return Status::OK();
        }
        for (uint32_t r : *sel) {
          if (pattern->Matches(col.str[r])) kept.push_back(r);
        }
        break;
      }
      if (!e.literal.is_str()) {
        if (EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                          pattern)) {
          return Status::OK();
        }
        sel->clear();
        return Status::OK();
      }
      const std::string& lit = e.literal.str_value();
      for (uint32_t r : *sel) {
        if (ApplyOp<std::string>(e.op, col.str[r], lit)) kept.push_back(r);
      }
      break;
    }
    case ColumnKind::kValue: {
      for (uint32_t r : *sel) {
        if (EvalOpOnValue(e.op, col.vals[r], e.literal, pattern)) {
          kept.push_back(r);
        }
      }
      break;
    }
  }
  *sel = std::move(kept);
  return Status::OK();
}

// --- GroupBy internals (mirroring relation.cc exactly) ---

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool has_minmax = false;
  Value min, max;
  std::set<std::string> distinct;
};

Status AccumulateBatchRow(const std::vector<Aggregate>& aggs,
                          const std::vector<size_t>& agg_idx,
                          const ColumnBatch& batch, size_t row,
                          std::vector<AggState>* states) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    AggState& st = (*states)[i];
    switch (aggs[i].op) {
      case Aggregate::Op::kCount:
        ++st.count;
        break;
      case Aggregate::Op::kSum: {
        const ColumnData& col = *batch.col(agg_idx[i]);
        switch (col.kind) {
          case ColumnKind::kInt64:
            st.sum += static_cast<double>(col.i64[row]);
            break;
          case ColumnKind::kDouble:
            st.sum += col.f64[row];
            break;
          case ColumnKind::kValue: {
            const Value& v = col.vals[row];
            if (v.is_int()) {
              st.sum += static_cast<double>(v.int_value());
            } else if (v.is_real()) {
              st.sum += v.real_value();
            } else {
              return Status::InvalidArgument(
                  "SUM over non-numeric value in column '" + aggs[i].column +
                  "'");
            }
            break;
          }
          case ColumnKind::kBool:
          case ColumnKind::kString:
          case ColumnKind::kDict:
            return Status::InvalidArgument(
                "SUM over non-numeric value in column '" + aggs[i].column +
                "'");
        }
        break;
      }
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax: {
        Value v = batch.col(agg_idx[i])->ValueAt(row);
        if (!st.has_minmax) {
          st.min = st.max = v;
          st.has_minmax = true;
        } else {
          if (v < st.min) st.min = v;
          if (st.max < v) st.max = v;
        }
        break;
      }
      case Aggregate::Op::kCountDistinct: {
        // Same strings Value::ToString would produce, without boxing a
        // Value (and re-copying the string) for every row.
        const ColumnData& col = *batch.col(agg_idx[i]);
        switch (col.kind) {
          case ColumnKind::kString:
            st.distinct.insert(col.str[row]);
            break;
          case ColumnKind::kDict:
            st.distinct.insert((*col.dict)[col.codes[row]]);
            break;
          case ColumnKind::kInt64:
            st.distinct.insert(std::to_string(col.i64[row]));
            break;
          case ColumnKind::kBool:
            st.distinct.insert(col.b1[row] ? "true" : "false");
            break;
          default:
            st.distinct.insert(col.ValueAt(row).ToString());
            break;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Row FinalizeGroup(const std::vector<Aggregate>& aggs, const Row& key,
                  const std::vector<AggState>& states) {
  Row row = key;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs[i].op) {
      case Aggregate::Op::kCount:
        row.push_back(Value::Int(static_cast<int64_t>(st.count)));
        break;
      case Aggregate::Op::kSum:
        row.push_back(Value::Real(st.sum));
        break;
      case Aggregate::Op::kMin:
        row.push_back(st.min);
        break;
      case Aggregate::Op::kMax:
        row.push_back(st.max);
        break;
      case Aggregate::Op::kCountDistinct:
        row.push_back(Value::Int(static_cast<int64_t>(st.distinct.size())));
        break;
    }
  }
  return row;
}

void AppendFixed64(std::string* buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (i * 8));
  buf->append(b, 8);
}

/// Appends one key value's canonical encoding: a type tag byte followed
/// by a fixed-width or length-prefixed payload. Two values encode
/// identically iff they are equivalent under the Value total order the
/// row engine groups by (note -0.0 is canonicalized to 0.0: the order
/// treats them as one group).
void AppendEncodedValue(std::string* buf, const Value& v) {
  if (v.is_int()) {
    buf->push_back('\x00');
    AppendFixed64(buf, static_cast<uint64_t>(v.int_value()));
    return;
  }
  if (v.is_real()) {
    double d = v.real_value();
    if (d == 0.0) d = 0.0;  // collapse -0.0 and 0.0 into one key
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    buf->push_back('\x01');
    AppendFixed64(buf, bits);
    return;
  }
  if (v.is_str()) {
    buf->push_back('\x02');
    AppendFixed64(buf, v.str_value().size());
    buf->append(v.str_value());
    return;
  }
  buf->push_back('\x03');
  buf->push_back(v.bool_value() ? '\x01' : '\x00');
}

/// Per-(batch, key-column) encoding plan: dictionary columns precompute
/// the encoded fragment per dictionary entry, so the per-row cost is one
/// code lookup and one append; other typed columns encode inline.
struct KeyColumnPlan {
  const ColumnData* col = nullptr;
  std::vector<std::string> dict_frags;  // kDict only
};

std::vector<KeyColumnPlan> PlanKeyColumns(const ColumnBatch& batch,
                                          const std::vector<size_t>& key_idx) {
  std::vector<KeyColumnPlan> plans(key_idx.size());
  for (size_t k = 0; k < key_idx.size(); ++k) {
    const ColumnData& col = *batch.col(key_idx[k]);
    plans[k].col = &col;
    if (col.kind == ColumnKind::kDict) {
      plans[k].dict_frags.reserve(col.dict->size());
      for (const std::string& entry : *col.dict) {
        std::string frag;
        AppendEncodedValue(&frag, Value::Str(entry));
        plans[k].dict_frags.push_back(std::move(frag));
      }
    }
  }
  return plans;
}

void EncodeKeyTo(std::string* buf, const std::vector<KeyColumnPlan>& plans,
                 size_t row) {
  buf->clear();
  for (const KeyColumnPlan& plan : plans) {
    const ColumnData& col = *plan.col;
    switch (col.kind) {
      case ColumnKind::kInt64:
        buf->push_back('\x00');
        AppendFixed64(buf, static_cast<uint64_t>(col.i64[row]));
        break;
      case ColumnKind::kDouble:
      case ColumnKind::kValue:
        AppendEncodedValue(buf, col.ValueAt(row));
        break;
      case ColumnKind::kBool:
        buf->push_back('\x03');
        buf->push_back(col.b1[row] ? '\x01' : '\x00');
        break;
      case ColumnKind::kString:
        buf->push_back('\x02');
        AppendFixed64(buf, col.str[row].size());
        buf->append(col.str[row]);
        break;
      case ColumnKind::kDict:
        buf->append(plan.dict_frags[col.codes[row]]);
        break;
    }
  }
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// Join key with Relation::Join's exact semantics: ToString() plus a
/// string/non-string tag, so Int(1) and Real(1) hash-match.
std::string JoinKeyOf(const Value& v) {
  return v.ToString() + "\x01" + std::to_string(v.is_str());
}

/// (batch, raw row) coordinates of every selected row, in batch order.
struct RowLoc {
  uint32_t batch = 0;
  uint32_t row = 0;
};

std::vector<RowLoc> BuildLocs(const std::vector<ColumnBatch>& batches) {
  std::vector<RowLoc> locs;
  size_t total = 0;
  for (const auto& b : batches) total += b.selected_rows();
  locs.reserve(total);
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const ColumnBatch& b = batches[bi];
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      locs.push_back({static_cast<uint32_t>(bi),
                      static_cast<uint32_t>(b.RowIndex(k))});
    }
  }
  return locs;
}

/// Join keys for every selected row, dictionary entries stringified once.
std::vector<std::string> BuildJoinKeys(const std::vector<ColumnBatch>& batches,
                                       size_t col_idx,
                                       const std::vector<RowLoc>& locs) {
  // Per-batch dictionary key cache.
  std::vector<std::vector<std::string>> dict_keys(batches.size());
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const ColumnData& col = *batches[bi].col(col_idx);
    if (col.kind != ColumnKind::kDict) continue;
    dict_keys[bi].reserve(col.dict->size());
    for (const std::string& entry : *col.dict) {
      dict_keys[bi].push_back(JoinKeyOf(Value::Str(entry)));
    }
  }
  std::vector<std::string> keys;
  keys.reserve(locs.size());
  for (const RowLoc& loc : locs) {
    const ColumnData& col = *batches[loc.batch].col(col_idx);
    if (col.kind == ColumnKind::kDict) {
      keys.push_back(dict_keys[loc.batch][col.codes[loc.row]]);
    } else {
      keys.push_back(JoinKeyOf(col.ValueAt(loc.row)));
    }
  }
  return keys;
}

}  // namespace

bool EvalFilterOp(const Value& v, const std::string& op, const Value& literal) {
  std::optional<RelOp> rel = ParseOp(op);
  if (!rel.has_value()) return false;
  if (*rel == RelOp::kMatches) {
    if (!v.is_str() || !literal.is_str()) return false;
    events::EventPattern pattern(literal.str_value());
    return pattern.Matches(v.str_value());
  }
  return ApplyOp<Value>(*rel, v, literal);
}

Result<BatchRelation> BatchRelation::FromRelation(const Relation& rel,
                                                  size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  BatchRelation out;
  out.columns_ = rel.columns();
  const std::vector<Row>& rows = rel.rows();
  for (size_t begin = 0; begin < rows.size(); begin += batch_rows) {
    const size_t end = std::min(rows.size(), begin + batch_rows);
    std::vector<ColumnPtr> cols;
    cols.reserve(out.columns_.size());
    std::vector<Value> vals(end - begin);
    for (size_t c = 0; c < out.columns_.size(); ++c) {
      for (size_t r = begin; r < end; ++r) vals[r - begin] = rows[r][c];
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    out.batches_.emplace_back(std::move(cols), end - begin);
  }
  return out;
}

Result<BatchRelation> BatchRelation::FromBatches(
    std::vector<std::string> columns, std::vector<ColumnBatch> batches) {
  for (const ColumnBatch& b : batches) {
    if (b.num_cols() != columns.size()) {
      return Status::InvalidArgument(
          "batch arity " + std::to_string(b.num_cols()) + " != schema arity " +
          std::to_string(columns.size()));
    }
  }
  BatchRelation out;
  out.columns_ = std::move(columns);
  out.batches_ = std::move(batches);
  return out;
}

Result<Relation> BatchRelation::ToRelation() const {
  std::vector<Row> rows;
  rows.reserve(TotalRows());
  for (const ColumnBatch& b : batches_) {
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      const size_t r = b.RowIndex(k);
      Row row;
      row.reserve(b.num_cols());
      for (size_t c = 0; c < b.num_cols(); ++c) {
        row.push_back(b.col(c)->ValueAt(r));
      }
      rows.push_back(std::move(row));
    }
  }
  return Relation::FromRows(columns_, std::move(rows));
}

Result<size_t> BatchRelation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no such column: " + name);
}

size_t BatchRelation::TotalRows() const {
  size_t total = 0;
  for (const ColumnBatch& b : batches_) total += b.selected_rows();
  return total;
}

Result<BatchRelation> BatchRelation::Filter(
    const std::vector<FilterExpr>& exprs, exec::Executor* exec) const {
  std::vector<CompiledExpr> compiled;
  compiled.reserve(exprs.size());
  for (const FilterExpr& e : exprs) {
    CompiledExpr c;
    UNILOG_ASSIGN_OR_RETURN(c.col, ColumnIndex(e.column));
    std::optional<RelOp> op = ParseOp(e.op);
    if (!op.has_value()) {
      return Status::InvalidArgument("unsupported filter op: " + e.op);
    }
    c.op = *op;
    c.literal = e.literal;
    if (c.op == RelOp::kMatches && e.literal.is_str()) {
      c.pattern.emplace(e.literal.str_value());
    }
    compiled.push_back(std::move(c));
  }

  BatchRelation out;
  out.columns_ = columns_;
  out.batches_ = batches_;
  auto filter_batch = [&](size_t bi) -> Status {
    ColumnBatch& b = out.batches_[bi];
    std::vector<uint32_t> sel;
    if (b.has_selection()) {
      sel = b.selection();
    } else {
      sel.resize(b.raw_rows());
      for (size_t r = 0; r < sel.size(); ++r) sel[r] = static_cast<uint32_t>(r);
    }
    for (const CompiledExpr& c : compiled) {
      if (sel.empty()) break;
      UNILOG_RETURN_NOT_OK(FilterOneExpr(b, c, &sel));
    }
    b.SetSelection(std::move(sel));
    return Status::OK();
  };
  if (exec != nullptr && exec->parallel()) {
    UNILOG_RETURN_NOT_OK(exec->ParallelForStatus("batch_filter",
                                                 out.batches_.size(),
                                                 filter_batch));
  } else {
    for (size_t bi = 0; bi < out.batches_.size(); ++bi) {
      UNILOG_RETURN_NOT_OK(filter_batch(bi));
    }
  }
  return out;
}

Result<BatchRelation> BatchRelation::Project(
    const std::vector<std::string>& cols, exec::Executor* exec) const {
  return ProjectAs(cols, cols, exec);
}

Result<BatchRelation> BatchRelation::ProjectAs(
    const std::vector<std::string>& cols,
    const std::vector<std::string>& names, exec::Executor*) const {
  if (cols.size() != names.size()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  std::vector<size_t> indices;
  indices.reserve(cols.size());
  for (const std::string& col : cols) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(col));
    indices.push_back(idx);
  }
  BatchRelation out;
  out.columns_ = names;
  out.batches_.reserve(batches_.size());
  for (const ColumnBatch& b : batches_) {
    std::vector<ColumnPtr> picked;
    picked.reserve(indices.size());
    for (size_t idx : indices) picked.push_back(b.col(idx));
    ColumnBatch nb(std::move(picked), b.raw_rows());
    if (b.has_selection()) {
      nb.SetSelection(std::vector<uint32_t>(b.selection()));
    }
    out.batches_.push_back(std::move(nb));
  }
  return out;
}

Result<BatchRelation> BatchRelation::WithColumn(
    const std::string& name, std::function<Value(const Row&)> fn,
    exec::Executor* exec) const {
  if (ColumnIndex(name).ok()) {
    return Status::AlreadyExists("column exists: " + name);
  }
  BatchRelation out;
  out.columns_ = columns_;
  out.columns_.push_back(name);
  out.batches_.resize(batches_.size());
  auto extend_batch = [&](size_t bi) {
    ColumnBatch dense = batches_[bi].Compact();
    const size_t n = dense.raw_rows();
    std::vector<Value> vals(n);
    Row row(dense.num_cols());
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < dense.num_cols(); ++c) {
        row[c] = dense.col(c)->ValueAt(r);
      }
      vals[r] = fn(row);
    }
    dense.AppendColumn(ColumnBatch::BuildColumn(vals));
    out.batches_[bi] = std::move(dense);
  };
  if (exec != nullptr && exec->parallel()) {
    exec->ParallelFor("batch_with_column", batches_.size(), extend_batch);
  } else {
    for (size_t bi = 0; bi < batches_.size(); ++bi) extend_batch(bi);
  }
  return out;
}

Result<Relation> BatchRelation::GroupBy(const std::vector<std::string>& keys,
                                        const std::vector<Aggregate>& aggs,
                                        exec::Executor* exec) const {
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].op != Aggregate::Op::kCount) {
      UNILOG_ASSIGN_OR_RETURN(agg_idx[i], ColumnIndex(aggs[i].column));
    }
  }
  std::vector<std::string> out_cols = keys;
  for (const auto& agg : aggs) out_cols.push_back(agg.as);

  const bool parallel = exec != nullptr && exec->parallel();

  // Fast path: when every key column is dictionary-encoded, a row's group
  // within a batch is fully determined by its dictionary code, so group
  // lookup can be resolved once per (batch, code) instead of hashing an
  // encoded key string per row. The code below keys the same unordered_map
  // with the same per-entry encoded fragments the slow path would build
  // row-by-row, so group identity, shard ownership, and per-group
  // accumulation order are byte-for-byte unchanged.
  const bool dict_keys =
      key_idx.size() == 1 &&
      std::all_of(batches_.begin(), batches_.end(), [&](const ColumnBatch& b) {
        return b.col(key_idx[0])->kind == ColumnKind::kDict;
      });

  // Per-batch, per-dictionary-entry encoded key fragments (dict fast path
  // only); equal to the per-row encoded key for rows carrying that code.
  std::vector<std::vector<std::string>> frag;
  if (dict_keys) {
    frag.resize(batches_.size());
    auto build_frags = [&](size_t bi) {
      std::vector<KeyColumnPlan> plans = PlanKeyColumns(batches_[bi], key_idx);
      frag[bi] = std::move(plans[0].dict_frags);
    };
    if (parallel) {
      exec->ParallelFor("batch_groupby_frags", batches_.size(), build_frags);
    } else {
      for (size_t bi = 0; bi < batches_.size(); ++bi) build_frags(bi);
    }
  }

  // Encoded keys for every selected row, precomputed per batch (parallel
  // when an executor is attached; writes go to per-batch slots). Skipped
  // entirely on the dict fast path.
  std::vector<std::vector<std::string>> enc(batches_.size());
  auto encode_batch = [&](size_t bi) {
    const ColumnBatch& b = batches_[bi];
    std::vector<KeyColumnPlan> plans = PlanKeyColumns(b, key_idx);
    const size_t n = b.selected_rows();
    enc[bi].resize(n);
    std::string buf;
    for (size_t k = 0; k < n; ++k) {
      EncodeKeyTo(&buf, plans, b.RowIndex(k));
      enc[bi][k] = buf;
    }
  };
  if (!dict_keys) {
    if (parallel) {
      exec->ParallelFor("batch_groupby_encode", batches_.size(), encode_batch);
    } else {
      for (size_t bi = 0; bi < batches_.size(); ++bi) encode_batch(bi);
    }
  }

  struct GroupSet {
    std::unordered_map<std::string, size_t> index;
    std::vector<Row> key_rows;
    std::vector<std::vector<AggState>> states;
  };
  auto resolve_group = [&](GroupSet* gs, const ColumnBatch& b, size_t raw,
                           const std::string& key) -> size_t {
    auto [it, inserted] = gs->index.try_emplace(key, gs->key_rows.size());
    if (inserted) {
      Row key_row;
      key_row.reserve(key_idx.size());
      for (size_t idx : key_idx) key_row.push_back(b.col(idx)->ValueAt(raw));
      gs->key_rows.push_back(std::move(key_row));
      gs->states.emplace_back(aggs.size());
    }
    return it->second;
  };
  // Walks one batch's rows for one shard (`s`; kAllShards serially), using
  // a per-(shard, batch) code→group cache on the dict fast path.
  constexpr uint32_t kAllShards = ~0u;
  auto accumulate_batch_dict = [&](GroupSet* gs, size_t bi, uint32_t s,
                                   const std::vector<uint32_t>* shard_of_code)
      -> Status {
    const ColumnBatch& b = batches_[bi];
    const ColumnData& kc = *b.col(key_idx[0]);
    std::vector<ptrdiff_t> group_of_code(frag[bi].size(), -1);
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      const size_t raw = b.RowIndex(k);
      const uint32_t code = kc.codes[raw];
      if (s != kAllShards && (*shard_of_code)[code] != s) continue;
      ptrdiff_t& g = group_of_code[code];
      if (g < 0) {
        g = static_cast<ptrdiff_t>(resolve_group(gs, b, raw, frag[bi][code]));
      }
      UNILOG_RETURN_NOT_OK(
          AccumulateBatchRow(aggs, agg_idx, b, raw, &gs->states[g]));
    }
    return Status::OK();
  };
  auto accumulate_into = [&](GroupSet* gs, size_t bi, size_t k) -> Status {
    const ColumnBatch& b = batches_[bi];
    const size_t raw = b.RowIndex(k);
    const size_t g = resolve_group(gs, b, raw, enc[bi][k]);
    return AccumulateBatchRow(aggs, agg_idx, b, raw, &gs->states[g]);
  };

  std::vector<GroupSet> shards;
  if (!parallel) {
    shards.resize(1);
    for (size_t bi = 0; bi < batches_.size(); ++bi) {
      if (dict_keys) {
        UNILOG_RETURN_NOT_OK(
            accumulate_batch_dict(&shards[0], bi, kAllShards, nullptr));
        continue;
      }
      const size_t n = batches_[bi].selected_rows();
      for (size_t k = 0; k < n; ++k) {
        UNILOG_RETURN_NOT_OK(accumulate_into(&shards[0], bi, k));
      }
    }
  } else {
    // Hash-partition rows by encoded key so each group is owned by one
    // shard; every shard walks rows in global order, so per-group
    // accumulation order — and bit-exact double SUM — matches serial.
    const size_t num_shards = static_cast<size_t>(exec->threads()) * 2;
    shards.resize(num_shards);
    if (dict_keys) {
      // Shard assignment per dictionary entry, not per row; Fnv1a64 of the
      // entry's fragment equals the slow path's per-row key hash.
      std::vector<std::vector<uint32_t>> shard_of_code(batches_.size());
      exec->ParallelFor("batch_groupby_hash", batches_.size(), [&](size_t bi) {
        shard_of_code[bi].resize(frag[bi].size());
        for (size_t e = 0; e < frag[bi].size(); ++e) {
          shard_of_code[bi][e] =
              static_cast<uint32_t>(Fnv1a64(frag[bi][e]) % num_shards);
        }
      });
      UNILOG_RETURN_NOT_OK(exec->ParallelForStatus(
          "batch_groupby_agg", num_shards, [&](size_t s) -> Status {
            for (size_t bi = 0; bi < batches_.size(); ++bi) {
              UNILOG_RETURN_NOT_OK(accumulate_batch_dict(
                  &shards[s], bi, static_cast<uint32_t>(s),
                  &shard_of_code[bi]));
            }
            return Status::OK();
          }));
    } else {
      std::vector<std::vector<uint32_t>> shard_of(batches_.size());
      exec->ParallelFor("batch_groupby_hash", batches_.size(), [&](size_t bi) {
        shard_of[bi].resize(enc[bi].size());
        for (size_t k = 0; k < enc[bi].size(); ++k) {
          shard_of[bi][k] =
              static_cast<uint32_t>(Fnv1a64(enc[bi][k]) % num_shards);
        }
      });
      UNILOG_RETURN_NOT_OK(exec->ParallelForStatus(
          "batch_groupby_agg", num_shards, [&](size_t s) -> Status {
            for (size_t bi = 0; bi < batches_.size(); ++bi) {
              const size_t n = enc[bi].size();
              for (size_t k = 0; k < n; ++k) {
                if (shard_of[bi][k] != s) continue;
                UNILOG_RETURN_NOT_OK(accumulate_into(&shards[s], bi, k));
              }
            }
            return Status::OK();
          }));
    }
  }

  // Merge: every group lives in one shard; emit in global key order, the
  // ordering the row engine's std::map produces.
  struct GroupRef {
    const Row* key = nullptr;
    const std::vector<AggState>* states = nullptr;
  };
  std::vector<GroupRef> refs;
  for (const GroupSet& gs : shards) {
    for (size_t g = 0; g < gs.key_rows.size(); ++g) {
      refs.push_back({&gs.key_rows[g], &gs.states[g]});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const GroupRef& a, const GroupRef& b) { return *a.key < *b.key; });

  std::vector<Row> out_rows(refs.size());
  auto finalize_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out_rows[i] = FinalizeGroup(aggs, *refs[i].key, *refs[i].states);
    }
  };
  if (parallel) {
    exec->ParallelForChunked("batch_groupby_finalize", refs.size(),
                             [&](size_t, size_t begin, size_t end) {
                               finalize_range(begin, end);
                             });
  } else {
    finalize_range(0, refs.size());
  }
  return Relation::FromRows(out_cols, std::move(out_rows));
}

Result<BatchRelation> BatchRelation::Join(const BatchRelation& right,
                                          const std::string& left_col,
                                          const std::string& right_col,
                                          exec::Executor* exec,
                                          JoinBuildSide side) const {
  UNILOG_ASSIGN_OR_RETURN(size_t li, ColumnIndex(left_col));
  UNILOG_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(right_col));

  const std::vector<RowLoc> left_locs = BuildLocs(batches_);
  const std::vector<RowLoc> right_locs = BuildLocs(right.batches_);
  const std::vector<std::string> left_keys =
      BuildJoinKeys(batches_, li, left_locs);
  const std::vector<std::string> right_keys =
      BuildJoinKeys(right.batches_, ri, right_locs);

  if (side == JoinBuildSide::kAuto) {
    // Build the smaller input; ties keep the row engine's right build.
    side = left_locs.size() < right_locs.size() ? JoinBuildSide::kLeft
                                                : JoinBuildSide::kRight;
  }

  // Matching (left ordinal, right ordinal) pairs in the row engine's
  // output order: left-row-major, right matches in right input order.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (side == JoinBuildSide::kRight) {
    std::unordered_map<std::string, std::vector<uint32_t>> table;
    for (size_t r = 0; r < right_keys.size(); ++r) {
      table[right_keys[r]].push_back(static_cast<uint32_t>(r));
    }
    auto probe_range = [&](size_t begin, size_t end,
                           std::vector<std::pair<uint32_t, uint32_t>>* sink) {
      for (size_t l = begin; l < end; ++l) {
        auto it = table.find(left_keys[l]);
        if (it == table.end()) continue;
        for (uint32_t r : it->second) {
          sink->push_back({static_cast<uint32_t>(l), r});
        }
      }
    };
    if (exec != nullptr && exec->parallel()) {
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> chunks(
          exec->ChunksFor(left_locs.size()));
      exec->ParallelForChunked("batch_join_probe", left_locs.size(),
                               [&](size_t chunk, size_t begin, size_t end) {
                                 probe_range(begin, end, &chunks[chunk]);
                               });
      for (auto& chunk : chunks) {
        pairs.insert(pairs.end(), chunk.begin(), chunk.end());
      }
    } else {
      probe_range(0, left_locs.size(), &pairs);
    }
  } else {
    std::unordered_map<std::string, std::vector<uint32_t>> table;
    for (size_t l = 0; l < left_keys.size(); ++l) {
      table[left_keys[l]].push_back(static_cast<uint32_t>(l));
    }
    // Probing with the right side yields pairs in right-major order;
    // a stable sort by left ordinal restores the output order while
    // keeping right matches in input order.
    for (size_t r = 0; r < right_keys.size(); ++r) {
      auto it = table.find(right_keys[r]);
      if (it == table.end()) continue;
      for (uint32_t l : it->second) {
        pairs.push_back({l, static_cast<uint32_t>(r)});
      }
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  std::vector<std::string> out_cols = columns_;
  for (size_t c = 0; c < right.columns_.size(); ++c) {
    if (c == ri) continue;
    out_cols.push_back(right.columns_[c]);
  }

  BatchRelation out;
  out.columns_ = std::move(out_cols);
  constexpr size_t kOutBatchRows = 1024;
  for (size_t begin = 0; begin < pairs.size(); begin += kOutBatchRows) {
    const size_t end = std::min(pairs.size(), begin + kOutBatchRows);
    std::vector<ColumnPtr> cols;
    cols.reserve(out.columns_.size());
    std::vector<Value> vals(end - begin);
    for (size_t c = 0; c < columns_.size(); ++c) {
      for (size_t i = begin; i < end; ++i) {
        const RowLoc& loc = left_locs[pairs[i].first];
        vals[i - begin] = batches_[loc.batch].col(c)->ValueAt(loc.row);
      }
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    for (size_t c = 0; c < right.columns_.size(); ++c) {
      if (c == ri) continue;
      for (size_t i = begin; i < end; ++i) {
        const RowLoc& loc = right_locs[pairs[i].second];
        vals[i - begin] = right.batches_[loc.batch].col(c)->ValueAt(loc.row);
      }
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    out.batches_.emplace_back(std::move(cols), end - begin);
  }
  return out;
}

}  // namespace unilog::dataflow
