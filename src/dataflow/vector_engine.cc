#include "dataflow/vector_engine.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <forward_list>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "events/event_name.h"

namespace unilog::dataflow {

namespace {

enum class RelOp { kEq, kNe, kLt, kLe, kGt, kGe, kMatches };

std::optional<RelOp> ParseOp(const std::string& op) {
  if (op == "==") return RelOp::kEq;
  if (op == "!=") return RelOp::kNe;
  if (op == "<") return RelOp::kLt;
  if (op == "<=") return RelOp::kLe;
  if (op == ">") return RelOp::kGt;
  if (op == ">=") return RelOp::kGe;
  if (op == "matches") return RelOp::kMatches;
  return std::nullopt;
}

/// `v op lit` under the Value total order, for any comparable T.
template <typename T>
bool ApplyOp(RelOp op, const T& v, const T& lit) {
  switch (op) {
    case RelOp::kEq:
      return v == lit;
    case RelOp::kNe:
      return !(v == lit);
    case RelOp::kLt:
      return v < lit;
    case RelOp::kLe:
      return !(lit < v);
    case RelOp::kGt:
      return lit < v;
    case RelOp::kGe:
      return !(v < lit);
    case RelOp::kMatches:
      return false;
  }
  return false;
}

bool EvalOpOnValue(RelOp op, const Value& v, const Value& lit,
                   const events::EventPattern* pattern) {
  if (op == RelOp::kMatches) {
    return v.is_str() && lit.is_str() && pattern != nullptr &&
           pattern->Matches(v.str_value());
  }
  return ApplyOp<Value>(op, v, lit);
}

/// A representative boxed value of a typed column's element type, used to
/// resolve type-mismatched comparisons: the Value total order compares
/// mismatched types by type index alone, so the verdict is constant for
/// every row of the column.
Value RepresentativeValue(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kInt64:
      return Value::Int(0);
    case ColumnKind::kDouble:
      return Value::Real(0);
    case ColumnKind::kBool:
      return Value::Bool(false);
    case ColumnKind::kString:
    case ColumnKind::kDict:
      return Value::Str("");
    case ColumnKind::kValue:
      break;
  }
  return Value();
}

struct CompiledExpr {
  size_t col = 0;
  RelOp op = RelOp::kEq;
  Value literal;
  std::optional<events::EventPattern> pattern;
};

/// One step of a compiled per-batch filter program: a typed raw-pointer
/// comparison a single pass over the rows can dispatch on. A kDictVerdict
/// step holds the matching code set of a dictionary column — every
/// conjunct on that column folded into one per-entry verdict table — so
/// the per-row cost is one uint8 lookup on the int32 code.
struct FilterStep {
  enum class Kind {
    kDictVerdict,
    kInt64,
    kDouble,
    kBool,
    kString,
    kStringMatch,
    kValue,
  };
  Kind kind = Kind::kValue;
  RelOp op = RelOp::kEq;
  const ColumnData* col = nullptr;
  const uint8_t* verdict = nullptr;  // kDictVerdict
  int64_t i64_lit = 0;
  double f64_lit = 0;
  bool b1_lit = false;
  const std::string* str_lit = nullptr;          // kString
  const events::EventPattern* pattern = nullptr;  // kStringMatch, kValue
  const Value* literal = nullptr;                 // kValue
};

/// A batch's conjunction compiled to steps. Conjuncts whose verdict is
/// constant for the column's type (the Value total order compares
/// mismatched types by type index alone) are folded away: constant-true
/// conjuncts vanish, constant-false ones set `const_false`. Dictionary
/// steps are moved to the front — conjunction commutes, so the surviving
/// row set is unchanged and the cheapest test runs first.
struct BatchFilterProgram {
  std::vector<FilterStep> steps;
  bool const_false = false;
  // Verdict tables, one per dictionary column with predicates. A deque
  // keeps `steps[i].verdict` pointers stable as tables are appended.
  std::deque<std::vector<uint8_t>> verdicts;
};

BatchFilterProgram CompileBatchProgram(const ColumnBatch& batch,
                                       const std::vector<CompiledExpr>& exprs) {
  BatchFilterProgram prog;
  // Dictionary column -> its (single) verdict table.
  std::unordered_map<const ColumnData*, std::vector<uint8_t>*> dict_tables;
  for (const CompiledExpr& e : exprs) {
    const ColumnData& col = *batch.col(e.col);
    const events::EventPattern* pattern =
        e.pattern.has_value() ? &*e.pattern : nullptr;
    FilterStep step;
    step.op = e.op;
    step.col = &col;
    switch (col.kind) {
      case ColumnKind::kDict: {
        const std::vector<std::string>& dict = *col.dict;
        auto it = dict_tables.find(&col);
        if (it == dict_tables.end()) {
          prog.verdicts.emplace_back(dict.size(), uint8_t{1});
          std::vector<uint8_t>* table = &prog.verdicts.back();
          dict_tables.emplace(&col, table);
          step.kind = FilterStep::Kind::kDictVerdict;
          step.verdict = table->data();
          prog.steps.push_back(step);
          it = dict_tables.find(&col);
        }
        // AND this conjunct into the column's matching code set. Entries
        // are evaluated directly as strings — equivalent to boxing each
        // into a Value (the Value order on two strings is the string
        // order; a mismatched-type literal compares by type index alone,
        // so its verdict is constant across the dictionary).
        std::vector<uint8_t>& table = *it->second;
        if (e.op == RelOp::kMatches) {
          if (!e.literal.is_str() || pattern == nullptr) {
            std::fill(table.begin(), table.end(), uint8_t{0});
          } else {
            for (size_t d = 0; d < dict.size(); ++d) {
              if (table[d] != 0 && !pattern->Matches(dict[d])) table[d] = 0;
            }
          }
        } else if (e.literal.is_str()) {
          const std::string& lit = e.literal.str_value();
          for (size_t d = 0; d < dict.size(); ++d) {
            if (table[d] != 0 && !ApplyOp<std::string>(e.op, dict[d], lit)) {
              table[d] = 0;
            }
          }
        } else if (!EvalOpOnValue(e.op, RepresentativeValue(col.kind),
                                  e.literal, pattern)) {
          std::fill(table.begin(), table.end(), uint8_t{0});
        }
        continue;
      }
      case ColumnKind::kInt64:
        if (!e.literal.is_int() || e.op == RelOp::kMatches) {
          if (!EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                             pattern)) {
            prog.const_false = true;
          }
          continue;  // constant verdict: no per-row step
        }
        step.kind = FilterStep::Kind::kInt64;
        step.i64_lit = e.literal.int_value();
        break;
      case ColumnKind::kDouble:
        if (!e.literal.is_real() || e.op == RelOp::kMatches) {
          if (!EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                             pattern)) {
            prog.const_false = true;
          }
          continue;
        }
        step.kind = FilterStep::Kind::kDouble;
        step.f64_lit = e.literal.real_value();
        break;
      case ColumnKind::kBool:
        if (!e.literal.is_bool() || e.op == RelOp::kMatches) {
          if (!EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                             pattern)) {
            prog.const_false = true;
          }
          continue;
        }
        step.kind = FilterStep::Kind::kBool;
        step.b1_lit = e.literal.bool_value();
        break;
      case ColumnKind::kString:
        if (e.op == RelOp::kMatches) {
          if (!e.literal.is_str() || pattern == nullptr) {
            prog.const_false = true;
            continue;
          }
          step.kind = FilterStep::Kind::kStringMatch;
          step.pattern = pattern;
          break;
        }
        if (!e.literal.is_str()) {
          if (!EvalOpOnValue(e.op, RepresentativeValue(col.kind), e.literal,
                             pattern)) {
            prog.const_false = true;
          }
          continue;
        }
        step.kind = FilterStep::Kind::kString;
        step.str_lit = &e.literal.str_value();
        break;
      case ColumnKind::kValue:
        step.kind = FilterStep::Kind::kValue;
        step.literal = &e.literal;
        step.pattern = pattern;
        break;
    }
    prog.steps.push_back(step);
  }
  // Dictionary-domain steps first: one byte lookup per row, and a failed
  // row never touches a string.
  std::stable_partition(prog.steps.begin(), prog.steps.end(),
                        [](const FilterStep& s) {
                          return s.kind == FilterStep::Kind::kDictVerdict;
                        });
  return prog;
}

/// Evaluates the program against raw row `r`. Rows rejected at a
/// dictionary-domain step are counted into `dict_pruned`.
inline bool ProgramPasses(const BatchFilterProgram& prog, uint32_t r,
                          uint64_t* dict_pruned) {
  for (const FilterStep& s : prog.steps) {
    switch (s.kind) {
      case FilterStep::Kind::kDictVerdict:
        if (s.verdict[s.col->codes[r]] == 0) {
          ++*dict_pruned;
          return false;
        }
        break;
      case FilterStep::Kind::kInt64:
        if (!ApplyOp<int64_t>(s.op, s.col->i64[r], s.i64_lit)) return false;
        break;
      case FilterStep::Kind::kDouble:
        if (!ApplyOp<double>(s.op, s.col->f64[r], s.f64_lit)) return false;
        break;
      case FilterStep::Kind::kBool:
        if (!ApplyOp<bool>(s.op, s.col->b1[r] != 0, s.b1_lit)) return false;
        break;
      case FilterStep::Kind::kString:
        if (!ApplyOp<std::string>(s.op, s.col->str[r], *s.str_lit)) {
          return false;
        }
        break;
      case FilterStep::Kind::kStringMatch:
        if (!s.pattern->Matches(s.col->str[r])) return false;
        break;
      case FilterStep::Kind::kValue:
        if (!EvalOpOnValue(s.op, s.col->vals[r], *s.literal, s.pattern)) {
          return false;
        }
        break;
    }
  }
  return true;
}

/// Compacts `sel[0..n)` in place, keeping rows where `pred` holds;
/// returns the kept count. The write is unconditional, so the loop body
/// carries no hard-to-predict branch.
template <typename Pred>
size_t CompactIf(uint32_t* sel, size_t n, Pred pred) {
  size_t kept = 0;
  for (size_t k = 0; k < n; ++k) {
    const uint32_t r = sel[k];
    sel[kept] = r;
    kept += pred(r) ? size_t{1} : size_t{0};
  }
  return kept;
}

/// Typed comparison compaction with the operator dispatched once, outside
/// the row loop. Comparison forms mirror ApplyOp exactly (kLe is
/// !(lit < v), etc.), so NaN verdicts match the row-at-a-time path.
template <typename T>
size_t CompactCmp(uint32_t* sel, size_t n, RelOp op, const T* col, T lit) {
  switch (op) {
    case RelOp::kEq:
      return CompactIf(sel, n, [=](uint32_t r) { return col[r] == lit; });
    case RelOp::kNe:
      return CompactIf(sel, n, [=](uint32_t r) { return !(col[r] == lit); });
    case RelOp::kLt:
      return CompactIf(sel, n, [=](uint32_t r) { return col[r] < lit; });
    case RelOp::kLe:
      return CompactIf(sel, n, [=](uint32_t r) { return !(lit < col[r]); });
    case RelOp::kGt:
      return CompactIf(sel, n, [=](uint32_t r) { return lit < col[r]; });
    case RelOp::kGe:
      return CompactIf(sel, n, [=](uint32_t r) { return !(col[r] < lit); });
    case RelOp::kMatches:
      return 0;
  }
  return 0;
}

/// Runs the compiled program over `b`'s selected rows by compacting a
/// selection buffer one step at a time — the kind/op dispatch runs per
/// (batch, step) instead of per row. The surviving raw-row indices land
/// in `sel` (in row order); rows cut at dictionary-domain steps are
/// counted into `dict_pruned`. Verdict-equivalent to ProgramPasses row
/// by row: a row pruned at step i never reaches step i+1 either way.
void RunProgramColumnar(const BatchFilterProgram& prog, const ColumnBatch& b,
                        std::vector<uint32_t>* sel, uint64_t* dict_pruned) {
  const size_t n = b.selected_rows();
  sel->resize(n);
  uint32_t* s = sel->data();
  if (b.has_selection()) {
    const std::vector<uint32_t>& bs = b.selection();
    std::copy(bs.begin(), bs.end(), s);
  } else {
    for (size_t k = 0; k < n; ++k) s[k] = static_cast<uint32_t>(k);
  }
  size_t live = n;
  for (const FilterStep& st : prog.steps) {
    if (live == 0) break;
    switch (st.kind) {
      case FilterStep::Kind::kDictVerdict: {
        const uint8_t* verdict = st.verdict;
        const uint32_t* codes = st.col->codes.data();
        const size_t kept = CompactIf(
            s, live, [=](uint32_t r) { return verdict[codes[r]] != 0; });
        *dict_pruned += live - kept;
        live = kept;
        break;
      }
      case FilterStep::Kind::kInt64:
        live = CompactCmp<int64_t>(s, live, st.op, st.col->i64.data(),
                                   st.i64_lit);
        break;
      case FilterStep::Kind::kDouble:
        live = CompactCmp<double>(s, live, st.op, st.col->f64.data(),
                                  st.f64_lit);
        break;
      case FilterStep::Kind::kBool: {
        const uint8_t* col = st.col->b1.data();
        const RelOp op = st.op;
        const bool lit = st.b1_lit;
        live = CompactIf(s, live, [=](uint32_t r) {
          return ApplyOp<bool>(op, col[r] != 0, lit);
        });
        break;
      }
      case FilterStep::Kind::kString: {
        const std::string* col = st.col->str.data();
        const std::string& lit = *st.str_lit;
        const RelOp op = st.op;
        live = CompactIf(s, live, [&](uint32_t r) {
          return ApplyOp<std::string>(op, col[r], lit);
        });
        break;
      }
      case FilterStep::Kind::kStringMatch: {
        const std::string* col = st.col->str.data();
        const events::EventPattern* pat = st.pattern;
        live = CompactIf(s, live,
                         [=](uint32_t r) { return pat->Matches(col[r]); });
        break;
      }
      case FilterStep::Kind::kValue: {
        const Value* col = st.col->vals.data();
        live = CompactIf(s, live, [&](uint32_t r) {
          return EvalOpOnValue(st.op, col[r], *st.literal, st.pattern);
        });
        break;
      }
    }
  }
  sel->resize(live);
}

// --- GroupBy internals (mirroring relation.cc exactly) ---

/// Open-addressing set of string views with cached hashes — the
/// COUNT DISTINCT accumulator. Equality is plain byte equality (the same
/// relation std::unordered_set<std::string_view> used); only size() is
/// observable, so the probe order never shows. Node-based sets paid a
/// heap node per new value and a re-hash + pointer chase per probe; here
/// a probe is one vector slot and inserts never allocate until the load
/// factor doubles the flat slot array.
class DistinctSet {
 public:
  bool contains(std::string_view v) const {
    if (count_ == 0) return false;
    const uint64_t h = Hash(v);
    const size_t mask = slots_.size() - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (s.view.data() == nullptr) return false;
      if (s.hash == h && s.view == v) return true;
    }
  }

  void insert(std::string_view v) {
    if (slots_.empty()) slots_.resize(16);
    const uint64_t h = Hash(v);
    const size_t mask = slots_.size() - 1;
    for (size_t i = h & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (s.view.data() == nullptr) {
        s.hash = h;
        s.view = v;
        ++count_;
        if (count_ * 4 > slots_.size() * 3) Grow();
        return;
      }
      if (s.hash == h && s.view == v) return;
    }
  }

  size_t size() const { return count_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    std::string_view view;  // empty slot <=> view.data() == nullptr
  };

  static uint64_t Hash(std::string_view v) {
    // FNV-1a over 8-byte lanes (tail zero-padded, length folded in so
    // padding cannot collide with real NULs): one multiply per lane
    // instead of per byte. Internal only — nothing observable depends
    // on the hash value.
    uint64_t h = 1469598103934665603ull;
    size_t i = 0;
    for (; i + 8 <= v.size(); i += 8) {
      uint64_t w;
      std::memcpy(&w, v.data() + i, 8);
      h ^= w;
      h *= 1099511628211ull;
    }
    if (i < v.size()) {
      uint64_t w = 0;
      std::memcpy(&w, v.data() + i, v.size() - i);
      h ^= w;
      h *= 1099511628211ull;
    }
    h ^= v.size();
    h *= 1099511628211ull;
    // Finalizer: lane-wise FNV alone leaves the low bits (the probe
    // index) poorly mixed for near-identical ids, which shows up as long
    // linear-probe chains.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
  }

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const size_t mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.view.data() == nullptr) continue;
      size_t i = s.hash & mask;
      while (slots_[i].view.data() != nullptr) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t count_ = 0;
};

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool has_minmax = false;
  Value min, max;
  // Distinct values as views: kString/kDict rows point straight into the
  // (shared_ptr-owned, hence stable) column storage — no string is copied
  // for a value already seen. Rendered values (numbers, bools via the
  // static literals, kValue fallbacks) are owned by `owned`, a forward
  // list so node addresses (hence views) stay valid as it grows or the
  // state moves — and an unused accumulator never allocates. Only size()
  // is read at finalize, which equals the old std::set<std::string> count.
  DistinctSet distinct;
  std::forward_list<std::string> owned;
};

/// Inserts a rendered (non-column-backed) distinct value, taking
/// ownership only when it is new.
void InsertDistinctOwned(AggState* st, std::string&& s) {
  if (st->distinct.contains(std::string_view(s))) return;
  st->owned.push_front(std::move(s));
  st->distinct.insert(std::string_view(st->owned.front()));
}

/// Per-(batch, aggregate) access plan: the op and the raw column pointer
/// resolved once, so the per-row hot loop never touches a shared_ptr.
struct AggAccess {
  Aggregate::Op op = Aggregate::Op::kCount;
  ColumnKind kind = ColumnKind::kValue;
  const ColumnData* col = nullptr;
  const std::string* err_col = nullptr;  // aggregate column name, for errors
};

std::vector<AggAccess> PlanAggAccess(const std::vector<Aggregate>& aggs,
                                     const std::vector<size_t>& agg_idx,
                                     const ColumnBatch& batch) {
  std::vector<AggAccess> acc(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    acc[i].op = aggs[i].op;
    acc[i].err_col = &aggs[i].column;
    if (aggs[i].op != Aggregate::Op::kCount) {
      acc[i].col = batch.col(agg_idx[i]).get();
      acc[i].kind = acc[i].col->kind;
    }
  }
  return acc;
}

Status AccumulateRow(const std::vector<AggAccess>& acc, size_t row,
                     std::vector<AggState>* states) {
  for (size_t i = 0; i < acc.size(); ++i) {
    AggState& st = (*states)[i];
    const AggAccess& a = acc[i];
    switch (a.op) {
      case Aggregate::Op::kCount:
        ++st.count;
        break;
      case Aggregate::Op::kSum: {
        switch (a.kind) {
          case ColumnKind::kInt64:
            st.sum += static_cast<double>(a.col->i64[row]);
            break;
          case ColumnKind::kDouble:
            st.sum += a.col->f64[row];
            break;
          case ColumnKind::kValue: {
            const Value& v = a.col->vals[row];
            if (v.is_int()) {
              st.sum += static_cast<double>(v.int_value());
            } else if (v.is_real()) {
              st.sum += v.real_value();
            } else {
              return Status::InvalidArgument(
                  "SUM over non-numeric value in column '" + *a.err_col + "'");
            }
            break;
          }
          case ColumnKind::kBool:
          case ColumnKind::kString:
          case ColumnKind::kDict:
            return Status::InvalidArgument(
                "SUM over non-numeric value in column '" + *a.err_col + "'");
        }
        break;
      }
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax: {
        Value v = a.col->ValueAt(row);
        if (!st.has_minmax) {
          st.min = st.max = v;
          st.has_minmax = true;
        } else {
          if (v < st.min) st.min = v;
          if (st.max < v) st.max = v;
        }
        break;
      }
      case Aggregate::Op::kCountDistinct: {
        // Same strings Value::ToString would produce. Column-backed
        // strings go in as views (late materialization: no copy, ever);
        // other kinds render only when the value is new.
        switch (a.kind) {
          case ColumnKind::kString:
            st.distinct.insert(std::string_view(a.col->str[row]));
            break;
          case ColumnKind::kDict:
            st.distinct.insert(
                std::string_view((*a.col->dict)[a.col->codes[row]]));
            break;
          case ColumnKind::kInt64:
            InsertDistinctOwned(&st, std::to_string(a.col->i64[row]));
            break;
          case ColumnKind::kBool: {
            static const std::string kTrue = "true", kFalse = "false";
            st.distinct.insert(
                std::string_view(a.col->b1[row] ? kTrue : kFalse));
            break;
          }
          default:
            InsertDistinctOwned(&st, a.col->ValueAt(row).ToString());
            break;
        }
        break;
      }
    }
  }
  return Status::OK();
}

Row FinalizeGroup(const std::vector<Aggregate>& aggs, const Row& key,
                  const std::vector<AggState>& states) {
  Row row = key;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs[i].op) {
      case Aggregate::Op::kCount:
        row.push_back(Value::Int(static_cast<int64_t>(st.count)));
        break;
      case Aggregate::Op::kSum:
        row.push_back(Value::Real(st.sum));
        break;
      case Aggregate::Op::kMin:
        row.push_back(st.min);
        break;
      case Aggregate::Op::kMax:
        row.push_back(st.max);
        break;
      case Aggregate::Op::kCountDistinct:
        row.push_back(Value::Int(static_cast<int64_t>(st.distinct.size())));
        break;
    }
  }
  return row;
}

void AppendFixed64(std::string* buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (i * 8));
  buf->append(b, 8);
}

/// String-key encoding, identical to AppendEncodedValue(Value::Str(s))
/// without boxing the string into a Value first.
void AppendEncodedString(std::string* buf, const std::string& s) {
  buf->push_back('\x02');
  AppendFixed64(buf, s.size());
  buf->append(s);
}

/// Appends one key value's canonical encoding: a type tag byte followed
/// by a fixed-width or length-prefixed payload. Two values encode
/// identically iff they are equivalent under the Value total order the
/// row engine groups by (note -0.0 is canonicalized to 0.0: the order
/// treats them as one group).
void AppendEncodedValue(std::string* buf, const Value& v) {
  if (v.is_int()) {
    buf->push_back('\x00');
    AppendFixed64(buf, static_cast<uint64_t>(v.int_value()));
    return;
  }
  if (v.is_real()) {
    double d = v.real_value();
    if (d == 0.0) d = 0.0;  // collapse -0.0 and 0.0 into one key
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    buf->push_back('\x01');
    AppendFixed64(buf, bits);
    return;
  }
  if (v.is_str()) {
    AppendEncodedString(buf, v.str_value());
    return;
  }
  buf->push_back('\x03');
  buf->push_back(v.bool_value() ? '\x01' : '\x00');
}

/// Per-(batch, key-column) encoding plan: dictionary columns precompute
/// the encoded fragment per dictionary entry, so the per-row cost is one
/// code lookup and one append; other typed columns encode inline.
struct KeyColumnPlan {
  const ColumnData* col = nullptr;
  std::vector<std::string> dict_frags;  // kDict only
};

std::vector<KeyColumnPlan> PlanKeyColumns(const ColumnBatch& batch,
                                          const std::vector<size_t>& key_idx) {
  std::vector<KeyColumnPlan> plans(key_idx.size());
  for (size_t k = 0; k < key_idx.size(); ++k) {
    const ColumnData& col = *batch.col(key_idx[k]);
    plans[k].col = &col;
    if (col.kind == ColumnKind::kDict) {
      plans[k].dict_frags.reserve(col.dict->size());
      for (const std::string& entry : *col.dict) {
        std::string frag;
        AppendEncodedString(&frag, entry);
        plans[k].dict_frags.push_back(std::move(frag));
      }
    }
  }
  return plans;
}

void EncodeKeyTo(std::string* buf, const std::vector<KeyColumnPlan>& plans,
                 size_t row) {
  buf->clear();
  for (const KeyColumnPlan& plan : plans) {
    const ColumnData& col = *plan.col;
    switch (col.kind) {
      case ColumnKind::kInt64:
        buf->push_back('\x00');
        AppendFixed64(buf, static_cast<uint64_t>(col.i64[row]));
        break;
      case ColumnKind::kDouble:
      case ColumnKind::kValue:
        AppendEncodedValue(buf, col.ValueAt(row));
        break;
      case ColumnKind::kBool:
        buf->push_back('\x03');
        buf->push_back(col.b1[row] ? '\x01' : '\x00');
        break;
      case ColumnKind::kString:
        buf->push_back('\x02');
        AppendFixed64(buf, col.str[row].size());
        buf->append(col.str[row]);
        break;
      case ColumnKind::kDict:
        buf->append(plan.dict_frags[col.codes[row]]);
        break;
    }
  }
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// One shard's (or the serial pass's) aggregation hash table: encoded key
/// -> group ordinal, plus the boxed key row and per-aggregate states.
struct GroupSet {
  std::unordered_map<std::string, size_t> index;
  std::vector<Row> key_rows;
  std::vector<std::vector<AggState>> states;
};

/// Group ordinal of `key`, inserting a new group (boxing its key values
/// from raw row `raw` — the one place group keys materialize strings).
size_t ResolveGroup(GroupSet* gs, const ColumnBatch& b,
                    const std::vector<size_t>& key_idx, size_t raw,
                    const std::string& key, size_t num_aggs) {
  auto [it, inserted] = gs->index.try_emplace(key, gs->key_rows.size());
  if (inserted) {
    Row key_row;
    key_row.reserve(key_idx.size());
    for (size_t idx : key_idx) key_row.push_back(b.col(idx)->ValueAt(raw));
    gs->key_rows.push_back(std::move(key_row));
    gs->states.emplace_back(num_aggs);
  }
  return it->second;
}

/// True when no aggregate in the plan can return an error for any row —
/// the condition for accumulating column-at-a-time. SUM is fallible
/// unless its column is statically numeric; everything else never fails.
bool AggsAreInfallible(const std::vector<AggAccess>& acc) {
  for (const AggAccess& a : acc) {
    if (a.op == Aggregate::Op::kSum && a.kind != ColumnKind::kInt64 &&
        a.kind != ColumnKind::kDouble) {
      return false;
    }
  }
  return true;
}

/// Column-at-a-time accumulation of `sel`'s rows (group ordinal of
/// sel[j] in g_of[j]): one typed pass per aggregate, op and column kind
/// dispatched once. Per-group accumulation order equals the row-major
/// path — j ascends in row order in every pass and aggregate states are
/// independent — so double SUMs and min/max stay bit-exact. Only valid
/// under AggsAreInfallible (no per-row error can interleave).
void AccumulateColumnar(const std::vector<AggAccess>& acc,
                        const std::vector<uint32_t>& sel,
                        const std::vector<uint32_t>& g_of, GroupSet* gs) {
  const size_t m = sel.size();
  std::vector<std::vector<AggState>>& states = gs->states;
  for (size_t i = 0; i < acc.size(); ++i) {
    const AggAccess& a = acc[i];
    switch (a.op) {
      case Aggregate::Op::kCount:
        for (size_t j = 0; j < m; ++j) ++states[g_of[j]][i].count;
        break;
      case Aggregate::Op::kSum:
        if (a.kind == ColumnKind::kInt64) {
          const int64_t* col = a.col->i64.data();
          for (size_t j = 0; j < m; ++j) {
            states[g_of[j]][i].sum += static_cast<double>(col[sel[j]]);
          }
        } else {
          const double* col = a.col->f64.data();
          for (size_t j = 0; j < m; ++j) {
            states[g_of[j]][i].sum += col[sel[j]];
          }
        }
        break;
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax:
        for (size_t j = 0; j < m; ++j) {
          Value v = a.col->ValueAt(sel[j]);
          AggState& st = states[g_of[j]][i];
          if (!st.has_minmax) {
            st.min = st.max = v;
            st.has_minmax = true;
          } else {
            if (v < st.min) st.min = v;
            if (st.max < v) st.max = v;
          }
        }
        break;
      case Aggregate::Op::kCountDistinct:
        switch (a.kind) {
          case ColumnKind::kString: {
            const std::string* col = a.col->str.data();
            for (size_t j = 0; j < m; ++j) {
              states[g_of[j]][i].distinct.insert(std::string_view(col[sel[j]]));
            }
            break;
          }
          case ColumnKind::kDict: {
            const std::vector<std::string>& dict = *a.col->dict;
            const uint32_t* codes = a.col->codes.data();
            for (size_t j = 0; j < m; ++j) {
              states[g_of[j]][i].distinct.insert(
                  std::string_view(dict[codes[sel[j]]]));
            }
            break;
          }
          case ColumnKind::kInt64: {
            const int64_t* col = a.col->i64.data();
            for (size_t j = 0; j < m; ++j) {
              InsertDistinctOwned(&states[g_of[j]][i],
                                  std::to_string(col[sel[j]]));
            }
            break;
          }
          case ColumnKind::kBool: {
            static const std::string kTrue = "true", kFalse = "false";
            const uint8_t* col = a.col->b1.data();
            for (size_t j = 0; j < m; ++j) {
              states[g_of[j]][i].distinct.insert(
                  std::string_view(col[sel[j]] ? kTrue : kFalse));
            }
            break;
          }
          default:
            for (size_t j = 0; j < m; ++j) {
              InsertDistinctOwned(&states[g_of[j]][i],
                                  a.col->ValueAt(sel[j]).ToString());
            }
            break;
        }
        break;
    }
  }
}

/// Merge + finalize: every group lives in exactly one shard; emit in
/// global key order, the ordering the row engine's std::map produces.
Result<Relation> MergeAndFinalize(const std::vector<Aggregate>& aggs,
                                  const std::vector<std::string>& out_cols,
                                  const std::vector<GroupSet>& shards,
                                  exec::Executor* exec, bool parallel) {
  struct GroupRef {
    const Row* key = nullptr;
    const std::vector<AggState>* states = nullptr;
  };
  std::vector<GroupRef> refs;
  for (const GroupSet& gs : shards) {
    for (size_t g = 0; g < gs.key_rows.size(); ++g) {
      refs.push_back({&gs.key_rows[g], &gs.states[g]});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const GroupRef& a, const GroupRef& b) { return *a.key < *b.key; });

  std::vector<Row> out_rows(refs.size());
  auto finalize_range = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out_rows[i] = FinalizeGroup(aggs, *refs[i].key, *refs[i].states);
    }
  };
  if (parallel) {
    exec->ParallelForChunked("batch_groupby_finalize", refs.size(),
                             [&](size_t, size_t begin, size_t end) {
                               finalize_range(begin, end);
                             });
  } else {
    finalize_range(0, refs.size());
  }
  return Relation::FromRows(out_cols, std::move(out_rows));
}

/// Join key with Relation::Join's exact semantics: ToString() plus a
/// string/non-string tag, so Int(1) and Real(1) hash-match.
std::string JoinKeyOf(const Value& v) {
  return v.ToString() + "\x01" + std::to_string(v.is_str());
}

/// (batch, raw row) coordinates of every selected row, in batch order.
struct RowLoc {
  uint32_t batch = 0;
  uint32_t row = 0;
};

std::vector<RowLoc> BuildLocs(const std::vector<ColumnBatch>& batches) {
  std::vector<RowLoc> locs;
  size_t total = 0;
  for (const auto& b : batches) total += b.selected_rows();
  locs.reserve(total);
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const ColumnBatch& b = batches[bi];
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      locs.push_back({static_cast<uint32_t>(bi),
                      static_cast<uint32_t>(b.RowIndex(k))});
    }
  }
  return locs;
}

/// Join keys for every selected row, dictionary entries stringified once.
std::vector<std::string> BuildJoinKeys(const std::vector<ColumnBatch>& batches,
                                       size_t col_idx,
                                       const std::vector<RowLoc>& locs) {
  // Per-batch dictionary key cache.
  std::vector<std::vector<std::string>> dict_keys(batches.size());
  for (size_t bi = 0; bi < batches.size(); ++bi) {
    const ColumnData& col = *batches[bi].col(col_idx);
    if (col.kind != ColumnKind::kDict) continue;
    dict_keys[bi].reserve(col.dict->size());
    for (const std::string& entry : *col.dict) {
      dict_keys[bi].push_back(JoinKeyOf(Value::Str(entry)));
    }
  }
  std::vector<std::string> keys;
  keys.reserve(locs.size());
  for (const RowLoc& loc : locs) {
    const ColumnData& col = *batches[loc.batch].col(col_idx);
    if (col.kind == ColumnKind::kDict) {
      keys.push_back(dict_keys[loc.batch][col.codes[loc.row]]);
    } else {
      keys.push_back(JoinKeyOf(col.ValueAt(loc.row)));
    }
  }
  return keys;
}

/// Resolves FilterExprs against the relation's schema once per kernel
/// call (column indices, parsed ops, compiled glob patterns).
Result<std::vector<CompiledExpr>> CompileExprs(
    const BatchRelation& rel, const std::vector<FilterExpr>& exprs) {
  std::vector<CompiledExpr> compiled;
  compiled.reserve(exprs.size());
  for (const FilterExpr& e : exprs) {
    CompiledExpr c;
    UNILOG_ASSIGN_OR_RETURN(c.col, rel.ColumnIndex(e.column));
    std::optional<RelOp> op = ParseOp(e.op);
    if (!op.has_value()) {
      return Status::InvalidArgument("unsupported filter op: " + e.op);
    }
    c.op = *op;
    c.literal = e.literal;
    if (c.op == RelOp::kMatches && e.literal.is_str()) {
      c.pattern.emplace(e.literal.str_value());
    }
    compiled.push_back(std::move(c));
  }
  return compiled;
}

}  // namespace

void KernelStats::MergeFrom(const KernelStats& other) {
  dict_domain_rows_pruned += other.dict_domain_rows_pruned;
  rows_in += other.rows_in;
  rows_out += other.rows_out;
}

bool EvalFilterOp(const Value& v, const std::string& op, const Value& literal) {
  std::optional<RelOp> rel = ParseOp(op);
  if (!rel.has_value()) return false;
  if (*rel == RelOp::kMatches) {
    if (!v.is_str() || !literal.is_str()) return false;
    events::EventPattern pattern(literal.str_value());
    return pattern.Matches(v.str_value());
  }
  return ApplyOp<Value>(*rel, v, literal);
}

Result<BatchRelation> BatchRelation::FromRelation(const Relation& rel,
                                                  size_t batch_rows) {
  if (batch_rows == 0) batch_rows = 1;
  BatchRelation out;
  out.columns_ = rel.columns();
  const std::vector<Row>& rows = rel.rows();
  for (size_t begin = 0; begin < rows.size(); begin += batch_rows) {
    const size_t end = std::min(rows.size(), begin + batch_rows);
    std::vector<ColumnPtr> cols;
    cols.reserve(out.columns_.size());
    std::vector<Value> vals(end - begin);
    for (size_t c = 0; c < out.columns_.size(); ++c) {
      for (size_t r = begin; r < end; ++r) vals[r - begin] = rows[r][c];
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    out.batches_.emplace_back(std::move(cols), end - begin);
  }
  return out;
}

Result<BatchRelation> BatchRelation::FromBatches(
    std::vector<std::string> columns, std::vector<ColumnBatch> batches) {
  for (const ColumnBatch& b : batches) {
    if (b.num_cols() != columns.size()) {
      return Status::InvalidArgument(
          "batch arity " + std::to_string(b.num_cols()) + " != schema arity " +
          std::to_string(columns.size()));
    }
  }
  BatchRelation out;
  out.columns_ = std::move(columns);
  out.batches_ = std::move(batches);
  return out;
}

Result<Relation> BatchRelation::ToRelation() const {
  std::vector<Row> rows;
  rows.reserve(TotalRows());
  for (const ColumnBatch& b : batches_) {
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      const size_t r = b.RowIndex(k);
      Row row;
      row.reserve(b.num_cols());
      for (size_t c = 0; c < b.num_cols(); ++c) {
        row.push_back(b.col(c)->ValueAt(r));
      }
      rows.push_back(std::move(row));
    }
  }
  return Relation::FromRows(columns_, std::move(rows));
}

Result<size_t> BatchRelation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no such column: " + name);
}

size_t BatchRelation::TotalRows() const {
  size_t total = 0;
  for (const ColumnBatch& b : batches_) total += b.selected_rows();
  return total;
}

Result<BatchRelation> BatchRelation::Filter(
    const std::vector<FilterExpr>& exprs, exec::Executor* exec,
    KernelStats* stats, const exec::MorselOptions& morsels) const {
  UNILOG_ASSIGN_OR_RETURN(std::vector<CompiledExpr> compiled,
                          CompileExprs(*this, exprs));

  BatchRelation out;
  out.columns_ = columns_;
  out.batches_ = batches_;
  // Per-batch accounting slots: parallel batches merge deterministically.
  std::vector<KernelStats> slots(out.batches_.size());
  auto filter_batch = [&](size_t bi) -> Status {
    ColumnBatch& b = out.batches_[bi];
    KernelStats& ks = slots[bi];
    ks.rows_in += b.selected_rows();
    BatchFilterProgram prog = CompileBatchProgram(b, compiled);
    if (prog.const_false) {
      b.SetSelection({});
      return Status::OK();
    }
    std::vector<uint32_t> kept;
    kept.reserve(b.selected_rows());
    if (b.has_selection()) {
      for (uint32_t r : b.selection()) {
        if (ProgramPasses(prog, r, &ks.dict_domain_rows_pruned)) {
          kept.push_back(r);
        }
      }
    } else {
      const uint32_t n = static_cast<uint32_t>(b.raw_rows());
      for (uint32_t r = 0; r < n; ++r) {
        if (ProgramPasses(prog, r, &ks.dict_domain_rows_pruned)) {
          kept.push_back(r);
        }
      }
    }
    ks.rows_out += kept.size();
    b.SetSelection(std::move(kept));
    return Status::OK();
  };
  if (exec != nullptr && exec->parallel()) {
    // Byte-weighted morsels: a skewed batch (one huge row group) gets its
    // own morsel while small groups coalesce, and idle threads steal.
    std::vector<uint64_t> weights(out.batches_.size());
    for (size_t bi = 0; bi < weights.size(); ++bi) {
      weights[bi] = out.batches_[bi].byte_size();
    }
    UNILOG_RETURN_NOT_OK(exec->ParallelForMorsels(
        "batch_filter", weights, morsels,
        [&](size_t, size_t begin, size_t end) -> Status {
          for (size_t bi = begin; bi < end; ++bi) {
            UNILOG_RETURN_NOT_OK(filter_batch(bi));
          }
          return Status::OK();
        }));
  } else {
    for (size_t bi = 0; bi < out.batches_.size(); ++bi) {
      UNILOG_RETURN_NOT_OK(filter_batch(bi));
    }
  }
  if (stats != nullptr) {
    for (const KernelStats& ks : slots) stats->MergeFrom(ks);
  }
  return out;
}

Result<BatchRelation> BatchRelation::Project(
    const std::vector<std::string>& cols, exec::Executor* exec) const {
  return ProjectAs(cols, cols, exec);
}

Result<BatchRelation> BatchRelation::ProjectAs(
    const std::vector<std::string>& cols,
    const std::vector<std::string>& names, exec::Executor*) const {
  if (cols.size() != names.size()) {
    return Status::InvalidArgument("projection arity mismatch");
  }
  std::vector<size_t> indices;
  indices.reserve(cols.size());
  for (const std::string& col : cols) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(col));
    indices.push_back(idx);
  }
  BatchRelation out;
  out.columns_ = names;
  out.batches_.reserve(batches_.size());
  for (const ColumnBatch& b : batches_) {
    std::vector<ColumnPtr> picked;
    picked.reserve(indices.size());
    for (size_t idx : indices) picked.push_back(b.col(idx));
    ColumnBatch nb(std::move(picked), b.raw_rows());
    if (b.has_selection()) {
      nb.SetSelection(std::vector<uint32_t>(b.selection()));
    }
    out.batches_.push_back(std::move(nb));
  }
  return out;
}

Result<BatchRelation> BatchRelation::WithColumn(
    const std::string& name, std::function<Value(const Row&)> fn,
    exec::Executor* exec) const {
  if (ColumnIndex(name).ok()) {
    return Status::AlreadyExists("column exists: " + name);
  }
  BatchRelation out;
  out.columns_ = columns_;
  out.columns_.push_back(name);
  out.batches_.resize(batches_.size());
  auto extend_batch = [&](size_t bi) {
    ColumnBatch dense = batches_[bi].Compact();
    const size_t n = dense.raw_rows();
    std::vector<Value> vals(n);
    Row row(dense.num_cols());
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < dense.num_cols(); ++c) {
        row[c] = dense.col(c)->ValueAt(r);
      }
      vals[r] = fn(row);
    }
    dense.AppendColumn(ColumnBatch::BuildColumn(vals));
    out.batches_[bi] = std::move(dense);
  };
  if (exec != nullptr && exec->parallel()) {
    exec->ParallelFor("batch_with_column", batches_.size(), extend_batch);
  } else {
    for (size_t bi = 0; bi < batches_.size(); ++bi) extend_batch(bi);
  }
  return out;
}

Result<Relation> BatchRelation::GroupBy(const std::vector<std::string>& keys,
                                        const std::vector<Aggregate>& aggs,
                                        exec::Executor* exec) const {
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].op != Aggregate::Op::kCount) {
      UNILOG_ASSIGN_OR_RETURN(agg_idx[i], ColumnIndex(aggs[i].column));
    }
  }
  std::vector<std::string> out_cols = keys;
  for (const auto& agg : aggs) out_cols.push_back(agg.as);

  const bool parallel = exec != nullptr && exec->parallel();

  // Fast path: when every key column is dictionary-encoded, a row's group
  // within a batch is fully determined by its dictionary code, so group
  // lookup can be resolved once per (batch, code) instead of hashing an
  // encoded key string per row. The code below keys the same unordered_map
  // with the same per-entry encoded fragments the slow path would build
  // row-by-row, so group identity, shard ownership, and per-group
  // accumulation order are byte-for-byte unchanged.
  const bool dict_keys =
      key_idx.size() == 1 &&
      std::all_of(batches_.begin(), batches_.end(), [&](const ColumnBatch& b) {
        return b.col(key_idx[0])->kind == ColumnKind::kDict;
      });

  // Per-batch, per-dictionary-entry encoded key fragments (dict fast path
  // only); equal to the per-row encoded key for rows carrying that code.
  std::vector<std::vector<std::string>> frag;
  if (dict_keys) {
    frag.resize(batches_.size());
    auto build_frags = [&](size_t bi) {
      std::vector<KeyColumnPlan> plans = PlanKeyColumns(batches_[bi], key_idx);
      frag[bi] = std::move(plans[0].dict_frags);
    };
    if (parallel) {
      exec->ParallelFor("batch_groupby_frags", batches_.size(), build_frags);
    } else {
      for (size_t bi = 0; bi < batches_.size(); ++bi) build_frags(bi);
    }
  }

  // Encoded keys for every selected row, precomputed per batch (parallel
  // when an executor is attached; writes go to per-batch slots). Skipped
  // entirely on the dict fast path.
  std::vector<std::vector<std::string>> enc(batches_.size());
  auto encode_batch = [&](size_t bi) {
    const ColumnBatch& b = batches_[bi];
    std::vector<KeyColumnPlan> plans = PlanKeyColumns(b, key_idx);
    const size_t n = b.selected_rows();
    enc[bi].resize(n);
    std::string buf;
    for (size_t k = 0; k < n; ++k) {
      EncodeKeyTo(&buf, plans, b.RowIndex(k));
      enc[bi][k] = buf;
    }
  };
  if (!dict_keys) {
    if (parallel) {
      exec->ParallelFor("batch_groupby_encode", batches_.size(), encode_batch);
    } else {
      for (size_t bi = 0; bi < batches_.size(); ++bi) encode_batch(bi);
    }
  }

  // Aggregate access plans, resolved once per batch so the per-row hot
  // loop never dereferences a shared_ptr.
  std::vector<std::vector<AggAccess>> acc(batches_.size());
  for (size_t bi = 0; bi < batches_.size(); ++bi) {
    acc[bi] = PlanAggAccess(aggs, agg_idx, batches_[bi]);
  }

  // Walks one batch's rows for one shard (`s`; kAllShards serially), using
  // a per-(shard, batch) code→group cache on the dict fast path.
  constexpr uint32_t kAllShards = ~0u;
  auto accumulate_batch_dict = [&](GroupSet* gs, size_t bi, uint32_t s,
                                   const std::vector<uint32_t>* shard_of_code)
      -> Status {
    const ColumnBatch& b = batches_[bi];
    const ColumnData& kc = *b.col(key_idx[0]);
    std::vector<ptrdiff_t> group_of_code(frag[bi].size(), -1);
    const size_t n = b.selected_rows();
    for (size_t k = 0; k < n; ++k) {
      const size_t raw = b.RowIndex(k);
      const uint32_t code = kc.codes[raw];
      if (s != kAllShards && (*shard_of_code)[code] != s) continue;
      ptrdiff_t& g = group_of_code[code];
      if (g < 0) {
        g = static_cast<ptrdiff_t>(
            ResolveGroup(gs, b, key_idx, raw, frag[bi][code], aggs.size()));
      }
      UNILOG_RETURN_NOT_OK(AccumulateRow(acc[bi], raw, &gs->states[g]));
    }
    return Status::OK();
  };
  auto accumulate_into = [&](GroupSet* gs, size_t bi, size_t k) -> Status {
    const ColumnBatch& b = batches_[bi];
    const size_t raw = b.RowIndex(k);
    const size_t g = ResolveGroup(gs, b, key_idx, raw, enc[bi][k], aggs.size());
    return AccumulateRow(acc[bi], raw, &gs->states[g]);
  };

  std::vector<GroupSet> shards;
  if (!parallel) {
    shards.resize(1);
    for (size_t bi = 0; bi < batches_.size(); ++bi) {
      if (dict_keys) {
        UNILOG_RETURN_NOT_OK(
            accumulate_batch_dict(&shards[0], bi, kAllShards, nullptr));
        continue;
      }
      const size_t n = batches_[bi].selected_rows();
      for (size_t k = 0; k < n; ++k) {
        UNILOG_RETURN_NOT_OK(accumulate_into(&shards[0], bi, k));
      }
    }
  } else {
    // Hash-partition rows by encoded key so each group is owned by one
    // shard; every shard walks rows in global order, so per-group
    // accumulation order — and bit-exact double SUM — matches serial.
    const size_t num_shards = static_cast<size_t>(exec->threads()) * 2;
    shards.resize(num_shards);
    if (dict_keys) {
      // Shard assignment per dictionary entry, not per row; Fnv1a64 of the
      // entry's fragment equals the slow path's per-row key hash.
      std::vector<std::vector<uint32_t>> shard_of_code(batches_.size());
      exec->ParallelFor("batch_groupby_hash", batches_.size(), [&](size_t bi) {
        shard_of_code[bi].resize(frag[bi].size());
        for (size_t e = 0; e < frag[bi].size(); ++e) {
          shard_of_code[bi][e] =
              static_cast<uint32_t>(Fnv1a64(frag[bi][e]) % num_shards);
        }
      });
      UNILOG_RETURN_NOT_OK(exec->ParallelForStatus(
          "batch_groupby_agg", num_shards, [&](size_t s) -> Status {
            for (size_t bi = 0; bi < batches_.size(); ++bi) {
              UNILOG_RETURN_NOT_OK(accumulate_batch_dict(
                  &shards[s], bi, static_cast<uint32_t>(s),
                  &shard_of_code[bi]));
            }
            return Status::OK();
          }));
    } else {
      std::vector<std::vector<uint32_t>> shard_of(batches_.size());
      exec->ParallelFor("batch_groupby_hash", batches_.size(), [&](size_t bi) {
        shard_of[bi].resize(enc[bi].size());
        for (size_t k = 0; k < enc[bi].size(); ++k) {
          shard_of[bi][k] =
              static_cast<uint32_t>(Fnv1a64(enc[bi][k]) % num_shards);
        }
      });
      UNILOG_RETURN_NOT_OK(exec->ParallelForStatus(
          "batch_groupby_agg", num_shards, [&](size_t s) -> Status {
            for (size_t bi = 0; bi < batches_.size(); ++bi) {
              const size_t n = enc[bi].size();
              for (size_t k = 0; k < n; ++k) {
                if (shard_of[bi][k] != s) continue;
                UNILOG_RETURN_NOT_OK(accumulate_into(&shards[s], bi, k));
              }
            }
            return Status::OK();
          }));
    }
  }

  return MergeAndFinalize(aggs, out_cols, shards, exec, parallel);
}

Result<Relation> BatchRelation::FilterGroupBy(
    const std::vector<FilterExpr>& exprs, const std::vector<std::string>& keys,
    const std::vector<Aggregate>& aggs, exec::Executor* exec,
    KernelStats* stats, const exec::MorselOptions& morsels) const {
  if (exec != nullptr && exec->parallel()) {
    // Parallel: morsel-scheduled Filter, then the sharded GroupBy (each
    // shard walks rows in global order, so double SUMs stay bit-exact).
    UNILOG_ASSIGN_OR_RETURN(BatchRelation filtered,
                            Filter(exprs, exec, stats, morsels));
    return filtered.GroupBy(keys, aggs, exec);
  }

  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].op != Aggregate::Op::kCount) {
      UNILOG_ASSIGN_OR_RETURN(agg_idx[i], ColumnIndex(aggs[i].column));
    }
  }
  std::vector<std::string> out_cols = keys;
  for (const auto& agg : aggs) out_cols.push_back(agg.as);
  UNILOG_ASSIGN_OR_RETURN(std::vector<CompiledExpr> compiled,
                          CompileExprs(*this, exprs));

  // Serial fused pipeline: one pass per batch evaluates the compiled
  // program and accumulates survivors straight into the hash table — no
  // selection vector or intermediate batch is ever materialized. Group
  // identity uses the same encoded keys as GroupBy (a dictionary key's
  // per-entry fragment equals the row's encoded key), so the output is
  // byte-identical to Filter().GroupBy().
  std::vector<GroupSet> shards(1);
  GroupSet& gs = shards[0];
  KernelStats local;
  std::vector<uint32_t> sel;   // surviving raw rows, reused across batches
  std::vector<uint32_t> g_of;  // group ordinal per survivor
  std::vector<ptrdiff_t> group_of_code;
  for (size_t bi = 0; bi < batches_.size(); ++bi) {
    const ColumnBatch& b = batches_[bi];
    local.rows_in += b.selected_rows();
    BatchFilterProgram prog = CompileBatchProgram(b, compiled);
    if (prog.const_false) continue;
    // Filter column-at-a-time into a reused selection buffer, then
    // resolve each survivor's group and accumulate. Group resolution on
    // dictionary keys runs once per (batch, code), and a code's key
    // fragment is encoded only on first sight — entries whose rows never
    // pass the filter are neither encoded nor materialized.
    RunProgramColumnar(prog, b, &sel, &local.dict_domain_rows_pruned);
    local.rows_out += sel.size();
    if (sel.empty()) continue;
    const std::vector<AggAccess> acc = PlanAggAccess(aggs, agg_idx, b);
    const bool dict_key = key_idx.size() == 1 &&
                          b.col(key_idx[0])->kind == ColumnKind::kDict;
    g_of.resize(sel.size());
    std::string buf;
    if (dict_key) {
      const ColumnData* kc = b.col(key_idx[0]).get();
      const uint32_t* codes = kc->codes.data();
      group_of_code.assign(kc->dict->size(), -1);
      for (size_t j = 0; j < sel.size(); ++j) {
        const uint32_t code = codes[sel[j]];
        ptrdiff_t& slot = group_of_code[code];
        if (slot < 0) {
          buf.clear();
          AppendEncodedString(&buf, (*kc->dict)[code]);
          slot = static_cast<ptrdiff_t>(
              ResolveGroup(&gs, b, key_idx, sel[j], buf, aggs.size()));
        }
        g_of[j] = static_cast<uint32_t>(slot);
      }
    } else {
      const std::vector<KeyColumnPlan> plans = PlanKeyColumns(b, key_idx);
      for (size_t j = 0; j < sel.size(); ++j) {
        EncodeKeyTo(&buf, plans, sel[j]);
        g_of[j] = static_cast<uint32_t>(
            ResolveGroup(&gs, b, key_idx, sel[j], buf, aggs.size()));
      }
    }
    if (AggsAreInfallible(acc)) {
      AccumulateColumnar(acc, sel, g_of, &gs);
    } else {
      // A SUM that can fail keeps the row-major walk so the first error
      // raised is the row engine's (same row, same aggregate order).
      for (size_t j = 0; j < sel.size(); ++j) {
        UNILOG_RETURN_NOT_OK(AccumulateRow(acc, sel[j], &gs.states[g_of[j]]));
      }
    }
  }
  if (stats != nullptr) stats->MergeFrom(local);
  return MergeAndFinalize(aggs, out_cols, shards, exec, false);
}

Result<BatchRelation> BatchRelation::Join(const BatchRelation& right,
                                          const std::string& left_col,
                                          const std::string& right_col,
                                          exec::Executor* exec,
                                          JoinBuildSide side) const {
  UNILOG_ASSIGN_OR_RETURN(size_t li, ColumnIndex(left_col));
  UNILOG_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(right_col));

  const std::vector<RowLoc> left_locs = BuildLocs(batches_);
  const std::vector<RowLoc> right_locs = BuildLocs(right.batches_);
  const std::vector<std::string> left_keys =
      BuildJoinKeys(batches_, li, left_locs);
  const std::vector<std::string> right_keys =
      BuildJoinKeys(right.batches_, ri, right_locs);

  if (side == JoinBuildSide::kAuto) {
    // Build the smaller input; ties keep the row engine's right build.
    side = left_locs.size() < right_locs.size() ? JoinBuildSide::kLeft
                                                : JoinBuildSide::kRight;
  }

  // Matching (left ordinal, right ordinal) pairs in the row engine's
  // output order: left-row-major, right matches in right input order.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  if (side == JoinBuildSide::kRight) {
    std::unordered_map<std::string, std::vector<uint32_t>> table;
    for (size_t r = 0; r < right_keys.size(); ++r) {
      table[right_keys[r]].push_back(static_cast<uint32_t>(r));
    }
    auto probe_range = [&](size_t begin, size_t end,
                           std::vector<std::pair<uint32_t, uint32_t>>* sink) {
      for (size_t l = begin; l < end; ++l) {
        auto it = table.find(left_keys[l]);
        if (it == table.end()) continue;
        for (uint32_t r : it->second) {
          sink->push_back({static_cast<uint32_t>(l), r});
        }
      }
    };
    if (exec != nullptr && exec->parallel()) {
      std::vector<std::vector<std::pair<uint32_t, uint32_t>>> chunks(
          exec->ChunksFor(left_locs.size()));
      exec->ParallelForChunked("batch_join_probe", left_locs.size(),
                               [&](size_t chunk, size_t begin, size_t end) {
                                 probe_range(begin, end, &chunks[chunk]);
                               });
      for (auto& chunk : chunks) {
        pairs.insert(pairs.end(), chunk.begin(), chunk.end());
      }
    } else {
      probe_range(0, left_locs.size(), &pairs);
    }
  } else {
    std::unordered_map<std::string, std::vector<uint32_t>> table;
    for (size_t l = 0; l < left_keys.size(); ++l) {
      table[left_keys[l]].push_back(static_cast<uint32_t>(l));
    }
    // Probing with the right side yields pairs in right-major order;
    // a stable sort by left ordinal restores the output order while
    // keeping right matches in input order.
    for (size_t r = 0; r < right_keys.size(); ++r) {
      auto it = table.find(right_keys[r]);
      if (it == table.end()) continue;
      for (uint32_t l : it->second) {
        pairs.push_back({l, static_cast<uint32_t>(r)});
      }
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  std::vector<std::string> out_cols = columns_;
  for (size_t c = 0; c < right.columns_.size(); ++c) {
    if (c == ri) continue;
    out_cols.push_back(right.columns_[c]);
  }

  BatchRelation out;
  out.columns_ = std::move(out_cols);
  constexpr size_t kOutBatchRows = 1024;
  for (size_t begin = 0; begin < pairs.size(); begin += kOutBatchRows) {
    const size_t end = std::min(pairs.size(), begin + kOutBatchRows);
    std::vector<ColumnPtr> cols;
    cols.reserve(out.columns_.size());
    std::vector<Value> vals(end - begin);
    for (size_t c = 0; c < columns_.size(); ++c) {
      for (size_t i = begin; i < end; ++i) {
        const RowLoc& loc = left_locs[pairs[i].first];
        vals[i - begin] = batches_[loc.batch].col(c)->ValueAt(loc.row);
      }
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    for (size_t c = 0; c < right.columns_.size(); ++c) {
      if (c == ri) continue;
      for (size_t i = begin; i < end; ++i) {
        const RowLoc& loc = right_locs[pairs[i].second];
        vals[i - begin] = right.batches_[loc.batch].col(c)->ValueAt(loc.row);
      }
      cols.push_back(ColumnBatch::BuildColumn(vals));
    }
    out.batches_.emplace_back(std::move(cols), end - begin);
  }
  return out;
}

}  // namespace unilog::dataflow
