#ifndef UNILOG_DATAFLOW_COST_MODEL_H_
#define UNILOG_DATAFLOW_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace unilog::obs {
class MetricsRegistry;
}  // namespace unilog::obs

namespace unilog::dataflow {

/// The Hadoop-shaped cost model behind the paper's performance argument.
/// §4.2: raw client-event queries "routinely spawned tens of thousands of
/// mappers and clogged our Hadoop jobtracker, performing large amounts of
/// brute force scans and data shuffling"; "Hadoop tasks have relatively
/// high startup costs". The model charges exactly those three currencies —
/// per-task startup, bytes scanned, bytes shuffled — so the *relative*
/// economics of raw logs vs. session sequences match the paper even though
/// the absolute numbers are synthetic.
struct JobCostModel {
  /// Fixed JVM-ish startup charge per map or reduce task.
  uint64_t task_startup_ms = 2000;
  /// Mapper scan throughput over on-disk bytes.
  uint64_t scan_bytes_per_ms = 64 * 1024;
  /// Shuffle (map→reduce copy + sort) throughput.
  uint64_t shuffle_bytes_per_ms = 16 * 1024;
  /// Concurrent task slots in the simulated cluster.
  uint64_t cluster_slots = 200;
};

/// Accounting produced by one simulated job.
struct JobStats {
  uint64_t map_tasks = 0;
  uint64_t reduce_tasks = 0;
  uint64_t bytes_scanned = 0;    // on-disk input bytes
  uint64_t bytes_shuffled = 0;   // emitted intermediate key+value bytes
  uint64_t records_read = 0;
  uint64_t records_emitted = 0;  // map outputs
  uint64_t records_output = 0;   // final outputs
  /// Input files whose decode failed the checksum layer and were renamed
  /// to a hidden `_quarantined.*` name instead of failing the job (only
  /// when the job has a quarantine fs attached).
  uint64_t corrupt_inputs_quarantined = 0;
  /// Modeled wall-clock milliseconds (filled by ChargeWallTime).
  double modeled_ms = 0;

  /// Accumulates another job's stats (for multi-job pipelines).
  void Accumulate(const JobStats& other);

  /// Human-readable one-liner for bench output.
  std::string ToString() const;
};

/// Computes the modeled wall time for a job under the cost model: map and
/// reduce waves run task_count/slots rounds, each charged startup plus its
/// share of scan/shuffle bytes.
double ModelWallTimeMs(const JobCostModel& model, const JobStats& stats);

/// Publishes one job run into the unified registry as job.*{job=<name>}
/// counters plus a job.modeled_ms histogram, so daily-pipeline runs show
/// up in the same report as the delivery path.
void PublishJobStats(obs::MetricsRegistry* metrics, const std::string& job,
                     const JobStats& stats);

}  // namespace unilog::dataflow

#endif  // UNILOG_DATAFLOW_COST_MODEL_H_
