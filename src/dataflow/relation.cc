#include "dataflow/relation.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace unilog::dataflow {

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_real()) return real_value();
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return 0.0;
}

bool Value::operator<(const Value& other) const {
  if (repr_.index() != other.repr_.index()) {
    return repr_.index() < other.repr_.index();
  }
  return repr_ < other.repr_;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(int_value());
  if (is_real()) {
    std::ostringstream os;
    os << real_value();
    return os.str();
  }
  if (is_bool()) return bool_value() ? "true" : "false";
  return str_value();
}

Status Relation::AddRow(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no such column: " + name);
}

Result<Value> Relation::Get(const Row& row, const std::string& column) const {
  UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  if (idx >= row.size()) return Status::OutOfRange("row too short");
  return row[idx];
}

Relation Relation::Filter(const Predicate& predicate) const {
  Relation out(columns_);
  for (const auto& row : rows_) {
    if (predicate(row)) out.rows_.push_back(row);
  }
  return out;
}

Result<Relation> Relation::Project(
    const std::vector<std::string>& cols) const {
  std::vector<size_t> indices;
  for (const auto& col : cols) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(col));
    indices.push_back(idx);
  }
  Relation out(cols);
  for (const auto& row : rows_) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.rows_.push_back(std::move(projected));
  }
  return out;
}

Result<Relation> Relation::WithColumn(
    const std::string& name, std::function<Value(const Row&)> fn) const {
  if (ColumnIndex(name).ok()) {
    return Status::AlreadyExists("column exists: " + name);
  }
  std::vector<std::string> cols = columns_;
  cols.push_back(name);
  Relation out(cols);
  for (const auto& row : rows_) {
    Row extended = row;
    extended.push_back(fn(row));
    out.rows_.push_back(std::move(extended));
  }
  return out;
}

Result<Relation> Relation::GroupBy(const std::vector<std::string>& keys,
                                   const std::vector<Aggregate>& aggs) const {
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    key_idx.push_back(idx);
  }
  struct AggState {
    uint64_t count = 0;
    double sum = 0;
    bool has_minmax = false;
    Value min, max;
    std::set<std::string> distinct;
  };
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].op != Aggregate::Op::kCount) {
      UNILOG_ASSIGN_OR_RETURN(agg_idx[i], ColumnIndex(aggs[i].column));
    }
  }

  std::map<Row, std::vector<AggState>> groups;  // ordered → sorted output
  for (const auto& row : rows_) {
    Row key;
    key.reserve(key_idx.size());
    for (size_t idx : key_idx) key.push_back(row[idx]);
    auto [it, inserted] = groups.try_emplace(std::move(key));
    if (inserted) it->second.resize(aggs.size());
    for (size_t i = 0; i < aggs.size(); ++i) {
      AggState& st = it->second[i];
      switch (aggs[i].op) {
        case Aggregate::Op::kCount:
          ++st.count;
          break;
        case Aggregate::Op::kSum:
          st.sum += row[agg_idx[i]].AsNumber();
          break;
        case Aggregate::Op::kMin:
        case Aggregate::Op::kMax: {
          const Value& v = row[agg_idx[i]];
          if (!st.has_minmax) {
            st.min = st.max = v;
            st.has_minmax = true;
          } else {
            if (v < st.min) st.min = v;
            if (st.max < v) st.max = v;
          }
          break;
        }
        case Aggregate::Op::kCountDistinct:
          st.distinct.insert(row[agg_idx[i]].ToString());
          break;
      }
    }
  }

  std::vector<std::string> out_cols = keys;
  for (const auto& agg : aggs) out_cols.push_back(agg.as);
  Relation out(out_cols);
  for (const auto& [key, states] : groups) {
    Row row = key;
    for (size_t i = 0; i < aggs.size(); ++i) {
      const AggState& st = states[i];
      switch (aggs[i].op) {
        case Aggregate::Op::kCount:
          row.push_back(Value::Int(static_cast<int64_t>(st.count)));
          break;
        case Aggregate::Op::kSum:
          row.push_back(Value::Real(st.sum));
          break;
        case Aggregate::Op::kMin:
          row.push_back(st.min);
          break;
        case Aggregate::Op::kMax:
          row.push_back(st.max);
          break;
        case Aggregate::Op::kCountDistinct:
          row.push_back(Value::Int(static_cast<int64_t>(st.distinct.size())));
          break;
      }
    }
    out.rows_.push_back(std::move(row));
  }
  return out;
}

Result<Relation> Relation::Join(const Relation& right,
                                const std::string& left_col,
                                const std::string& right_col) const {
  UNILOG_ASSIGN_OR_RETURN(size_t li, ColumnIndex(left_col));
  UNILOG_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(right_col));

  // Build hash table on the right side.
  std::unordered_map<std::string, std::vector<const Row*>> table;
  for (const auto& row : right.rows_) {
    table[row[ri].ToString() + "\x01" +
          std::to_string(row[ri].is_str())].push_back(&row);
  }

  std::vector<std::string> out_cols = columns_;
  for (size_t i = 0; i < right.columns_.size(); ++i) {
    if (i == ri) continue;
    out_cols.push_back(right.columns_[i]);
  }
  Relation out(out_cols);
  for (const auto& row : rows_) {
    auto it = table.find(row[li].ToString() + "\x01" +
                         std::to_string(row[li].is_str()));
    if (it == table.end()) continue;
    for (const Row* rrow : it->second) {
      Row joined = row;
      for (size_t i = 0; i < rrow->size(); ++i) {
        if (i == ri) continue;
        joined.push_back((*rrow)[i]);
      }
      out.rows_.push_back(std::move(joined));
    }
  }
  return out;
}

Relation Relation::Distinct() const {
  Relation out(columns_);
  std::set<Row> seen;
  for (const auto& row : rows_) {
    if (seen.insert(row).second) out.rows_.push_back(row);
  }
  return out;
}

Result<Relation> Relation::OrderBy(const std::string& column,
                                   bool descending) const {
  UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  Relation out = *this;
  std::stable_sort(out.rows_.begin(), out.rows_.end(),
                   [idx, descending](const Row& a, const Row& b) {
                     if (descending) return b[idx] < a[idx];
                     return a[idx] < b[idx];
                   });
  return out;
}

Relation Relation::Limit(size_t n) const {
  Relation out(columns_);
  for (size_t i = 0; i < rows_.size() && i < n; ++i) {
    out.rows_.push_back(rows_[i]);
  }
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << '\t';
    os << columns_[i];
  }
  os << '\n';
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << '\t';
      os << row[i].ToString();
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace unilog::dataflow
