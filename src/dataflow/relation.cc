#include "dataflow/relation.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>

namespace unilog::dataflow {

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_real()) return real_value();
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  return 0.0;
}

bool Value::operator<(const Value& other) const {
  if (repr_.index() != other.repr_.index()) {
    return repr_.index() < other.repr_.index();
  }
  return repr_ < other.repr_;
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(int_value());
  if (is_real()) {
    std::ostringstream os;
    os << real_value();
    return os.str();
  }
  if (is_bool()) return bool_value() ? "true" : "false";
  return str_value();
}

Result<Relation> Relation::FromRows(std::vector<std::string> columns,
                                    std::vector<Row> rows) {
  Relation out(std::move(columns));
  for (const Row& row : rows) {
    if (row.size() != out.columns_.size()) {
      return Status::InvalidArgument(
          "row arity " + std::to_string(row.size()) + " != schema arity " +
          std::to_string(out.columns_.size()));
    }
  }
  out.rows_ = std::move(rows);
  return out;
}

Status Relation::AddRow(Row row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<size_t> Relation::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return Status::NotFound("no such column: " + name);
}

Result<Value> Relation::Get(const Row& row, const std::string& column) const {
  UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  if (idx >= row.size()) return Status::OutOfRange("row too short");
  return row[idx];
}

Relation Relation::Filter(const Predicate& predicate,
                          exec::Executor* exec) const {
  Relation out(columns_);
  if (exec == nullptr || !exec->parallel()) {
    for (const auto& row : rows_) {
      if (predicate(row)) out.rows_.push_back(row);
    }
    return out;
  }
  // Chunked fan-out; concatenating per-chunk survivors in chunk order
  // reproduces the serial row order exactly.
  std::vector<std::vector<Row>> kept(exec->ChunksFor(rows_.size()));
  exec->ParallelForChunked(
      "filter", rows_.size(), [&](size_t chunk, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (predicate(rows_[i])) kept[chunk].push_back(rows_[i]);
        }
      });
  for (auto& chunk : kept) {
    for (auto& row : chunk) out.rows_.push_back(std::move(row));
  }
  return out;
}

Result<Relation> Relation::Project(const std::vector<std::string>& cols,
                                   exec::Executor* exec) const {
  std::vector<size_t> indices;
  for (const auto& col : cols) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(col));
    indices.push_back(idx);
  }
  Relation out(cols);
  out.rows_.resize(rows_.size());
  auto project_one = [&](size_t i) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(rows_[i][idx]);
    out.rows_[i] = std::move(projected);
  };
  if (exec == nullptr || !exec->parallel()) {
    for (size_t i = 0; i < rows_.size(); ++i) project_one(i);
  } else {
    exec->ParallelForChunked("project", rows_.size(),
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t i = begin; i < end; ++i) {
                                 project_one(i);
                               }
                             });
  }
  return out;
}

Result<Relation> Relation::WithColumn(const std::string& name,
                                      std::function<Value(const Row&)> fn,
                                      exec::Executor* exec) const {
  if (ColumnIndex(name).ok()) {
    return Status::AlreadyExists("column exists: " + name);
  }
  std::vector<std::string> cols = columns_;
  cols.push_back(name);
  Relation out(cols);
  out.rows_.resize(rows_.size());
  auto extend_one = [&](size_t i) {
    Row extended = rows_[i];
    extended.push_back(fn(rows_[i]));
    out.rows_[i] = std::move(extended);
  };
  if (exec == nullptr || !exec->parallel()) {
    for (size_t i = 0; i < rows_.size(); ++i) extend_one(i);
  } else {
    exec->ParallelForChunked("with_column", rows_.size(),
                             [&](size_t, size_t begin, size_t end) {
                               for (size_t i = begin; i < end; ++i) {
                                 extend_one(i);
                               }
                             });
  }
  return out;
}

namespace {

struct AggState {
  uint64_t count = 0;
  double sum = 0;
  bool has_minmax = false;
  Value min, max;
  std::set<std::string> distinct;
};

Status Accumulate(const std::vector<Aggregate>& aggs,
                  const std::vector<size_t>& agg_idx, const Row& row,
                  std::vector<AggState>* states) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    AggState& st = (*states)[i];
    switch (aggs[i].op) {
      case Aggregate::Op::kCount:
        ++st.count;
        break;
      case Aggregate::Op::kSum: {
        // §3.1 "error, not garbage": AsNumber() would quietly turn a
        // string or bool into 0 and corrupt the sum.
        const Value& v = row[agg_idx[i]];
        if (v.is_int()) {
          st.sum += static_cast<double>(v.int_value());
        } else if (v.is_real()) {
          st.sum += v.real_value();
        } else {
          return Status::InvalidArgument(
              "SUM over non-numeric value in column '" + aggs[i].column +
              "'");
        }
        break;
      }
      case Aggregate::Op::kMin:
      case Aggregate::Op::kMax: {
        const Value& v = row[agg_idx[i]];
        if (!st.has_minmax) {
          st.min = st.max = v;
          st.has_minmax = true;
        } else {
          if (v < st.min) st.min = v;
          if (st.max < v) st.max = v;
        }
        break;
      }
      case Aggregate::Op::kCountDistinct:
        st.distinct.insert(row[agg_idx[i]].ToString());
        break;
    }
  }
  return Status::OK();
}

Row FinalizeGroup(const std::vector<Aggregate>& aggs, const Row& key,
                  const std::vector<AggState>& states) {
  Row row = key;
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs[i].op) {
      case Aggregate::Op::kCount:
        row.push_back(Value::Int(static_cast<int64_t>(st.count)));
        break;
      case Aggregate::Op::kSum:
        row.push_back(Value::Real(st.sum));
        break;
      case Aggregate::Op::kMin:
        row.push_back(st.min);
        break;
      case Aggregate::Op::kMax:
        row.push_back(st.max);
        break;
      case Aggregate::Op::kCountDistinct:
        row.push_back(Value::Int(static_cast<int64_t>(st.distinct.size())));
        break;
    }
  }
  return row;
}

/// Position-independent hash of a group key, used only to assign groups to
/// shards — the merge is by key order, so the shard assignment never shows
/// up in the output.
size_t HashKey(const Row& key) {
  std::hash<std::string> hasher;
  size_t h = 0;
  for (const Value& v : key) {
    h = h * 1099511628211ull + hasher(v.ToString()) + v.is_str();
  }
  return h;
}

}  // namespace

Result<Relation> Relation::GroupBy(const std::vector<std::string>& keys,
                                   const std::vector<Aggregate>& aggs,
                                   exec::Executor* exec) const {
  std::vector<size_t> key_idx;
  for (const auto& k : keys) {
    UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(k));
    key_idx.push_back(idx);
  }
  std::vector<size_t> agg_idx(aggs.size(), 0);
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].op != Aggregate::Op::kCount) {
      UNILOG_ASSIGN_OR_RETURN(agg_idx[i], ColumnIndex(aggs[i].column));
    }
  }

  std::vector<std::string> out_cols = keys;
  for (const auto& agg : aggs) out_cols.push_back(agg.as);
  Relation out(out_cols);

  if (exec == nullptr || !exec->parallel()) {
    // Serial engine: one ordered map, rows accumulated in row order.
    std::map<Row, std::vector<AggState>> groups;
    for (const auto& row : rows_) {
      Row key;
      key.reserve(key_idx.size());
      for (size_t idx : key_idx) key.push_back(row[idx]);
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) it->second.resize(aggs.size());
      UNILOG_RETURN_NOT_OK(Accumulate(aggs, agg_idx, row, &it->second));
    }
    for (const auto& [key, states] : groups) {
      out.rows_.push_back(FinalizeGroup(aggs, key, states));
    }
    return out;
  }

  // Parallel engine: hash-partition rows by group key so every group is
  // owned by exactly one shard. Each shard scans the rows in original
  // order, so per-group accumulation order — and therefore even
  // floating-point SUM — is bit-identical to the serial engine. The shard
  // count only affects scheduling: the merge walks groups in key order.
  size_t num_shards = static_cast<size_t>(exec->threads()) * 2;
  std::vector<uint32_t> shard_of(rows_.size());
  exec->ParallelForChunked(
      "groupby-hash", rows_.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          Row key;
          key.reserve(key_idx.size());
          for (size_t idx : key_idx) key.push_back(rows_[i][idx]);
          shard_of[i] = static_cast<uint32_t>(HashKey(key) % num_shards);
        }
      });
  std::vector<std::map<Row, std::vector<AggState>>> shards(num_shards);
  UNILOG_RETURN_NOT_OK(
      exec->ParallelForStatus("groupby-agg", num_shards, [&](size_t s) {
        auto& groups = shards[s];
        for (size_t i = 0; i < rows_.size(); ++i) {
          if (shard_of[i] != s) continue;
          const Row& row = rows_[i];
          Row key;
          key.reserve(key_idx.size());
          for (size_t idx : key_idx) key.push_back(row[idx]);
          auto [it, inserted] = groups.try_emplace(std::move(key));
          if (inserted) it->second.resize(aggs.size());
          UNILOG_RETURN_NOT_OK(Accumulate(aggs, agg_idx, row, &it->second));
        }
        return Status::OK();
      }));

  // Merge: every group lives in one shard; emit in global key order.
  using GroupRef = std::pair<const Row*, const std::vector<AggState>*>;
  std::vector<GroupRef> refs;
  for (const auto& shard : shards) {
    for (const auto& [key, states] : shard) refs.emplace_back(&key, &states);
  }
  std::sort(refs.begin(), refs.end(), [](const GroupRef& a, const GroupRef& b) {
    return *a.first < *b.first;
  });
  out.rows_.resize(refs.size());
  exec->ParallelForChunked(
      "groupby-finalize", refs.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          out.rows_[i] = FinalizeGroup(aggs, *refs[i].first, *refs[i].second);
        }
      });
  return out;
}

Result<Relation> Relation::Join(const Relation& right,
                                const std::string& left_col,
                                const std::string& right_col,
                                exec::Executor* exec) const {
  UNILOG_ASSIGN_OR_RETURN(size_t li, ColumnIndex(left_col));
  UNILOG_ASSIGN_OR_RETURN(size_t ri, right.ColumnIndex(right_col));

  // Build hash table on the right side.
  std::unordered_map<std::string, std::vector<const Row*>> table;
  for (const auto& row : right.rows_) {
    table[row[ri].ToString() + "\x01" +
          std::to_string(row[ri].is_str())].push_back(&row);
  }

  std::vector<std::string> out_cols = columns_;
  for (size_t i = 0; i < right.columns_.size(); ++i) {
    if (i == ri) continue;
    out_cols.push_back(right.columns_[i]);
  }
  Relation out(out_cols);
  auto probe_one = [&](const Row& row, std::vector<Row>* sink) {
    auto it = table.find(row[li].ToString() + "\x01" +
                         std::to_string(row[li].is_str()));
    if (it == table.end()) return;
    for (const Row* rrow : it->second) {
      Row joined = row;
      for (size_t i = 0; i < rrow->size(); ++i) {
        if (i == ri) continue;
        joined.push_back((*rrow)[i]);
      }
      sink->push_back(std::move(joined));
    }
  };
  if (exec == nullptr || !exec->parallel()) {
    for (const auto& row : rows_) probe_one(row, &out.rows_);
    return out;
  }
  // Parallel probe: per-chunk outputs concatenated in probe-row order.
  std::vector<std::vector<Row>> chunks(exec->ChunksFor(rows_.size()));
  exec->ParallelForChunked(
      "join-probe", rows_.size(), [&](size_t chunk, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) probe_one(rows_[i], &chunks[chunk]);
      });
  for (auto& chunk : chunks) {
    for (auto& row : chunk) out.rows_.push_back(std::move(row));
  }
  return out;
}

Relation Relation::Distinct(exec::Executor* exec) const {
  Relation out(columns_);
  if (exec == nullptr || !exec->parallel()) {
    std::set<Row> seen;
    for (const auto& row : rows_) {
      if (seen.insert(row).second) out.rows_.push_back(row);
    }
    return out;
  }
  // Parallel engine: hash-partition rows so every distinct row is owned
  // by exactly one shard; each shard records the index of the row's first
  // occurrence. Emitting survivors by ascending first index reproduces
  // the serial first-occurrence order, whatever the shard count.
  const size_t num_shards = static_cast<size_t>(exec->threads()) * 2;
  std::vector<uint32_t> shard_of(rows_.size());
  exec->ParallelForChunked(
      "distinct-hash", rows_.size(), [&](size_t, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          shard_of[i] = static_cast<uint32_t>(HashKey(rows_[i]) % num_shards);
        }
      });
  std::vector<std::vector<size_t>> firsts(num_shards);
  exec->ParallelFor("distinct-dedup", num_shards, [&](size_t s) {
    std::set<Row> seen;
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (shard_of[i] != s) continue;
      if (seen.insert(rows_[i]).second) firsts[s].push_back(i);
    }
  });
  std::vector<size_t> order;
  for (const auto& f : firsts) order.insert(order.end(), f.begin(), f.end());
  std::sort(order.begin(), order.end());
  out.rows_.reserve(order.size());
  for (size_t i : order) out.rows_.push_back(rows_[i]);
  return out;
}

Result<Relation> Relation::OrderBy(const std::string& column, bool descending,
                                   exec::Executor* exec) const {
  UNILOG_ASSIGN_OR_RETURN(size_t idx, ColumnIndex(column));
  if (exec == nullptr || !exec->parallel()) {
    Relation out = *this;
    std::stable_sort(out.rows_.begin(), out.rows_.end(),
                     [idx, descending](const Row& a, const Row& b) {
                       if (descending) return b[idx] < a[idx];
                       return a[idx] < b[idx];
                     });
    return out;
  }
  // Parallel engine: sort per-chunk index ranges under the (sort key,
  // original index) total order — the exact order stable_sort produces —
  // then k-way merge the chunks. Identical output at any thread count.
  auto less = [this, idx, descending](size_t a, size_t b) {
    const Value& va = rows_[a][idx];
    const Value& vb = rows_[b][idx];
    if (descending) {
      if (vb < va) return true;
      if (va < vb) return false;
    } else {
      if (va < vb) return true;
      if (vb < va) return false;
    }
    return a < b;
  };
  const size_t n = rows_.size();
  std::vector<std::vector<size_t>> chunks(exec->ChunksFor(n));
  exec->ParallelForChunked(
      "orderby-sort", n, [&](size_t c, size_t begin, size_t end) {
        std::vector<size_t>& v = chunks[c];
        v.resize(end - begin);
        for (size_t i = begin; i < end; ++i) v[i - begin] = i;
        std::sort(v.begin(), v.end(), less);
      });
  Relation out(columns_);
  out.rows_.reserve(n);
  std::vector<size_t> heads(chunks.size(), 0);
  for (size_t emitted = 0; emitted < n; ++emitted) {
    size_t best = chunks.size();
    for (size_t c = 0; c < chunks.size(); ++c) {
      if (heads[c] >= chunks[c].size()) continue;
      if (best == chunks.size() ||
          less(chunks[c][heads[c]], chunks[best][heads[best]])) {
        best = c;
      }
    }
    out.rows_.push_back(rows_[chunks[best][heads[best]]]);
    ++heads[best];
  }
  return out;
}

Relation Relation::Limit(size_t n) const {
  Relation out(columns_);
  for (size_t i = 0; i < rows_.size() && i < n; ++i) {
    out.rows_.push_back(rows_[i]);
  }
  return out;
}

std::string Relation::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << '\t';
    os << columns_[i];
  }
  os << '\n';
  size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ >= max_rows) {
      os << "... (" << rows_.size() - max_rows << " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << '\t';
      os << row[i].ToString();
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace unilog::dataflow
