#ifndef UNILOG_ANALYTICS_SUMMARY_H_
#define UNILOG_ANALYTICS_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/executor.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::analytics {

/// Session-duration buckets for the BirdBrain drill-down ("by (bucketed)
/// session duration", §5.1).
enum class DurationBucket : int {
  kZero = 0,       // single-event sessions
  kUnder10s = 1,
  kUnder1m = 2,
  kUnder5m = 3,
  kUnder30m = 4,
  kOver30m = 5,
};

const char* DurationBucketLabel(DurationBucket b);
DurationBucket BucketFor(int32_t duration_seconds);

/// The §5.1 daily summary that feeds the BirdBrain dashboard: "the number
/// of user sessions daily... with the ability to drill down by client type
/// and by (bucketed) session duration".
struct DailySummary {
  uint64_t sessions = 0;
  uint64_t events = 0;
  uint64_t distinct_users = 0;
  double avg_events_per_session = 0;
  double avg_duration_seconds = 0;
  std::map<std::string, uint64_t> sessions_by_client;
  std::map<std::string, uint64_t> sessions_by_duration_bucket;

  /// Dashboard-style rendering.
  std::string ToString() const;
};

/// Computes the daily summary from session sequences. The client type is
/// recovered from the first event's name (its client component) via the
/// dictionary — names alone suffice, which is the point of §4.
///
/// With a parallel executor, sequences are scanned in chunks whose partial
/// summaries merge in chunk order. Every accumulator is either a counter
/// or an integer-valued duration sum (exact in double), so the result is
/// identical to the serial scan at any thread count.
Result<DailySummary> Summarize(
    const std::vector<sessions::SessionSequence>& seqs,
    const sessions::EventDictionary& dict, exec::Executor* exec = nullptr);

}  // namespace unilog::analytics

#endif  // UNILOG_ANALYTICS_SUMMARY_H_
