#ifndef UNILOG_ANALYTICS_PIG_STDLIB_H_
#define UNILOG_ANALYTICS_PIG_STDLIB_H_

#include "dataflow/pig.h"
#include "hdfs/mini_hdfs.h"

namespace unilog::obs {
class MetricsRegistry;
}  // namespace unilog::obs

namespace unilog::analytics {

/// Installs the unilog standard library into a Pig interpreter, wired to a
/// warehouse — everything the §5.2/§5.3 scripts reference:
///
/// Loaders:
///   SessionSequencesLoader()  — LOAD '/session_sequences/YYYY-MM-DD';
///       columns {user_id, session_id, ip, sequence, duration}; also binds
///       the partition's dictionary for the UDFs below.
///   ClientEventsLoader()      — LOAD any /logs/<category>/... directory;
///       columns {initiator, event_name, user_id, session_id, ip,
///       timestamp}; reads legacy framed-compressed and columnar (RCFile
///       v2) part files alike, sniffing the format per file.
///   ColumnarEventsLoader()    — same directories and columns, but binds a
///       deferred pushdown scan: an immediately-following FILTER/FOREACH
///       is fused into the scan (zone-map group skipping, dictionary
///       pruning, column projection) and rows materialize only at the
///       first non-fusible consumer.
///
/// UDF factories (usable via DEFINE or directly):
///   CountClientEvents('pattern')        — matching events in a sequence.
///   ContainsClientEvents('pattern')     — 1 if any match else 0.
///   ClientEventsFunnel('e1','e2',...)   — stages completed, in order.
///   EventCount()                        — events in a sequence.
///
/// The dictionary binding follows script order: UDFs constructed by DEFINE
/// resolve their patterns against the dictionary of the most recently
/// loaded sequence partition at first use (lazily), matching how the
/// paper's loader "abstracts over details of the physical layout".
///
/// Columnar scan accounting (groups skipped, bytes decompressed, rows
/// pruned) is reported into `metrics` when non-null.
void InstallPigStdlib(dataflow::PigInterpreter* pig,
                      const hdfs::MiniHdfs* warehouse,
                      obs::MetricsRegistry* metrics = nullptr);

}  // namespace unilog::analytics

#endif  // UNILOG_ANALYTICS_PIG_STDLIB_H_
