#ifndef UNILOG_ANALYTICS_BIRDBRAIN_H_
#define UNILOG_ANALYTICS_BIRDBRAIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analytics/summary.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"

namespace unilog::analytics {

/// The BirdBrain dashboard (§5.1): collects the daily summaries produced
/// from session sequences and "displays the number of user sessions daily
/// and plotted as a function of time, which ... lets us monitor the
/// growth of the service over time and spot trends", with drill-down by
/// client type and bucketed session duration.
class BirdBrain {
 public:
  /// Records one day's summary. Re-recording a date overwrites it (daily
  /// jobs may be re-run).
  void Record(TimeMs date, DailySummary summary);

  size_t days() const { return days_.size(); }
  const DailySummary* Day(TimeMs date) const;

  /// (date, sessions) series in date order.
  std::vector<std::pair<TimeMs, uint64_t>> SessionsSeries() const;

  /// Day-over-day growth of sessions between the first and last recorded
  /// day, as a ratio (1.0 = flat). Requires >= 2 days.
  Result<double> GrowthRatio() const;

  /// Renders the dashboard: a text time-series plot of daily sessions
  /// (one bar row per day) followed by the latest day's drill-downs.
  std::string Render() const;

  /// Renders one metric's drill-down as of the latest day: "client" or
  /// "duration".
  Result<std::string> RenderDrillDown(const std::string& dimension) const;

 private:
  std::map<TimeMs, DailySummary> days_;
};

}  // namespace unilog::analytics

#endif  // UNILOG_ANALYTICS_BIRDBRAIN_H_
