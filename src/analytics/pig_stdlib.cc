#include "analytics/pig_stdlib.h"

#include <memory>

#include "analytics/udfs.h"
#include "columnar/rcfile.h"
#include "common/compress.h"
#include "common/utf8.h"
#include "dataflow/columnar_scan.h"
#include "events/client_event.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::analytics {

using dataflow::PigInterpreter;
using dataflow::Relation;
using dataflow::Value;

namespace {

/// Shared state between the loaders and the dictionary-dependent UDFs.
struct Stdlib {
  const hdfs::MiniHdfs* warehouse = nullptr;
  std::shared_ptr<sessions::EventDictionary> dict;

  Result<std::shared_ptr<sessions::EventDictionary>> Dictionary() const {
    if (dict == nullptr) {
      return Status::FailedPrecondition(
          "no sequence partition loaded yet (LOAD ... USING "
          "SessionSequencesLoader() first)");
    }
    return dict;
  }
};

Result<Relation> LoadSequences(std::shared_ptr<Stdlib> lib,
                               const std::string& path) {
  // path is a partition dir like /session_sequences/2012-08-21.
  UNILOG_ASSIGN_OR_RETURN(std::string dict_blob,
                          lib->warehouse->ReadFile(path + "/_dictionary"));
  UNILOG_ASSIGN_OR_RETURN(sessions::EventDictionary dict,
                          sessions::EventDictionary::Deserialize(dict_blob));
  lib->dict = std::make_shared<sessions::EventDictionary>(std::move(dict));

  Relation rel({"user_id", "session_id", "ip", "sequence", "duration"});
  UNILOG_ASSIGN_OR_RETURN(auto files, lib->warehouse->ListRecursive(path));
  for (const auto& file : files) {
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;
    UNILOG_ASSIGN_OR_RETURN(std::string blob,
                            lib->warehouse->ReadFile(file.path));
    UNILOG_ASSIGN_OR_RETURN(std::string body, Lz::Decompress(blob));
    sessions::SequenceRecordReader reader(body);
    sessions::SessionSequence seq;
    while (true) {
      Status st = reader.Next(&seq);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      UNILOG_RETURN_NOT_OK(rel.AddRow(
          {Value::Int(seq.user_id), Value::Str(seq.session_id),
           Value::Str(seq.ip), Value::Str(seq.sequence),
           Value::Int(seq.duration_seconds)}));
    }
  }
  return rel;
}

Status AppendEventRow(const events::ClientEvent& ev, Relation* rel) {
  return rel->AddRow({Value::Str(events::EventInitiatorName(ev.initiator)),
                      Value::Str(ev.event_name), Value::Int(ev.user_id),
                      Value::Str(ev.session_id), Value::Str(ev.ip),
                      Value::Int(ev.timestamp)});
}

Result<Relation> LoadClientEvents(std::shared_ptr<Stdlib> lib,
                                  const std::string& path) {
  Relation rel({"initiator", "event_name", "user_id", "session_id", "ip",
                "timestamp"});
  UNILOG_ASSIGN_OR_RETURN(auto files, lib->warehouse->ListRecursive(path));
  for (const auto& file : files) {
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;
    UNILOG_ASSIGN_OR_RETURN(std::string blob,
                            lib->warehouse->ReadFile(file.path));
    // A warehoused hour may hold columnar (RCFile) or legacy
    // framed-compressed parts; sniff per file so mixed directories work.
    if (columnar::IsRcFile(blob)) {
      columnar::RcFileReader reader(blob);
      std::vector<events::ClientEvent> events;
      UNILOG_RETURN_NOT_OK(reader.ReadAll(columnar::kAllColumns, &events));
      for (const auto& ev : events) {
        UNILOG_RETURN_NOT_OK(AppendEventRow(ev, &rel));
      }
      continue;
    }
    UNILOG_ASSIGN_OR_RETURN(std::string body, Lz::Decompress(blob));
    events::ClientEventReader reader(body);
    events::ClientEvent ev;
    while (true) {
      Status st = reader.Next(&ev);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      UNILOG_RETURN_NOT_OK(AppendEventRow(ev, &rel));
    }
  }
  return rel;
}

}  // namespace

void InstallPigStdlib(PigInterpreter* pig, const hdfs::MiniHdfs* warehouse,
                      obs::MetricsRegistry* metrics) {
  auto lib = std::make_shared<Stdlib>();
  lib->warehouse = warehouse;

  pig->RegisterLoader(
      "SessionSequencesLoader",
      [lib](const std::string& path, const std::vector<std::string>&) {
        return LoadSequences(lib, path);
      });
  pig->RegisterLoader(
      "ClientEventsLoader",
      [lib](const std::string& path, const std::vector<std::string>&) {
        return LoadClientEvents(lib, path);
      });
  pig->RegisterScanLoader(
      "ColumnarEventsLoader",
      [lib, metrics](const std::string& path, const std::vector<std::string>&)
          -> Result<std::shared_ptr<dataflow::PushdownScan>> {
        UNILOG_ASSIGN_OR_RETURN(
            auto scan,
            dataflow::ColumnarEventScan::Open(lib->warehouse, path, metrics));
        return std::shared_ptr<dataflow::PushdownScan>(std::move(scan));
      });

  pig->RegisterUdfFactory(
      "CountClientEvents",
      [lib](const std::vector<std::string>& args)
          -> Result<PigInterpreter::ScalarUdf> {
        if (args.size() != 1) {
          return Status::InvalidArgument(
              "CountClientEvents takes one pattern argument");
        }
        std::string pattern = args[0];
        // Lazily bind the dictionary at first evaluation (DEFINE may run
        // before LOAD in a script).
        auto counter = std::make_shared<std::unique_ptr<CountClientEvents>>();
        return PigInterpreter::ScalarUdf(
            [lib, pattern, counter](const std::vector<Value>& call_args)
                -> Result<Value> {
              if (call_args.size() != 1 || !call_args[0].is_str()) {
                return Status::InvalidArgument(
                    "CountClientEvents(sequence) expects one string column");
              }
              if (*counter == nullptr) {
                UNILOG_ASSIGN_OR_RETURN(auto dict, lib->Dictionary());
                *counter = std::make_unique<CountClientEvents>(
                    *dict, events::EventPattern(pattern));
              }
              return Value::Int(static_cast<int64_t>(
                  (*counter)->Count(call_args[0].str_value())));
            });
      });

  pig->RegisterUdfFactory(
      "ContainsClientEvents",
      [lib](const std::vector<std::string>& args)
          -> Result<PigInterpreter::ScalarUdf> {
        if (args.size() != 1) {
          return Status::InvalidArgument(
              "ContainsClientEvents takes one pattern argument");
        }
        std::string pattern = args[0];
        auto counter = std::make_shared<std::unique_ptr<CountClientEvents>>();
        return PigInterpreter::ScalarUdf(
            [lib, pattern, counter](const std::vector<Value>& call_args)
                -> Result<Value> {
              if (call_args.size() != 1 || !call_args[0].is_str()) {
                return Status::InvalidArgument(
                    "ContainsClientEvents(sequence) expects one string "
                    "column");
              }
              if (*counter == nullptr) {
                UNILOG_ASSIGN_OR_RETURN(auto dict, lib->Dictionary());
                *counter = std::make_unique<CountClientEvents>(
                    *dict, events::EventPattern(pattern));
              }
              return Value::Int(
                  (*counter)->Count(call_args[0].str_value()) > 0 ? 1 : 0);
            });
      });

  pig->RegisterUdfFactory(
      "ClientEventsFunnel",
      [lib](const std::vector<std::string>& args)
          -> Result<PigInterpreter::ScalarUdf> {
        if (args.empty()) {
          return Status::InvalidArgument(
              "ClientEventsFunnel needs at least one stage event");
        }
        std::vector<std::string> stages = args;
        auto funnel = std::make_shared<std::unique_ptr<Funnel>>();
        return PigInterpreter::ScalarUdf(
            [lib, stages, funnel](const std::vector<Value>& call_args)
                -> Result<Value> {
              if (call_args.size() != 1 || !call_args[0].is_str()) {
                return Status::InvalidArgument(
                    "ClientEventsFunnel(sequence) expects one string column");
              }
              if (*funnel == nullptr) {
                UNILOG_ASSIGN_OR_RETURN(auto dict, lib->Dictionary());
                UNILOG_ASSIGN_OR_RETURN(Funnel f, Funnel::Make(*dict, stages));
                *funnel = std::make_unique<Funnel>(std::move(f));
              }
              return Value::Int(static_cast<int64_t>(
                  (*funnel)->StagesCompleted(call_args[0].str_value())));
            });
      });

  pig->RegisterUdfFactory(
      "EventCount",
      [](const std::vector<std::string>&)
          -> Result<PigInterpreter::ScalarUdf> {
        return PigInterpreter::ScalarUdf(
            [](const std::vector<Value>& call_args) -> Result<Value> {
              if (call_args.size() != 1 || !call_args[0].is_str()) {
                return Status::InvalidArgument(
                    "EventCount(sequence) expects one string column");
              }
              return Value::Int(static_cast<int64_t>(
                  Utf8Length(call_args[0].str_value())));
            });
      });
}

}  // namespace unilog::analytics
