#ifndef UNILOG_ANALYTICS_UDFS_H_
#define UNILOG_ANALYTICS_UDFS_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/event_name.h"
#include "exec/executor.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::analytics {

/// The CountClientEvents UDF of §5.2: initialized with an '$EVENTS'
/// pattern which is "automatically expanded to include all matching events
/// (via the dictionary that provides the event name to unicode code point
/// mapping)"; evaluation is then pure string manipulation over the
/// session-sequence unicode string.
class CountClientEvents {
 public:
  CountClientEvents(const sessions::EventDictionary& dict,
                    const events::EventPattern& pattern);

  /// Number of matching events in the session (the SUM variant).
  uint64_t Count(const sessions::SessionSequence& seq) const;
  uint64_t Count(std::string_view sequence_utf8) const;

  /// Whether the session contains at least one matching event (the COUNT
  /// variant: "number of user sessions that contain at least one
  /// instance").
  bool ContainsAny(const sessions::SessionSequence& seq) const;

  /// Day-level SUM over all sessions. With a parallel executor, chunk
  /// partial sums merge in chunk order — integer counters, so the total is
  /// identical to the serial scan at any thread count. Count() is const
  /// and reentrant, as UDFs must be under the exec engine.
  uint64_t TotalCount(const std::vector<sessions::SessionSequence>& seqs,
                      exec::Executor* exec = nullptr) const;

  /// How many code points the pattern expanded to.
  size_t target_count() const { return targets_.size(); }

 private:
  std::unordered_set<uint32_t> targets_;
};

/// The ClientEventsFunnel UDF of §5.3: an ordered list of stage events;
/// evaluating a session yields how many stages it completed *in order*
/// (intervening events are permitted, as with the regular-expression match
/// the paper describes).
class Funnel {
 public:
  /// Fails if any stage event is not in the dictionary.
  static Result<Funnel> Make(const sessions::EventDictionary& dict,
                             const std::vector<std::string>& stage_events);

  size_t num_stages() const { return stages_.size(); }

  /// Number of consecutive stages completed from the start (0 = never
  /// entered the funnel).
  size_t StagesCompleted(const sessions::SessionSequence& seq) const;
  size_t StagesCompleted(std::string_view sequence_utf8) const;

  /// Aggregates over a day: result[i] = sessions that completed stage i
  /// (the "(0, 490123) (1, 297071) ..." output of §5.3). With a parallel
  /// executor, per-chunk stage vectors sum element-wise — exact.
  std::vector<uint64_t> StageCounts(
      const std::vector<sessions::SessionSequence>& seqs,
      exec::Executor* exec = nullptr) const;

  /// Per-stage abandonment rate: fraction of sessions that reached stage i
  /// but not stage i+1. Size = num_stages-1. Stages with zero reach give 0.
  std::vector<double> AbandonmentRates(
      const std::vector<sessions::SessionSequence>& seqs) const;

 private:
  std::vector<uint32_t> stages_;
};

/// A click-through/follow-through rate report (§4.1's canonical
/// common-case query).
struct RateReport {
  uint64_t impressions = 0;
  uint64_t actions = 0;  // clicks or follows
  double rate = 0.0;     // actions / impressions (0 when no impressions)
  uint64_t sessions_with_impression = 0;
  uint64_t sessions_with_action = 0;
};

/// Computes CTR/FTR-style rates over session sequences: total matching
/// impressions, total matching actions, and the ratio. Integer counters,
/// so the parallel scan is exact at any thread count.
RateReport ComputeRate(const std::vector<sessions::SessionSequence>& seqs,
                       const sessions::EventDictionary& dict,
                       const events::EventPattern& impression_pattern,
                       const events::EventPattern& action_pattern,
                       exec::Executor* exec = nullptr);

}  // namespace unilog::analytics

#endif  // UNILOG_ANALYTICS_UDFS_H_
