#include "analytics/lifeflow.h"

#include <algorithm>
#include <sstream>

namespace unilog::analytics {

LifeFlowTree LifeFlowTree::Build(
    const std::vector<std::vector<std::string>>& paths, size_t max_depth) {
  LifeFlowTree tree;
  tree.root_.event = "<start>";
  for (const auto& path : paths) {
    ++tree.root_.count;
    Node* node = &tree.root_;
    size_t depth = 0;
    for (const auto& event : path) {
      if (max_depth != 0 && depth >= max_depth) break;
      Node* child = nullptr;
      for (auto& c : node->children) {
        if (c->event == event) {
          child = c.get();
          break;
        }
      }
      if (child == nullptr) {
        node->children.push_back(std::make_unique<Node>());
        child = node->children.back().get();
        child->event = event;
      }
      ++child->count;
      node = child;
      ++depth;
    }
    ++node->terminals;
  }
  return tree;
}

Result<LifeFlowTree> LifeFlowTree::FromSequences(
    const std::vector<sessions::SessionSequence>& seqs,
    const sessions::EventDictionary& dict, size_t max_depth) {
  std::vector<std::vector<std::string>> paths;
  paths.reserve(seqs.size());
  for (const auto& seq : seqs) {
    UNILOG_ASSIGN_OR_RETURN(std::vector<std::string> names,
                            dict.DecodeToNames(seq.sequence));
    paths.push_back(std::move(names));
  }
  return Build(paths, max_depth);
}

namespace {

void RenderNode(const LifeFlowTree::Node& node, uint64_t total, int depth,
                size_t max_children, std::ostringstream* os) {
  // Weight bar proportional to the share of all sessions.
  int bar = total == 0 ? 0
                       : static_cast<int>(10.0 * static_cast<double>(node.count) /
                                          static_cast<double>(total) + 0.5);
  for (int i = 0; i < depth; ++i) *os << "  ";
  for (int i = 0; i < bar; ++i) *os << '#';
  if (bar > 0) *os << ' ';
  *os << node.count << " " << node.event;
  if (node.terminals > 0 && !node.children.empty()) {
    *os << " (" << node.terminals << " end here)";
  }
  *os << "\n";

  std::vector<const LifeFlowTree::Node*> sorted;
  for (const auto& c : node.children) sorted.push_back(c.get());
  std::sort(sorted.begin(), sorted.end(),
            [](const LifeFlowTree::Node* a, const LifeFlowTree::Node* b) {
              if (a->count != b->count) return a->count > b->count;
              return a->event < b->event;
            });
  uint64_t elided_sessions = 0;
  size_t elided_nodes = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i < max_children) {
      RenderNode(*sorted[i], total, depth + 1, max_children, os);
    } else {
      elided_sessions += sorted[i]->count;
      ++elided_nodes;
    }
  }
  if (elided_nodes > 0) {
    for (int i = 0; i < depth + 1; ++i) *os << "  ";
    *os << "... " << elided_nodes << " more branches (" << elided_sessions
        << " sessions)\n";
  }
}

size_t CountNodes(const LifeFlowTree::Node& node) {
  size_t n = 1;
  for (const auto& c : node.children) n += CountNodes(*c);
  return n;
}

}  // namespace

std::string LifeFlowTree::Render(size_t max_children) const {
  std::ostringstream os;
  RenderNode(root_, root_.count, 0, max_children, &os);
  return os.str();
}

size_t LifeFlowTree::NodeCount() const { return CountNodes(root_); }

}  // namespace unilog::analytics
