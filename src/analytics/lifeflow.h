#ifndef UNILOG_ANALYTICS_LIFEFLOW_H_
#define UNILOG_ANALYTICS_LIFEFLOW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sessions/dictionary.h"
#include "sessions/session_sequence.h"

namespace unilog::analytics {

/// A LifeFlow-style aggregation of event sequences (§6 cites
/// Wongsuphasawat et al.'s LifeFlow): all sessions are overlaid on a
/// prefix tree whose nodes are events, so common navigation paths become
/// heavy branches. The paper uses this "to provide data scientists a
/// visual interface for exploring sessions"; here the tree renders as
/// text, with node weight bars.
class LifeFlowTree {
 public:
  struct Node {
    std::string event;
    uint64_t count = 0;       // sessions passing through this node
    uint64_t terminals = 0;   // sessions ending exactly here
    std::vector<std::unique_ptr<Node>> children;
  };

  /// Builds from decoded event-name sequences, keeping at most
  /// `max_depth` levels (0 = unlimited).
  static LifeFlowTree Build(const std::vector<std::vector<std::string>>& paths,
                            size_t max_depth = 6);

  /// Convenience: decodes sequences through a dictionary first.
  static Result<LifeFlowTree> FromSequences(
      const std::vector<sessions::SessionSequence>& seqs,
      const sessions::EventDictionary& dict, size_t max_depth = 6);

  /// Renders the tree: each line is `<indent><bar> <count> <event>`, with
  /// children sorted by descending count and fan-out capped at
  /// `max_children` per node (the long tail is summarized).
  std::string Render(size_t max_children = 3) const;

  uint64_t total_sessions() const { return root_.count; }
  size_t NodeCount() const;

  const Node& root() const { return root_; }

 private:
  Node root_;
};

}  // namespace unilog::analytics

#endif  // UNILOG_ANALYTICS_LIFEFLOW_H_
