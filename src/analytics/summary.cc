#include "analytics/summary.h"

#include <set>
#include <sstream>

#include "common/utf8.h"

namespace unilog::analytics {

const char* DurationBucketLabel(DurationBucket b) {
  switch (b) {
    case DurationBucket::kZero:
      return "0s";
    case DurationBucket::kUnder10s:
      return "1-10s";
    case DurationBucket::kUnder1m:
      return "11-60s";
    case DurationBucket::kUnder5m:
      return "1-5m";
    case DurationBucket::kUnder30m:
      return "5-30m";
    case DurationBucket::kOver30m:
      return ">30m";
  }
  return "?";
}

DurationBucket BucketFor(int32_t duration_seconds) {
  if (duration_seconds <= 0) return DurationBucket::kZero;
  if (duration_seconds <= 10) return DurationBucket::kUnder10s;
  if (duration_seconds <= 60) return DurationBucket::kUnder1m;
  if (duration_seconds <= 300) return DurationBucket::kUnder5m;
  if (duration_seconds <= 1800) return DurationBucket::kUnder30m;
  return DurationBucket::kOver30m;
}

namespace {

/// Partial accumulation over one chunk of sequences. Counters and an
/// integer-valued duration sum only, so merging chunk partials in chunk
/// order reproduces the serial scan exactly.
struct SummaryPartial {
  uint64_t sessions = 0;
  uint64_t events = 0;
  std::set<int64_t> users;
  double total_duration = 0;
  std::map<std::string, uint64_t> by_client;
  std::map<std::string, uint64_t> by_bucket;
};

Status SummarizeOne(const sessions::SessionSequence& seq,
                    const sessions::EventDictionary& dict,
                    SummaryPartial* out) {
  ++out->sessions;
  out->events += seq.EventCount();
  out->users.insert(seq.user_id);
  out->total_duration += seq.duration_seconds;
  ++out->by_bucket[DurationBucketLabel(BucketFor(seq.duration_seconds))];
  // Client type: the client component of the first event's name.
  if (!seq.sequence.empty()) {
    size_t pos = 0;
    uint32_t cp;
    UNILOG_RETURN_NOT_OK(DecodeOneUtf8(seq.sequence, &pos, &cp));
    UNILOG_ASSIGN_OR_RETURN(std::string name, dict.NameFor(cp));
    size_t colon = name.find(':');
    ++out->by_client[name.substr(0, colon)];
  }
  return Status::OK();
}

}  // namespace

Result<DailySummary> Summarize(
    const std::vector<sessions::SessionSequence>& seqs,
    const sessions::EventDictionary& dict, exec::Executor* exec) {
  SummaryPartial total;
  if (exec == nullptr || !exec->parallel()) {
    for (const auto& seq : seqs) {
      UNILOG_RETURN_NOT_OK(SummarizeOne(seq, dict, &total));
    }
  } else {
    // ParallelForChunked gives each chunk a private partial; the first
    // failing index (by position) wins, matching the serial early-return.
    std::vector<SummaryPartial> partials(exec->ChunksFor(seqs.size()));
    std::vector<Status> chunk_status(partials.size(), Status::OK());
    exec->ParallelForChunked(
        "summarize", seqs.size(), [&](size_t chunk, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            Status s = SummarizeOne(seqs[i], dict, &partials[chunk]);
            if (!s.ok()) {
              chunk_status[chunk] = std::move(s);
              return;
            }
          }
        });
    for (auto& s : chunk_status) {
      UNILOG_RETURN_NOT_OK(std::move(s));
    }
    for (auto& p : partials) {
      total.sessions += p.sessions;
      total.events += p.events;
      total.users.insert(p.users.begin(), p.users.end());
      total.total_duration += p.total_duration;
      for (const auto& [k, n] : p.by_client) total.by_client[k] += n;
      for (const auto& [k, n] : p.by_bucket) total.by_bucket[k] += n;
    }
  }
  DailySummary out;
  out.sessions = total.sessions;
  out.events = total.events;
  out.distinct_users = total.users.size();
  out.sessions_by_client = std::move(total.by_client);
  out.sessions_by_duration_bucket = std::move(total.by_bucket);
  if (out.sessions > 0) {
    out.avg_events_per_session =
        static_cast<double>(out.events) / static_cast<double>(out.sessions);
    out.avg_duration_seconds =
        total.total_duration / static_cast<double>(out.sessions);
  }
  return out;
}

std::string DailySummary::ToString() const {
  std::ostringstream os;
  os << "sessions=" << sessions << " events=" << events
     << " users=" << distinct_users << " avg_events/session="
     << avg_events_per_session << " avg_duration_s=" << avg_duration_seconds
     << "\n  by_client:";
  for (const auto& [client, n] : sessions_by_client) {
    os << " " << client << "=" << n;
  }
  os << "\n  by_duration:";
  for (const auto& [bucket, n] : sessions_by_duration_bucket) {
    os << " " << bucket << "=" << n;
  }
  return os.str();
}

}  // namespace unilog::analytics
