#include "analytics/summary.h"

#include <set>
#include <sstream>

#include "common/utf8.h"

namespace unilog::analytics {

const char* DurationBucketLabel(DurationBucket b) {
  switch (b) {
    case DurationBucket::kZero:
      return "0s";
    case DurationBucket::kUnder10s:
      return "1-10s";
    case DurationBucket::kUnder1m:
      return "11-60s";
    case DurationBucket::kUnder5m:
      return "1-5m";
    case DurationBucket::kUnder30m:
      return "5-30m";
    case DurationBucket::kOver30m:
      return ">30m";
  }
  return "?";
}

DurationBucket BucketFor(int32_t duration_seconds) {
  if (duration_seconds <= 0) return DurationBucket::kZero;
  if (duration_seconds <= 10) return DurationBucket::kUnder10s;
  if (duration_seconds <= 60) return DurationBucket::kUnder1m;
  if (duration_seconds <= 300) return DurationBucket::kUnder5m;
  if (duration_seconds <= 1800) return DurationBucket::kUnder30m;
  return DurationBucket::kOver30m;
}

Result<DailySummary> Summarize(
    const std::vector<sessions::SessionSequence>& seqs,
    const sessions::EventDictionary& dict) {
  DailySummary out;
  std::set<int64_t> users;
  double total_duration = 0;
  for (const auto& seq : seqs) {
    ++out.sessions;
    out.events += seq.EventCount();
    users.insert(seq.user_id);
    total_duration += seq.duration_seconds;
    ++out.sessions_by_duration_bucket[DurationBucketLabel(
        BucketFor(seq.duration_seconds))];
    // Client type: the client component of the first event's name.
    if (!seq.sequence.empty()) {
      size_t pos = 0;
      uint32_t cp;
      UNILOG_RETURN_NOT_OK(DecodeOneUtf8(seq.sequence, &pos, &cp));
      UNILOG_ASSIGN_OR_RETURN(std::string name, dict.NameFor(cp));
      size_t colon = name.find(':');
      ++out.sessions_by_client[name.substr(0, colon)];
    }
  }
  out.distinct_users = users.size();
  if (out.sessions > 0) {
    out.avg_events_per_session =
        static_cast<double>(out.events) / static_cast<double>(out.sessions);
    out.avg_duration_seconds = total_duration / static_cast<double>(out.sessions);
  }
  return out;
}

std::string DailySummary::ToString() const {
  std::ostringstream os;
  os << "sessions=" << sessions << " events=" << events
     << " users=" << distinct_users << " avg_events/session="
     << avg_events_per_session << " avg_duration_s=" << avg_duration_seconds
     << "\n  by_client:";
  for (const auto& [client, n] : sessions_by_client) {
    os << " " << client << "=" << n;
  }
  os << "\n  by_duration:";
  for (const auto& [bucket, n] : sessions_by_duration_bucket) {
    os << " " << bucket << "=" << n;
  }
  return os.str();
}

}  // namespace unilog::analytics
