#include "analytics/birdbrain.h"

#include <algorithm>
#include <sstream>

namespace unilog::analytics {

void BirdBrain::Record(TimeMs date, DailySummary summary) {
  days_[TruncateToDay(date)] = std::move(summary);
}

const DailySummary* BirdBrain::Day(TimeMs date) const {
  auto it = days_.find(TruncateToDay(date));
  return it == days_.end() ? nullptr : &it->second;
}

std::vector<std::pair<TimeMs, uint64_t>> BirdBrain::SessionsSeries() const {
  std::vector<std::pair<TimeMs, uint64_t>> out;
  out.reserve(days_.size());
  for (const auto& [date, summary] : days_) {
    out.emplace_back(date, summary.sessions);
  }
  return out;
}

Result<double> BirdBrain::GrowthRatio() const {
  if (days_.size() < 2) {
    return Status::FailedPrecondition("need at least two days");
  }
  uint64_t first = days_.begin()->second.sessions;
  uint64_t last = days_.rbegin()->second.sessions;
  if (first == 0) return Status::FailedPrecondition("first day empty");
  return static_cast<double>(last) / static_cast<double>(first);
}

std::string BirdBrain::Render() const {
  std::ostringstream os;
  os << "=== BirdBrain: daily user sessions ===\n";
  uint64_t peak = 1;
  for (const auto& [date, summary] : days_) {
    peak = std::max(peak, summary.sessions);
  }
  for (const auto& [date, summary] : days_) {
    int bar = static_cast<int>(40.0 * static_cast<double>(summary.sessions) /
                               static_cast<double>(peak) + 0.5);
    os << DateString(date) << " " << std::string(bar, '#') << " "
       << summary.sessions << "\n";
  }
  if (!days_.empty()) {
    const DailySummary& latest = days_.rbegin()->second;
    os << "\nlatest day (" << DateString(days_.rbegin()->first)
       << "): " << latest.sessions << " sessions, " << latest.events
       << " events, " << latest.distinct_users << " users\n";
    os << "by client:";
    for (const auto& [client, n] : latest.sessions_by_client) {
      os << " " << client << "=" << n;
    }
    os << "\nby duration:";
    for (const auto& [bucket, n] : latest.sessions_by_duration_bucket) {
      os << " " << bucket << "=" << n;
    }
    os << "\n";
  }
  return os.str();
}

Result<std::string> BirdBrain::RenderDrillDown(
    const std::string& dimension) const {
  if (days_.empty()) return Status::FailedPrecondition("no days recorded");
  std::ostringstream os;
  os << "sessions by " << dimension << " per day:\n";
  // Collect the key space.
  std::vector<std::string> keys;
  for (const auto& [date, summary] : days_) {
    const auto& m = dimension == "client" ? summary.sessions_by_client
                                          : summary.sessions_by_duration_bucket;
    for (const auto& [k, v] : m) {
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
  }
  if (dimension != "client" && dimension != "duration") {
    return Status::InvalidArgument("unknown dimension: " + dimension);
  }
  std::sort(keys.begin(), keys.end());
  os << "date      ";
  for (const auto& k : keys) os << " " << k;
  os << "\n";
  for (const auto& [date, summary] : days_) {
    const auto& m = dimension == "client" ? summary.sessions_by_client
                                          : summary.sessions_by_duration_bucket;
    os << DateString(date);
    for (const auto& k : keys) {
      auto it = m.find(k);
      os << " " << (it == m.end() ? 0 : it->second);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace unilog::analytics
