#include "analytics/udfs.h"

#include "common/utf8.h"

namespace unilog::analytics {

CountClientEvents::CountClientEvents(const sessions::EventDictionary& dict,
                                     const events::EventPattern& pattern) {
  for (uint32_t cp : dict.Expand(pattern)) targets_.insert(cp);
}

uint64_t CountClientEvents::Count(std::string_view sequence_utf8) const {
  uint64_t count = 0;
  size_t pos = 0;
  uint32_t cp;
  while (pos < sequence_utf8.size()) {
    if (!DecodeOneUtf8(sequence_utf8, &pos, &cp).ok()) break;
    if (targets_.count(cp)) ++count;
  }
  return count;
}

uint64_t CountClientEvents::Count(const sessions::SessionSequence& seq) const {
  return Count(seq.sequence);
}

uint64_t CountClientEvents::TotalCount(
    const std::vector<sessions::SessionSequence>& seqs,
    exec::Executor* exec) const {
  if (exec == nullptr || !exec->parallel()) {
    uint64_t total = 0;
    for (const auto& seq : seqs) total += Count(seq);
    return total;
  }
  std::vector<uint64_t> partials(exec->ChunksFor(seqs.size()), 0);
  exec->ParallelForChunked(
      "count-events", seqs.size(), [&](size_t chunk, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) partials[chunk] += Count(seqs[i]);
      });
  uint64_t total = 0;
  for (uint64_t p : partials) total += p;
  return total;
}

bool CountClientEvents::ContainsAny(
    const sessions::SessionSequence& seq) const {
  size_t pos = 0;
  uint32_t cp;
  while (pos < seq.sequence.size()) {
    if (!DecodeOneUtf8(seq.sequence, &pos, &cp).ok()) break;
    if (targets_.count(cp)) return true;
  }
  return false;
}

Result<Funnel> Funnel::Make(const sessions::EventDictionary& dict,
                            const std::vector<std::string>& stage_events) {
  if (stage_events.empty()) {
    return Status::InvalidArgument("funnel needs at least one stage");
  }
  Funnel funnel;
  for (const auto& name : stage_events) {
    UNILOG_ASSIGN_OR_RETURN(uint32_t cp, dict.CodePointFor(name));
    funnel.stages_.push_back(cp);
  }
  return funnel;
}

size_t Funnel::StagesCompleted(std::string_view sequence_utf8) const {
  size_t stage = 0;
  size_t pos = 0;
  uint32_t cp;
  while (stage < stages_.size() && pos < sequence_utf8.size()) {
    if (!DecodeOneUtf8(sequence_utf8, &pos, &cp).ok()) break;
    if (cp == stages_[stage]) ++stage;
  }
  return stage;
}

size_t Funnel::StagesCompleted(const sessions::SessionSequence& seq) const {
  return StagesCompleted(seq.sequence);
}

std::vector<uint64_t> Funnel::StageCounts(
    const std::vector<sessions::SessionSequence>& seqs,
    exec::Executor* exec) const {
  std::vector<uint64_t> counts(stages_.size(), 0);
  if (exec == nullptr || !exec->parallel()) {
    for (const auto& seq : seqs) {
      size_t completed = StagesCompleted(seq);
      for (size_t i = 0; i < completed; ++i) ++counts[i];
    }
    return counts;
  }
  std::vector<std::vector<uint64_t>> partials(
      exec->ChunksFor(seqs.size()), std::vector<uint64_t>(stages_.size(), 0));
  exec->ParallelForChunked(
      "funnel", seqs.size(), [&](size_t chunk, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          size_t completed = StagesCompleted(seqs[i]);
          for (size_t s = 0; s < completed; ++s) ++partials[chunk][s];
        }
      });
  for (const auto& partial : partials) {
    for (size_t s = 0; s < counts.size(); ++s) counts[s] += partial[s];
  }
  return counts;
}

std::vector<double> Funnel::AbandonmentRates(
    const std::vector<sessions::SessionSequence>& seqs) const {
  std::vector<uint64_t> counts = StageCounts(seqs);
  std::vector<double> rates;
  for (size_t i = 0; i + 1 < counts.size(); ++i) {
    if (counts[i] == 0) {
      rates.push_back(0.0);
    } else {
      rates.push_back(1.0 - static_cast<double>(counts[i + 1]) /
                                static_cast<double>(counts[i]));
    }
  }
  return rates;
}

RateReport ComputeRate(const std::vector<sessions::SessionSequence>& seqs,
                       const sessions::EventDictionary& dict,
                       const events::EventPattern& impression_pattern,
                       const events::EventPattern& action_pattern,
                       exec::Executor* exec) {
  CountClientEvents impressions(dict, impression_pattern);
  CountClientEvents actions(dict, action_pattern);
  auto scan_one = [&](const sessions::SessionSequence& seq,
                      RateReport* report) {
    uint64_t imp = impressions.Count(seq);
    uint64_t act = actions.Count(seq);
    report->impressions += imp;
    report->actions += act;
    if (imp > 0) ++report->sessions_with_impression;
    if (act > 0) ++report->sessions_with_action;
  };
  RateReport report;
  if (exec == nullptr || !exec->parallel()) {
    for (const auto& seq : seqs) scan_one(seq, &report);
  } else {
    std::vector<RateReport> partials(exec->ChunksFor(seqs.size()));
    exec->ParallelForChunked(
        "rate", seqs.size(), [&](size_t chunk, size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) scan_one(seqs[i], &partials[chunk]);
        });
    for (const auto& p : partials) {
      report.impressions += p.impressions;
      report.actions += p.actions;
      report.sessions_with_impression += p.sessions_with_impression;
      report.sessions_with_action += p.sessions_with_action;
    }
  }
  report.rate = report.impressions == 0
                    ? 0.0
                    : static_cast<double>(report.actions) /
                          static_cast<double>(report.impressions);
  return report;
}

}  // namespace unilog::analytics
