#include "analytics/udfs.h"

#include "common/utf8.h"

namespace unilog::analytics {

CountClientEvents::CountClientEvents(const sessions::EventDictionary& dict,
                                     const events::EventPattern& pattern) {
  for (uint32_t cp : dict.Expand(pattern)) targets_.insert(cp);
}

uint64_t CountClientEvents::Count(std::string_view sequence_utf8) const {
  uint64_t count = 0;
  size_t pos = 0;
  uint32_t cp;
  while (pos < sequence_utf8.size()) {
    if (!DecodeOneUtf8(sequence_utf8, &pos, &cp).ok()) break;
    if (targets_.count(cp)) ++count;
  }
  return count;
}

uint64_t CountClientEvents::Count(const sessions::SessionSequence& seq) const {
  return Count(seq.sequence);
}

bool CountClientEvents::ContainsAny(
    const sessions::SessionSequence& seq) const {
  size_t pos = 0;
  uint32_t cp;
  while (pos < seq.sequence.size()) {
    if (!DecodeOneUtf8(seq.sequence, &pos, &cp).ok()) break;
    if (targets_.count(cp)) return true;
  }
  return false;
}

Result<Funnel> Funnel::Make(const sessions::EventDictionary& dict,
                            const std::vector<std::string>& stage_events) {
  if (stage_events.empty()) {
    return Status::InvalidArgument("funnel needs at least one stage");
  }
  Funnel funnel;
  for (const auto& name : stage_events) {
    UNILOG_ASSIGN_OR_RETURN(uint32_t cp, dict.CodePointFor(name));
    funnel.stages_.push_back(cp);
  }
  return funnel;
}

size_t Funnel::StagesCompleted(std::string_view sequence_utf8) const {
  size_t stage = 0;
  size_t pos = 0;
  uint32_t cp;
  while (stage < stages_.size() && pos < sequence_utf8.size()) {
    if (!DecodeOneUtf8(sequence_utf8, &pos, &cp).ok()) break;
    if (cp == stages_[stage]) ++stage;
  }
  return stage;
}

size_t Funnel::StagesCompleted(const sessions::SessionSequence& seq) const {
  return StagesCompleted(seq.sequence);
}

std::vector<uint64_t> Funnel::StageCounts(
    const std::vector<sessions::SessionSequence>& seqs) const {
  std::vector<uint64_t> counts(stages_.size(), 0);
  for (const auto& seq : seqs) {
    size_t completed = StagesCompleted(seq);
    for (size_t i = 0; i < completed; ++i) ++counts[i];
  }
  return counts;
}

std::vector<double> Funnel::AbandonmentRates(
    const std::vector<sessions::SessionSequence>& seqs) const {
  std::vector<uint64_t> counts = StageCounts(seqs);
  std::vector<double> rates;
  for (size_t i = 0; i + 1 < counts.size(); ++i) {
    if (counts[i] == 0) {
      rates.push_back(0.0);
    } else {
      rates.push_back(1.0 - static_cast<double>(counts[i + 1]) /
                                static_cast<double>(counts[i]));
    }
  }
  return rates;
}

RateReport ComputeRate(const std::vector<sessions::SessionSequence>& seqs,
                       const sessions::EventDictionary& dict,
                       const events::EventPattern& impression_pattern,
                       const events::EventPattern& action_pattern) {
  CountClientEvents impressions(dict, impression_pattern);
  CountClientEvents actions(dict, action_pattern);
  RateReport report;
  for (const auto& seq : seqs) {
    uint64_t imp = impressions.Count(seq);
    uint64_t act = actions.Count(seq);
    report.impressions += imp;
    report.actions += act;
    if (imp > 0) ++report.sessions_with_impression;
    if (act > 0) ++report.sessions_with_action;
  }
  report.rate = report.impressions == 0
                    ? 0.0
                    : static_cast<double>(report.actions) /
                          static_cast<double>(report.impressions);
  return report;
}

}  // namespace unilog::analytics
