#include "soak/harness.h"

#include <algorithm>
#include <cstdio>

#include "columnar/scrubber.h"
#include "common/rng.h"
#include "events/client_event.h"
#include "oink/workflow.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace unilog::soak {

namespace {

// Any '_'-prefixed path component marks a hidden warehouse path (markers,
// caches, quarantined parts).
bool HiddenWarehousePath(const std::string& path) {
  return path.find("/_") != std::string::npos;
}

// Mutable state the chaos corrupt-part events share; lives in Run()'s
// frame for the whole simulation.
struct CorruptState {
  Rng rng;
  uint64_t corruptions = 0;
  explicit CorruptState(uint64_t seed) : rng(seed) {}
};

// Flips one byte of a randomly chosen landed warehouse part, sparing the
// 4-byte magic so the damage is a checksum failure (what the scrubber and
// the quarantine path exist for), not a file that silently changes type.
// Retries later when no part has landed yet.
void TryCorruptPart(Simulator* sim, hdfs::MiniHdfs* warehouse,
                    CorruptState* state, int retries_left) {
  auto files = warehouse->ListRecursive("/logs");
  std::vector<hdfs::FileStatus> candidates;
  if (files.ok()) {
    for (const auto& f : *files) {
      if (!HiddenWarehousePath(f.path) && f.size > 8) candidates.push_back(f);
    }
  }
  if (candidates.empty()) {
    if (retries_left > 0) {
      sim->After(10 * kMillisPerMinute, [sim, warehouse, state, retries_left] {
        TryCorruptPart(sim, warehouse, state, retries_left - 1);
      });
    }
    return;
  }
  const hdfs::FileStatus& f = candidates[state->rng.Uniform(candidates.size())];
  uint64_t offset = 4 + state->rng.Next64() % (f.size - 4);
  if (warehouse->CorruptFile(f.path, offset).ok()) ++state->corruptions;
}

// The harness's deliberate-loss self-test: silently delete one staged
// file, bypassing every loss counter. Nothing downstream can recover it,
// so a correct audit must refuse to call the run quiescent.
void TryInjectLoss(Simulator* sim, scribe::ScribeCluster* cluster,
                   bool* injected, int retries_left) {
  for (size_t dc = 0; dc < cluster->datacenter_count(); ++dc) {
    auto files = cluster->staging(dc)->ListRecursive("/staging");
    if (!files.ok()) continue;
    for (const auto& f : *files) {
      if (HiddenWarehousePath(f.path) || f.size == 0) continue;
      if (cluster->staging(dc)->Delete(f.path).ok()) {
        *injected = true;
        return;
      }
    }
  }
  if (retries_left > 0) {
    sim->After(5 * kMillisPerMinute, [sim, cluster, injected, retries_left] {
      TryInjectLoss(sim, cluster, injected, retries_left - 1);
    });
  }
}

}  // namespace

std::string SoakResult::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "soak seed=%llu hours=%d daemons=%llu events=%llu chaos=%llu "
                "corrupted=%llu quarantined=%llu oink_hit=%.3f passed=%s",
                static_cast<unsigned long long>(seed), hours,
                static_cast<unsigned long long>(daemons),
                static_cast<unsigned long long>(events_logged),
                static_cast<unsigned long long>(chaos_events),
                static_cast<unsigned long long>(parts_corrupted),
                static_cast<unsigned long long>(parts_quarantined),
                oink_warm_hit_rate, passed ? "yes" : "NO");
  std::string s = buf;
  s += "\naudit: " + audit.ToString();
  s += "\nslo: " + slo.ToString();
  return s;
}

Json SoakResult::ToJson() const {
  Json chaos = Json::Object();
  for (const auto& [kind, count] : chaos_by_kind) {
    chaos.Set(kind, Json::Int(static_cast<int64_t>(count)));
  }
  Json j = Json::Object();
  j.Set("seed", Json::Int(static_cast<int64_t>(seed)));
  j.Set("hours", Json::Int(hours));
  j.Set("daemons", Json::Int(static_cast<int64_t>(daemons)));
  j.Set("events_logged", Json::Int(static_cast<int64_t>(events_logged)));
  j.Set("chaos_events", Json::Int(static_cast<int64_t>(chaos_events)));
  j.Set("chaos_by_kind", std::move(chaos));
  j.Set("parts_corrupted", Json::Int(static_cast<int64_t>(parts_corrupted)));
  j.Set("parts_quarantined",
        Json::Int(static_cast<int64_t>(parts_quarantined)));
  j.Set("oink_warm_hit_rate", Json::Number(oink_warm_hit_rate));
  j.Set("audit", audit.ToJson());
  j.Set("slo", slo.ToJson());
  j.Set("passed", Json::Bool(passed));
  return j;
}

Result<SoakResult> SoakHarness::Run() {
  const SoakOptions& o = options_;
  if (o.hours <= 0) return Status::InvalidArgument("soak hours must be > 0");
  if (o.datacenters.empty()) {
    return Status::InvalidArgument("soak needs at least one datacenter");
  }
  const TimeMs start = o.start;
  const TimeMs end = start + static_cast<TimeMs>(o.hours) * kMillisPerHour;
  const TimeMs drained = end + o.drain_ms;

  Simulator sim(start);
  scribe::ClusterTopology topo;
  topo.datacenters = o.datacenters;
  topo.aggregators_per_dc = o.aggregators_per_dc;
  topo.daemons_per_dc = o.daemons_per_dc;
  topo.brokers_per_dc = o.brokers_per_dc;
  topo.broker_datacenters = o.broker_datacenters;
  topo.staging_hdfs.num_datanodes = o.staging_datanodes;
  topo.staging_hdfs.replication = o.staging_replication;
  topo.warehouse_hdfs.num_datanodes = o.warehouse_datanodes;
  topo.warehouse_hdfs.replication = o.warehouse_replication;

  scribe::LogMoverOptions mover_options = o.mover;
  // Columnar warehouse parts carry the per-group checksums the scrubber
  // and the corrupt-part chaos lean on.
  mover_options.columnar_categories.insert(o.category);

  scribe::ScribeCluster cluster(&sim, topo, o.scribe, mover_options, o.seed);
  UNILOG_RETURN_NOT_OK(cluster.Start());

  SoakResult result;
  result.seed = o.seed;
  result.hours = o.hours;
  result.daemons =
      static_cast<uint64_t>(o.daemons_per_dc) * o.datacenters.size();

  // ---- Workload: one generator shard per simulated hour. Each shard has
  // a seed derived from the master seed and a disjoint user-id range, and
  // is built lazily at its hour's start so peak memory stays one hour's
  // worth of pending events.
  Rng master(o.seed);
  std::vector<uint64_t> shard_seeds;
  shard_seeds.reserve(o.hours);
  for (int h = 0; h < o.hours; ++h) shard_seeds.push_back(master.Next64());

  const size_t dc_count = cluster.datacenter_count();
  Status workload_status;
  for (int h = 0; h < o.hours; ++h) {
    const TimeMs hour_start = start + static_cast<TimeMs>(h) * kMillisPerHour;
    const uint64_t shard_seed = shard_seeds[h];
    sim.At(hour_start, [this, &sim, &cluster, &workload_status, dc_count, h,
                        hour_start, shard_seed] {
      workload::WorkloadOptions w;
      w.seed = shard_seed;
      w.num_users = options_.users_per_hour;
      w.user_id_base =
          1000000 + static_cast<int64_t>(h) * options_.users_per_hour;
      w.start = hour_start;
      w.duration = kMillisPerHour;
      w.sessions_per_user_mean = options_.sessions_per_user_mean;
      w.events_per_session_mean = options_.events_per_session_mean;
      workload::WorkloadGenerator generator(std::move(w));
      Status st = generator.Generate([this, &sim, &cluster,
                                      dc_count](const events::ClientEvent& ev) {
        size_t dc = static_cast<size_t>(ev.user_id) % dc_count;
        std::string message = ev.Serialize();
        sim.At(ev.timestamp,
               [this, &cluster, dc, message = std::move(message)] {
                 cluster.Log(dc, scribe::LogEntry{options_.category, message});
               });
      });
      if (!st.ok() && workload_status.ok()) workload_status = st;
    });
  }

  // ---- Chaos: generate the declarative schedule from the same seed and
  // translate each event into simulator callbacks (fault + paired
  // restore). The margin keeps the last restore inside the drain window.
  TimeMs chaos_start = start + 30 * kMillisPerMinute;
  TimeMs chaos_end = end - 30 * kMillisPerMinute;
  if (chaos_end <= chaos_start) {
    chaos_start = start;
    chaos_end = end;
  }
  ChaosSchedule schedule =
      ChaosSchedule::Generate(o.chaos, topo, chaos_start, chaos_end, o.seed);
  result.chaos_events = schedule.events().size();
  CorruptState corrupt_state(o.seed ^ 0xC02201u);
  for (const ChaosEvent& ev : schedule.events()) {
    ++result.chaos_by_kind[ChaosKindName(ev.kind)];
    switch (ev.kind) {
      case ChaosKind::kAggregatorCrash:
        sim.At(ev.at,
               [&cluster, ev] { cluster.CrashAggregator(ev.dc, ev.index); });
        sim.At(ev.at + ev.duration_ms, [&cluster, ev] {
          (void)cluster.RestartAggregator(ev.dc, ev.index);
        });
        break;
      case ChaosKind::kBrokerCrash:
        sim.At(ev.at, [&cluster, ev] { cluster.CrashBroker(ev.dc, ev.index); });
        sim.At(ev.at + ev.duration_ms, [&cluster, ev] {
          (void)cluster.RestartBroker(ev.dc, ev.index);
        });
        break;
      case ChaosKind::kZkExpiryStorm:
        for (int i = 0; i < ev.count; ++i) {
          size_t target = (ev.index + i) % cluster.broker_count(ev.dc);
          sim.At(ev.at + i * 250, [&cluster, ev, target] {
            (void)cluster.ExpireBrokerSession(ev.dc, target);
          });
        }
        break;
      case ChaosKind::kStagingBrownout:
        for (int i = 0; i < ev.count; ++i) {
          int node = static_cast<int>((ev.index + i) % o.staging_datanodes);
          sim.At(ev.at, [&cluster, ev, node] {
            cluster.staging(ev.dc)->SetDatanodeAvailable(node, false);
          });
          sim.At(ev.at + ev.duration_ms, [&cluster, ev, node] {
            cluster.staging(ev.dc)->SetDatanodeAvailable(node, true);
          });
        }
        break;
      case ChaosKind::kWarehouseBrownout:
        for (int i = 0; i < ev.count; ++i) {
          int node = static_cast<int>((ev.index + i) % o.warehouse_datanodes);
          sim.At(ev.at, [&cluster, node] {
            cluster.warehouse()->SetDatanodeAvailable(node, false);
          });
          sim.At(ev.at + ev.duration_ms, [&cluster, node] {
            cluster.warehouse()->SetDatanodeAvailable(node, true);
          });
        }
        break;
      case ChaosKind::kClockSkew:
        sim.At(ev.at, [&cluster, ev] {
          cluster.aggregator(ev.dc, ev.index)->SetClockSkew(ev.skew_ms);
        });
        sim.At(ev.at + ev.duration_ms, [&cluster, ev] {
          cluster.aggregator(ev.dc, ev.index)->SetClockSkew(0);
        });
        break;
      case ChaosKind::kCorruptPart:
        sim.At(ev.at, [&sim, &cluster, &corrupt_state] {
          TryCorruptPart(&sim, cluster.warehouse(), &corrupt_state, 6);
        });
        break;
    }
  }

  // ---- Background scrub (the HDFS block-scanner analog): quarantine any
  // part whose checksums no longer verify before a reader trips on it.
  // A pass interrupted by a brownout just waits for the next interval.
  for (TimeMs t = start + o.scrub_interval_ms; t < drained;
       t += o.scrub_interval_ms) {
    sim.At(t, [&cluster] {
      (void)columnar::ScrubColumnarDir(cluster.warehouse(), "/logs",
                                       cluster.metrics());
    });
  }

  // ---- SLO peak sampling + mid-run audit checks.
  SloChecker checker(o.slo, &cluster);
  for (TimeMs t = start + o.sample_interval_ms; t <= drained;
       t += o.sample_interval_ms) {
    sim.At(t, [&checker] { checker.Sample(); });
  }

  // ---- Deliberate unrecoverable loss (self-test of the quiescence gate).
  bool loss_injected = false;
  if (o.inject_unrecovered_loss) {
    TimeMs at = start + (static_cast<TimeMs>(o.hours) / 2) * kMillisPerHour +
                7 * kMillisPerMinute;
    sim.At(at, [&sim, &cluster, &loss_injected] {
      TryInjectLoss(&sim, &cluster, &loss_injected, 12);
    });
  }

  // ---- Run the window, then drain: every chaos restore has fired and the
  // last (possibly skew-shifted) hour has closed, slid, and been scrubbed.
  sim.RunUntil(end);
  sim.RunUntil(drained);
  cluster.mover()->RunOnce();
  (void)columnar::ScrubColumnarDir(cluster.warehouse(), "/logs",
                                   cluster.metrics());
  checker.Sample();

  if (o.inject_unrecovered_loss && !loss_injected) {
    return Status::FailedPrecondition(
        "inject_unrecovered_loss was requested but no staged file could be "
        "deleted");
  }

  // ---- Oink cold+warm pass over the first soaked hours: the warm pass
  // must be nearly all cache hits (the memoization floor SLO).
  double oink_rate = -1;
  if (o.oink_hours > 0) {
    const int ticks = std::min(o.oink_hours, o.hours);
    oink::WorkflowEngine engine(cluster.warehouse(), oink::OinkOptions{},
                                cluster.metrics());
    oink::WorkflowSpec spec;
    spec.name = "soak-hourly-scan";
    const std::string category = o.category;
    const TimeMs base = start;
    spec.input_dir = [category, base](int64_t idx) {
      return "/logs/" + category + "/" +
             HourPartitionPath(base + idx * kMillisPerHour);
    };
    UNILOG_RETURN_NOT_OK(engine.AddWorkflow(std::move(spec)));
    uint64_t hits = 0;
    uint64_t misses = 0;
    bool oink_ok = true;
    for (int pass = 0; pass < 2 && oink_ok; ++pass) {
      for (int i = 0; i < ticks; ++i) {
        Status st = engine.RunTick(i);
        if (!st.ok()) {
          oink_ok = false;
          break;
        }
        if (pass == 1) {
          hits += engine.last_tick().cache_hits;
          misses += engine.last_tick().cache_misses;
        }
      }
    }
    if (!oink_ok) {
      oink_rate = 0;  // a failed warm pass cannot satisfy the floor
    } else if (hits + misses > 0) {
      oink_rate = static_cast<double>(hits) /
                  static_cast<double>(hits + misses);
    }
  }

  // ---- Ground-truth quarantine count straight from the namespace.
  auto landed = cluster.warehouse()->ListRecursive("/logs");
  if (landed.ok()) {
    for (const auto& f : *landed) {
      size_t slash = f.path.rfind('/');
      if (f.path.compare(slash + 1, 12, "_quarantined") == 0) {
        ++result.parts_quarantined;
      }
    }
  }

  UNILOG_RETURN_NOT_OK(workload_status);
  result.oink_warm_hit_rate = oink_rate;
  result.slo = checker.Finalize(oink_rate);
  result.stats = cluster.TotalStats();
  obs::DeliveryAudit audit(&cluster);
  result.audit = audit.Snapshot();
  result.events_logged = result.stats.entries_logged;
  result.parts_corrupted = corrupt_state.corruptions;
  result.passed = result.slo.ok();
  return result;
}

}  // namespace unilog::soak
