#ifndef UNILOG_SOAK_HARNESS_H_
#define UNILOG_SOAK_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "obs/delivery_audit.h"
#include "scribe/aggregator.h"
#include "scribe/cluster.h"
#include "scribe/log_mover.h"
#include "soak/chaos.h"
#include "soak/slo.h"

namespace unilog::soak {

/// Shape and duration of a soak run. The defaults are the full fleet-scale
/// configuration (two datacenters — one on the aggregator chain, one on
/// the broker tier — 1200 daemons, sharded staging and warehouse HDFS,
/// a two-day window); tests and the CI smoke job scale the same knobs
/// down rather than running a different code path.
struct SoakOptions {
  uint64_t seed = 42;
  /// Simulated duration in hours.
  int hours = 48;

  std::vector<std::string> datacenters = {"east", "west"};
  /// DCs running the broker tier; the rest keep aggregator chains. The
  /// default mixed fleet lets one run chaos both delivery paths.
  std::vector<std::string> broker_datacenters = {"west"};
  int daemons_per_dc = 600;
  int aggregators_per_dc = 4;
  int brokers_per_dc = 5;

  int staging_datanodes = 6;
  int staging_replication = 2;
  int warehouse_datanodes = 8;
  int warehouse_replication = 3;

  /// Workload: one generator shard per simulated hour, each with its own
  /// derived seed and a disjoint user-id range.
  int users_per_hour = 25000;
  double sessions_per_user_mean = 0.4;
  double events_per_session_mean = 8.0;
  std::string category = "client_event";
  TimeMs start = MakeDate(2012, 8, 20);

  ChaosScheduleOptions chaos;
  SloThresholds slo;
  /// Delivery-path tuning. The only soak-specific default is a 2s daemon
  /// flush (vs. the stock 1s): at 1200 daemons over two simulated days the
  /// flush timers dominate the event count, and 2s halves it without
  /// changing any delivery semantics.
  scribe::ScribeOptions scribe = [] {
    scribe::ScribeOptions s;
    s.daemon_flush_interval_ms = 2 * kMillisPerSecond;
    return s;
  }();
  scribe::LogMoverOptions mover;

  /// Post-window drain before quiescence is asserted; must cover the
  /// longest chaos outage plus one hour-close-and-slide cycle.
  TimeMs drain_ms = 4 * kMillisPerHour;
  /// Background columnar scrub cadence (the block-scanner analog).
  TimeMs scrub_interval_ms = 2 * kMillisPerHour;
  /// SLO peak-sampling cadence.
  TimeMs sample_interval_ms = 15 * kMillisPerMinute;
  /// Hours covered by the post-drain Oink cold+warm pass; 0 skips it.
  int oink_hours = 4;

  /// Fault-injection self-test: silently delete one staged file mid-run,
  /// bypassing all accounting. A correct harness MUST fail such a run at
  /// quiescence (in_flight_staging can never drain) — this is how the
  /// soak proves it can detect unrecovered loss at all.
  bool inject_unrecovered_loss = false;
};

/// Everything a soak run produced, reproducible from `seed`.
struct SoakResult {
  uint64_t seed = 0;
  int hours = 0;
  uint64_t daemons = 0;
  uint64_t events_logged = 0;
  uint64_t chaos_events = 0;
  std::map<std::string, uint64_t> chaos_by_kind;
  uint64_t parts_corrupted = 0;
  uint64_t parts_quarantined = 0;
  double oink_warm_hit_rate = -1;
  scribe::ClusterStats stats;
  obs::DeliverySnapshot audit;
  SloReport slo;
  /// True only when every SLO held AND the audit was quiescent.
  bool passed = false;

  std::string ToString() const;
  Json ToJson() const;
};

/// The fleet-scale soak/chaos driver: builds a mixed-tier ScribeCluster on
/// one deterministic Simulator, streams per-hour workload shards through
/// it, applies a ChaosSchedule generated from the same seed, scrubs the
/// warehouse periodically, drains, asserts quiescence, runs the Oink
/// cold+warm pass, and scores the run against the SLO thresholds. The
/// same options (seed included) always reproduce the identical run,
/// violations and all.
class SoakHarness {
 public:
  explicit SoakHarness(SoakOptions options) : options_(std::move(options)) {}

  Result<SoakResult> Run();

 private:
  SoakOptions options_;
};

}  // namespace unilog::soak

#endif  // UNILOG_SOAK_HARNESS_H_
