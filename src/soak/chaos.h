#ifndef UNILOG_SOAK_CHAOS_H_
#define UNILOG_SOAK_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "scribe/cluster.h"

namespace unilog::soak {

/// The fault classes the soak harness injects. Every one maps to a
/// failure mode the paper's production fleet actually sees.
enum class ChaosKind {
  kAggregatorCrash,    // crash an aggregator, restart after duration_ms
  kBrokerCrash,        // crash a broker node, restart after duration_ms
  kZkExpiryStorm,      // burst of zk session expiries across a broker DC
  kStagingBrownout,    // darken `count` staging datanodes for duration_ms
  kWarehouseBrownout,  // darken `count` warehouse datanodes
  kClockSkew,          // skew one aggregator's bucketing clock by skew_ms
  kCorruptPart,        // silent byte-flip in a landed warehouse part
};

const char* ChaosKindName(ChaosKind kind);

/// One scheduled fault. Which fields matter depends on `kind`; unused
/// fields are zero.
struct ChaosEvent {
  TimeMs at = 0;
  ChaosKind kind = ChaosKind::kAggregatorCrash;
  size_t dc = 0;           // datacenter index in the topology
  size_t index = 0;        // aggregator / broker / first-datanode index
  TimeMs duration_ms = 0;  // outage length (0 = instantaneous)
  int count = 1;           // sessions to expire / datanodes to darken
  TimeMs skew_ms = 0;      // clock-skew amount (kClockSkew only)

  std::string ToString() const;
};

/// Per-simulated-day fault rates plus outage-length bounds. The defaults
/// give a multi-day soak a steady drumbeat of every fault class without
/// ever making loss unrecoverable by construction (warehouse brownouts
/// are capped below the replication factor; everything else the delivery
/// path is designed to absorb and account).
struct ChaosScheduleOptions {
  double aggregator_crashes_per_day = 8;
  double broker_crashes_per_day = 8;
  double zk_storms_per_day = 3;
  double staging_brownouts_per_day = 3;
  double warehouse_brownouts_per_day = 1.5;
  double clock_skews_per_day = 2;
  double corrupt_parts_per_day = 2;
  TimeMs min_outage_ms = 2 * kMillisPerMinute;
  TimeMs max_outage_ms = 18 * kMillisPerMinute;
  /// Clock skews are drawn uniformly from ±[min, max].
  TimeMs max_clock_skew_ms = 45 * kMillisPerMinute;
  TimeMs min_clock_skew_ms = 5 * kMillisPerMinute;
};

/// A declarative, fully deterministic fault plan: the same (options,
/// topology, window, seed) always generates the identical event list, so
/// a failing soak reproduces from its printed seed alone. Events are
/// sorted by time; targets are drawn only from components that exist
/// under `topology` (aggregator faults in aggregator DCs, broker faults
/// and zk storms in brokered DCs, brownouts only on sharded clusters).
class ChaosSchedule {
 public:
  static ChaosSchedule Generate(const ChaosScheduleOptions& options,
                                const scribe::ClusterTopology& topology,
                                TimeMs start, TimeMs end, uint64_t seed);

  const std::vector<ChaosEvent>& events() const { return events_; }

  /// One event per line, for logs and the soak report.
  std::string ToString() const;

 private:
  std::vector<ChaosEvent> events_;
};

}  // namespace unilog::soak

#endif  // UNILOG_SOAK_CHAOS_H_
