#ifndef UNILOG_SOAK_SLO_H_
#define UNILOG_SOAK_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/sim_time.h"
#include "obs/delivery_audit.h"
#include "scribe/cluster.h"

namespace unilog::soak {

/// The service-level objectives a soak run is judged against. Every bound
/// is generous relative to healthy steady state — they exist to catch
/// regressions (a leak, a stall, an unaccounted loss channel), not to
/// tune performance.
struct SloThresholds {
  /// p99 of broker.e2e_latency_ms: Log() to warehouse ingest for records
  /// on the broker path. Dominated by the hourly slide cadence, so the
  /// bound is hours-scale, not seconds-scale.
  double p99_broker_e2e_ms = 2.5 * kMillisPerHour;
  /// p99 of mover.hour_slide_latency_ms: hour close to warehouse slide.
  /// Healthy runs sit under ten minutes; chaos (brownouts, barrier
  /// stalls, clock skew) may push the tail but must stay bounded.
  double p99_hour_slide_ms = 3.0 * kMillisPerHour;
  /// Floor on the Oink warm-pass cache hit rate (hits / (hits+misses))
  /// when the harness runs its post-drain cold+warm workflow passes.
  double min_oink_warm_hit_rate = 0.9;
  /// Ceiling on the fleet-wide ingest buffer-pool lease high-water mark
  /// (sum of scribe.ingest.pool_high_water across instances) — the
  /// memory-leak tripwire for the pooled roll/move hot path.
  uint64_t max_pool_high_water = 256;
  /// Ceiling on the peak of agg.buffered_entries summed across the fleet,
  /// sampled periodically — catches an aggregator that buffers without
  /// bound instead of rolling or dropping.
  uint64_t max_agg_buffered_entries = 2'000'000;
  /// Ceiling on the peak of daemon.queue_entries summed across the fleet.
  uint64_t max_daemon_queue_entries = 2'000'000;
};

/// One violated objective.
struct SloViolation {
  std::string name;
  double observed = 0;
  double bound = 0;
  std::string detail;

  std::string ToString() const;
};

/// The outcome of a checked soak: what was observed, what was violated.
struct SloReport {
  std::vector<SloViolation> violations;
  // Observations (also under "observed" in the JSON form):
  double p99_broker_e2e_ms = 0;
  double p99_hour_slide_ms = 0;
  double oink_warm_hit_rate = -1;  // -1 = oink pass not run
  uint64_t pool_high_water = 0;
  uint64_t peak_agg_buffered_entries = 0;
  uint64_t peak_daemon_queue_entries = 0;
  bool audit_quiescent = false;
  std::string audit_detail;

  bool ok() const { return violations.empty(); }
  std::string ToString() const;
  Json ToJson() const;
};

/// Watches a running cluster and renders the final verdict. Sample() is
/// cheap and meant for a periodic simulator timer: it tracks the peak of
/// the gauge-backed ceilings and fails fast on a mid-run delivery-audit
/// imbalance (an identity leak must name the simulated time it first
/// appeared, not surface hours later at quiescence). Finalize() applies
/// every threshold and the quiescence contract.
class SloChecker {
 public:
  SloChecker(SloThresholds thresholds, scribe::ScribeCluster* cluster);

  void Sample();

  /// `oink_warm_hit_rate` < 0 skips the cache-floor check (pass not run).
  SloReport Finalize(double oink_warm_hit_rate);

 private:
  SloThresholds thresholds_;
  scribe::ScribeCluster* cluster_;
  obs::DeliveryAudit audit_;
  int64_t peak_agg_buffered_ = 0;
  int64_t peak_daemon_queue_ = 0;
  uint64_t samples_ = 0;
  uint64_t midrun_imbalances_ = 0;
  std::string first_imbalance_;
};

}  // namespace unilog::soak

#endif  // UNILOG_SOAK_SLO_H_
