#include "soak/chaos.h"

#include <algorithm>
#include <functional>

#include "common/rng.h"

namespace unilog::soak {

const char* ChaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kAggregatorCrash:
      return "aggregator-crash";
    case ChaosKind::kBrokerCrash:
      return "broker-crash";
    case ChaosKind::kZkExpiryStorm:
      return "zk-expiry-storm";
    case ChaosKind::kStagingBrownout:
      return "staging-brownout";
    case ChaosKind::kWarehouseBrownout:
      return "warehouse-brownout";
    case ChaosKind::kClockSkew:
      return "clock-skew";
    case ChaosKind::kCorruptPart:
      return "corrupt-part";
  }
  return "unknown";
}

std::string ChaosEvent::ToString() const {
  std::string s = TimestampString(at);
  s += " ";
  s += ChaosKindName(kind);
  s += " dc=" + std::to_string(dc) + " index=" + std::to_string(index);
  if (duration_ms > 0) s += " duration=" + std::to_string(duration_ms) + "ms";
  if (count > 1) s += " count=" + std::to_string(count);
  if (skew_ms != 0) s += " skew=" + std::to_string(skew_ms) + "ms";
  return s;
}

ChaosSchedule ChaosSchedule::Generate(const ChaosScheduleOptions& options,
                                      const scribe::ClusterTopology& topology,
                                      TimeMs start, TimeMs end,
                                      uint64_t seed) {
  ChaosSchedule schedule;
  if (end <= start) return schedule;
  Rng rng(seed ^ 0xc4a05u);
  const double days =
      static_cast<double>(end - start) / static_cast<double>(kMillisPerDay);

  // Classify targets once; every fault class draws only from DCs that run
  // the component it attacks.
  std::vector<size_t> agg_dcs;
  std::vector<size_t> brk_dcs;
  for (size_t dc = 0; dc < topology.datacenters.size(); ++dc) {
    if (topology.BrokeredDatacenter(topology.datacenters[dc])) {
      if (topology.brokers_per_dc > 0) brk_dcs.push_back(dc);
    } else if (topology.aggregators_per_dc > 0) {
      agg_dcs.push_back(dc);
    }
  }

  auto draw_at = [&]() {
    return start + static_cast<TimeMs>(
                       rng.Uniform(static_cast<uint64_t>(end - start)));
  };
  auto draw_outage = [&]() {
    return options.min_outage_ms +
           static_cast<TimeMs>(rng.Uniform(static_cast<uint64_t>(
               options.max_outage_ms - options.min_outage_ms + 1)));
  };
  auto add = [&](double per_day, const std::function<ChaosEvent()>& make) {
    uint64_t n = rng.Poisson(per_day * days);
    for (uint64_t i = 0; i < n; ++i) schedule.events_.push_back(make());
  };

  if (!agg_dcs.empty()) {
    add(options.aggregator_crashes_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kAggregatorCrash;
      ev.dc = agg_dcs[rng.Uniform(agg_dcs.size())];
      ev.index = rng.Uniform(static_cast<uint64_t>(topology.aggregators_per_dc));
      ev.duration_ms = draw_outage();
      return ev;
    });
    add(options.clock_skews_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kClockSkew;
      ev.dc = agg_dcs[rng.Uniform(agg_dcs.size())];
      ev.index = rng.Uniform(static_cast<uint64_t>(topology.aggregators_per_dc));
      ev.duration_ms = draw_outage();
      TimeMs magnitude =
          options.min_clock_skew_ms +
          static_cast<TimeMs>(rng.Uniform(static_cast<uint64_t>(
              options.max_clock_skew_ms - options.min_clock_skew_ms + 1)));
      ev.skew_ms = rng.Bernoulli(0.5) ? magnitude : -magnitude;
      return ev;
    });
  }
  if (!brk_dcs.empty()) {
    add(options.broker_crashes_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kBrokerCrash;
      ev.dc = brk_dcs[rng.Uniform(brk_dcs.size())];
      ev.index = rng.Uniform(static_cast<uint64_t>(topology.brokers_per_dc));
      ev.duration_ms = draw_outage();
      return ev;
    });
    add(options.zk_storms_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kZkExpiryStorm;
      ev.dc = brk_dcs[rng.Uniform(brk_dcs.size())];
      ev.index = rng.Uniform(static_cast<uint64_t>(topology.brokers_per_dc));
      ev.count = 1 + static_cast<int>(rng.Uniform(
                         static_cast<uint64_t>(topology.brokers_per_dc)));
      return ev;
    });
  }
  if (topology.staging_hdfs.num_datanodes > 1) {
    add(options.staging_brownouts_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kStagingBrownout;
      ev.dc = rng.Uniform(topology.datacenters.size());
      int n = topology.staging_hdfs.num_datanodes;
      ev.index = rng.Uniform(static_cast<uint64_t>(n));
      // Leave at least one live datanode so rolls keep landing; reads of
      // darkened blocks fail until the restore and the mover just retries.
      ev.count = 1 + static_cast<int>(rng.Uniform(static_cast<uint64_t>(n - 1)));
      ev.duration_ms = draw_outage();
      return ev;
    });
  }
  if (topology.warehouse_hdfs.num_datanodes > 1) {
    add(options.warehouse_brownouts_per_day, [&] {
      ChaosEvent ev;
      ev.at = draw_at();
      ev.kind = ChaosKind::kWarehouseBrownout;
      ev.dc = 0;  // one shared warehouse
      int n = topology.warehouse_hdfs.num_datanodes;
      ev.index = rng.Uniform(static_cast<uint64_t>(n));
      // Never darken a full replica set's worth of nodes at once: every
      // block keeps a live replica, so warehouse reads ride through.
      int cap = std::max(1, topology.warehouse_hdfs.replication - 1);
      ev.count = 1 + static_cast<int>(
                         rng.Uniform(static_cast<uint64_t>(cap)));
      ev.duration_ms = draw_outage();
      return ev;
    });
  }
  add(options.corrupt_parts_per_day, [&] {
    ChaosEvent ev;
    ev.at = draw_at();
    ev.kind = ChaosKind::kCorruptPart;
    return ev;
  });

  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

std::string ChaosSchedule::ToString() const {
  std::string out;
  for (const auto& ev : events_) {
    out += ev.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace unilog::soak
