#include "soak/slo.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace unilog::soak {

std::string SloViolation::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "SLO VIOLATION %s: observed %.1f, bound %.1f",
                name.c_str(), observed, bound);
  std::string s = buf;
  if (!detail.empty()) s += " (" + detail + ")";
  return s;
}

std::string SloReport::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "p99_broker_e2e_ms=%.0f p99_hour_slide_ms=%.0f "
                "oink_warm_hit_rate=%.3f pool_high_water=%llu "
                "peak_agg_buffered=%llu peak_daemon_queue=%llu quiescent=%s",
                p99_broker_e2e_ms, p99_hour_slide_ms, oink_warm_hit_rate,
                static_cast<unsigned long long>(pool_high_water),
                static_cast<unsigned long long>(peak_agg_buffered_entries),
                static_cast<unsigned long long>(peak_daemon_queue_entries),
                audit_quiescent ? "yes" : "NO");
  std::string s = buf;
  for (const auto& v : violations) {
    s += "\n  ";
    s += v.ToString();
  }
  return s;
}

Json SloReport::ToJson() const {
  Json observed = Json::Object();
  observed.Set("p99_broker_e2e_ms", Json::Number(p99_broker_e2e_ms));
  observed.Set("p99_hour_slide_ms", Json::Number(p99_hour_slide_ms));
  observed.Set("oink_warm_hit_rate", Json::Number(oink_warm_hit_rate));
  observed.Set("pool_high_water",
               Json::Int(static_cast<int64_t>(pool_high_water)));
  observed.Set("peak_agg_buffered_entries",
               Json::Int(static_cast<int64_t>(peak_agg_buffered_entries)));
  observed.Set("peak_daemon_queue_entries",
               Json::Int(static_cast<int64_t>(peak_daemon_queue_entries)));
  observed.Set("audit_quiescent", Json::Bool(audit_quiescent));

  Json viols = Json::Array();
  for (const auto& v : violations) {
    Json j = Json::Object();
    j.Set("name", Json::Str(v.name));
    j.Set("observed", Json::Number(v.observed));
    j.Set("bound", Json::Number(v.bound));
    if (!v.detail.empty()) j.Set("detail", Json::Str(v.detail));
    viols.Push(std::move(j));
  }

  Json report = Json::Object();
  report.Set("ok", Json::Bool(ok()));
  report.Set("observed", std::move(observed));
  report.Set("violations", std::move(viols));
  return report;
}

SloChecker::SloChecker(SloThresholds thresholds,
                       scribe::ScribeCluster* cluster)
    : thresholds_(thresholds), cluster_(cluster), audit_(cluster) {}

void SloChecker::Sample() {
  ++samples_;
  const obs::MetricsRegistry* metrics = cluster_->metrics();
  peak_agg_buffered_ = std::max(
      peak_agg_buffered_, metrics->GaugeTotal("agg.buffered_entries"));
  peak_daemon_queue_ = std::max(
      peak_daemon_queue_, metrics->GaugeTotal("daemon.queue_entries"));
  // A mid-run identity imbalance is a leak the moment it appears; record
  // the first simulated timestamp so the report points at the window the
  // bug opened, not at the end of the soak.
  if (midrun_imbalances_ == 0) {
    obs::DeliverySnapshot snap = audit_.Snapshot();
    if (!snap.Balanced()) {
      ++midrun_imbalances_;
      first_imbalance_ = TimestampString(snap.at) + ": " + snap.ToString();
    }
  }
}

SloReport SloChecker::Finalize(double oink_warm_hit_rate) {
  SloReport report;
  obs::MetricsRegistry* metrics = cluster_->metrics();

  auto violate = [&report](std::string name, double observed, double bound,
                           std::string detail = "") {
    report.violations.push_back(
        {std::move(name), observed, bound, std::move(detail)});
  };

  // --- Quiescence: the audit identity must hold with zero in flight.
  Status quiescent = audit_.AssertQuiescent();
  report.audit_quiescent = quiescent.ok();
  if (!quiescent.ok()) {
    report.audit_detail = quiescent.message();
    violate("audit_quiescent", 0, 0, quiescent.message());
  }
  if (midrun_imbalances_ > 0) {
    violate("audit_midrun_balance", static_cast<double>(midrun_imbalances_), 0,
            first_imbalance_);
  }

  // --- Tail latency. An empty histogram (e.g. no brokered DC) passes.
  const obs::Histogram* e2e =
      metrics->GetHistogram("broker.e2e_latency_ms");
  if (e2e->count() > 0) {
    report.p99_broker_e2e_ms = obs::HistogramQuantile(*e2e, 0.99);
    if (report.p99_broker_e2e_ms > thresholds_.p99_broker_e2e_ms) {
      violate("p99_broker_e2e_ms", report.p99_broker_e2e_ms,
              thresholds_.p99_broker_e2e_ms);
    }
  }
  const obs::Histogram* slide =
      metrics->GetHistogram("mover.hour_slide_latency_ms");
  if (slide->count() > 0) {
    report.p99_hour_slide_ms = obs::HistogramQuantile(*slide, 0.99);
    if (report.p99_hour_slide_ms > thresholds_.p99_hour_slide_ms) {
      violate("p99_hour_slide_ms", report.p99_hour_slide_ms,
              thresholds_.p99_hour_slide_ms);
    }
  }

  // --- Oink cache floor (only when the harness ran the cold+warm pass).
  report.oink_warm_hit_rate = oink_warm_hit_rate;
  if (oink_warm_hit_rate >= 0 &&
      oink_warm_hit_rate < thresholds_.min_oink_warm_hit_rate) {
    violate("oink_warm_hit_rate", oink_warm_hit_rate,
            thresholds_.min_oink_warm_hit_rate);
  }

  // --- Memory ceilings.
  report.pool_high_water = static_cast<uint64_t>(
      std::max<int64_t>(0, metrics->GaugeTotal("scribe.ingest.pool_high_water")));
  if (report.pool_high_water > thresholds_.max_pool_high_water) {
    violate("pool_high_water", static_cast<double>(report.pool_high_water),
            static_cast<double>(thresholds_.max_pool_high_water));
  }
  report.peak_agg_buffered_entries =
      static_cast<uint64_t>(std::max<int64_t>(0, peak_agg_buffered_));
  if (report.peak_agg_buffered_entries >
      thresholds_.max_agg_buffered_entries) {
    violate("peak_agg_buffered_entries",
            static_cast<double>(report.peak_agg_buffered_entries),
            static_cast<double>(thresholds_.max_agg_buffered_entries));
  }
  report.peak_daemon_queue_entries =
      static_cast<uint64_t>(std::max<int64_t>(0, peak_daemon_queue_));
  if (report.peak_daemon_queue_entries >
      thresholds_.max_daemon_queue_entries) {
    violate("peak_daemon_queue_entries",
            static_cast<double>(report.peak_daemon_queue_entries),
            static_cast<double>(thresholds_.max_daemon_queue_entries));
  }
  return report;
}

}  // namespace unilog::soak
