#ifndef UNILOG_SESSIONS_SESSIONIZER_H_
#define UNILOG_SESSIONS_SESSIONIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "events/client_event.h"
#include "exec/executor.h"

namespace unilog::sessions {

/// A reconstructed user session: the ordered event names between two
/// 30-minute inactivity gaps for one (user_id, session_id) pair.
struct Session {
  int64_t user_id = 0;
  std::string session_id;
  std::string ip;
  TimeMs start = 0;
  TimeMs end = 0;
  /// Event names in timestamp order.
  std::vector<std::string> event_names;

  /// Session duration in seconds ("temporal interval between the first and
  /// last event in the session", §4.2).
  int32_t DurationSeconds() const {
    return static_cast<int32_t>((end - start) / kMillisPerSecond);
  }
};

/// Sessionization options.
struct SessionizerOptions {
  /// Inactivity gap that delimits sessions; the paper's standard 30 min.
  TimeMs inactivity_gap_ms = kSessionInactivityGapMs;
};

/// Reconstructs sessions from client events: the big group-by on
/// (user_id, session_id) followed by a timestamp sort and gap splitting
/// (§4.2). Order of Add calls does not matter — log files arrive only
/// partially time-ordered, and this handles that.
class Sessionizer {
 public:
  explicit Sessionizer(SessionizerOptions options = {}) : options_(options) {}

  /// Accumulates one event.
  void Add(const events::ClientEvent& event);

  /// Number of events accumulated.
  uint64_t event_count() const { return event_count_; }

  /// Builds all sessions: per group, sorts by timestamp and splits at
  /// inactivity gaps. Sessions are ordered by (user_id, session_id, start).
  /// Leaves the accumulated state intact (Build may be called repeatedly).
  std::vector<Session> Build() const;

  /// Like Build(), but the per-group sort/split fans out across the
  /// executor's worker threads; groups are written to per-group slots and
  /// concatenated in key order, so the result is byte-identical to the
  /// serial Build() at any thread count.
  std::vector<Session> Build(exec::Executor* exec) const;

 private:
  struct GroupKey {
    int64_t user_id;
    std::string session_id;
    bool operator<(const GroupKey& other) const {
      if (user_id != other.user_id) return user_id < other.user_id;
      return session_id < other.session_id;
    }
  };
  struct PendingEvent {
    TimeMs timestamp;
    std::string event_name;
    std::string ip;
  };

  SessionizerOptions options_;
  std::map<GroupKey, std::vector<PendingEvent>> groups_;
  uint64_t event_count_ = 0;
};

}  // namespace unilog::sessions

#endif  // UNILOG_SESSIONS_SESSIONIZER_H_
