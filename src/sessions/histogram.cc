#include "sessions/histogram.h"

#include <algorithm>

namespace unilog::sessions {

void EventHistogram::Add(const std::string& event_name,
                         const std::string* sample_payload) {
  ++counts_[event_name];
  ++total_;
  if (sample_payload != nullptr) {
    auto& samples = samples_[event_name];
    if (samples.size() < kMaxSamples) {
      samples.push_back(*sample_payload);
    }
  }
}

void EventHistogram::AddCount(const std::string& event_name, uint64_t n) {
  if (n == 0) return;
  counts_[event_name] += n;
  total_ += n;
}

void EventHistogram::Merge(const EventHistogram& other) {
  for (const auto& [name, count] : other.counts_) {
    counts_[name] += count;
    total_ += count;
  }
  for (const auto& [name, samples] : other.samples_) {
    auto& mine = samples_[name];
    for (const auto& s : samples) {
      if (mine.size() >= kMaxSamples) break;
      mine.push_back(s);
    }
  }
}

uint64_t EventHistogram::CountOf(const std::string& event_name) const {
  auto it = counts_.find(event_name);
  return it == counts_.end() ? 0 : it->second;
}

const std::vector<std::string>& EventHistogram::SamplesOf(
    const std::string& event_name) const {
  static const std::vector<std::string>* kEmpty =
      new std::vector<std::string>();
  auto it = samples_.find(event_name);
  return it == samples_.end() ? *kEmpty : it->second;
}

std::vector<std::pair<std::string, uint64_t>>
EventHistogram::SortedByFrequency() const {
  std::vector<std::pair<std::string, uint64_t>> out(counts_.begin(),
                                                    counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace unilog::sessions
