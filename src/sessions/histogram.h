#ifndef UNILOG_SESSIONS_HISTOGRAM_H_
#define UNILOG_SESSIONS_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace unilog::sessions {

/// The daily event-count histogram job (§4.2): "Oink triggers a job that
/// scans the client event logs to compute a histogram of event counts.
/// These counts, as well as samples of each event type, are stored in a
/// known location in HDFS." The histogram both seeds the dictionary
/// (frequency-ordered code points) and feeds the client event catalog
/// (counts + example payloads).
class EventHistogram {
 public:
  /// Keep at most this many example payloads per event type.
  static constexpr size_t kMaxSamples = 3;

  /// Counts one occurrence; optionally retains `sample_payload` (the
  /// serialized Thrift message) as a catalog example.
  void Add(const std::string& event_name,
           const std::string* sample_payload = nullptr);

  /// Counts `n` occurrences at once (merge path).
  void AddCount(const std::string& event_name, uint64_t n);

  /// Merges another histogram into this one (distributed-job combiner).
  void Merge(const EventHistogram& other);

  uint64_t CountOf(const std::string& event_name) const;
  uint64_t total_events() const { return total_; }
  size_t distinct_events() const { return counts_.size(); }

  const std::map<std::string, uint64_t>& counts() const { return counts_; }
  const std::vector<std::string>& SamplesOf(
      const std::string& event_name) const;

  /// (event_name, count) pairs sorted by descending count, ties broken by
  /// name — the dictionary-assignment order.
  std::vector<std::pair<std::string, uint64_t>> SortedByFrequency() const;

 private:
  std::map<std::string, uint64_t> counts_;
  std::map<std::string, std::vector<std::string>> samples_;
  uint64_t total_ = 0;
};

}  // namespace unilog::sessions

#endif  // UNILOG_SESSIONS_HISTOGRAM_H_
