#include "sessions/sessionizer.h"

#include <algorithm>

namespace unilog::sessions {

void Sessionizer::Add(const events::ClientEvent& event) {
  GroupKey key{event.user_id, event.session_id};
  groups_[key].push_back(
      PendingEvent{event.timestamp, event.event_name, event.ip});
  ++event_count_;
}

namespace {

/// Sorts one group's events by timestamp and splits at inactivity gaps,
/// appending the resulting sessions to *out. Shared by the serial and
/// parallel Build paths so they are the same computation per group.
template <typename Key, typename Pending>
void BuildGroup(const Key& key, const std::vector<Pending>& pending,
                TimeMs inactivity_gap_ms, std::vector<Session>* out) {
  // Sort a copy by timestamp (stable so same-timestamp events keep
  // arrival order deterministically).
  std::vector<const Pending*> ordered;
  ordered.reserve(pending.size());
  for (const auto& ev : pending) ordered.push_back(&ev);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Pending* a, const Pending* b) {
                     return a->timestamp < b->timestamp;
                   });

  Session current;
  bool open = false;
  for (const Pending* ev : ordered) {
    if (open && ev->timestamp - current.end > inactivity_gap_ms) {
      out->push_back(current);
      open = false;
    }
    if (!open) {
      current = Session{};
      current.user_id = key.user_id;
      current.session_id = key.session_id;
      current.ip = ev->ip;
      current.start = ev->timestamp;
      current.end = ev->timestamp;
      open = true;
    }
    current.end = ev->timestamp;
    current.event_names.push_back(ev->event_name);
  }
  if (open) out->push_back(current);
}

}  // namespace

std::vector<Session> Sessionizer::Build() const {
  std::vector<Session> sessions;
  for (const auto& [key, pending] : groups_) {
    BuildGroup(key, pending, options_.inactivity_gap_ms, &sessions);
  }
  return sessions;
}

std::vector<Session> Sessionizer::Build(exec::Executor* exec) const {
  if (exec == nullptr || !exec->parallel()) return Build();
  // One task per (user_id, session_id) group, each writing a private slot;
  // concatenating slots in key order reproduces the serial loop exactly.
  std::vector<const std::pair<const GroupKey, std::vector<PendingEvent>>*>
      group_ptrs;
  group_ptrs.reserve(groups_.size());
  for (const auto& entry : groups_) group_ptrs.push_back(&entry);
  std::vector<std::vector<Session>> slots(group_ptrs.size());
  exec->ParallelFor("sessionize", group_ptrs.size(), [&](size_t g) {
    BuildGroup(group_ptrs[g]->first, group_ptrs[g]->second,
               options_.inactivity_gap_ms, &slots[g]);
  });
  std::vector<Session> sessions;
  for (auto& slot : slots) {
    for (auto& session : slot) sessions.push_back(std::move(session));
  }
  return sessions;
}

}  // namespace unilog::sessions
