#include "sessions/sessionizer.h"

#include <algorithm>

namespace unilog::sessions {

void Sessionizer::Add(const events::ClientEvent& event) {
  GroupKey key{event.user_id, event.session_id};
  groups_[key].push_back(
      PendingEvent{event.timestamp, event.event_name, event.ip});
  ++event_count_;
}

std::vector<Session> Sessionizer::Build() const {
  std::vector<Session> sessions;
  for (const auto& [key, pending] : groups_) {
    // Sort a copy by timestamp (stable so same-timestamp events keep
    // arrival order deterministically).
    std::vector<const PendingEvent*> ordered;
    ordered.reserve(pending.size());
    for (const auto& ev : pending) ordered.push_back(&ev);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const PendingEvent* a, const PendingEvent* b) {
                       return a->timestamp < b->timestamp;
                     });

    Session current;
    bool open = false;
    for (const PendingEvent* ev : ordered) {
      if (open && ev->timestamp - current.end > options_.inactivity_gap_ms) {
        sessions.push_back(current);
        open = false;
      }
      if (!open) {
        current = Session{};
        current.user_id = key.user_id;
        current.session_id = key.session_id;
        current.ip = ev->ip;
        current.start = ev->timestamp;
        current.end = ev->timestamp;
        open = true;
      }
      current.end = ev->timestamp;
      current.event_names.push_back(ev->event_name);
    }
    if (open) sessions.push_back(current);
  }
  return sessions;
}

}  // namespace unilog::sessions
