#ifndef UNILOG_SESSIONS_DICTIONARY_H_
#define UNILOG_SESSIONS_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "events/event_name.h"

namespace unilog::sessions {

/// The client event dictionary (§4.2): a bijective mapping between event
/// names and unicode code points, assigned so that *more frequent events
/// get smaller code points*. Since smaller code points need fewer UTF-8
/// bytes, the mapping is a variable-length code: the most common ~90
/// events cost one byte each, the next ~1900 two bytes, and so on. A
/// session sequence is then simply a valid unicode string.
class EventDictionary {
 public:
  EventDictionary() = default;

  /// Builds the dictionary from (event_name, count) pairs already sorted by
  /// descending frequency (EventHistogram::SortedByFrequency output).
  /// Fails if there are more names than encodable code points (~1.1M).
  static Result<EventDictionary> FromSortedCounts(
      const std::vector<std::pair<std::string, uint64_t>>& sorted);

  /// Builds with an arbitrary (non-frequency) assignment — the ablation
  /// baseline for E11.
  static Result<EventDictionary> FromNamesInGivenOrder(
      const std::vector<std::string>& names);

  /// The `n`-th valid code point in the assignment order: 1, 2, ... with
  /// the UTF-16 surrogate gap (U+D800..U+DFFF) skipped. Exposed for tests.
  static Result<uint32_t> NthCodePoint(uint64_t n);

  /// Name → code point; NotFound for unknown events.
  Result<uint32_t> CodePointFor(std::string_view event_name) const;
  /// Code point → name; NotFound for unassigned code points.
  Result<std::string> NameFor(uint32_t code_point) const;
  bool Contains(std::string_view event_name) const;

  size_t size() const { return names_.size(); }

  /// All names in code-point order (index i ↔ the i-th assigned cp).
  const std::vector<std::string>& names_in_order() const { return names_; }

  /// Expands a wildcard pattern to the set of matching code points — how
  /// the CountClientEvents UDF turns '$EVENTS' regexes into string-matching
  /// code (§5.2).
  std::vector<uint32_t> Expand(const events::EventPattern& pattern) const;

  /// Encodes a sequence of event names as a UTF-8 session-sequence string.
  Result<std::string> EncodeNames(const std::vector<std::string>& names) const;
  /// Decodes a session-sequence string back to event names.
  Result<std::vector<std::string>> DecodeToNames(std::string_view utf8) const;

  /// Persistence (stored "in a known location in HDFS" daily): framed
  /// names in code-point order.
  std::string Serialize() const;
  static Result<EventDictionary> Deserialize(std::string_view data);

 private:
  std::vector<std::string> names_;                      // index = cp order
  std::vector<uint32_t> code_points_;                   // parallel to names_
  std::unordered_map<std::string, uint32_t> name_to_cp_;
  std::unordered_map<uint32_t, uint32_t> cp_to_index_;
};

}  // namespace unilog::sessions

#endif  // UNILOG_SESSIONS_DICTIONARY_H_
