#include "sessions/session_sequence.h"

#include <cstdio>

#include "common/coding.h"
#include "common/compress.h"
#include "common/utf8.h"

namespace unilog::sessions {

size_t SessionSequence::EventCount() const { return Utf8Length(sequence); }

bool SessionSequence::operator==(const SessionSequence& other) const {
  return user_id == other.user_id && session_id == other.session_id &&
         ip == other.ip && sequence == other.sequence &&
         duration_seconds == other.duration_seconds;
}

Result<SessionSequence> EncodeSession(const Session& session,
                                      const EventDictionary& dict) {
  SessionSequence seq;
  seq.user_id = session.user_id;
  seq.session_id = session.session_id;
  seq.ip = session.ip;
  seq.duration_seconds = session.DurationSeconds();
  UNILOG_ASSIGN_OR_RETURN(seq.sequence, dict.EncodeNames(session.event_names));
  return seq;
}

void AppendSequenceRecord(std::string* out, const SessionSequence& seq) {
  PutSignedVarint64(out, seq.user_id);
  PutLengthPrefixed(out, seq.session_id);
  PutLengthPrefixed(out, seq.ip);
  PutLengthPrefixed(out, seq.sequence);
  PutVarint64(out, static_cast<uint64_t>(seq.duration_seconds));
}

Status SequenceRecordReader::Next(SessionSequence* out) {
  if (pos_ >= body_.size()) return Status::NotFound("end of stream");
  Decoder dec(body_.substr(pos_));
  int64_t user_id;
  UNILOG_RETURN_NOT_OK(dec.GetSignedVarint64(&user_id));
  std::string_view session_id, ip, sequence;
  UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&session_id));
  UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&ip));
  UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&sequence));
  uint64_t duration;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&duration));
  pos_ += dec.position();
  out->user_id = user_id;
  out->session_id = std::string(session_id);
  out->ip = std::string(ip);
  out->sequence = std::string(sequence);
  out->duration_seconds = static_cast<int32_t>(duration);
  return Status::OK();
}

std::string SequenceStore::PartitionDir(TimeMs date) {
  return std::string(kRoot) + "/" + DateString(date);
}

Status SequenceStore::WriteDaily(hdfs::MiniHdfs* fs, TimeMs date,
                                 const std::vector<SessionSequence>& sequences,
                                 const EventDictionary& dict,
                                 const WriteOptions& options) {
  std::string dir = PartitionDir(date);
  if (fs->Exists(dir)) {
    return Status::AlreadyExists("partition exists: " + dir);
  }
  UNILOG_RETURN_NOT_OK(fs->Mkdirs(dir));
  UNILOG_RETURN_NOT_OK(fs->WriteFile(dir + "/_dictionary", dict.Serialize()));

  std::string body;
  uint64_t part = 0;
  auto flush = [&]() -> Status {
    if (body.empty()) return Status::OK();
    char name[32];
    std::snprintf(name, sizeof(name), "part-%05llu",
                  static_cast<unsigned long long>(part++));
    std::string out = options.compress ? Lz::Compress(body) : body;
    UNILOG_RETURN_NOT_OK(fs->WriteFile(dir + "/" + name, out));
    body.clear();
    return Status::OK();
  };
  for (const auto& seq : sequences) {
    AppendSequenceRecord(&body, seq);
    if (body.size() >= options.target_file_bytes) {
      UNILOG_RETURN_NOT_OK(flush());
    }
  }
  UNILOG_RETURN_NOT_OK(flush());
  // Success marker, Hadoop-style.
  return fs->WriteFile(dir + "/_SUCCESS", "");
}

Result<EventDictionary> SequenceStore::LoadDictionary(
    const hdfs::MiniHdfs& fs, TimeMs date) {
  UNILOG_ASSIGN_OR_RETURN(
      std::string data, fs.ReadFile(PartitionDir(date) + "/_dictionary"));
  return EventDictionary::Deserialize(data);
}

Result<std::vector<SessionSequence>> SequenceStore::LoadDaily(
    const hdfs::MiniHdfs& fs, TimeMs date) {
  std::string dir = PartitionDir(date);
  UNILOG_ASSIGN_OR_RETURN(auto files, fs.ListRecursive(dir));
  std::vector<SessionSequence> out;
  for (const auto& file : files) {
    // Skip metadata files (_dictionary, _SUCCESS).
    size_t slash = file.path.rfind('/');
    if (file.path[slash + 1] == '_') continue;
    UNILOG_ASSIGN_OR_RETURN(std::string blob, fs.ReadFile(file.path));
    UNILOG_ASSIGN_OR_RETURN(std::string body, Lz::Decompress(blob));
    SequenceRecordReader reader(body);
    SessionSequence seq;
    while (true) {
      Status st = reader.Next(&seq);
      if (st.IsNotFound()) break;
      UNILOG_RETURN_NOT_OK(st);
      out.push_back(seq);
    }
  }
  return out;
}

}  // namespace unilog::sessions
