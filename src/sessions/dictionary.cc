#include "sessions/dictionary.h"

#include "common/coding.h"
#include "common/utf8.h"

namespace unilog::sessions {

Result<uint32_t> EventDictionary::NthCodePoint(uint64_t n) {
  // Assignment starts at 1 (0 is reserved so sequences never contain NUL,
  // which keeps them friendly to C-string tooling) and skips the surrogate
  // block.
  uint64_t cp = n + 1;
  if (cp >= kSurrogateLo) cp += (kSurrogateHi - kSurrogateLo + 1);
  if (cp > kMaxCodePoint) {
    return Status::OutOfRange("event alphabet exceeds unicode code points");
  }
  return static_cast<uint32_t>(cp);
}

Result<EventDictionary> EventDictionary::FromSortedCounts(
    const std::vector<std::pair<std::string, uint64_t>>& sorted) {
  std::vector<std::string> names;
  names.reserve(sorted.size());
  for (const auto& [name, count] : sorted) names.push_back(name);
  return FromNamesInGivenOrder(names);
}

Result<EventDictionary> EventDictionary::FromNamesInGivenOrder(
    const std::vector<std::string>& names) {
  EventDictionary dict;
  dict.names_.reserve(names.size());
  dict.code_points_.reserve(names.size());
  for (uint64_t i = 0; i < names.size(); ++i) {
    const std::string& name = names[i];
    if (dict.name_to_cp_.count(name)) {
      return Status::InvalidArgument("duplicate event name: " + name);
    }
    UNILOG_ASSIGN_OR_RETURN(uint32_t cp, NthCodePoint(i));
    dict.name_to_cp_.emplace(name, cp);
    dict.cp_to_index_.emplace(cp, static_cast<uint32_t>(i));
    dict.names_.push_back(name);
    dict.code_points_.push_back(cp);
  }
  return dict;
}

Result<uint32_t> EventDictionary::CodePointFor(
    std::string_view event_name) const {
  auto it = name_to_cp_.find(std::string(event_name));
  if (it == name_to_cp_.end()) {
    return Status::NotFound("event not in dictionary: " +
                            std::string(event_name));
  }
  return it->second;
}

Result<std::string> EventDictionary::NameFor(uint32_t code_point) const {
  auto it = cp_to_index_.find(code_point);
  if (it == cp_to_index_.end()) {
    return Status::NotFound("code point not in dictionary: " +
                            std::to_string(code_point));
  }
  return names_[it->second];
}

bool EventDictionary::Contains(std::string_view event_name) const {
  return name_to_cp_.count(std::string(event_name)) > 0;
}

std::vector<uint32_t> EventDictionary::Expand(
    const events::EventPattern& pattern) const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < names_.size(); ++i) {
    if (pattern.Matches(names_[i])) out.push_back(code_points_[i]);
  }
  return out;
}

Result<std::string> EventDictionary::EncodeNames(
    const std::vector<std::string>& names) const {
  std::string out;
  for (const auto& name : names) {
    UNILOG_ASSIGN_OR_RETURN(uint32_t cp, CodePointFor(name));
    UNILOG_RETURN_NOT_OK(AppendUtf8(&out, cp));
  }
  return out;
}

Result<std::vector<std::string>> EventDictionary::DecodeToNames(
    std::string_view utf8) const {
  UNILOG_ASSIGN_OR_RETURN(std::vector<uint32_t> cps, DecodeUtf8(utf8));
  std::vector<std::string> out;
  out.reserve(cps.size());
  for (uint32_t cp : cps) {
    UNILOG_ASSIGN_OR_RETURN(std::string name, NameFor(cp));
    out.push_back(std::move(name));
  }
  return out;
}

std::string EventDictionary::Serialize() const {
  std::string out;
  PutVarint64(&out, names_.size());
  for (const auto& name : names_) {
    PutLengthPrefixed(&out, name);
  }
  return out;
}

Result<EventDictionary> EventDictionary::Deserialize(std::string_view data) {
  Decoder dec(data);
  uint64_t n;
  UNILOG_RETURN_NOT_OK(dec.GetVarint64(&n));
  std::vector<std::string> names;
  names.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    std::string_view name;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&name));
    names.emplace_back(name);
  }
  if (!dec.AtEnd()) return Status::Corruption("dictionary: trailing bytes");
  return FromNamesInGivenOrder(names);
}

}  // namespace unilog::sessions
