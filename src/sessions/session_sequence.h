#ifndef UNILOG_SESSIONS_SESSION_SEQUENCE_H_
#define UNILOG_SESSIONS_SESSION_SEQUENCE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/sessionizer.h"

namespace unilog::sessions {

/// The materialized relation of §4.2 (one tuple per session):
///   user_id: long, session_id: string, ip: string,
///   session_sequence: string, duration: int
/// `sequence` is a valid UTF-8 string: one code point per client event, in
/// order, mapped through the EventDictionary. Other than the overall
/// duration, no temporal information survives — an explicit design choice
/// for compactness.
struct SessionSequence {
  int64_t user_id = 0;
  std::string session_id;
  std::string ip;
  std::string sequence;  // UTF-8 code points
  int32_t duration_seconds = 0;

  /// Number of events in the session (code points in `sequence`).
  size_t EventCount() const;

  bool operator==(const SessionSequence& other) const;
};

/// Encodes a reconstructed session through the dictionary.
Result<SessionSequence> EncodeSession(const Session& session,
                                      const EventDictionary& dict);

/// Serialization of one record (varint/length-prefixed fields).
void AppendSequenceRecord(std::string* out, const SessionSequence& seq);

/// On-disk daily partition of session sequences under
/// /session_sequences/YYYY-MM-DD/: compressed framed record files plus the
/// day's _dictionary. This is the layout the Pig loader
/// (SessionSequencesLoader in §5.2) abstracts over.
class SequenceStore {
 public:
  /// Root directory in the warehouse.
  static constexpr const char* kRoot = "/session_sequences";

  /// Options for writing a daily partition.
  struct WriteOptions {
    uint64_t target_file_bytes = 4 * 1024 * 1024;  // pre-compression
    bool compress = true;
  };

  /// Writes a day's sequences and dictionary. Fails if the partition
  /// already exists (daily jobs are write-once; rerun after a Delete).
  static Status WriteDaily(hdfs::MiniHdfs* fs, TimeMs date,
                           const std::vector<SessionSequence>& sequences,
                           const EventDictionary& dict,
                           const WriteOptions& options);
  static Status WriteDaily(hdfs::MiniHdfs* fs, TimeMs date,
                           const std::vector<SessionSequence>& sequences,
                           const EventDictionary& dict) {
    return WriteDaily(fs, date, sequences, dict, WriteOptions());
  }

  /// Loads the day's dictionary.
  static Result<EventDictionary> LoadDictionary(const hdfs::MiniHdfs& fs,
                                                TimeMs date);

  /// Loads all of a day's sequences (small-scale convenience; queries that
  /// care about scan cost use the dataflow engine instead).
  static Result<std::vector<SessionSequence>> LoadDaily(
      const hdfs::MiniHdfs& fs, TimeMs date);

  /// The partition directory for a date.
  static std::string PartitionDir(TimeMs date);
};

/// Streaming decoder over one (decompressed) sequence-file body.
class SequenceRecordReader {
 public:
  explicit SequenceRecordReader(std::string_view body) : body_(body) {}

  /// Reads the next record; NotFound at clean end of stream.
  Status Next(SessionSequence* out);

 private:
  std::string_view body_;
  size_t pos_ = 0;
};

}  // namespace unilog::sessions

#endif  // UNILOG_SESSIONS_SESSION_SEQUENCE_H_
