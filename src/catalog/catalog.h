#ifndef UNILOG_CATALOG_CATALOG_H_
#define UNILOG_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "common/status.h"
#include "events/event_name.h"
#include "hdfs/mini_hdfs.h"
#include "sessions/dictionary.h"
#include "sessions/histogram.h"

namespace unilog::catalog {

/// One catalog entry: everything the browsing interface shows for an event
/// type (§4.3).
struct CatalogEntry {
  std::string name;
  uint32_t code_point = 0;
  uint64_t count = 0;
  /// Rendered example Thrift payloads (from the histogram's sampling).
  std::vector<std::string> samples;
  /// Developer-supplied description; empty until attached.
  std::string description;
};

/// The automatically-generated client event catalog: rebuilt daily from
/// the dictionary job, "always up to date", browsable "hierarchically, by
/// each of the namespace components, and using regular expressions", with
/// a few illustrative payload examples per event and optional
/// developer-attached descriptions (§4.3).
class EventCatalog {
 public:
  /// Builds from the day's histogram and dictionary. Sample payloads are
  /// parsed as compact Thrift and rendered; unparseable samples are kept
  /// raw (hex-escaped).
  static EventCatalog Build(const sessions::EventHistogram& histogram,
                            const sessions::EventDictionary& dict);

  size_t size() const { return entries_.size(); }

  /// Lookup by exact name.
  const CatalogEntry* Find(const std::string& name) const;

  /// Hierarchical browsing: entries whose name starts with `prefix`
  /// (at a component boundary), e.g. "web:home".
  std::vector<const CatalogEntry*> ByPrefix(const std::string& prefix) const;

  /// Wildcard-pattern browsing.
  std::vector<const CatalogEntry*> ByPattern(
      const events::EventPattern& pattern) const;

  /// Browsing by one namespace component value, e.g. all events whose
  /// section is "mentions".
  std::vector<const CatalogEntry*> ByComponent(events::NameComponent which,
                                               const std::string& value) const;

  /// All entries sorted by descending count (the default landing view).
  std::vector<const CatalogEntry*> ByCount() const;

  /// Attaches a developer description; NotFound for unknown events.
  Status AttachDescription(const std::string& name, std::string description);

  /// Carries descriptions forward from yesterday's catalog (rebuilding
  /// daily must not lose manual annotations).
  void InheritDescriptions(const EventCatalog& previous);

  /// Exports the whole catalog as JSON for the browsing UI.
  Json ExportJson() const;

  /// Persists the catalog as JSON to a warehouse file (the paper keeps the
  /// daily dictionary-job outputs "in a known location in HDFS").
  /// Overwrites an existing file.
  Status SaveTo(hdfs::MiniHdfs* fs, const std::string& path) const;

  /// Loads a previously saved catalog (counts, code points, descriptions,
  /// and the *rendered* samples).
  static Result<EventCatalog> LoadFrom(const hdfs::MiniHdfs& fs,
                                       const std::string& path);

 private:
  std::map<std::string, CatalogEntry> entries_;
};

}  // namespace unilog::catalog

#endif  // UNILOG_CATALOG_CATALOG_H_
