#include "catalog/catalog.h"

#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "thrift/compact_protocol.h"

namespace unilog::catalog {

namespace {

std::string RenderSample(const std::string& payload) {
  auto parsed = thrift::ParseStruct(payload);
  if (parsed.ok()) return parsed->ToString();
  // Unparseable: hex-escape a prefix so the catalog still shows something.
  std::string out = "<raw:";
  size_t limit = payload.size() < 16 ? payload.size() : 16;
  char buf[4];
  for (size_t i = 0; i < limit; ++i) {
    std::snprintf(buf, sizeof(buf), "%02x",
                  static_cast<unsigned char>(payload[i]));
    out += buf;
  }
  out += ">";
  return out;
}

}  // namespace

EventCatalog EventCatalog::Build(const sessions::EventHistogram& histogram,
                                 const sessions::EventDictionary& dict) {
  EventCatalog catalog;
  for (const auto& [name, count] : histogram.counts()) {
    CatalogEntry entry;
    entry.name = name;
    entry.count = count;
    auto cp = dict.CodePointFor(name);
    entry.code_point = cp.ok() ? *cp : 0;
    for (const auto& sample : histogram.SamplesOf(name)) {
      entry.samples.push_back(RenderSample(sample));
    }
    catalog.entries_.emplace(name, std::move(entry));
  }
  return catalog;
}

const CatalogEntry* EventCatalog::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<const CatalogEntry*> EventCatalog::ByPrefix(
    const std::string& prefix) const {
  std::vector<const CatalogEntry*> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    // Require a component boundary: exact match, or ':' right after.
    if (it->first.size() > prefix.size() &&
        it->first[prefix.size()] != ':' && !prefix.empty()) {
      continue;
    }
    out.push_back(&it->second);
  }
  return out;
}

std::vector<const CatalogEntry*> EventCatalog::ByPattern(
    const events::EventPattern& pattern) const {
  std::vector<const CatalogEntry*> out;
  for (const auto& [name, entry] : entries_) {
    if (pattern.Matches(name)) out.push_back(&entry);
  }
  return out;
}

std::vector<const CatalogEntry*> EventCatalog::ByComponent(
    events::NameComponent which, const std::string& value) const {
  std::vector<const CatalogEntry*> out;
  int index = static_cast<int>(which);
  for (const auto& [name, entry] : entries_) {
    auto parts = Split(name, ':');
    if (static_cast<int>(parts.size()) == events::kNameComponents &&
        parts[index] == value) {
      out.push_back(&entry);
    }
  }
  return out;
}

std::vector<const CatalogEntry*> EventCatalog::ByCount() const {
  std::vector<const CatalogEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const CatalogEntry* a, const CatalogEntry* b) {
              if (a->count != b->count) return a->count > b->count;
              return a->name < b->name;
            });
  return out;
}

Status EventCatalog::AttachDescription(const std::string& name,
                                       std::string description) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("no such event: " + name);
  }
  it->second.description = std::move(description);
  return Status::OK();
}

void EventCatalog::InheritDescriptions(const EventCatalog& previous) {
  for (auto& [name, entry] : entries_) {
    if (!entry.description.empty()) continue;
    const CatalogEntry* old = previous.Find(name);
    if (old != nullptr && !old->description.empty()) {
      entry.description = old->description;
    }
  }
}

Status EventCatalog::SaveTo(hdfs::MiniHdfs* fs,
                            const std::string& path) const {
  std::string body = ExportJson().Dump();
  if (fs->Exists(path)) {
    UNILOG_RETURN_NOT_OK(fs->Delete(path));
  }
  return fs->WriteFile(path, body);
}

Result<EventCatalog> EventCatalog::LoadFrom(const hdfs::MiniHdfs& fs,
                                            const std::string& path) {
  UNILOG_ASSIGN_OR_RETURN(std::string body, fs.ReadFile(path));
  UNILOG_ASSIGN_OR_RETURN(Json doc, Json::Parse(body));
  if (!doc.is_array()) return Status::Corruption("catalog: expected array");
  EventCatalog catalog;
  for (const Json& e : doc.array_items()) {
    if (!e.is_object() || !e["name"].is_string()) {
      return Status::Corruption("catalog: bad entry");
    }
    CatalogEntry entry;
    entry.name = e["name"].string_value();
    entry.code_point = static_cast<uint32_t>(e["code_point"].int_value());
    entry.count = static_cast<uint64_t>(e["count"].int_value());
    if (e["description"].is_string()) {
      entry.description = e["description"].string_value();
    }
    for (const Json& s : e["samples"].array_items()) {
      if (s.is_string()) entry.samples.push_back(s.string_value());
    }
    catalog.entries_.emplace(entry.name, std::move(entry));
  }
  return catalog;
}

Json EventCatalog::ExportJson() const {
  Json root = Json::Array();
  for (const CatalogEntry* entry : ByCount()) {
    Json e = Json::Object();
    e.Set("name", Json::Str(entry->name));
    e.Set("code_point", Json::Int(entry->code_point));
    e.Set("count", Json::Int(static_cast<int64_t>(entry->count)));
    if (!entry->description.empty()) {
      e.Set("description", Json::Str(entry->description));
    }
    Json samples = Json::Array();
    for (const auto& s : entry->samples) samples.Push(Json::Str(s));
    e.Set("samples", std::move(samples));
    root.Push(std::move(e));
  }
  return root;
}

}  // namespace unilog::catalog
