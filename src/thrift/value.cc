#include "thrift/value.h"

#include <sstream>

namespace unilog::thrift {

const char* TTypeName(TType t) {
  switch (t) {
    case TType::kBool:
      return "bool";
    case TType::kByte:
      return "byte";
    case TType::kI16:
      return "i16";
    case TType::kI32:
      return "i32";
    case TType::kI64:
      return "i64";
    case TType::kDouble:
      return "double";
    case TType::kString:
      return "string";
    case TType::kStruct:
      return "struct";
    case TType::kList:
      return "list";
    case TType::kSet:
      return "set";
    case TType::kMap:
      return "map";
  }
  return "unknown";
}

TType ThriftValue::type() const {
  struct Visitor {
    TType operator()(bool) const { return TType::kBool; }
    TType operator()(int8_t) const { return TType::kByte; }
    TType operator()(int16_t) const { return TType::kI16; }
    TType operator()(int32_t) const { return TType::kI32; }
    TType operator()(int64_t) const { return TType::kI64; }
    TType operator()(double) const { return TType::kDouble; }
    TType operator()(const std::string&) const { return TType::kString; }
    TType operator()(const StructData&) const { return TType::kStruct; }
    TType operator()(const ListData& l) const {
      return l.is_set ? TType::kSet : TType::kList;
    }
    TType operator()(const MapData&) const { return TType::kMap; }
  };
  return std::visit(Visitor{}, repr_);
}

Result<int64_t> ThriftValue::AsI64() const {
  switch (type()) {
    case TType::kByte:
      return static_cast<int64_t>(byte_value());
    case TType::kI16:
      return static_cast<int64_t>(i16_value());
    case TType::kI32:
      return static_cast<int64_t>(i32_value());
    case TType::kI64:
      return i64_value();
    default:
      return Status::InvalidArgument(std::string("not an integer: ") +
                                     TTypeName(type()));
  }
}

Result<std::string> ThriftValue::AsString() const {
  if (!is_string()) {
    return Status::InvalidArgument(std::string("not a string: ") +
                                   TTypeName(type()));
  }
  return string_value();
}

const ThriftValue* ThriftValue::FindField(int16_t id) const {
  if (!is_struct()) return nullptr;
  const auto& fields = struct_value().fields;
  auto it = fields.find(id);
  return it == fields.end() ? nullptr : &it->second;
}

void ThriftValue::SetField(int16_t id, ThriftValue v) {
  mutable_struct().fields.insert_or_assign(id, std::move(v));
}

bool ThriftValue::Equals(const ThriftValue& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case TType::kBool:
      return bool_value() == other.bool_value();
    case TType::kByte:
      return byte_value() == other.byte_value();
    case TType::kI16:
      return i16_value() == other.i16_value();
    case TType::kI32:
      return i32_value() == other.i32_value();
    case TType::kI64:
      return i64_value() == other.i64_value();
    case TType::kDouble:
      return double_value() == other.double_value();
    case TType::kString:
      return string_value() == other.string_value();
    case TType::kStruct: {
      const auto& a = struct_value().fields;
      const auto& b = other.struct_value().fields;
      if (a.size() != b.size()) return false;
      auto ia = a.begin();
      auto ib = b.begin();
      for (; ia != a.end(); ++ia, ++ib) {
        if (ia->first != ib->first || !ia->second.Equals(ib->second)) {
          return false;
        }
      }
      return true;
    }
    case TType::kList:
    case TType::kSet: {
      const auto& a = list_value();
      const auto& b = other.list_value();
      if (a.elem_type != b.elem_type || a.elems.size() != b.elems.size()) {
        return false;
      }
      for (size_t i = 0; i < a.elems.size(); ++i) {
        if (!a.elems[i].Equals(b.elems[i])) return false;
      }
      return true;
    }
    case TType::kMap: {
      const auto& a = map_value();
      const auto& b = other.map_value();
      if (a.entries.size() != b.entries.size()) return false;
      // The compact wire format carries no key/value types for an empty
      // map, so declared types of empty maps are not comparable.
      if (!a.entries.empty() &&
          (a.key_type != b.key_type || a.value_type != b.value_type)) {
        return false;
      }
      for (size_t i = 0; i < a.entries.size(); ++i) {
        if (!a.entries[i].first.Equals(b.entries[i].first) ||
            !a.entries[i].second.Equals(b.entries[i].second)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::string ThriftValue::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case TType::kBool:
      os << (bool_value() ? "true" : "false");
      break;
    case TType::kByte:
      os << static_cast<int>(byte_value());
      break;
    case TType::kI16:
      os << i16_value();
      break;
    case TType::kI32:
      os << i32_value();
      break;
    case TType::kI64:
      os << i64_value();
      break;
    case TType::kDouble:
      os << double_value();
      break;
    case TType::kString:
      os << '"' << string_value() << '"';
      break;
    case TType::kStruct: {
      os << '{';
      bool first = true;
      for (const auto& [id, v] : struct_value().fields) {
        if (!first) os << ", ";
        first = false;
        os << id << ": " << v.ToString();
      }
      os << '}';
      break;
    }
    case TType::kList:
    case TType::kSet: {
      os << (type() == TType::kSet ? "#[" : "[");
      const auto& l = list_value();
      for (size_t i = 0; i < l.elems.size(); ++i) {
        if (i > 0) os << ", ";
        os << l.elems[i].ToString();
      }
      os << ']';
      break;
    }
    case TType::kMap: {
      os << '<';
      const auto& m = map_value();
      for (size_t i = 0; i < m.entries.size(); ++i) {
        if (i > 0) os << ", ";
        os << m.entries[i].first.ToString() << ": "
           << m.entries[i].second.ToString();
      }
      os << '>';
      break;
    }
  }
  return os.str();
}

}  // namespace unilog::thrift
