#include "thrift/compact_protocol.h"

#include <cstring>

namespace unilog::thrift {

CType ToCType(TType t) {
  switch (t) {
    case TType::kBool:
      return CType::kBoolTrue;
    case TType::kByte:
      return CType::kByte;
    case TType::kI16:
      return CType::kI16;
    case TType::kI32:
      return CType::kI32;
    case TType::kI64:
      return CType::kI64;
    case TType::kDouble:
      return CType::kDouble;
    case TType::kString:
      return CType::kBinary;
    case TType::kStruct:
      return CType::kStruct;
    case TType::kList:
      return CType::kList;
    case TType::kSet:
      return CType::kSet;
    case TType::kMap:
      return CType::kMap;
  }
  return CType::kStop;
}

Result<TType> FromCType(uint8_t nibble) {
  switch (static_cast<CType>(nibble)) {
    case CType::kBoolTrue:
    case CType::kBoolFalse:
      return TType::kBool;
    case CType::kByte:
      return TType::kByte;
    case CType::kI16:
      return TType::kI16;
    case CType::kI32:
      return TType::kI32;
    case CType::kI64:
      return TType::kI64;
    case CType::kDouble:
      return TType::kDouble;
    case CType::kBinary:
      return TType::kString;
    case CType::kList:
      return TType::kList;
    case CType::kSet:
      return TType::kSet;
    case CType::kMap:
      return TType::kMap;
    case CType::kStruct:
      return TType::kStruct;
    case CType::kStop:
      break;
  }
  return Status::InvalidArgument("bad compact type nibble");
}

// ---------------------------------------------------------------------------
// CompactWriter

void CompactWriter::BeginStruct() { last_field_.push_back(0); }

void CompactWriter::EndStruct() {
  out_->push_back('\x00');  // STOP
  last_field_.pop_back();
}

void CompactWriter::WriteFieldHeader(int16_t id, CType type) {
  int16_t last = last_field_.empty() ? 0 : last_field_.back();
  int32_t delta = id - last;
  if (delta >= 1 && delta <= 15) {
    out_->push_back(static_cast<char>((delta << 4) |
                                      static_cast<uint8_t>(type)));
  } else {
    out_->push_back(static_cast<char>(type));
    PutVarint64(out_, ZigZagEncode32(id));
  }
  if (!last_field_.empty()) last_field_.back() = id;
}

void CompactWriter::WriteBoolField(int16_t id, bool v) {
  WriteFieldHeader(id, v ? CType::kBoolTrue : CType::kBoolFalse);
}

void CompactWriter::WriteByteField(int16_t id, int8_t v) {
  WriteFieldHeader(id, CType::kByte);
  WriteByte(v);
}

void CompactWriter::WriteI16Field(int16_t id, int16_t v) {
  WriteFieldHeader(id, CType::kI16);
  WriteI16(v);
}

void CompactWriter::WriteI32Field(int16_t id, int32_t v) {
  WriteFieldHeader(id, CType::kI32);
  WriteI32(v);
}

void CompactWriter::WriteI64Field(int16_t id, int64_t v) {
  WriteFieldHeader(id, CType::kI64);
  WriteI64(v);
}

void CompactWriter::WriteDoubleField(int16_t id, double v) {
  WriteFieldHeader(id, CType::kDouble);
  WriteDouble(v);
}

void CompactWriter::WriteStringField(int16_t id, std::string_view v) {
  WriteFieldHeader(id, CType::kBinary);
  WriteString(v);
}

void CompactWriter::WriteStructFieldHeader(int16_t id) {
  WriteFieldHeader(id, CType::kStruct);
}

void CompactWriter::WriteSetFieldHeader(int16_t id, TType elem,
                                        uint32_t count) {
  WriteFieldHeader(id, CType::kSet);
  uint8_t et = static_cast<uint8_t>(ToCType(elem));
  if (count < 15) {
    out_->push_back(static_cast<char>((count << 4) | et));
  } else {
    out_->push_back(static_cast<char>(0xF0 | et));
    PutVarint64(out_, count);
  }
}

void CompactWriter::WriteListFieldHeader(int16_t id, TType elem,
                                         uint32_t count) {
  WriteFieldHeader(id, CType::kList);
  uint8_t et = static_cast<uint8_t>(ToCType(elem));
  if (count < 15) {
    out_->push_back(static_cast<char>((count << 4) | et));
  } else {
    out_->push_back(static_cast<char>(0xF0 | et));
    PutVarint64(out_, count);
  }
}

void CompactWriter::WriteMapFieldHeader(int16_t id, TType key, TType value,
                                        uint32_t count) {
  WriteFieldHeader(id, CType::kMap);
  PutVarint64(out_, count);
  if (count > 0) {
    out_->push_back(static_cast<char>(
        (static_cast<uint8_t>(ToCType(key)) << 4) |
        static_cast<uint8_t>(ToCType(value))));
  }
}

void CompactWriter::WriteBool(bool v) {
  out_->push_back(v ? '\x01' : '\x02');
}

void CompactWriter::WriteByte(int8_t v) {
  out_->push_back(static_cast<char>(v));
}

void CompactWriter::WriteI16(int16_t v) {
  PutVarint64(out_, ZigZagEncode32(v));
}

void CompactWriter::WriteI32(int32_t v) {
  PutVarint64(out_, ZigZagEncode32(v));
}

void CompactWriter::WriteI64(int64_t v) {
  PutVarint64(out_, ZigZagEncode64(v));
}

void CompactWriter::WriteDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(out_, bits);
}

void CompactWriter::WriteString(std::string_view v) {
  PutLengthPrefixed(out_, v);
}

// ---------------------------------------------------------------------------
// CompactReader

void CompactReader::BeginStruct() { last_field_.push_back(0); }

Status CompactReader::ReadFieldHeader(int16_t* id, TType* type, bool* stop,
                                      bool* bool_value) {
  std::string_view b;
  UNILOG_RETURN_NOT_OK(dec_.GetBytes(1, &b));
  uint8_t byte = static_cast<uint8_t>(b[0]);
  if (byte == 0) {
    *stop = true;
    if (!last_field_.empty()) last_field_.pop_back();
    return Status::OK();
  }
  *stop = false;
  uint8_t nibble = byte & 0x0F;
  uint8_t delta = byte >> 4;
  int16_t last = last_field_.empty() ? 0 : last_field_.back();
  if (delta != 0) {
    *id = static_cast<int16_t>(last + delta);
  } else {
    uint64_t raw;
    UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
    *id = static_cast<int16_t>(ZigZagDecode32(static_cast<uint32_t>(raw)));
  }
  if (!last_field_.empty()) last_field_.back() = *id;
  UNILOG_ASSIGN_OR_RETURN(*type, FromCType(nibble));
  if (*type == TType::kBool) {
    *bool_value = (static_cast<CType>(nibble) == CType::kBoolTrue);
  }
  return Status::OK();
}

Status CompactReader::ReadBool(bool* v) {
  std::string_view b;
  UNILOG_RETURN_NOT_OK(dec_.GetBytes(1, &b));
  uint8_t byte = static_cast<uint8_t>(b[0]);
  if (byte == 1) {
    *v = true;
  } else if (byte == 2 || byte == 0) {
    *v = false;
  } else {
    return Status::Corruption("bad bool element");
  }
  return Status::OK();
}

Status CompactReader::ReadByte(int8_t* v) {
  std::string_view b;
  UNILOG_RETURN_NOT_OK(dec_.GetBytes(1, &b));
  *v = static_cast<int8_t>(b[0]);
  return Status::OK();
}

Status CompactReader::ReadI16(int16_t* v) {
  uint64_t raw;
  UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
  *v = static_cast<int16_t>(ZigZagDecode32(static_cast<uint32_t>(raw)));
  return Status::OK();
}

Status CompactReader::ReadI32(int32_t* v) {
  uint64_t raw;
  UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
  *v = ZigZagDecode32(static_cast<uint32_t>(raw));
  return Status::OK();
}

Status CompactReader::ReadI64(int64_t* v) {
  uint64_t raw;
  UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
  *v = ZigZagDecode64(raw);
  return Status::OK();
}

Status CompactReader::ReadDouble(double* v) {
  uint64_t bits;
  UNILOG_RETURN_NOT_OK(dec_.GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status CompactReader::ReadString(std::string* v) {
  std::string_view sv;
  UNILOG_RETURN_NOT_OK(dec_.GetLengthPrefixed(&sv));
  v->assign(sv.data(), sv.size());
  return Status::OK();
}

Status CompactReader::ReadListHeader(TType* elem, uint32_t* count) {
  std::string_view b;
  UNILOG_RETURN_NOT_OK(dec_.GetBytes(1, &b));
  uint8_t byte = static_cast<uint8_t>(b[0]);
  UNILOG_ASSIGN_OR_RETURN(*elem, FromCType(byte & 0x0F));
  uint8_t size_nibble = byte >> 4;
  if (size_nibble < 15) {
    *count = size_nibble;
  } else {
    uint64_t raw;
    UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
    if (raw > UINT32_MAX) return Status::Corruption("list too large");
    *count = static_cast<uint32_t>(raw);
  }
  return Status::OK();
}

Status CompactReader::ReadMapHeader(TType* key, TType* value,
                                    uint32_t* count) {
  uint64_t raw;
  UNILOG_RETURN_NOT_OK(dec_.GetVarint64(&raw));
  if (raw > UINT32_MAX) return Status::Corruption("map too large");
  *count = static_cast<uint32_t>(raw);
  if (*count == 0) {
    *key = TType::kString;
    *value = TType::kString;
    return Status::OK();
  }
  std::string_view b;
  UNILOG_RETURN_NOT_OK(dec_.GetBytes(1, &b));
  uint8_t byte = static_cast<uint8_t>(b[0]);
  UNILOG_ASSIGN_OR_RETURN(*key, FromCType(byte >> 4));
  UNILOG_ASSIGN_OR_RETURN(*value, FromCType(byte & 0x0F));
  return Status::OK();
}

Status CompactReader::SkipValue(TType type, bool from_field_header) {
  switch (type) {
    case TType::kBool:
      // Folded into the header when it came from a field; one byte as a
      // bare element.
      if (!from_field_header) return dec_.Skip(1);
      return Status::OK();
    case TType::kByte:
      return dec_.Skip(1);
    case TType::kI16:
    case TType::kI32:
    case TType::kI64: {
      uint64_t raw;
      return dec_.GetVarint64(&raw);
    }
    case TType::kDouble:
      return dec_.Skip(8);
    case TType::kString: {
      std::string_view sv;
      return dec_.GetLengthPrefixed(&sv);
    }
    case TType::kList:
    case TType::kSet: {
      TType elem;
      uint32_t count;
      UNILOG_RETURN_NOT_OK(ReadListHeader(&elem, &count));
      for (uint32_t i = 0; i < count; ++i) {
        UNILOG_RETURN_NOT_OK(SkipValue(elem, /*from_field_header=*/false));
      }
      return Status::OK();
    }
    case TType::kMap: {
      TType key, value;
      uint32_t count;
      UNILOG_RETURN_NOT_OK(ReadMapHeader(&key, &value, &count));
      for (uint32_t i = 0; i < count; ++i) {
        UNILOG_RETURN_NOT_OK(SkipValue(key, /*from_field_header=*/false));
        UNILOG_RETURN_NOT_OK(SkipValue(value, /*from_field_header=*/false));
      }
      return Status::OK();
    }
    case TType::kStruct: {
      BeginStruct();
      while (true) {
        int16_t id;
        TType ftype;
        bool stop = false;
        bool bool_value = false;
        UNILOG_RETURN_NOT_OK(ReadFieldHeader(&id, &ftype, &stop, &bool_value));
        if (stop) return Status::OK();
        UNILOG_RETURN_NOT_OK(SkipValue(ftype, /*from_field_header=*/true));
      }
    }
  }
  return Status::Corruption("skip: unknown type");
}

// ---------------------------------------------------------------------------
// Dynamic-value serialization

namespace {

void WriteBareValue(CompactWriter* w, const ThriftValue& v);

void WriteStructBody(CompactWriter* w, const StructData& s) {
  w->BeginStruct();
  for (const auto& [id, field] : s.fields) {
    switch (field.type()) {
      case TType::kBool:
        w->WriteBoolField(id, field.bool_value());
        break;
      case TType::kByte:
        w->WriteByteField(id, field.byte_value());
        break;
      case TType::kI16:
        w->WriteI16Field(id, field.i16_value());
        break;
      case TType::kI32:
        w->WriteI32Field(id, field.i32_value());
        break;
      case TType::kI64:
        w->WriteI64Field(id, field.i64_value());
        break;
      case TType::kDouble:
        w->WriteDoubleField(id, field.double_value());
        break;
      case TType::kString:
        w->WriteStringField(id, field.string_value());
        break;
      case TType::kStruct:
        w->WriteStructFieldHeader(id);
        WriteStructBody(w, field.struct_value());
        break;
      case TType::kList:
      case TType::kSet: {
        const auto& l = field.list_value();
        if (l.is_set) {
          w->WriteSetFieldHeader(id, l.elem_type,
                                 static_cast<uint32_t>(l.elems.size()));
        } else {
          w->WriteListFieldHeader(id, l.elem_type,
                                  static_cast<uint32_t>(l.elems.size()));
        }
        for (const auto& e : l.elems) WriteBareValue(w, e);
        break;
      }
      case TType::kMap: {
        const auto& m = field.map_value();
        w->WriteMapFieldHeader(id, m.key_type, m.value_type,
                               static_cast<uint32_t>(m.entries.size()));
        for (const auto& [k, val] : m.entries) {
          WriteBareValue(w, k);
          WriteBareValue(w, val);
        }
        break;
      }
    }
  }
  w->EndStruct();
}

void WriteBareValue(CompactWriter* w, const ThriftValue& v) {
  switch (v.type()) {
    case TType::kBool:
      w->WriteBool(v.bool_value());
      break;
    case TType::kByte:
      w->WriteByte(v.byte_value());
      break;
    case TType::kI16:
      w->WriteI16(v.i16_value());
      break;
    case TType::kI32:
      w->WriteI32(v.i32_value());
      break;
    case TType::kI64:
      w->WriteI64(v.i64_value());
      break;
    case TType::kDouble:
      w->WriteDouble(v.double_value());
      break;
    case TType::kString:
      w->WriteString(v.string_value());
      break;
    case TType::kStruct:
      WriteStructBody(w, v.struct_value());
      break;
    case TType::kList:
    case TType::kSet: {
      // Bare list element header (same encoding as a field list header
      // minus the field header itself). Reuse writer internals via a local
      // encoding.
      const auto& l = v.list_value();
      std::string* out = w->out();
      uint8_t et = static_cast<uint8_t>(ToCType(l.elem_type));
      if (l.elems.size() < 15) {
        out->push_back(static_cast<char>((l.elems.size() << 4) | et));
      } else {
        out->push_back(static_cast<char>(0xF0 | et));
        PutVarint64(out, l.elems.size());
      }
      for (const auto& e : l.elems) WriteBareValue(w, e);
      break;
    }
    case TType::kMap: {
      const auto& m = v.map_value();
      std::string* out = w->out();
      PutVarint64(out, m.entries.size());
      if (!m.entries.empty()) {
        out->push_back(static_cast<char>(
            (static_cast<uint8_t>(ToCType(m.key_type)) << 4) |
            static_cast<uint8_t>(ToCType(m.value_type))));
      }
      for (const auto& [k, val] : m.entries) {
        WriteBareValue(w, k);
        WriteBareValue(w, val);
      }
      break;
    }
  }
}

Status ReadBareValue(CompactReader* r, TType type, bool header_bool,
                     bool from_field_header, ThriftValue* out);

Status ReadStructBody(CompactReader* r, ThriftValue* out) {
  *out = ThriftValue::Struct();
  r->BeginStruct();
  while (true) {
    int16_t id;
    TType ftype;
    bool stop = false;
    bool bool_value = false;
    UNILOG_RETURN_NOT_OK(r->ReadFieldHeader(&id, &ftype, &stop, &bool_value));
    if (stop) return Status::OK();
    ThriftValue field;
    UNILOG_RETURN_NOT_OK(ReadBareValue(r, ftype, bool_value,
                                       /*from_field_header=*/true, &field));
    out->SetField(id, std::move(field));
  }
}

Status ReadBareValue(CompactReader* r, TType type, bool header_bool,
                     bool from_field_header, ThriftValue* out) {
  switch (type) {
    case TType::kBool: {
      if (from_field_header) {
        *out = ThriftValue::Bool(header_bool);
      } else {
        bool v;
        UNILOG_RETURN_NOT_OK(r->ReadBool(&v));
        *out = ThriftValue::Bool(v);
      }
      return Status::OK();
    }
    case TType::kByte: {
      int8_t v;
      UNILOG_RETURN_NOT_OK(r->ReadByte(&v));
      *out = ThriftValue::Byte(v);
      return Status::OK();
    }
    case TType::kI16: {
      int16_t v;
      UNILOG_RETURN_NOT_OK(r->ReadI16(&v));
      *out = ThriftValue::I16(v);
      return Status::OK();
    }
    case TType::kI32: {
      int32_t v;
      UNILOG_RETURN_NOT_OK(r->ReadI32(&v));
      *out = ThriftValue::I32(v);
      return Status::OK();
    }
    case TType::kI64: {
      int64_t v;
      UNILOG_RETURN_NOT_OK(r->ReadI64(&v));
      *out = ThriftValue::I64(v);
      return Status::OK();
    }
    case TType::kDouble: {
      double v;
      UNILOG_RETURN_NOT_OK(r->ReadDouble(&v));
      *out = ThriftValue::Double(v);
      return Status::OK();
    }
    case TType::kString: {
      std::string v;
      UNILOG_RETURN_NOT_OK(r->ReadString(&v));
      *out = ThriftValue::String(std::move(v));
      return Status::OK();
    }
    case TType::kStruct:
      return ReadStructBody(r, out);
    case TType::kList:
    case TType::kSet: {
      TType elem;
      uint32_t count;
      UNILOG_RETURN_NOT_OK(r->ReadListHeader(&elem, &count));
      ListData l;
      l.elem_type = elem;
      l.is_set = (type == TType::kSet);
      l.elems.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ThriftValue e;
        UNILOG_RETURN_NOT_OK(
            ReadBareValue(r, elem, false, /*from_field_header=*/false, &e));
        l.elems.push_back(std::move(e));
      }
      *out = ThriftValue::List(std::move(l));
      return Status::OK();
    }
    case TType::kMap: {
      TType key, value;
      uint32_t count;
      UNILOG_RETURN_NOT_OK(r->ReadMapHeader(&key, &value, &count));
      MapData m;
      m.key_type = key;
      m.value_type = value;
      m.entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ThriftValue k, v;
        UNILOG_RETURN_NOT_OK(
            ReadBareValue(r, key, false, /*from_field_header=*/false, &k));
        UNILOG_RETURN_NOT_OK(
            ReadBareValue(r, value, false, /*from_field_header=*/false, &v));
        m.entries.emplace_back(std::move(k), std::move(v));
      }
      *out = ThriftValue::Map(std::move(m));
      return Status::OK();
    }
  }
  return Status::Corruption("read: unknown type");
}

}  // namespace

Status SerializeStruct(const ThriftValue& value, std::string* out) {
  if (!value.is_struct()) {
    return Status::InvalidArgument("SerializeStruct: value is not a struct");
  }
  CompactWriter w(out);
  WriteStructBody(&w, value.struct_value());
  return Status::OK();
}

Status Serializer::AppendStruct(const ThriftValue& value, std::string* out) {
  if (!value.is_struct()) {
    return Status::InvalidArgument("AppendStruct: value is not a struct");
  }
  writer_.Reset(out);
  WriteStructBody(&writer_, value.struct_value());
  // Re-point at the owned scratch so the writer never dangles on a caller
  // buffer that may be freed before the next call.
  writer_.Reset(&scratch_);
  return Status::OK();
}

void Serializer::AppendFramedScratch(std::string* out) {
  PutLengthPrefixed(out, scratch_);
}

Result<ThriftValue> ParseStruct(std::string_view data) {
  CompactReader r(data);
  ThriftValue out;
  UNILOG_RETURN_NOT_OK(ReadStructBody(&r, &out));
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after struct");
  }
  return out;
}

Result<ThriftValue> ParseStructFrom(CompactReader* reader) {
  ThriftValue out;
  UNILOG_RETURN_NOT_OK(ReadStructBody(reader, &out));
  return out;
}

}  // namespace unilog::thrift
