#ifndef UNILOG_THRIFT_ADAPTER_H_
#define UNILOG_THRIFT_ADAPTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

#include "common/result.h"
#include "common/status.h"
#include "thrift/compact_protocol.h"
#include "thrift/schema.h"

namespace unilog::thrift {

/// Elephant Bird's role, in template form: given a declarative field list
/// for a plain struct, these adapters generate the compact-protocol
/// writer, the unknown-field-skipping reader, and the StructSchema — "it
/// is straightforward to use the serialization framework to specify the
/// data schema, from which the serialization compiler generates code to
/// read, write, and manipulate the data" (§3).
///
/// Usage:
///   struct SearchEvent {
///     int64_t user_id = 0;
///     std::string query;
///     bool personalized = false;
///   };
///   template <>
///   struct ThriftTraits<SearchEvent> {
///     static constexpr const char* kName = "search_event";
///     static constexpr auto fields() {
///       return std::make_tuple(
///           Field(1, "user_id", &SearchEvent::user_id),
///           Field(2, "query", &SearchEvent::query),
///           Field(3, "personalized", &SearchEvent::personalized,
///                 /*required=*/false));
///     }
///   };
///   std::string wire = SerializeTyped(event);
///   Result<SearchEvent> back = DeserializeTyped<SearchEvent>(wire);

/// Per-struct trait to specialize; see the header comment.
template <typename T>
struct ThriftTraits;

/// Descriptor of one field: the id, name, member pointer, and whether the
/// reader requires it to be present.
template <typename T, typename FieldT>
struct FieldDesc {
  int16_t id;
  const char* name;
  FieldT T::* member;
  bool required;
};

template <typename T, typename FieldT>
constexpr FieldDesc<T, FieldT> Field(int16_t id, const char* name,
                                     FieldT T::* member,
                                     bool required = true) {
  return FieldDesc<T, FieldT>{id, name, member, required};
}

namespace adapter_internal {

// --- wire type of a C++ field type ---
inline constexpr TType WireTypeOf(const bool*) { return TType::kBool; }
inline constexpr TType WireTypeOf(const int8_t*) { return TType::kByte; }
inline constexpr TType WireTypeOf(const int16_t*) { return TType::kI16; }
inline constexpr TType WireTypeOf(const int32_t*) { return TType::kI32; }
inline constexpr TType WireTypeOf(const int64_t*) { return TType::kI64; }
inline constexpr TType WireTypeOf(const double*) { return TType::kDouble; }
inline constexpr TType WireTypeOf(const std::string*) {
  return TType::kString;
}

// --- field writers ---
inline void WriteOne(CompactWriter& w, int16_t id, bool v) {
  w.WriteBoolField(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, int8_t v) {
  w.WriteByteField(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, int16_t v) {
  w.WriteI16Field(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, int32_t v) {
  w.WriteI32Field(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, int64_t v) {
  w.WriteI64Field(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, double v) {
  w.WriteDoubleField(id, v);
}
inline void WriteOne(CompactWriter& w, int16_t id, const std::string& v) {
  w.WriteStringField(id, v);
}

// --- field readers (header_bool carries bools folded into the header) ---
inline Status ReadOne(CompactReader& /*r*/, bool header_bool, bool* out) {
  *out = header_bool;
  return Status::OK();
}
inline Status ReadOne(CompactReader& r, bool, int8_t* out) {
  return r.ReadByte(out);
}
inline Status ReadOne(CompactReader& r, bool, int16_t* out) {
  return r.ReadI16(out);
}
inline Status ReadOne(CompactReader& r, bool, int32_t* out) {
  return r.ReadI32(out);
}
inline Status ReadOne(CompactReader& r, bool, int64_t* out) {
  return r.ReadI64(out);
}
inline Status ReadOne(CompactReader& r, bool, double* out) {
  return r.ReadDouble(out);
}
inline Status ReadOne(CompactReader& r, bool, std::string* out) {
  return r.ReadString(out);
}

}  // namespace adapter_internal

/// Serializes a traited struct with the compact protocol. Fields are
/// written in the declared order (ids should ascend for best delta
/// encoding).
template <typename T>
void SerializeTypedTo(const T& value, std::string* out) {
  CompactWriter w(out);
  w.BeginStruct();
  std::apply(
      [&](const auto&... field) {
        (adapter_internal::WriteOne(w, field.id, value.*(field.member)), ...);
      },
      ThriftTraits<T>::fields());
  w.EndStruct();
}

template <typename T>
std::string SerializeTyped(const T& value) {
  std::string out;
  SerializeTypedTo(value, &out);
  return out;
}

/// Appends `value` to *out as one varint-length-prefixed framed record,
/// serializing through `ser`'s scratch buffer so batched writers (the
/// ingest hot path) reuse one allocation across records.
template <typename T>
void SerializeTypedFramed(const T& value, Serializer* ser, std::string* out) {
  SerializeTypedTo(value, ser->scratch());
  ser->AppendFramedScratch(out);
}

/// Deserializes a traited struct, skipping unknown fields; fails on
/// missing required fields or wire-type mismatches.
template <typename T>
Result<T> DeserializeTyped(std::string_view data) {
  T out{};
  CompactReader r(data);
  r.BeginStruct();
  constexpr size_t kFieldCount =
      std::tuple_size_v<decltype(ThriftTraits<T>::fields())>;
  bool seen[kFieldCount] = {};
  while (true) {
    int16_t id;
    TType type;
    bool stop = false, header_bool = false;
    UNILOG_RETURN_NOT_OK(r.ReadFieldHeader(&id, &type, &stop, &header_bool));
    if (stop) break;

    bool handled = false;
    Status field_status;
    size_t index = 0;
    std::apply(
        [&](const auto&... field) {
          (
              [&] {
                size_t my_index = index++;
                if (handled || field.id != id) return;
                using FieldT = std::remove_reference_t<
                    decltype(out.*(field.member))>;
                constexpr TType kWire = adapter_internal::WireTypeOf(
                    static_cast<const FieldT*>(nullptr));
                if (type != kWire) {
                  field_status = Status::Corruption(
                      std::string("field '") + field.name +
                      "' has wrong wire type");
                  handled = true;
                  return;
                }
                field_status = adapter_internal::ReadOne(
                    r, header_bool, &(out.*(field.member)));
                seen[my_index] = true;
                handled = true;
              }(),
              ...);
        },
        ThriftTraits<T>::fields());
    if (!handled) {
      UNILOG_RETURN_NOT_OK(r.SkipValue(type, /*from_field_header=*/true));
    } else {
      UNILOG_RETURN_NOT_OK(field_status);
    }
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes");

  // Required-field check.
  Status missing;
  size_t index = 0;
  std::apply(
      [&](const auto&... field) {
        (
            [&] {
              size_t my_index = index++;
              if (missing.ok() && field.required && !seen[my_index]) {
                missing = Status::InvalidArgument(
                    std::string("missing required field '") + field.name +
                    "'");
              }
            }(),
            ...);
      },
      ThriftTraits<T>::fields());
  UNILOG_RETURN_NOT_OK(missing);
  return out;
}

/// Builds the StructSchema for a traited struct.
template <typename T>
StructSchema SchemaOfTyped() {
  StructSchema schema(ThriftTraits<T>::kName);
  std::apply(
      [&](const auto&... field) {
        (
            [&] {
              using FieldT = std::remove_reference_t<decltype(
                  std::declval<T>().*(field.member))>;
              FieldSchema fs;
              fs.id = field.id;
              fs.name = field.name;
              fs.type = adapter_internal::WireTypeOf(
                  static_cast<const FieldT*>(nullptr));
              fs.required = field.required;
              (void)schema.AddField(fs);
            }(),
            ...);
      },
      ThriftTraits<T>::fields());
  return schema;
}

}  // namespace unilog::thrift

#endif  // UNILOG_THRIFT_ADAPTER_H_
