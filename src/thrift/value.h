#ifndef UNILOG_THRIFT_VALUE_H_
#define UNILOG_THRIFT_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog::thrift {

/// Thrift data types supported by the unilog compact protocol. Mirrors the
/// Apache Thrift type system (minus unions and typedefs).
enum class TType : uint8_t {
  kBool = 1,
  kByte = 2,
  kI16 = 3,
  kI32 = 4,
  kI64 = 5,
  kDouble = 6,
  kString = 7,
  kStruct = 8,
  kList = 9,
  kSet = 10,
  kMap = 11,
};

/// Stable name for a type ("i32", "string", ...).
const char* TTypeName(TType t);

class ThriftValue;

/// Struct payload: field-id -> value. An ordered map keeps serialization
/// deterministic (Thrift requires ascending field ids for the compact
/// protocol's delta encoding anyway).
struct StructData {
  std::map<int16_t, ThriftValue> fields;
};

/// List or set payload.
struct ListData {
  TType elem_type = TType::kString;
  bool is_set = false;
  std::vector<ThriftValue> elems;
};

/// Map payload. Entries preserve insertion order.
struct MapData {
  TType key_type = TType::kString;
  TType value_type = TType::kString;
  std::vector<std::pair<ThriftValue, ThriftValue>> entries;
};

/// A dynamically-typed Thrift value: the in-memory form of any message the
/// compact protocol can carry. Used wherever unilog handles messages whose
/// schema is not known at compile time — the catalog's payload sampling,
/// generic record readers, and the legacy-format conversion shims.
class ThriftValue {
 public:
  /// Default-constructed value is a bool false; use the factories below.
  ThriftValue() : repr_(false) {}

  static ThriftValue Bool(bool v) { return ThriftValue(Repr(v)); }
  static ThriftValue Byte(int8_t v) { return ThriftValue(Repr(v)); }
  static ThriftValue I16(int16_t v) { return ThriftValue(Repr(v)); }
  static ThriftValue I32(int32_t v) { return ThriftValue(Repr(v)); }
  static ThriftValue I64(int64_t v) { return ThriftValue(Repr(v)); }
  static ThriftValue Double(double v) { return ThriftValue(Repr(v)); }
  static ThriftValue String(std::string v) {
    return ThriftValue(Repr(std::move(v)));
  }
  static ThriftValue Struct(StructData v = {}) {
    return ThriftValue(Repr(std::move(v)));
  }
  static ThriftValue List(ListData v) { return ThriftValue(Repr(std::move(v))); }
  static ThriftValue Map(MapData v) { return ThriftValue(Repr(std::move(v))); }

  TType type() const;

  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_struct() const { return std::holds_alternative<StructData>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }

  /// Typed accessors; abort on type mismatch (callers check type() first or
  /// use the As* Result variants).
  bool bool_value() const { return std::get<bool>(repr_); }
  int8_t byte_value() const { return std::get<int8_t>(repr_); }
  int16_t i16_value() const { return std::get<int16_t>(repr_); }
  int32_t i32_value() const { return std::get<int32_t>(repr_); }
  int64_t i64_value() const { return std::get<int64_t>(repr_); }
  double double_value() const { return std::get<double>(repr_); }
  const std::string& string_value() const { return std::get<std::string>(repr_); }
  const StructData& struct_value() const { return std::get<StructData>(repr_); }
  StructData& mutable_struct() { return std::get<StructData>(repr_); }
  const ListData& list_value() const { return std::get<ListData>(repr_); }
  ListData& mutable_list() { return std::get<ListData>(repr_); }
  const MapData& map_value() const { return std::get<MapData>(repr_); }
  MapData& mutable_map() { return std::get<MapData>(repr_); }

  /// Checked accessors.
  Result<int64_t> AsI64() const;
  Result<std::string> AsString() const;

  /// Struct convenience: the field with the given id, or nullptr.
  const ThriftValue* FindField(int16_t id) const;
  /// Struct convenience: sets/overwrites a field.
  void SetField(int16_t id, ThriftValue v);

  /// Deep equality (including types).
  bool Equals(const ThriftValue& other) const;

  /// Debug rendering, e.g. {1: "web:home:...", 3: 42}.
  std::string ToString() const;

 private:
  using Repr = std::variant<bool, int8_t, int16_t, int32_t, int64_t, double,
                            std::string, StructData, ListData, MapData>;
  explicit ThriftValue(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

inline bool operator==(const ThriftValue& a, const ThriftValue& b) {
  return a.Equals(b);
}

}  // namespace unilog::thrift

#endif  // UNILOG_THRIFT_VALUE_H_
