#include "thrift/schema.h"

#include <algorithm>
#include <sstream>

namespace unilog::thrift {

Status StructSchema::AddField(FieldSchema field) {
  if (field.id <= 0) {
    return Status::InvalidArgument("field id must be positive");
  }
  for (const auto& f : fields_) {
    if (f.id == field.id) {
      return Status::AlreadyExists("duplicate field id " +
                                   std::to_string(field.id));
    }
    if (f.name == field.name) {
      return Status::AlreadyExists("duplicate field name " + field.name);
    }
  }
  auto pos = std::lower_bound(
      fields_.begin(), fields_.end(), field,
      [](const FieldSchema& a, const FieldSchema& b) { return a.id < b.id; });
  fields_.insert(pos, std::move(field));
  return Status::OK();
}

const FieldSchema* StructSchema::FindField(int16_t id) const {
  for (const auto& f : fields_) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

const FieldSchema* StructSchema::FindFieldByName(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status StructSchema::Validate(const ThriftValue& value) const {
  if (!value.is_struct()) {
    return Status::InvalidArgument("not a struct");
  }
  for (const auto& f : fields_) {
    const ThriftValue* v = value.FindField(f.id);
    if (v == nullptr) {
      if (f.required) {
        return Status::InvalidArgument("missing required field '" + f.name +
                                       "' (id " + std::to_string(f.id) + ")");
      }
      continue;
    }
    TType got = v->type();
    // Sets and lists share a representation; treat them as interchangeable
    // only if declared types match exactly.
    if (got != f.type) {
      return Status::InvalidArgument(
          "field '" + f.name + "' has type " + TTypeName(got) +
          ", schema declares " + TTypeName(f.type));
    }
  }
  return Status::OK();
}

std::string StructSchema::ToIdl() const {
  std::ostringstream os;
  os << "struct " << name_ << " {\n";
  for (const auto& f : fields_) {
    os << "  " << f.id << ": " << (f.required ? "required " : "optional ")
       << TTypeName(f.type) << " " << f.name << ";\n";
  }
  os << "}";
  return os.str();
}

Status SchemaRegistry::Register(StructSchema schema) {
  auto [it, inserted] = schemas_.emplace(schema.name(), std::move(schema));
  if (!inserted) {
    return Status::AlreadyExists("schema already registered: " +
                                 it->first);
  }
  return Status::OK();
}

const StructSchema* SchemaRegistry::Lookup(const std::string& name) const {
  auto it = schemas_.find(name);
  return it == schemas_.end() ? nullptr : &it->second;
}

std::vector<std::string> SchemaRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, _] : schemas_) names.push_back(name);
  return names;
}

}  // namespace unilog::thrift
