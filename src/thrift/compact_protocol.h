#ifndef UNILOG_THRIFT_COMPACT_PROTOCOL_H_
#define UNILOG_THRIFT_COMPACT_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "thrift/value.h"

namespace unilog::thrift {

/// The unilog compact wire protocol, a from-scratch implementation of the
/// Thrift TCompactProtocol design:
///  - field headers delta-encode field ids into a (delta << 4 | type)
///    nibble pair, with a long form for deltas > 15;
///  - booleans are folded into the field-header type nibble;
///  - integers are zigzag varints; doubles are fixed 8-byte LE;
///  - strings are varint-length-prefixed bytes;
///  - lists/sets pack small sizes into the header nibble;
///  - structs terminate with a STOP byte.
///
/// The wire format is self-describing (every value carries its type), which
/// is what makes unknown-field skipping — and therefore schema evolution —
/// possible: new fields added by producers are silently skipped by old
/// consumers (§3 of the paper relies on this property of Thrift).

/// Compact-protocol wire type nibbles.
enum class CType : uint8_t {
  kStop = 0,
  kBoolTrue = 1,
  kBoolFalse = 2,
  kByte = 3,
  kI16 = 4,
  kI32 = 5,
  kI64 = 6,
  kDouble = 7,
  kBinary = 8,
  kList = 9,
  kSet = 10,
  kMap = 11,
  kStruct = 12,
};

/// Maps a logical TType to its compact wire nibble (bools map to kBoolTrue;
/// the writer adjusts for the actual value).
CType ToCType(TType t);

/// Maps a wire nibble back to the logical type. kBoolTrue/kBoolFalse both
/// map to kBool. Returns InvalidArgument for kStop or unknown nibbles.
Result<TType> FromCType(uint8_t nibble);

/// Streaming writer. Usage for a struct:
///   CompactWriter w(&buf);
///   w.BeginStruct();
///   w.WriteI64Field(3, user_id);
///   ...
///   w.EndStruct();
class CompactWriter {
 public:
  explicit CompactWriter(std::string* out) : out_(out) {}

  /// Re-points the writer at a new output buffer, discarding any open
  /// struct contexts but keeping the field-id stack's capacity — the
  /// reusable-state hook Serializer builds on so per-record writers stop
  /// allocating.
  void Reset(std::string* out) {
    out_ = out;
    last_field_.clear();
  }

  /// Struct nesting. BeginStruct pushes a fresh last-field-id context.
  void BeginStruct();
  void EndStruct();

  /// Field writers (id must be positive and ascending within a struct for
  /// best compression; any positive id is accepted).
  void WriteBoolField(int16_t id, bool v);
  void WriteByteField(int16_t id, int8_t v);
  void WriteI16Field(int16_t id, int16_t v);
  void WriteI32Field(int16_t id, int32_t v);
  void WriteI64Field(int16_t id, int64_t v);
  void WriteDoubleField(int16_t id, double v);
  void WriteStringField(int16_t id, std::string_view v);
  /// Writes the header for a nested struct field; follow with
  /// BeginStruct()/fields/EndStruct().
  void WriteStructFieldHeader(int16_t id);
  /// Writes the header for a list field; follow with `count` bare elements.
  void WriteListFieldHeader(int16_t id, TType elem, uint32_t count);
  /// Same, with the set wire type.
  void WriteSetFieldHeader(int16_t id, TType elem, uint32_t count);
  void WriteMapFieldHeader(int16_t id, TType key, TType value,
                           uint32_t count);

  /// Bare (headerless) element writers for list/map payloads.
  void WriteBool(bool v);
  void WriteByte(int8_t v);
  void WriteI16(int16_t v);
  void WriteI32(int32_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteString(std::string_view v);

  std::string* out() { return out_; }

 private:
  void WriteFieldHeader(int16_t id, CType type);

  std::string* out_;
  // Stack of last-written field ids, one per open struct. Fixed small depth
  // is plenty for log messages; grows if exceeded.
  std::vector<int16_t> last_field_;
};

/// Streaming reader, mirror of CompactWriter.
class CompactReader {
 public:
  explicit CompactReader(std::string_view data) : dec_(data) {}
  explicit CompactReader(Decoder dec) : dec_(dec) {}

  void BeginStruct();
  /// Reads the next field header in the current struct. Sets *stop=true at
  /// the STOP byte (and pops the struct context). For bool fields the value
  /// is carried in the header: *bool_value receives it.
  Status ReadFieldHeader(int16_t* id, TType* type, bool* stop,
                         bool* bool_value);

  Status ReadBool(bool* v);  // bare element only
  Status ReadByte(int8_t* v);
  Status ReadI16(int16_t* v);
  Status ReadI32(int32_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  Status ReadString(std::string* v);
  Status ReadListHeader(TType* elem, uint32_t* count);
  Status ReadMapHeader(TType* key, TType* value, uint32_t* count);

  /// Skips a value of the given type (recursively for containers/structs).
  /// `header_bool` supplies the value for bool fields folded into headers
  /// (pass false for bare elements; bools-as-elements occupy one byte).
  Status SkipValue(TType type, bool from_field_header);

  /// Position bookkeeping for framing layers.
  size_t position() const { return dec_.position(); }
  bool AtEnd() const { return dec_.AtEnd(); }
  Decoder* decoder() { return &dec_; }

 private:
  Decoder dec_;
  std::vector<int16_t> last_field_;
};

/// Serializes a dynamic value (must be a struct) with the compact protocol.
/// Appends to *out (caller-owned; callers on hot paths reuse the buffer).
Status SerializeStruct(const ThriftValue& value, std::string* out);

/// Reusable serialization state for the ingest hot path. Owns a scratch
/// buffer (capacity persists across records) and a CompactWriter whose
/// field-id stack is recycled, so serializing a message per log entry stops
/// allocating once the buffers warm up. The typical shape is
///
///   std::string* s = ser.scratch();        // cleared, capacity kept
///   event.SerializeTo(s);                  // or ser.AppendStruct(...)
///   ser.AppendFramedScratch(&body);        // varint length + bytes
///
/// Not thread-safe; one Serializer per thread/owner.
class Serializer {
 public:
  Serializer() : writer_(&scratch_) {}

  Serializer(const Serializer&) = delete;
  Serializer& operator=(const Serializer&) = delete;

  /// Appends the compact-protocol bytes of `value` (a struct) to *out,
  /// reusing the internal writer state.
  Status AppendStruct(const ThriftValue& value, std::string* out);

  /// Clears and returns the scratch buffer; capacity persists.
  std::string* scratch() {
    scratch_.clear();
    return &scratch_;
  }

  /// Appends the scratch buffer to *out as one varint-length-prefixed
  /// framed record (the scribe::Message / client-event file framing).
  void AppendFramedScratch(std::string* out);

 private:
  std::string scratch_;
  CompactWriter writer_;
};

/// Parses one compact-protocol struct from `data`, consuming the whole
/// buffer. Self-describing: no schema needed.
Result<ThriftValue> ParseStruct(std::string_view data);

/// Parses one struct from the reader (which must be positioned at the start
/// of a struct body). Used for nested structs and framed streams.
Result<ThriftValue> ParseStructFrom(CompactReader* reader);

}  // namespace unilog::thrift

#endif  // UNILOG_THRIFT_COMPACT_PROTOCOL_H_
