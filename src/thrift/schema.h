#ifndef UNILOG_THRIFT_SCHEMA_H_
#define UNILOG_THRIFT_SCHEMA_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "thrift/value.h"

namespace unilog::thrift {

/// Declaration of a single struct field, the unit of schema evolution:
/// producers may add new field ids at any time; consumers skip ids they do
/// not know.
struct FieldSchema {
  int16_t id = 0;
  std::string name;
  TType type = TType::kString;
  bool required = false;
};

/// A struct schema: what Elephant Bird derives readers/writers from. Schemas
/// validate dynamic values and give the catalog human-readable field names.
class StructSchema {
 public:
  StructSchema() = default;
  explicit StructSchema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a field. Returns AlreadyExists if the id or name is taken,
  /// InvalidArgument for non-positive ids.
  Status AddField(FieldSchema field);

  /// Field lookup by id / by name; nullptr when absent.
  const FieldSchema* FindField(int16_t id) const;
  const FieldSchema* FindFieldByName(const std::string& name) const;

  /// All fields in ascending id order.
  const std::vector<FieldSchema>& fields() const { return fields_; }

  /// Validates a dynamic struct value: every required field present, every
  /// present known field has the declared type. Unknown field ids are
  /// permitted (that is the point of Thrift's extensibility).
  Status Validate(const ThriftValue& value) const;

  /// Renders the schema as Thrift IDL-ish text for documentation.
  std::string ToIdl() const;

 private:
  std::string name_;
  std::vector<FieldSchema> fields_;  // kept sorted by id
};

/// Process-wide registry mapping schema names to schemas (one per Scribe
/// category in the application-specific world; a single "client_event"
/// schema in the unified world).
class SchemaRegistry {
 public:
  Status Register(StructSchema schema);
  const StructSchema* Lookup(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, StructSchema> schemas_;
};

}  // namespace unilog::thrift

#endif  // UNILOG_THRIFT_SCHEMA_H_
