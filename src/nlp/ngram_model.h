#ifndef UNILOG_NLP_NGRAM_MODEL_H_
#define UNILOG_NLP_NGRAM_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog::nlp {

/// A session as a symbol sequence: code points drawn from the finite event
/// alphabet (§5.4 treats session sequences exactly like sentences).
using SymbolSequence = std::vector<uint32_t>;

/// Reserved boundary symbols (outside the dictionary's assignment range,
/// which starts at 1 and never reaches the top of the code space).
inline constexpr uint32_t kBosSymbol = 0x10FFFE;
inline constexpr uint32_t kEosSymbol = 0x10FFFF;

/// An n-gram language model over session sequences with Witten-Bell
/// backoff smoothing: P_k(w|h) = (c(h,w) + T(h)·P_{k-1}(w|h')) /
/// (c(h) + T(h)), recursing down to an add-one unigram base, so unseen
/// events never get zero probability and sparse high-order contexts defer
/// to lower orders. Cross-entropy and perplexity quantify how much
/// "temporal signal" user behaviour carries (§5.4).
class NgramModel {
 public:
  struct Options {
    /// Add-k constant of the unigram base distribution.
    double base_add_k = 1.0;
  };

  /// `n` >= 1. `vocabulary_size` is the event-alphabet size |Σ| (boundary
  /// symbols are added internally).
  NgramModel(int n, size_t vocabulary_size, Options options);
  NgramModel(int n, size_t vocabulary_size)
      : NgramModel(n, vocabulary_size, Options()) {}

  int n() const { return n_; }

  /// Accumulates counts from one session (BOS-padded, EOS-terminated).
  void Train(const SymbolSequence& sequence);
  void TrainBatch(const std::vector<SymbolSequence>& sequences);

  /// P(symbol | history): history is the full preceding sequence; only the
  /// last n-1 symbols are used (Markov assumption).
  double Probability(const SymbolSequence& history, uint32_t symbol) const;

  /// Cross-entropy in bits per symbol over a test set (includes EOS
  /// predictions, standard practice). Returns error on an empty test set.
  Result<double> CrossEntropy(const std::vector<SymbolSequence>& test) const;

  /// Perplexity = 2^cross-entropy.
  Result<double> Perplexity(const std::vector<SymbolSequence>& test) const;

  uint64_t total_ngrams_observed() const { return total_ngrams_; }

 private:
  /// Encodes a context (up to n-1 symbols) as a string key.
  static std::string ContextKey(const uint32_t* symbols, size_t len);

  int n_;
  size_t vocab_size_;
  Options options_;
  uint64_t total_ngrams_ = 0;
  /// counts_[k]: maps context of length k (as key) → (symbol → count).
  /// k ranges 0..n-1.
  std::vector<std::unordered_map<std::string,
                                 std::unordered_map<uint32_t, uint64_t>>>
      counts_;
  /// context_totals_[k]: context key → total count.
  std::vector<std::unordered_map<std::string, uint64_t>> context_totals_;
};

}  // namespace unilog::nlp

#endif  // UNILOG_NLP_NGRAM_MODEL_H_
