#include "nlp/ngram_model.h"

#include <cmath>

namespace unilog::nlp {

NgramModel::NgramModel(int n, size_t vocabulary_size, Options options)
    : n_(n < 1 ? 1 : n),
      vocab_size_(vocabulary_size + 2),  // + BOS/EOS
      options_(options) {
  counts_.resize(n_);
  context_totals_.resize(n_);
}

std::string NgramModel::ContextKey(const uint32_t* symbols, size_t len) {
  std::string key;
  key.reserve(len * 4);
  for (size_t i = 0; i < len; ++i) {
    uint32_t v = symbols[i];
    key.push_back(static_cast<char>(v & 0xFF));
    key.push_back(static_cast<char>((v >> 8) & 0xFF));
    key.push_back(static_cast<char>((v >> 16) & 0xFF));
    key.push_back(static_cast<char>((v >> 24) & 0xFF));
  }
  return key;
}

void NgramModel::Train(const SymbolSequence& sequence) {
  // Padded: n-1 BOS symbols, then the sequence, then EOS.
  SymbolSequence padded;
  padded.reserve(sequence.size() + n_);
  for (int i = 0; i < n_ - 1; ++i) padded.push_back(kBosSymbol);
  padded.insert(padded.end(), sequence.begin(), sequence.end());
  padded.push_back(kEosSymbol);

  for (size_t pos = static_cast<size_t>(n_ - 1); pos < padded.size(); ++pos) {
    uint32_t symbol = padded[pos];
    // Update counts for all orders 0..n-1 (context lengths).
    for (int k = 0; k < n_; ++k) {
      const uint32_t* ctx_start = padded.data() + pos - k;
      std::string key = ContextKey(ctx_start, static_cast<size_t>(k));
      ++counts_[k][key][symbol];
      ++context_totals_[k][key];
    }
    ++total_ngrams_;
  }
}

void NgramModel::TrainBatch(const std::vector<SymbolSequence>& sequences) {
  for (const auto& s : sequences) Train(s);
}

double NgramModel::Probability(const SymbolSequence& history,
                               uint32_t symbol) const {
  // Witten-Bell backoff, evaluated bottom-up from the add-k unigram base.
  // Base: P_0'(w) = (c(w) + k) / (N + k·V) over the empty context.
  const std::string empty_key = ContextKey(nullptr, 0);
  double base_count = 0;
  double base_total = 0;
  {
    auto total_it = context_totals_[0].find(empty_key);
    if (total_it != context_totals_[0].end()) {
      base_total = static_cast<double>(total_it->second);
    }
    auto map_it = counts_[0].find(empty_key);
    if (map_it != counts_[0].end()) {
      auto cit = map_it->second.find(symbol);
      if (cit != map_it->second.end()) {
        base_count = static_cast<double>(cit->second);
      }
    }
  }
  double p = (base_count + options_.base_add_k) /
             (base_total + options_.base_add_k * static_cast<double>(vocab_size_));

  for (int k = 1; k < n_; ++k) {
    // Context: last k symbols of history (BOS-padded when short).
    SymbolSequence ctx;
    ctx.reserve(k);
    for (int i = k; i >= 1; --i) {
      int64_t idx = static_cast<int64_t>(history.size()) - i;
      ctx.push_back(idx < 0 ? kBosSymbol
                            : history[static_cast<size_t>(idx)]);
    }
    std::string key = ContextKey(ctx.data(), ctx.size());
    auto total_it = context_totals_[k].find(key);
    if (total_it == context_totals_[k].end() || total_it->second == 0) {
      continue;  // unseen context: keep the lower-order estimate
    }
    auto map_it = counts_[k].find(key);
    double count = 0;
    double types = 0;
    if (map_it != counts_[k].end()) {
      types = static_cast<double>(map_it->second.size());
      auto cit = map_it->second.find(symbol);
      if (cit != map_it->second.end()) {
        count = static_cast<double>(cit->second);
      }
    }
    double total = static_cast<double>(total_it->second);
    p = (count + types * p) / (total + types);
  }
  return p;
}

Result<double> NgramModel::CrossEntropy(
    const std::vector<SymbolSequence>& test) const {
  double log_sum = 0;
  uint64_t symbols = 0;
  for (const auto& seq : test) {
    SymbolSequence history;
    for (size_t i = 0; i <= seq.size(); ++i) {
      uint32_t symbol = (i == seq.size()) ? kEosSymbol : seq[i];
      double p = Probability(history, symbol);
      if (p <= 0) p = 1e-12;
      log_sum += -std::log2(p);
      ++symbols;
      if (i < seq.size()) history.push_back(seq[i]);
    }
  }
  if (symbols == 0) return Status::InvalidArgument("empty test set");
  return log_sum / static_cast<double>(symbols);
}

Result<double> NgramModel::Perplexity(
    const std::vector<SymbolSequence>& test) const {
  UNILOG_ASSIGN_OR_RETURN(double h, CrossEntropy(test));
  return std::pow(2.0, h);
}

}  // namespace unilog::nlp
