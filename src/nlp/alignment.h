#ifndef UNILOG_NLP_ALIGNMENT_H_
#define UNILOG_NLP_ALIGNMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nlp/ngram_model.h"

namespace unilog::nlp {

/// Scoring scheme for Smith-Waterman local alignment over event symbols.
struct AlignmentScoring {
  double match = 2.0;
  double mismatch = -1.0;
  double gap = -1.0;
};

/// Result of a local alignment: the best-scoring pair of subsequences.
struct AlignmentResult {
  double score = 0;
  /// Half-open ranges [a_begin, a_end) / [b_begin, b_end) of the aligned
  /// regions in the two inputs.
  size_t a_begin = 0, a_end = 0;
  size_t b_begin = 0, b_end = 0;
  size_t matches = 0;
};

/// Smith-Waterman local alignment between two session sequences — the §6
/// "inspiration from biological sequence alignment" extension answering
/// "what users exhibit similar behavioural patterns?".
AlignmentResult LocalAlign(const SymbolSequence& a, const SymbolSequence& b,
                           const AlignmentScoring& scoring = {});

/// Query-by-example: ranks candidate sessions by their local-alignment
/// score against the example. Returns indices into `candidates`, best
/// first, limited to `k`.
std::vector<std::pair<size_t, double>> QueryByExample(
    const SymbolSequence& example,
    const std::vector<SymbolSequence>& candidates, size_t k,
    const AlignmentScoring& scoring = {});

}  // namespace unilog::nlp

#endif  // UNILOG_NLP_ALIGNMENT_H_
