#include "nlp/grammar.h"

#include <algorithm>

namespace unilog::nlp {

namespace {

using Pair = std::pair<uint32_t, uint32_t>;

/// Replaces non-overlapping occurrences of `pair` with `replacement`,
/// left to right.
void MergePair(SymbolSequence* seq, const Pair& pair, uint32_t replacement) {
  SymbolSequence out;
  out.reserve(seq->size());
  size_t i = 0;
  while (i < seq->size()) {
    if (i + 1 < seq->size() && (*seq)[i] == pair.first &&
        (*seq)[i + 1] == pair.second) {
      out.push_back(replacement);
      i += 2;
    } else {
      out.push_back((*seq)[i]);
      ++i;
    }
  }
  *seq = std::move(out);
}

}  // namespace

InducedGrammar InducedGrammar::Induce(const std::vector<SymbolSequence>& corpus,
                                      const Options& options) {
  InducedGrammar grammar;
  std::vector<SymbolSequence> work = corpus;
  uint32_t next_nonterminal = kFirstNonterminal;

  for (size_t round = 0; round < options.max_rules; ++round) {
    // Count adjacent pairs (non-overlapping counting is approximated by
    // raw adjacent counting; ties broken deterministically by pair value).
    std::map<Pair, uint64_t> pair_counts;
    for (const auto& seq : work) {
      for (size_t i = 0; i + 1 < seq.size(); ++i) {
        ++pair_counts[{seq[i], seq[i + 1]}];
      }
    }
    const Pair* best = nullptr;
    uint64_t best_count = 0;
    for (const auto& [pair, count] : pair_counts) {
      if (count > best_count) {
        best_count = count;
        best = &pair;
      }
    }
    if (best == nullptr || best_count < options.min_count) break;

    GrammarRule rule;
    rule.nonterminal = next_nonterminal++;
    rule.left = best->first;
    rule.right = best->second;
    rule.count = best_count;
    Pair merged = *best;  // copy: `best` points into pair_counts
    grammar.rule_index_[rule.nonterminal] = grammar.rules_.size();
    grammar.rules_.push_back(rule);
    for (auto& seq : work) {
      MergePair(&seq, merged, rule.nonterminal);
    }
  }
  return grammar;
}

SymbolSequence InducedGrammar::Encode(const SymbolSequence& sequence) const {
  SymbolSequence out = sequence;
  for (const auto& rule : rules_) {
    MergePair(&out, {rule.left, rule.right}, rule.nonterminal);
  }
  return out;
}

std::vector<uint32_t> InducedGrammar::Expand(uint32_t symbol) const {
  auto it = rule_index_.find(symbol);
  if (it == rule_index_.end()) return {symbol};
  const GrammarRule& rule = rules_[it->second];
  std::vector<uint32_t> out = Expand(rule.left);
  std::vector<uint32_t> right = Expand(rule.right);
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

SymbolSequence InducedGrammar::Decode(const SymbolSequence& sequence) const {
  SymbolSequence out;
  out.reserve(sequence.size() * 2);
  for (uint32_t symbol : sequence) {
    std::vector<uint32_t> expanded = Expand(symbol);
    out.insert(out.end(), expanded.begin(), expanded.end());
  }
  return out;
}

double InducedGrammar::CompressionRatio(
    const std::vector<SymbolSequence>& corpus) const {
  uint64_t original = 0, encoded = 0;
  for (const auto& seq : corpus) {
    original += seq.size();
    encoded += Encode(seq).size();
  }
  if (original == 0) return 1.0;
  return static_cast<double>(encoded) / static_cast<double>(original);
}

}  // namespace unilog::nlp
