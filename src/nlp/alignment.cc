#include "nlp/alignment.h"

#include <algorithm>

namespace unilog::nlp {

AlignmentResult LocalAlign(const SymbolSequence& a, const SymbolSequence& b,
                           const AlignmentScoring& scoring) {
  const size_t n = a.size(), m = b.size();
  AlignmentResult best;
  if (n == 0 || m == 0) return best;

  // Full DP matrix with backtrack; sessions are short (tens to hundreds of
  // events), so O(nm) memory is fine.
  std::vector<std::vector<double>> h(n + 1, std::vector<double>(m + 1, 0));
  size_t best_i = 0, best_j = 0;
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      double diag = h[i - 1][j - 1] +
                    (a[i - 1] == b[j - 1] ? scoring.match : scoring.mismatch);
      double up = h[i - 1][j] + scoring.gap;
      double left = h[i][j - 1] + scoring.gap;
      h[i][j] = std::max({0.0, diag, up, left});
      if (h[i][j] > best.score) {
        best.score = h[i][j];
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best.score <= 0) return best;

  // Backtrack from the maximum to the first zero cell.
  size_t i = best_i, j = best_j;
  size_t matches = 0;
  while (i > 0 && j > 0 && h[i][j] > 0) {
    double cell = h[i][j];
    double diag = h[i - 1][j - 1] +
                  (a[i - 1] == b[j - 1] ? scoring.match : scoring.mismatch);
    if (cell == diag) {
      if (a[i - 1] == b[j - 1]) ++matches;
      --i;
      --j;
    } else if (cell == h[i - 1][j] + scoring.gap) {
      --i;
    } else {
      --j;
    }
  }
  best.a_begin = i;
  best.a_end = best_i;
  best.b_begin = j;
  best.b_end = best_j;
  best.matches = matches;
  return best;
}

std::vector<std::pair<size_t, double>> QueryByExample(
    const SymbolSequence& example,
    const std::vector<SymbolSequence>& candidates, size_t k,
    const AlignmentScoring& scoring) {
  std::vector<std::pair<size_t, double>> scored;
  scored.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    scored.emplace_back(i, LocalAlign(example, candidates[i], scoring).score);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& x, const auto& y) {
                     return x.second > y.second;
                   });
  if (scored.size() > k) scored.resize(k);
  return scored;
}

}  // namespace unilog::nlp
