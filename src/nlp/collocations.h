#ifndef UNILOG_NLP_COLLOCATIONS_H_
#define UNILOG_NLP_COLLOCATIONS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nlp/ngram_model.h"

namespace unilog::nlp {

/// One "activity collocate" (§5.4): an adjacent event pair that co-occurs
/// far more often than independence predicts — the behavioural analogue of
/// "hot dog".
struct Collocation {
  uint32_t first = 0;
  uint32_t second = 0;
  uint64_t pair_count = 0;
  uint64_t first_count = 0;
  uint64_t second_count = 0;
  double pmi = 0;  // pointwise mutual information, bits
  double llr = 0;  // Dunning log-likelihood ratio
};

/// Extracts bigram collocations from session sequences using the two
/// techniques the paper names: pointwise mutual information (Church &
/// Hanks) and the log-likelihood ratio (Dunning).
class CollocationFinder {
 public:
  /// Accumulates adjacent pairs from one session.
  void Add(const SymbolSequence& sequence);

  uint64_t total_bigrams() const { return total_bigrams_; }

  /// Top-k collocations by PMI among pairs with count >= min_count (PMI is
  /// unstable for rare pairs, hence the threshold — standard practice).
  std::vector<Collocation> TopByPmi(uint64_t min_count, size_t k) const;

  /// Top-k collocations by log-likelihood ratio (robust for rare events,
  /// Dunning's motivation).
  std::vector<Collocation> TopByLlr(size_t k) const;

  /// Stats for one specific pair (zeros if unseen).
  Collocation PairStats(uint32_t first, uint32_t second) const;

 private:
  Collocation MakeCollocation(uint32_t first, uint32_t second,
                              uint64_t pair_count) const;

  std::map<std::pair<uint32_t, uint32_t>, uint64_t> pair_counts_;
  std::map<uint32_t, uint64_t> left_counts_;   // unigram as bigram-left
  std::map<uint32_t, uint64_t> right_counts_;  // unigram as bigram-right
  uint64_t total_bigrams_ = 0;
};

/// Dunning's 2·log-likelihood ratio for a 2x2 contingency table given
/// k1/n1 (pair occurrences / left occurrences) vs k2/n2 (second-without-
/// first / rest). Exposed for testing.
double LogLikelihoodRatio(uint64_t k1, uint64_t n1, uint64_t k2, uint64_t n2);

}  // namespace unilog::nlp

#endif  // UNILOG_NLP_COLLOCATIONS_H_
