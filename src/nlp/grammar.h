#ifndef UNILOG_NLP_GRAMMAR_H_
#define UNILOG_NLP_GRAMMAR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nlp/ngram_model.h"

namespace unilog::nlp {

/// First symbol id used for induced nonterminals (safely above both the
/// unicode range and the BOS/EOS sentinels).
inline constexpr uint32_t kFirstNonterminal = 0x200000;

/// One induced production: nonterminal → left right.
struct GrammarRule {
  uint32_t nonterminal = 0;
  uint32_t left = 0;
  uint32_t right = 0;
  uint64_t count = 0;  // corpus frequency of the pair when merged
};

/// Grammar induction over session sequences (§6: "applying automatic
/// grammar induction techniques to learn hierarchical decompositions of
/// user activity... many sessions break down into smaller units that
/// exhibit a great deal of cohesion"). Uses byte-pair-encoding-style
/// iterative merging: the most frequent adjacent symbol pair becomes a
/// new nonterminal, recursively yielding a hierarchy of behavioural
/// "phrases".
class InducedGrammar {
 public:
  struct Options {
    /// Stop after inducing this many rules.
    size_t max_rules = 64;
    /// Only merge pairs occurring at least this often.
    uint64_t min_count = 4;
  };

  /// Induces a grammar from a corpus of sessions.
  static InducedGrammar Induce(const std::vector<SymbolSequence>& corpus,
                               const Options& options);
  static InducedGrammar Induce(const std::vector<SymbolSequence>& corpus) {
    return Induce(corpus, Options());
  }

  const std::vector<GrammarRule>& rules() const { return rules_; }

  /// Rewrites a sequence bottom-up using the induced rules (repeated
  /// greedy left-to-right application, in rule-induction order).
  SymbolSequence Encode(const SymbolSequence& sequence) const;

  /// Expands all nonterminals back to terminals. Decode(Encode(s)) == s.
  SymbolSequence Decode(const SymbolSequence& sequence) const;

  /// The terminal expansion of one symbol (identity for terminals).
  std::vector<uint32_t> Expand(uint32_t symbol) const;

  /// Average encoded length / average original length over a corpus —
  /// < 1 when the grammar finds real structure.
  double CompressionRatio(const std::vector<SymbolSequence>& corpus) const;

 private:
  std::vector<GrammarRule> rules_;          // in induction order
  std::map<uint32_t, size_t> rule_index_;   // nonterminal → rules_ index
};

}  // namespace unilog::nlp

#endif  // UNILOG_NLP_GRAMMAR_H_
