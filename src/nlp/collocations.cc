#include "nlp/collocations.h"

#include <algorithm>
#include <cmath>

namespace unilog::nlp {

namespace {

double XLogX(double x) { return x > 0 ? x * std::log(x) : 0.0; }

// log-likelihood of observing k successes in n trials at rate p.
double LogL(double k, double n, double p) {
  if (p <= 0 || p >= 1) {
    // Degenerate rates only fit degenerate observations.
    if ((p <= 0 && k == 0) || (p >= 1 && k == n)) return 0.0;
    p = std::min(1.0 - 1e-12, std::max(1e-12, p));
  }
  return k * std::log(p) + (n - k) * std::log(1 - p);
}

}  // namespace

double LogLikelihoodRatio(uint64_t k1, uint64_t n1, uint64_t k2, uint64_t n2) {
  if (n1 == 0 || n2 == 0) return 0.0;
  double dk1 = static_cast<double>(k1), dn1 = static_cast<double>(n1);
  double dk2 = static_cast<double>(k2), dn2 = static_cast<double>(n2);
  double p1 = dk1 / dn1;
  double p2 = dk2 / dn2;
  double p = (dk1 + dk2) / (dn1 + dn2);
  double llr = 2.0 * (LogL(dk1, dn1, p1) + LogL(dk2, dn2, p2) -
                      LogL(dk1, dn1, p) - LogL(dk2, dn2, p));
  (void)XLogX;  // silence unused helper in some build configs
  return llr < 0 ? 0.0 : llr;
}

void CollocationFinder::Add(const SymbolSequence& sequence) {
  for (size_t i = 0; i + 1 < sequence.size(); ++i) {
    ++pair_counts_[{sequence[i], sequence[i + 1]}];
    ++left_counts_[sequence[i]];
    ++right_counts_[sequence[i + 1]];
    ++total_bigrams_;
  }
}

Collocation CollocationFinder::MakeCollocation(uint32_t first, uint32_t second,
                                               uint64_t pair_count) const {
  Collocation c;
  c.first = first;
  c.second = second;
  c.pair_count = pair_count;
  auto lit = left_counts_.find(first);
  auto rit = right_counts_.find(second);
  c.first_count = lit == left_counts_.end() ? 0 : lit->second;
  c.second_count = rit == right_counts_.end() ? 0 : rit->second;
  if (pair_count > 0 && c.first_count > 0 && c.second_count > 0 &&
      total_bigrams_ > 0) {
    double expected = static_cast<double>(c.first_count) *
                      static_cast<double>(c.second_count) /
                      static_cast<double>(total_bigrams_);
    c.pmi = std::log2(static_cast<double>(pair_count) / expected);
    // Dunning: k1 = pair, n1 = left count; k2 = second occurring after
    // anything else, n2 = everything else.
    uint64_t k2 = c.second_count - pair_count;
    uint64_t n2 = total_bigrams_ - c.first_count;
    c.llr = LogLikelihoodRatio(pair_count, c.first_count, k2, n2);
    // Negative association should not rank as a collocation.
    double p1 = static_cast<double>(pair_count) /
                static_cast<double>(c.first_count);
    double p2 = n2 == 0 ? 0
                        : static_cast<double>(k2) / static_cast<double>(n2);
    if (p1 < p2) c.llr = 0;
  }
  return c;
}

Collocation CollocationFinder::PairStats(uint32_t first,
                                         uint32_t second) const {
  auto it = pair_counts_.find({first, second});
  uint64_t count = it == pair_counts_.end() ? 0 : it->second;
  return MakeCollocation(first, second, count);
}

std::vector<Collocation> CollocationFinder::TopByPmi(uint64_t min_count,
                                                     size_t k) const {
  std::vector<Collocation> all;
  for (const auto& [pair, count] : pair_counts_) {
    if (count < min_count) continue;
    all.push_back(MakeCollocation(pair.first, pair.second, count));
  }
  std::sort(all.begin(), all.end(), [](const Collocation& a,
                                       const Collocation& b) {
    if (a.pmi != b.pmi) return a.pmi > b.pmi;
    return std::make_pair(a.first, a.second) < std::make_pair(b.first, b.second);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

std::vector<Collocation> CollocationFinder::TopByLlr(size_t k) const {
  std::vector<Collocation> all;
  for (const auto& [pair, count] : pair_counts_) {
    all.push_back(MakeCollocation(pair.first, pair.second, count));
  }
  std::sort(all.begin(), all.end(), [](const Collocation& a,
                                       const Collocation& b) {
    if (a.llr != b.llr) return a.llr > b.llr;
    return std::make_pair(a.first, a.second) < std::make_pair(b.first, b.second);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace unilog::nlp
