#ifndef UNILOG_SCRIBE_CLUSTER_H_
#define UNILOG_SCRIBE_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/fleet.h"
#include "common/rng.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "scribe/aggregator.h"
#include "scribe/daemon.h"
#include "scribe/log_mover.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::scribe {

/// Shape of the simulated fleet (Figure 1 of the paper).
struct ClusterTopology {
  std::vector<std::string> datacenters = {"dc1", "dc2", "dc3"};
  int aggregators_per_dc = 2;
  int daemons_per_dc = 10;
  /// When > 0 each datacenter runs a partitioned, replicated broker tier
  /// instead of the aggregator chain: daemons produce to partition leaders
  /// (idempotent, acked, backpressured) and the log mover consumes as a
  /// consumer group — the warehouse path is unchanged downstream.
  int brokers_per_dc = 0;
  /// Restricts the broker tier to the named datacenters; the rest keep
  /// their aggregator chains. Empty (the default) brokers every
  /// datacenter when brokers_per_dc > 0 — the historical behavior. A
  /// mixed fleet models a staged aggregator→broker migration, and the
  /// soak harness uses it to chaos both tiers in one run.
  std::vector<std::string> broker_datacenters;
  broker::BrokerOptions broker_options;
  /// Shape of the per-DC staging clusters and the warehouse (block size,
  /// datanode count, replication). Defaults are the historical
  /// single-node instances.
  hdfs::HdfsOptions staging_hdfs;
  hdfs::HdfsOptions warehouse_hdfs;

  /// True when datacenter `name` runs the broker tier under this topology.
  bool BrokeredDatacenter(const std::string& name) const {
    if (brokers_per_dc <= 0) return false;
    if (broker_datacenters.empty()) return true;
    for (const auto& dc : broker_datacenters) {
      if (dc == name) return true;
    }
    return false;
  }
};

/// Aggregated fleet-wide delivery counters. Every loss channel the
/// delivery audit reconciles is named here.
struct ClusterStats {
  uint64_t entries_logged = 0;
  uint64_t entries_dropped_at_daemons = 0;
  uint64_t entries_lost_in_crashes = 0;
  uint64_t entries_dropped_overflow = 0;   // aggregator buffer-limit drops
  uint64_t entries_staged = 0;             // messages written to staging
  uint64_t late_entries_dropped = 0;       // stragglers for moved hours
  uint64_t messages_in_warehouse = 0;      // from the log mover
  uint64_t daemon_rediscoveries = 0;
  uint64_t send_failures = 0;
  uint64_t produce_throttled = 0;          // broker backpressure pushbacks
  // Broker tier (all zero when brokers_per_dc == 0):
  uint64_t entries_produced = 0;           // acked by partition leaders
  uint64_t entries_dup_resends = 0;        // (producer, seq) dedup hits
  uint64_t entries_lost_unreplicated = 0;  // acked-but-unreplicated, lost
                                           // when their only holder died
  uint64_t entries_consumed = 0;           // fetched by consumer groups
  uint64_t broker_elections = 0;
};

/// The full Figure-1 assembly: per-datacenter Scribe daemons and
/// aggregators with a staging Hadoop cluster each, a shared ZooKeeper, a
/// main-datacenter warehouse, and the log mover that slides closed hours
/// into it. Owns every component; drives everything off one Simulator.
///
/// All components report into one obs::MetricsRegistry (caller-supplied or
/// owned), labeled by datacenter and instance, so a single TextReport()
/// describes the whole fleet.
class ScribeCluster {
 public:
  ScribeCluster(Simulator* sim, ClusterTopology topology,
                ScribeOptions scribe_options, LogMoverOptions mover_options,
                uint64_t seed, obs::MetricsRegistry* metrics = nullptr);

  ScribeCluster(const ScribeCluster&) = delete;
  ScribeCluster& operator=(const ScribeCluster&) = delete;

  /// Starts aggregators, daemons, and the log mover.
  Status Start();

  // --- Component access ---
  size_t datacenter_count() const { return dc_names_.size(); }
  const std::string& datacenter_name(size_t dc) const { return dc_names_[dc]; }
  size_t daemon_count(size_t dc) const { return daemons_[dc].size(); }
  size_t aggregator_count(size_t dc) const { return aggregators_[dc].size(); }
  ScribeDaemon* daemon(size_t dc, size_t index);
  const ScribeDaemon* daemon(size_t dc, size_t index) const;
  Aggregator* aggregator(size_t dc, size_t index);
  const Aggregator* aggregator(size_t dc, size_t index) const;
  size_t broker_count(size_t dc) const;
  broker::BrokerFleet* fleet(size_t dc);
  broker::BrokerNode* broker(size_t dc, size_t index);
  hdfs::MiniHdfs* staging(size_t dc);
  hdfs::MiniHdfs* warehouse() { return &warehouse_; }
  zk::ZooKeeper* zookeeper() { return &zk_; }
  LogMover* mover() { return mover_.get(); }
  const LogMover* mover() const { return mover_.get(); }

  /// The registry every component of this cluster reports into.
  obs::MetricsRegistry* metrics() { return metrics_; }
  const obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Routes a log entry to a daemon chosen by hash of the category+message
  /// — convenience for workload drivers that do not care which host logs.
  void Log(size_t dc, const LogEntry& entry);

  // --- Failure injection ---
  void CrashAggregator(size_t dc, size_t index);
  Status RestartAggregator(size_t dc, size_t index);
  void CrashBroker(size_t dc, size_t index);
  Status RestartBroker(size_t dc, size_t index);
  Status ExpireBrokerSession(size_t dc, size_t index);
  void SetStagingAvailable(size_t dc, bool available);

  /// Sums stats across the fleet.
  ClusterStats TotalStats() const;

 private:
  Simulator* sim_;
  ClusterTopology topology_;
  ScribeOptions scribe_options_;
  LogMoverOptions mover_options_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  zk::ZooKeeper zk_;
  hdfs::MiniHdfs warehouse_;
  std::vector<std::string> dc_names_;
  std::vector<std::unique_ptr<hdfs::MiniHdfs>> staging_;
  std::vector<std::vector<std::unique_ptr<Aggregator>>> aggregators_;
  // Borrowed pointers for the mover's barrier checks, one vector per DC.
  std::vector<std::vector<Aggregator*>> aggregator_ptrs_;
  std::vector<std::vector<std::unique_ptr<ScribeDaemon>>> daemons_;
  // One broker fleet per DC when brokers_per_dc > 0, else empty.
  std::vector<std::unique_ptr<broker::BrokerFleet>> fleets_;
  std::unique_ptr<LogMover> mover_;
  Rng rng_;
  uint64_t round_robin_ = 0;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_CLUSTER_H_
