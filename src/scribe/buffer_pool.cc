#include "scribe/buffer_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace unilog::scribe {

BufferPool::BufferPool(size_t max_pooled)
    : max_pooled_(std::max<size_t>(1, max_pooled)) {}

BufferPool::Lease BufferPool::Acquire() {
  std::unique_ptr<std::string> buf;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      ++hits_;
    } else {
      ++misses_;
    }
    ++outstanding_;
    high_water_ = std::max(high_water_, outstanding_);
  }
  if (buf == nullptr) {
    buf = std::make_unique<std::string>();
  } else {
    buf->clear();  // capacity preserved — that is the point of the pool
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    outstanding_bufs_.insert(buf.get());
  }
  return Lease(this, std::move(buf));
}

void BufferPool::Lease::Release() {
  if (pool_ == nullptr) return;
  pool_->Return(std::move(buf_));
  pool_ = nullptr;
}

void BufferPool::Return(std::unique_ptr<std::string> buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (buf == nullptr || outstanding_bufs_.erase(buf.get()) == 0) {
    // Owner-tag check failed: this buffer is not an outstanding lease of
    // this pool. Putting it on the freelist would let two future leases
    // alias the same bytes, so drop it on the floor (accounting untouched).
    ++double_releases_;
#ifdef UNILOG_SANITIZE
    std::fprintf(stderr,
                 "BufferPool: double release of buffer %p not outstanding\n",
                 static_cast<const void*>(buf.get()));
    std::abort();
#endif
    return;
  }
  --outstanding_;
  if (free_.size() < max_pooled_) {
    free_.push_back(std::move(buf));
  }
  // else: let `buf` die here, bounding idle memory after a burst.
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferPoolStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.outstanding = outstanding_;
  s.high_water = high_water_;
  s.pooled = free_.size();
  s.double_releases = double_releases_;
  return s;
}

void BufferPool::PublishMetrics(obs::MetricsRegistry* metrics,
                                const obs::Labels& labels) const {
  if (metrics == nullptr) return;
  BufferPoolStats s = stats();
  // Counters are monotone in the registry; set-by-delta keeps them in sync
  // with the pool's own monotone totals.
  obs::Counter* hits = metrics->GetCounter("scribe.ingest.pool_hits", labels);
  obs::Counter* misses =
      metrics->GetCounter("scribe.ingest.pool_misses", labels);
  if (s.hits > hits->value()) hits->Increment(s.hits - hits->value());
  if (s.misses > misses->value()) misses->Increment(s.misses - misses->value());
  metrics->GetGauge("scribe.ingest.pool_outstanding", labels)
      ->Set(static_cast<int64_t>(s.outstanding));
  metrics->GetGauge("scribe.ingest.pool_high_water", labels)
      ->Set(static_cast<int64_t>(s.high_water));
  metrics->GetGauge("scribe.ingest.pool_free", labels)
      ->Set(static_cast<int64_t>(s.pooled));
  obs::Counter* dbl =
      metrics->GetCounter("scribe.ingest.pool_double_releases", labels);
  if (s.double_releases > dbl->value()) {
    dbl->Increment(s.double_releases - dbl->value());
  }
}

}  // namespace unilog::scribe
