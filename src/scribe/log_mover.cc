#include "scribe/log_mover.h"

#include "columnar/rcfile.h"
#include "common/compress.h"
#include "common/strings.h"
#include "etwin/index.h"
#include "events/client_event.h"
#include "scribe/message.h"

namespace unilog::scribe {

namespace {

/// Messages inside one staged file, best effort: unreadable or corrupt
/// files count as zero (their content cannot be attributed).
uint64_t CountEntriesInFile(hdfs::MiniHdfs* staging, const std::string& path) {
  auto body = staging->ReadFile(path);
  if (!body.ok()) return 0;
  auto raw = Lz::Decompress(*body);
  if (!raw.ok()) return 0;
  auto count = CountFramed(*raw);
  return count.ok() ? *count : 0;
}

/// Parses the hour out of a staged file path
/// (/staging/<category>/YYYY/MM/DD/HH/<file>); false if malformed.
bool ParseStagedHour(const std::string& path, std::string* category,
                     TimeMs* hour) {
  std::vector<std::string> parts = Split(path.substr(1), '/');
  if (parts.size() < 7 || parts[0] != "staging") return false;
  CivilTime civil;
  auto parse_int = [](const std::string& s, int* out) {
    if (s.empty()) return false;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
    }
    *out = std::stoi(s);
    return true;
  };
  if (!parse_int(parts[2], &civil.year) || !parse_int(parts[3], &civil.month) ||
      !parse_int(parts[4], &civil.day) || !parse_int(parts[5], &civil.hour)) {
    return false;
  }
  *category = parts[1];
  *hour = FromCivil(civil);
  return true;
}

}  // namespace

LogMover::LogMover(Simulator* sim, std::vector<DatacenterHandle> datacenters,
                   hdfs::MiniHdfs* warehouse, LogMoverOptions options,
                   obs::MetricsRegistry* metrics)
    : sim_(sim),
      datacenters_(std::move(datacenters)),
      warehouse_(warehouse),
      options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  hours_moved_ = metrics->GetCounter("mover.hours_moved");
  categories_moved_ = metrics->GetCounter("mover.categories_moved");
  staging_files_read_ = metrics->GetCounter("mover.staging_files_read");
  warehouse_files_written_ =
      metrics->GetCounter("mover.warehouse_files_written");
  messages_moved_ = metrics->GetCounter("mover.messages_moved");
  corrupt_files_skipped_ =
      metrics->GetCounter("mover.corrupt_files_skipped");
  barrier_stalls_ = metrics->GetCounter("mover.barrier_stalls");
  move_retries_ = metrics->GetCounter("mover.move_retries");
  late_files_dropped_ = metrics->GetCounter("mover.late_files_dropped");
  late_entries_dropped_ = metrics->GetCounter("mover.late_entries_dropped");
  columnar_files_written_ =
      metrics->GetCounter("mover.columnar_files_written");
  columnar_parse_fallbacks_ =
      metrics->GetCounter("mover.columnar_parse_fallbacks");
  broker_batches_decoded_ =
      metrics->GetCounter("mover.broker_batches_decoded");
  ingest_files_unstaged_parallel_ =
      metrics->GetCounter("scribe.ingest.files_unstaged_parallel");
  ingest_parts_built_parallel_ =
      metrics->GetCounter("scribe.ingest.parts_built_parallel");
  warehouse_file_bytes_ = metrics->GetHistogram("mover.warehouse_file_bytes");
  broker_e2e_latency_ = metrics->GetHistogram("broker.e2e_latency_ms");
  hour_slide_latency_ =
      metrics->GetHistogram("mover.hour_slide_latency_ms");
}

void LogMover::RunStage(const char* stage, size_t n,
                        const std::function<void(size_t)>& body) {
  if (options_.executor != nullptr) {
    options_.executor->ParallelFor(stage, n, body);
  } else {
    for (size_t i = 0; i < n; ++i) body(i);
  }
}

LogMoverStats LogMover::stats() const {
  LogMoverStats s;
  s.hours_moved = hours_moved_->value();
  s.categories_moved = categories_moved_->value();
  s.staging_files_read = staging_files_read_->value();
  s.warehouse_files_written = warehouse_files_written_->value();
  s.messages_moved = messages_moved_->value();
  s.corrupt_files_skipped = corrupt_files_skipped_->value();
  s.barrier_stalls = barrier_stalls_->value();
  s.move_retries = move_retries_->value();
  s.late_files_dropped = late_files_dropped_->value();
  s.late_entries_dropped = late_entries_dropped_->value();
  s.columnar_files_written = columnar_files_written_->value();
  s.columnar_parse_fallbacks = columnar_parse_fallbacks_->value();
  s.broker_batches_decoded = broker_batches_decoded_->value();
  return s;
}

void LogMover::Start(TimeMs start_hour) {
  if (started_) return;
  started_ = true;
  next_hour_ = TruncateToHour(start_hour);
  // Periodic run loop (self-rescheduling functor).
  struct Loop {
    LogMover* self;
    void operator()() const {
      self->RunOnce();
      self->sim_->After(self->options_.run_interval_ms, *this);
    }
  };
  sim_->After(options_.run_interval_ms, Loop{this});
}

void LogMover::RunOnce() {
  while (HourClosed(next_hour_)) {
    if (!AggregatorsFlushed(next_hour_)) {
      // A datacenter still holds data for the closed hour: this — and
      // only this — is a barrier stall.
      barrier_stalls_->Increment();
      break;
    }
    if (!MoveHour(next_hour_)) {
      // The move itself failed (e.g. warehouse outage): retry this hour
      // next run.
      move_retries_->Increment();
      break;
    }
    hours_moved_->Increment();
    hour_slide_latency_->Observe(
        static_cast<double>(sim_->Now() - (next_hour_ + kMillisPerHour)));
    next_hour_ += kMillisPerHour;
  }
  SweepLateStaging();
}

bool LogMover::HourClosed(TimeMs hour) const {
  // Hour must be closed (plus grace).
  return sim_->Now() >= hour + kMillisPerHour + options_.grace_ms;
}

bool LogMover::AggregatorsFlushed(TimeMs hour) const {
  // Every live aggregator in every datacenter must have flushed everything
  // up to and including this hour ("it ensures that by the time logs are
  // made available... all datacenters that produce a given log category
  // have transferred their logs", §2).
  for (const auto& dc : datacenters_) {
    if (dc.aggregators == nullptr) continue;  // broker-only datacenter
    for (const Aggregator* agg : *dc.aggregators) {
      if (agg->alive() && agg->UnflushedWatermark() <= hour) return false;
    }
  }
  return true;
}

bool LogMover::MoveHour(TimeMs hour) {
  // Discover the categories with staged data for this hour in any DC.
  std::set<std::string> categories;
  for (const auto& dc : datacenters_) {
    auto ls = dc.staging->List("/staging");
    if (!ls.ok()) {
      if (ls.status().IsNotFound()) continue;  // nothing staged yet
      return false;                            // staging outage: retry
    }
    std::string hour_fragment = HourPartitionPath(hour);
    for (const auto& entry : *ls) {
      std::string category = entry.path.substr(std::string("/staging/").size());
      if (dc.staging->Exists("/staging/" + category + "/" + hour_fragment)) {
        categories.insert(category);
      }
    }
  }
  // Broker topics, per datacenter. The same category can arrive on both
  // tiers at once — a fleet mid-migration runs brokers in some DCs and
  // aggregator chains in the rest — so both sources must merge into ONE
  // hour commit per category below: the slid hour directory is immutable,
  // and a second source committed after the first would be silently lost.
  std::vector<std::set<std::string>> fleet_topics(datacenters_.size());
  for (size_t i = 0; i < datacenters_.size(); ++i) {
    if (datacenters_[i].fleet == nullptr) continue;
    auto listed = datacenters_[i].fleet->ListTopics();
    if (!listed.ok()) {
      if (listed.status().IsNotFound()) continue;  // no topics yet
      return false;
    }
    fleet_topics[i].insert(listed->begin(), listed->end());
    categories.insert(listed->begin(), listed->end());
  }
  for (const auto& category : categories) {
    Status st = MoveCategoryHour(category, hour, fleet_topics);
    if (!st.ok()) return false;  // e.g. warehouse outage: retry whole hour
    categories_moved_->Increment();
  }
  return true;
}

Status LogMover::MoveCategoryHour(
    const std::string& category, TimeMs hour,
    const std::vector<std::set<std::string>>& fleet_topics) {
  std::string hour_fragment = HourPartitionPath(hour);
  std::string final_dir = "/logs/" + category + "/" + hour_fragment;

  // 0. Fetch this category's broker records from every fleet carrying the
  //    topic, from the group's committed offset up to the hour close. A
  //    leaderless partition stalls the hour — backpressure holds the data
  //    at the producers and the hour is retried next run. Offsets are
  //    committed only after the warehouse slide (step 5).
  struct PendingCommit {
    broker::BrokerFleet* fleet;
    int partition;
    uint64_t next_offset;
    uint64_t records;
    uint64_t bytes;
  };
  std::vector<PendingCommit> commits;
  // Batches arrive opaque (still compressed) from the leaders; each
  // remembers which pending commit its records belong to.
  struct FetchedBatch {
    size_t commit_idx;
    broker::Batch batch;
  };
  std::vector<FetchedBatch> fetched;
  std::vector<std::string> broker_merged;
  std::vector<TimeMs> latencies;
  TimeMs close = hour + kMillisPerHour;
  for (size_t i = 0; i < datacenters_.size(); ++i) {
    broker::BrokerFleet* fleet = datacenters_[i].fleet;
    if (fleet == nullptr || fleet_topics[i].count(category) == 0) continue;
    for (int p = 0; p < fleet->options().num_partitions; ++p) {
      uint64_t from =
          fleet->CommittedOffset(options_.consumer_group, category, p);
      broker::BrokerNode* leader = fleet->FindLeader(category, p);
      if (leader == nullptr) {
        return Status::Unavailable("leaderless partition: " + category + "/" +
                                   std::to_string(p));
      }
      auto read = leader->ConsumerFetch(category, p, from, close);
      if (!read.ok()) return read.status();
      if (read->next_offset > from) {
        size_t idx = commits.size();
        commits.push_back(PendingCommit{fleet, p, read->next_offset,
                                        read->record_count, 0});
        for (auto& b : read->batches) {
          fetched.push_back(FetchedBatch{idx, std::move(b)});
        }
      }
    }
  }

  // 0b. Decode the fetched batches — warehouse landing is the one place
  //     the delivery path decompresses, so it rides the same exec fan-out
  //     as the per-file unstage. Slots are per-index; the serial merge
  //     below walks them in fetch order, keeping the merged hour
  //     byte-identical to a serial decode.
  std::vector<std::vector<broker::Record>> decoded(fetched.size());
  std::vector<uint8_t> decode_failed(fetched.size(), 0);
  RunStage("mover.decode_batches", fetched.size(), [&](size_t i) {
    auto n = broker::DecodeBatch(fetched[i].batch, &decoded[i]);
    if (!n.ok()) decode_failed[i] = 1;
  });
  for (size_t i = 0; i < fetched.size(); ++i) {
    if (decode_failed[i]) {
      return Status::Corruption("broker batch decode failed: " + category);
    }
  }
  broker_batches_decoded_->Increment(fetched.size());
  for (size_t i = 0; i < fetched.size(); ++i) {
    PendingCommit& c = commits[fetched[i].commit_idx];
    for (auto& rec : decoded[i]) {
      // Consumed-byte accounting stays in uncompressed terms, matching the
      // produce side of the audit identity.
      c.bytes += rec.payload.size();
      latencies.push_back(sim_->Now() - rec.logged_at);
      broker_merged.push_back(std::move(rec.payload));
    }
  }

  if (warehouse_->Exists(final_dir)) {
    // The hour is already in the warehouse (a previous attempt slid it
    // before a later step — another category, an offset commit — forced a
    // retry, or an aggregator staged a straggler file after the slide). A
    // slid hour is immutable, so whatever sits in staging now is late
    // data: drop it and account the loss — leaving it would leak staged
    // files forever with the loss uncounted. Broker records re-fetched
    // from the committed offset were part of that slide (anything produced
    // after it carries logged_at past the hour close and stays out of this
    // fetch), so only their offsets still need persisting below.
    UNILOG_RETURN_NOT_OK(DropLateStaging(category, hour));
  } else {
    // 1. Collect the staged file bodies across datacenters in stable order
    //    (datacenter order, then listing order). I/O stays on this thread —
    //    MiniHdfs and its metrics are single-threaded by design.
    std::vector<std::string> staged_bodies;
    for (const auto& dc : datacenters_) {
      std::string dir = "/staging/" + category + "/" + hour_fragment;
      if (!dc.staging->Exists(dir)) continue;
      auto files = dc.staging->ListRecursive(dir);
      if (!files.ok()) return files.status();
      for (const auto& file : *files) {
        auto body = dc.staging->ReadFile(file.path);
        if (!body.ok()) return body.status();
        staged_bodies.push_back(std::move(*body));
      }
    }

    // 2. Sanity-check (decompress + unframe) every file, fanned out across
    //    exec workers: each slot is written only by its own index, and the
    //    merge below walks slots in input order, so the merged message list
    //    is identical to the serial per-file loop. Ordering within an hour
    //    is unspecified (§2: "the ordering of messages within each file is
    //    unspecified"), so concatenation per datacenter/file order is
    //    faithful.
    struct FileSlot {
      bool corrupt = false;
      std::vector<std::string> messages;
    };
    std::vector<FileSlot> slots(staged_bodies.size());
    RunStage("mover.unstage", staged_bodies.size(), [&](size_t i) {
      auto raw = Lz::Decompress(staged_bodies[i]);
      if (!raw.ok()) {
        slots[i].corrupt = true;  // corrupt file: skipped, not fatal
        return;
      }
      auto messages = UnframeMessages(*raw);
      if (!messages.ok()) {
        slots[i].corrupt = true;
        return;
      }
      slots[i].messages = std::move(*messages);
    });
    if (options_.executor != nullptr && options_.executor->parallel()) {
      ingest_files_unstaged_parallel_->Increment(staged_bodies.size());
    }

    std::vector<std::string> merged;  // message payloads
    for (auto& slot : slots) {
      if (slot.corrupt) {
        corrupt_files_skipped_->Increment();
        continue;
      }
      staging_files_read_->Increment();
      for (auto& m : slot.messages) merged.push_back(std::move(m));
    }
    // 3. Broker records join the same merged hour, after the staged files.
    for (auto& m : broker_merged) merged.push_back(std::move(m));
    if (!merged.empty()) {
      UNILOG_RETURN_NOT_OK(CommitMergedHour(category, hour, merged));
    }

    // 4. Clean up staging.
    for (const auto& dc : datacenters_) {
      std::string dir = "/staging/" + category + "/" + hour_fragment;
      if (dc.staging->Exists(dir)) {
        UNILOG_RETURN_NOT_OK(dc.staging->Delete(dir, /*recursive=*/true));
      }
    }
  }

  // 5. Persist the consumer group's progress; the fleet counts the
  //    consumption and lets leaders trim below the group minimum.
  for (const auto& c : commits) {
    UNILOG_RETURN_NOT_OK(c.fleet->CommitOffset(options_.consumer_group,
                                               category, c.partition,
                                               c.next_offset, c.records,
                                               c.bytes));
  }
  for (TimeMs l : latencies) {
    broker_e2e_latency_->Observe(static_cast<double>(l));
  }
  return Status::OK();
}

Status LogMover::CommitMergedHour(const std::string& category, TimeMs hour,
                                  const std::vector<std::string>& merged) {
  std::string hour_fragment = HourPartitionPath(hour);
  std::string final_dir = "/logs/" + category + "/" + hour_fragment;

  // 2. Write a few big files into a warehouse tmp dir.
  std::string tmp_dir = "/tmp/logmover/" + category + "/" + hour_fragment;
  if (warehouse_->Exists(tmp_dir)) {
    // Residue of a failed previous attempt: discard and redo.
    UNILOG_RETURN_NOT_OK(warehouse_->Delete(tmp_dir, /*recursive=*/true));
  }
  UNILOG_RETURN_NOT_OK(warehouse_->Mkdirs(tmp_dir));
  uint64_t part = 0;
  // part-NNNNN, zero-padded via std::string so any sequence width stays
  // unique (no fixed-buffer truncation).
  auto write_part = [&](const std::string& out) -> Status {
    std::string seq = std::to_string(part++);
    if (seq.size() < 5) seq.insert(0, 5 - seq.size(), '0');
    UNILOG_RETURN_NOT_OK(
        warehouse_->WriteFile(tmp_dir + "/part-" + seq, out));
    warehouse_files_written_->Increment();
    warehouse_file_bytes_->Observe(static_cast<double>(out.size()));
    return Status::OK();
  };
  if (options_.columnar_categories.count(category)) {
    // Columnar layout: parse each message back into a client event and
    // stream it through the RCFile writer. Parse failures are preserved
    // verbatim in a framed-compressed sidecar part (never dropped), so
    // messages_moved still counts every merged message and the delivery
    // audit stays balanced.
    std::string body;
    auto writer = std::make_unique<columnar::RcFileWriter>(&body);
    size_t rows_in_part = 0;
    auto flush_columnar = [&]() -> Status {
      if (rows_in_part == 0) return Status::OK();
      UNILOG_RETURN_NOT_OK(writer->Finish());
      UNILOG_RETURN_NOT_OK(write_part(body));
      columnar_files_written_->Increment();
      body.clear();
      writer = std::make_unique<columnar::RcFileWriter>(&body);
      rows_in_part = 0;
      return Status::OK();
    };
    std::string fallback;
    for (const auto& m : merged) {
      auto ev = events::ClientEvent::Deserialize(m);
      if (!ev.ok()) {
        AppendFramed(&fallback, m);
        columnar_parse_fallbacks_->Increment();
        continue;
      }
      UNILOG_RETURN_NOT_OK(writer->Add(*ev));
      ++rows_in_part;
      // body holds only flushed groups, so rotation is approximate —
      // "files of roughly this size", as with the framed layout.
      if (body.size() >= options_.target_file_bytes) {
        UNILOG_RETURN_NOT_OK(flush_columnar());
      }
    }
    UNILOG_RETURN_NOT_OK(flush_columnar());
    if (!fallback.empty()) {
      UNILOG_RETURN_NOT_OK(
          write_part(options_.compress ? Lz::Compress(fallback) : fallback));
    }
  } else {
    // Plan the part boundaries from message sizes alone (the same greedy
    // cut the serial flush loop made), then frame + compress every part in
    // exec workers using pooled buffers and the per-thread pooled
    // compressor. Parts are committed in part order below, so the staged
    // bytes match the serial path at any thread count.
    std::vector<size_t> part_ends =
        PlanFramedParts(merged, options_.target_file_bytes);
    std::vector<BufferPool::Lease> parts(part_ends.size());
    RunStage("mover.build_parts", part_ends.size(), [&](size_t p) {
      size_t begin = p == 0 ? 0 : part_ends[p - 1];
      BufferPool::Lease framed = pool_.Acquire();
      AppendFramedRange(framed.get(), merged, begin, part_ends[p]);
      if (options_.compress) {
        BufferPool::Lease out = pool_.Acquire();
        Lz::Pooled().CompressTo(*framed, out.get());
        parts[p] = std::move(out);
      } else {
        parts[p] = std::move(framed);
      }
    });
    if (options_.executor != nullptr && options_.executor->parallel()) {
      ingest_parts_built_parallel_->Increment(part_ends.size());
    }
    for (auto& part : parts) {
      UNILOG_RETURN_NOT_OK(write_part(*part));
      part.Release();
    }
    pool_.PublishMetrics(metrics_, {{"component", "mover"}});
  }
  messages_moved_->Increment(merged.size());

  // 3. Atomically slide the hour into the warehouse, then build any
  // necessary indexes alongside the data (§2; the index records final
  // warehouse paths, so it is built post-rename).
  UNILOG_RETURN_NOT_OK(warehouse_->Mkdirs("/logs/" + category + "/" +
                                          hour_fragment.substr(0, 10)));
  UNILOG_RETURN_NOT_OK(warehouse_->Rename(tmp_dir, final_dir));
  // Columnar hours skip the etwin index: their group headers already carry
  // the zone maps and event-name dictionaries the index would provide (and
  // the index builder expects framed parts).
  if (options_.index_categories.count(category) &&
      !options_.columnar_categories.count(category)) {
    UNILOG_RETURN_NOT_OK(
        etwin::EventNameIndex::BuildForDir(warehouse_, final_dir));
  }
  return Status::OK();
}

Status LogMover::DropLateStaging(const std::string& category, TimeMs hour) {
  std::string dir = "/staging/" + category + "/" + HourPartitionPath(hour);
  for (const auto& dc : datacenters_) {
    if (!dc.staging->Exists(dir)) continue;
    auto files = dc.staging->ListRecursive(dir);
    if (!files.ok()) return files.status();
    for (const auto& file : *files) {
      late_files_dropped_->Increment();
      late_entries_dropped_->Increment(CountEntriesInFile(dc.staging,
                                                          file.path));
    }
    UNILOG_RETURN_NOT_OK(dc.staging->Delete(dir, /*recursive=*/true));
  }
  return Status::OK();
}

void LogMover::SweepLateStaging() {
  for (const auto& dc : datacenters_) {
    auto files = dc.staging->ListRecursive("/staging");
    if (!files.ok()) continue;  // nothing staged, or outage: sweep later
    // Collect the late (category, hour) pairs first — deleting while
    // iterating a listing would skip entries.
    std::set<std::pair<std::string, TimeMs>> late;
    for (const auto& file : *files) {
      std::string category;
      TimeMs hour = 0;
      if (!ParseStagedHour(file.path, &category, &hour)) continue;
      if (hour < next_hour_) late.insert({category, hour});
    }
    for (const auto& [category, hour] : late) {
      std::string dir = "/staging/" + category + "/" + HourPartitionPath(hour);
      auto staged = dc.staging->ListRecursive(dir);
      if (!staged.ok()) continue;
      for (const auto& file : *staged) {
        late_files_dropped_->Increment();
        late_entries_dropped_->Increment(
            CountEntriesInFile(dc.staging, file.path));
      }
      if (!dc.staging->Delete(dir, /*recursive=*/true).ok()) continue;
    }
  }
}

}  // namespace unilog::scribe
