#include "scribe/log_mover.h"

#include <cstdio>

#include "common/compress.h"
#include "etwin/index.h"
#include "scribe/message.h"

namespace unilog::scribe {

LogMover::LogMover(Simulator* sim, std::vector<DatacenterHandle> datacenters,
                   hdfs::MiniHdfs* warehouse, LogMoverOptions options)
    : sim_(sim),
      datacenters_(std::move(datacenters)),
      warehouse_(warehouse),
      options_(options) {}

void LogMover::Start(TimeMs start_hour) {
  if (started_) return;
  started_ = true;
  next_hour_ = TruncateToHour(start_hour);
  // Periodic run loop (self-rescheduling functor).
  struct Loop {
    LogMover* self;
    void operator()() const {
      self->RunOnce();
      self->sim_->After(self->options_.run_interval_ms, *this);
    }
  };
  sim_->After(options_.run_interval_ms, Loop{this});
}

void LogMover::RunOnce() {
  while (BarrierMet(next_hour_)) {
    if (!MoveHour(next_hour_)) {
      ++stats_.barrier_stalls;
      return;  // retry this hour next run
    }
    ++stats_.hours_moved;
    next_hour_ += kMillisPerHour;
  }
}

bool LogMover::BarrierMet(TimeMs hour) const {
  // Hour must be closed (plus grace).
  if (sim_->Now() < hour + kMillisPerHour + options_.grace_ms) return false;
  // Every live aggregator in every datacenter must have flushed everything
  // up to and including this hour ("it ensures that by the time logs are
  // made available... all datacenters that produce a given log category
  // have transferred their logs", §2).
  for (const auto& dc : datacenters_) {
    for (const Aggregator* agg : *dc.aggregators) {
      if (agg->alive() && agg->UnflushedWatermark() <= hour) return false;
    }
  }
  return true;
}

bool LogMover::MoveHour(TimeMs hour) {
  // Discover the categories with staged data for this hour in any DC.
  std::set<std::string> categories;
  for (const auto& dc : datacenters_) {
    auto ls = dc.staging->List("/staging");
    if (!ls.ok()) {
      if (ls.status().IsNotFound()) continue;  // nothing staged yet
      return false;                            // staging outage: retry
    }
    std::string hour_fragment = HourPartitionPath(hour);
    for (const auto& entry : *ls) {
      std::string category = entry.path.substr(std::string("/staging/").size());
      if (dc.staging->Exists("/staging/" + category + "/" + hour_fragment)) {
        categories.insert(category);
      }
    }
  }
  for (const auto& category : categories) {
    Status st = MoveCategoryHour(category, hour);
    if (!st.ok()) return false;  // e.g. warehouse outage: retry whole hour
    ++stats_.categories_moved;
  }
  return true;
}

Status LogMover::MoveCategoryHour(const std::string& category, TimeMs hour) {
  std::string hour_fragment = HourPartitionPath(hour);
  std::string final_dir = "/logs/" + category + "/" + hour_fragment;
  if (warehouse_->Exists(final_dir)) {
    // Already moved (e.g. a previous attempt succeeded for this category
    // but a later category failed and the hour was retried).
    return Status::OK();
  }

  // 1. Collect + sanity-check all staged files across datacenters.
  //    Ordering within an hour is unspecified (§2: "the ordering of
  //    messages within each file is unspecified"), so simple concatenation
  //    per datacenter/file order is faithful.
  std::vector<std::string> merged;  // message payloads
  uint64_t merged_bytes = 0;
  for (const auto& dc : datacenters_) {
    std::string dir = "/staging/" + category + "/" + hour_fragment;
    if (!dc.staging->Exists(dir)) continue;
    auto files = dc.staging->ListRecursive(dir);
    if (!files.ok()) return files.status();
    for (const auto& file : *files) {
      auto body = dc.staging->ReadFile(file.path);
      if (!body.ok()) return body.status();
      auto raw = Lz::Decompress(*body);
      if (!raw.ok()) {
        // Sanity check failed: a corrupt file is skipped, not fatal.
        ++stats_.corrupt_files_skipped;
        continue;
      }
      auto messages = UnframeMessages(*raw);
      if (!messages.ok()) {
        ++stats_.corrupt_files_skipped;
        continue;
      }
      ++stats_.staging_files_read;
      for (auto& m : *messages) {
        merged_bytes += m.size();
        merged.push_back(std::move(m));
      }
    }
  }
  if (merged.empty()) return Status::OK();

  // 2. Write a few big files into a warehouse tmp dir.
  std::string tmp_dir = "/tmp/logmover/" + category + "/" + hour_fragment;
  if (warehouse_->Exists(tmp_dir)) {
    // Residue of a failed previous attempt: discard and redo.
    UNILOG_RETURN_NOT_OK(warehouse_->Delete(tmp_dir, /*recursive=*/true));
  }
  UNILOG_RETURN_NOT_OK(warehouse_->Mkdirs(tmp_dir));
  std::string body;
  uint64_t part = 0;
  auto flush_part = [&]() -> Status {
    if (body.empty()) return Status::OK();
    char name[32];
    std::snprintf(name, sizeof(name), "part-%05llu",
                  static_cast<unsigned long long>(part++));
    std::string out = options_.compress ? Lz::Compress(body) : body;
    UNILOG_RETURN_NOT_OK(warehouse_->WriteFile(tmp_dir + "/" + name, out));
    ++stats_.warehouse_files_written;
    body.clear();
    return Status::OK();
  };
  for (const auto& m : merged) {
    AppendFramed(&body, m);
    if (body.size() >= options_.target_file_bytes) {
      UNILOG_RETURN_NOT_OK(flush_part());
    }
  }
  UNILOG_RETURN_NOT_OK(flush_part());
  stats_.messages_moved += merged.size();

  // 3. Atomically slide the hour into the warehouse, then build any
  // necessary indexes alongside the data (§2; the index records final
  // warehouse paths, so it is built post-rename).
  UNILOG_RETURN_NOT_OK(warehouse_->Mkdirs("/logs/" + category + "/" +
                                          hour_fragment.substr(0, 10)));
  UNILOG_RETURN_NOT_OK(warehouse_->Rename(tmp_dir, final_dir));
  if (options_.index_categories.count(category)) {
    UNILOG_RETURN_NOT_OK(
        etwin::EventNameIndex::BuildForDir(warehouse_, final_dir));
  }

  // 4. Clean up staging.
  for (const auto& dc : datacenters_) {
    std::string dir = "/staging/" + category + "/" + hour_fragment;
    if (dc.staging->Exists(dir)) {
      UNILOG_RETURN_NOT_OK(dc.staging->Delete(dir, /*recursive=*/true));
    }
  }
  return Status::OK();
}

}  // namespace unilog::scribe
