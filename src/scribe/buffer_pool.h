#ifndef UNILOG_SCRIBE_BUFFER_POOL_H_
#define UNILOG_SCRIBE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace unilog::scribe {

/// Point-in-time pool accounting, readable without the registry.
struct BufferPoolStats {
  uint64_t hits = 0;       // Acquire served from the freelist
  uint64_t misses = 0;     // Acquire allocated a fresh buffer
  uint64_t outstanding = 0;  // leases currently held
  uint64_t high_water = 0;   // max simultaneous leases ever held
  uint64_t pooled = 0;       // buffers sitting in the freelist
  uint64_t double_releases = 0;  // rejected returns of non-outstanding bufs
};

/// A small thread-safe freelist of staging byte buffers for the ingest hot
/// path: aggregator rolls and log-mover part builds borrow a warmed-up
/// std::string instead of growing a fresh one per flush.
///
/// Ownership rule (the one the aggregator's drop-oldest overflow path
/// leans on): a buffer handed out through a Lease is owned exclusively by
/// that lease until it is released. The pool never reaches into
/// outstanding leases — overflow during an in-flight flush can therefore
/// never recycle a buffer that is still being framed or compressed.
///
/// Thread safety: Acquire and lease release take an internal mutex, so
/// log-mover workers on the exec pool can borrow buffers concurrently.
/// Metrics are NOT pushed from inside those calls — obs counters are
/// single-threaded by design — instead the owner calls PublishMetrics()
/// from its own thread after each roll/move.
class BufferPool {
 public:
  /// At most `max_pooled` idle buffers are retained; extra releases free
  /// their memory (bounds the pool's high-water memory after a burst).
  explicit BufferPool(size_t max_pooled = 16);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII handle to a pooled buffer. Movable; returns the buffer (with its
  /// grown capacity) to the freelist on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        buf_ = std::move(other.buf_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// The leased buffer; cleared at acquire time, capacity preserved.
    std::string* get() { return buf_.get(); }
    std::string& operator*() { return *buf_; }
    std::string* operator->() { return buf_.get(); }
    bool valid() const { return pool_ != nullptr; }

    /// Returns the buffer to the pool early (idempotent).
    void Release();

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, std::unique_ptr<std::string> buf)
        : pool_(pool), buf_(std::move(buf)) {}

    BufferPool* pool_ = nullptr;
    std::unique_ptr<std::string> buf_;
  };

  /// Borrows a cleared buffer (freelist hit when one is idle).
  Lease Acquire();

  BufferPoolStats stats() const;

  /// Copies the pool counters into `scribe.ingest.pool_*{labels}` metrics
  /// (labels distinguish the aggregator pools from the mover's in a shared
  /// registry). Call from the owning (single) thread only; see the class
  /// comment.
  void PublishMetrics(obs::MetricsRegistry* metrics,
                      const obs::Labels& labels = {}) const;

 private:
  friend class BufferPoolTestPeer;

  void Return(std::unique_ptr<std::string> buf);

  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::string>> free_;
  // Owner tags: addresses of every buffer currently out on a lease. A
  // return whose buffer is not in this set is a double release (or a
  // foreign buffer) — recycling it would hand two future leases the same
  // bytes, so it is rejected (and aborts under UNILOG_SANITIZE).
  std::set<const std::string*> outstanding_bufs_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t high_water_ = 0;
  uint64_t double_releases_ = 0;
};

/// Test-only backdoor: lets the double-release regression test push a
/// buffer at BufferPool::Return without going through a Lease (a real
/// double release is memory-unsafe to stage directly).
class BufferPoolTestPeer {
 public:
  static void Return(BufferPool* pool, std::unique_ptr<std::string> buf) {
    pool->Return(std::move(buf));
  }
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_BUFFER_POOL_H_
