#ifndef UNILOG_SCRIBE_BUFFER_POOL_H_
#define UNILOG_SCRIBE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace unilog::scribe {

/// Point-in-time pool accounting, readable without the registry.
struct BufferPoolStats {
  uint64_t hits = 0;       // Acquire served from the freelist
  uint64_t misses = 0;     // Acquire allocated a fresh buffer
  uint64_t outstanding = 0;  // leases currently held
  uint64_t high_water = 0;   // max simultaneous leases ever held
  uint64_t pooled = 0;       // buffers sitting in the freelist
};

/// A small thread-safe freelist of staging byte buffers for the ingest hot
/// path: aggregator rolls and log-mover part builds borrow a warmed-up
/// std::string instead of growing a fresh one per flush.
///
/// Ownership rule (the one the aggregator's drop-oldest overflow path
/// leans on): a buffer handed out through a Lease is owned exclusively by
/// that lease until it is released. The pool never reaches into
/// outstanding leases — overflow during an in-flight flush can therefore
/// never recycle a buffer that is still being framed or compressed.
///
/// Thread safety: Acquire and lease release take an internal mutex, so
/// log-mover workers on the exec pool can borrow buffers concurrently.
/// Metrics are NOT pushed from inside those calls — obs counters are
/// single-threaded by design — instead the owner calls PublishMetrics()
/// from its own thread after each roll/move.
class BufferPool {
 public:
  /// At most `max_pooled` idle buffers are retained; extra releases free
  /// their memory (bounds the pool's high-water memory after a burst).
  explicit BufferPool(size_t max_pooled = 16);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// RAII handle to a pooled buffer. Movable; returns the buffer (with its
  /// grown capacity) to the freelist on destruction.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), buf_(std::move(other.buf_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        Release();
        pool_ = other.pool_;
        buf_ = std::move(other.buf_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// The leased buffer; cleared at acquire time, capacity preserved.
    std::string* get() { return buf_.get(); }
    std::string& operator*() { return *buf_; }
    std::string* operator->() { return buf_.get(); }
    bool valid() const { return pool_ != nullptr; }

    /// Returns the buffer to the pool early (idempotent).
    void Release();

   private:
    friend class BufferPool;
    Lease(BufferPool* pool, std::unique_ptr<std::string> buf)
        : pool_(pool), buf_(std::move(buf)) {}

    BufferPool* pool_ = nullptr;
    std::unique_ptr<std::string> buf_;
  };

  /// Borrows a cleared buffer (freelist hit when one is idle).
  Lease Acquire();

  BufferPoolStats stats() const;

  /// Copies the pool counters into `scribe.ingest.pool_*{labels}` metrics
  /// (labels distinguish the aggregator pools from the mover's in a shared
  /// registry). Call from the owning (single) thread only; see the class
  /// comment.
  void PublishMetrics(obs::MetricsRegistry* metrics,
                      const obs::Labels& labels = {}) const;

 private:
  void Return(std::unique_ptr<std::string> buf);

  const size_t max_pooled_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<std::string>> free_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t outstanding_ = 0;
  uint64_t high_water_ = 0;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_BUFFER_POOL_H_
