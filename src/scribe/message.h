#ifndef UNILOG_SCRIBE_MESSAGE_H_
#define UNILOG_SCRIBE_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog::scribe {

/// A Scribe log entry: "each log entry consists of two strings, a category
/// and a message" (§2). The category selects routing and the warehouse
/// directory; the message is opaque bytes (compact-Thrift client events,
/// legacy text lines, anything).
struct LogEntry {
  std::string category;
  std::string message;
};

/// Serializes a batch of messages (single category) into the framed file
/// body used throughout the pipeline: each record is a varint length
/// followed by raw message bytes.
std::string FrameMessages(const std::vector<std::string>& messages);

/// Appends one framed record.
void AppendFramed(std::string* out, std::string_view message);

/// Parses a framed file body back into messages. Returns Corruption on a
/// malformed stream — the log mover uses this as its sanity check.
Result<std::vector<std::string>> UnframeMessages(std::string_view body);

/// Counts records in a framed body without materializing them.
Result<uint64_t> CountFramed(std::string_view body);

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_MESSAGE_H_
