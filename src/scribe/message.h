#ifndef UNILOG_SCRIBE_MESSAGE_H_
#define UNILOG_SCRIBE_MESSAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace unilog::scribe {

/// A Scribe log entry: "each log entry consists of two strings, a category
/// and a message" (§2). The category selects routing and the warehouse
/// directory; the message is opaque bytes (compact-Thrift client events,
/// legacy text lines, anything).
struct LogEntry {
  std::string category;
  std::string message;
};

/// Serializes a batch of messages (single category) into the framed file
/// body used throughout the pipeline: each record is a varint length
/// followed by raw message bytes.
std::string FrameMessages(const std::vector<std::string>& messages);

/// Appends one framed record.
void AppendFramed(std::string* out, std::string_view message);

/// Parses a framed file body back into messages. Returns Corruption on a
/// malformed stream — the log mover uses this as its sanity check.
Result<std::vector<std::string>> UnframeMessages(std::string_view body);

/// Counts records in a framed body without materializing them.
Result<uint64_t> CountFramed(std::string_view body);

/// On-wire size of one framed record: varint length prefix + payload.
size_t FramedSize(std::string_view message);

/// Replicates the serial flush loop's greedy part split: messages are
/// framed in order and a part is cut as soon as its framed body reaches
/// `target_bytes` (every part is non-empty; a single oversized message
/// forms its own part). Returns the exclusive end index of each part.
/// Boundaries depend only on the message sizes, never on scheduling, which
/// is what lets the parallel mover build and compress parts in workers yet
/// stage bytes identical to the serial path.
std::vector<size_t> PlanFramedParts(const std::vector<std::string>& messages,
                                    uint64_t target_bytes);

/// Appends the framed records for messages[begin, end) to *out.
void AppendFramedRange(std::string* out,
                       const std::vector<std::string>& messages, size_t begin,
                       size_t end);

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_MESSAGE_H_
