#ifndef UNILOG_SCRIBE_LOG_MOVER_H_
#define UNILOG_SCRIBE_LOG_MOVER_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/fleet.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "exec/executor.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "scribe/aggregator.h"
#include "scribe/buffer_pool.h"
#include "sim/simulator.h"

namespace unilog::scribe {

/// Tuning knobs for the log mover pipeline.
struct LogMoverOptions {
  /// How often the mover wakes up and tries to advance.
  TimeMs run_interval_ms = 5 * kMillisPerMinute;
  /// How long after an hour closes before it becomes eligible to move.
  TimeMs grace_ms = 2 * kMillisPerMinute;
  /// Merge staging files into warehouse files of roughly this size
  /// ("merging many small files into a few big ones", §2). Measured on the
  /// uncompressed framed body.
  uint64_t target_file_bytes = 8 * 1024 * 1024;
  /// Compress warehouse files.
  bool compress = true;
  /// Categories whose moved hours get an Elephant Twin event-name index
  /// built alongside the data ("building any necessary indexes", §2).
  /// Entries must contain compact-Thrift client events.
  std::set<std::string> index_categories;
  /// Categories whose warehoused hours are written as columnar RCFile v2
  /// parts (zone maps + dictionaries) instead of framed-compressed blobs,
  /// enabling the scan fast path. Entries must contain compact-Thrift
  /// client events; a message that fails to parse is preserved in a
  /// framed-compressed sidecar part (readers sniff per file), so delivery
  /// accounting is unchanged. Columnar parts carry their own per-column
  /// compression, so `compress` does not apply to them; the etwin index is
  /// skipped for these categories (zone maps + dictionaries subsume it).
  std::set<std::string> columnar_categories;
  /// When non-null, the mover fans its CPU-bound stages — per-staged-file
  /// decompress+unframe and per-part frame+compress — out across this
  /// engine's workers. All HDFS I/O and all obs counters stay on the
  /// calling thread, merges and part writes are committed in stable input
  /// order, and part boundaries are planned from message sizes alone, so
  /// the staged warehouse bytes are byte-identical at any thread count.
  /// Borrowed; must outlive the mover. nullptr = the serial path.
  exec::Executor* executor = nullptr;
  /// Consumer group under which the mover commits its broker offsets in zk.
  /// Restarting the mover resumes exactly where the group left off, so the
  /// warehouse never double-ingests a partition range.
  std::string consumer_group = "log-mover";
};

/// A datacenter as the log mover sees it: its staging cluster plus the
/// aggregators whose flush watermarks gate the hour barrier.
struct DatacenterHandle {
  std::string name;
  hdfs::MiniHdfs* staging = nullptr;
  const std::vector<Aggregator*>* aggregators = nullptr;
  /// When the datacenter runs a broker tier instead of (or alongside) the
  /// aggregator chain, the mover consumes each topic partition from its
  /// leader as consumer group `consumer_group`, so the warehouse path is
  /// unchanged downstream of the merge.
  broker::BrokerFleet* fleet = nullptr;
};

/// Mover metrics, materialized from the metrics registry.
struct LogMoverStats {
  uint64_t hours_moved = 0;
  uint64_t categories_moved = 0;
  uint64_t staging_files_read = 0;
  uint64_t warehouse_files_written = 0;
  uint64_t messages_moved = 0;
  uint64_t corrupt_files_skipped = 0;
  /// Runs where a closed hour was blocked by an unflushed aggregator.
  uint64_t barrier_stalls = 0;
  /// Runs where MoveHour itself failed (e.g. warehouse outage) and the
  /// hour will be retried. Previously mis-counted as barrier_stalls.
  uint64_t move_retries = 0;
  /// Staged files that arrived after their hour was already slid into the
  /// warehouse; they are dropped (and their messages counted) rather than
  /// leaked in staging forever.
  uint64_t late_files_dropped = 0;
  uint64_t late_entries_dropped = 0;
  /// Warehouse parts written in the columnar (RCFile v2) layout.
  uint64_t columnar_files_written = 0;
  /// Messages in a columnar category that failed the client-event parse
  /// and were preserved in a framed-compressed sidecar part instead.
  uint64_t columnar_parse_fallbacks = 0;
  /// Compressed broker batches decoded at warehouse landing — the single
  /// decompression point of the batched delivery path (the decompress-
  /// count probe in tests checks Lz call counts against this).
  uint64_t broker_batches_decoded = 0;
};

/// The log mover pipeline (§2): once every datacenter has transferred an
/// hour's logs for a category, it merges the many small staging files into
/// a few big ones, sanity-checks them (decompress + frame count), and
/// atomically slides the hour into the main warehouse at
/// /logs/<category>/YYYY/MM/DD/HH/. Hours move strictly in order; a stalled
/// hour (barrier not met, HDFS outage) is retried on the next run.
///
/// Late data: a staged file for an hour that has already been moved can no
/// longer be merged (the hour's warehouse directory is immutable once
/// slid); it is deleted from staging and accounted in the
/// `late_entries_dropped` loss channel so the delivery audit still
/// balances.
class LogMover {
 public:
  LogMover(Simulator* sim, std::vector<DatacenterHandle> datacenters,
           hdfs::MiniHdfs* warehouse, LogMoverOptions options,
           obs::MetricsRegistry* metrics = nullptr);

  LogMover(const LogMover&) = delete;
  LogMover& operator=(const LogMover&) = delete;

  /// Starts the periodic run loop; hours earlier than `start_hour` are
  /// assumed already handled.
  void Start(TimeMs start_hour);

  /// One mover iteration: moves every eligible closed hour, then sweeps
  /// staging for late files of already-moved hours. Public for tests and
  /// for deterministic end-of-run draining.
  void RunOnce();

  /// First hour not yet moved.
  TimeMs next_hour() const { return next_hour_; }

  LogMoverStats stats() const;

  /// Accounting for the part-buffer freelist (ingest hot path).
  BufferPoolStats ingest_pool_stats() const { return pool_.stats(); }

 private:
  /// True when hour `hour` is closed and past grace.
  bool HourClosed(TimeMs hour) const;

  /// True when no live aggregator anywhere still buffers data for `hour`.
  bool AggregatorsFlushed(TimeMs hour) const;

  /// Moves one hour across all categories. Returns false if the move must
  /// be retried (e.g. warehouse HDFS outage).
  bool MoveHour(TimeMs hour);

  /// Merges one (category, hour) from all datacenters — staged aggregator
  /// files AND broker partition records, which a mid-migration fleet
  /// produces for the same category at once — into one warehouse commit,
  /// then persists the consumer group's broker offsets. `fleet_topics[i]`
  /// is the topic set of datacenter i's broker fleet (empty when it runs
  /// no brokers). Committing the two tiers separately would lose whichever
  /// source arrived second: the slid hour directory is immutable.
  Status MoveCategoryHour(
      const std::string& category, TimeMs hour,
      const std::vector<std::set<std::string>>& fleet_topics);

  /// The shared warehouse-commit tail: writes `merged` as a few big parts
  /// into a tmp dir, atomically slides the hour to
  /// /logs/<category>/YYYY/MM/DD/HH/, and builds any configured index.
  /// Used by both the staging merge and the broker consumer.
  Status CommitMergedHour(const std::string& category, TimeMs hour,
                          const std::vector<std::string>& merged);

  /// Runs body(i) for i in [0, n): on the executor's workers when one is
  /// configured, inline otherwise. Bodies must write only to per-index
  /// slots (the determinism contract of unilog::exec).
  void RunStage(const char* stage, size_t n,
                const std::function<void(size_t)>& body);

  /// Deletes staged files for `category`/`hour` in every datacenter,
  /// counting the dropped files and messages as late-data loss.
  Status DropLateStaging(const std::string& category, TimeMs hour);

  /// Scans staging for hour directories older than next_hour_ (stragglers
  /// that appeared after their hour was moved) and drops them. Best
  /// effort: a staging outage skips the sweep until the next run.
  void SweepLateStaging();

  Simulator* sim_;
  std::vector<DatacenterHandle> datacenters_;
  hdfs::MiniHdfs* warehouse_;
  LogMoverOptions options_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Part bodies are framed and compressed into pooled buffers by the
  // (possibly parallel) build stage; writes drain them in part order.
  BufferPool pool_;
  obs::Counter* hours_moved_;
  obs::Counter* categories_moved_;
  obs::Counter* staging_files_read_;
  obs::Counter* warehouse_files_written_;
  obs::Counter* messages_moved_;
  obs::Counter* corrupt_files_skipped_;
  obs::Counter* barrier_stalls_;
  obs::Counter* move_retries_;
  obs::Counter* late_files_dropped_;
  obs::Counter* late_entries_dropped_;
  obs::Counter* columnar_files_written_;
  obs::Counter* columnar_parse_fallbacks_;
  obs::Counter* broker_batches_decoded_;
  // scribe.ingest.*: work items handed to exec workers (0 on the serial
  // path); the pool_* family is published from the buffer pool.
  obs::Counter* ingest_files_unstaged_parallel_;
  obs::Counter* ingest_parts_built_parallel_;
  obs::Histogram* warehouse_file_bytes_;
  // Log()-to-warehouse-ingest latency for broker-consumed records.
  obs::Histogram* broker_e2e_latency_;
  // Hour-close-to-warehouse-slide latency, one observation per moved
  // hour — the batch path's delivery-latency SLO (the soak harness bounds
  // its p99).
  obs::Histogram* hour_slide_latency_;

  bool started_ = false;
  TimeMs next_hour_ = 0;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_LOG_MOVER_H_
