#include "scribe/cluster.h"

namespace unilog::scribe {

ScribeCluster::ScribeCluster(Simulator* sim, ClusterTopology topology,
                             ScribeOptions scribe_options,
                             LogMoverOptions mover_options, uint64_t seed,
                             obs::MetricsRegistry* metrics)
    : sim_(sim),
      topology_(std::move(topology)),
      scribe_options_(scribe_options),
      mover_options_(mover_options),
      owned_metrics_(metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>(sim)
                         : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      zk_(sim, metrics_),
      warehouse_(sim, topology_.warehouse_hdfs, metrics_, "warehouse"),
      rng_(seed) {
  dc_names_ = topology_.datacenters;
  staging_.resize(dc_names_.size());
  aggregators_.resize(dc_names_.size());
  aggregator_ptrs_.resize(dc_names_.size());
  daemons_.resize(dc_names_.size());

  fleets_.resize(dc_names_.size());

  for (size_t dc = 0; dc < dc_names_.size(); ++dc) {
    const std::string& dc_name = dc_names_[dc];
    staging_[dc] = std::make_unique<hdfs::MiniHdfs>(
        sim_, topology_.staging_hdfs, metrics_, "staging-" + dc_name);
    const bool brokered = topology_.BrokeredDatacenter(dc_name);
    if (brokered) {
      // Broker tier replaces the aggregator chain in this datacenter.
      std::vector<std::string> node_ids;
      for (int b = 0; b < topology_.brokers_per_dc; ++b) {
        node_ids.push_back(dc_name + "-brk" + std::to_string(b));
      }
      fleets_[dc] = std::make_unique<broker::BrokerFleet>(
          sim_, &zk_, dc_name, std::move(node_ids),
          topology_.broker_options, metrics_);
    }
    for (int a = 0; !brokered && a < topology_.aggregators_per_dc; ++a) {
      std::string id = dc_name + "-agg" + std::to_string(a);
      aggregators_[dc].push_back(std::make_unique<Aggregator>(
          sim_, &zk_, staging_[dc].get(), dc_name, id, scribe_options_,
          metrics_));
      aggregator_ptrs_[dc].push_back(aggregators_[dc].back().get());
    }
    for (int d = 0; d < topology_.daemons_per_dc; ++d) {
      std::string host = dc_name + "-host" + std::to_string(d);
      // Resolver: map znode names back to Aggregator objects in this DC.
      auto resolver = [this, dc](const std::string& name) -> Aggregator* {
        for (Aggregator* agg : aggregator_ptrs_[dc]) {
          if (agg->id() == name) return agg;
        }
        return nullptr;
      };
      daemons_[dc].push_back(std::make_unique<ScribeDaemon>(
          sim_, &zk_, dc_name, host, resolver, rng_.Fork(), scribe_options_,
          metrics_));
      if (fleets_[dc] != nullptr) {
        daemons_[dc].back()->SetBrokerFleet(fleets_[dc].get());
      }
    }
  }

  std::vector<DatacenterHandle> handles;
  for (size_t dc = 0; dc < dc_names_.size(); ++dc) {
    handles.push_back(DatacenterHandle{dc_names_[dc], staging_[dc].get(),
                                       &aggregator_ptrs_[dc],
                                       fleets_[dc].get()});
  }
  mover_ = std::make_unique<LogMover>(sim_, std::move(handles), &warehouse_,
                                      mover_options_, metrics_);
}

Status ScribeCluster::Start() {
  for (auto& fleet : fleets_) {
    if (fleet != nullptr) {
      UNILOG_RETURN_NOT_OK(fleet->Start());
    }
  }
  for (auto& dc_aggs : aggregators_) {
    for (auto& agg : dc_aggs) {
      UNILOG_RETURN_NOT_OK(agg->Start());
    }
  }
  for (auto& dc_daemons : daemons_) {
    for (auto& daemon : dc_daemons) {
      daemon->Start();
    }
  }
  mover_->Start(sim_->Now());
  return Status::OK();
}

ScribeDaemon* ScribeCluster::daemon(size_t dc, size_t index) {
  return daemons_[dc][index].get();
}

const ScribeDaemon* ScribeCluster::daemon(size_t dc, size_t index) const {
  return daemons_[dc][index].get();
}

Aggregator* ScribeCluster::aggregator(size_t dc, size_t index) {
  return aggregators_[dc][index].get();
}

const Aggregator* ScribeCluster::aggregator(size_t dc, size_t index) const {
  return aggregators_[dc][index].get();
}

size_t ScribeCluster::broker_count(size_t dc) const {
  return fleets_[dc] == nullptr ? 0 : fleets_[dc]->node_count();
}

broker::BrokerFleet* ScribeCluster::fleet(size_t dc) {
  return fleets_[dc].get();
}

broker::BrokerNode* ScribeCluster::broker(size_t dc, size_t index) {
  return fleets_[dc]->node(index);
}

hdfs::MiniHdfs* ScribeCluster::staging(size_t dc) {
  return staging_[dc].get();
}

void ScribeCluster::Log(size_t dc, const LogEntry& entry) {
  // Round-robin across the DC's daemons: models many hosts producing.
  auto& dcd = daemons_[dc];
  dcd[round_robin_++ % dcd.size()]->Log(entry);
}

void ScribeCluster::CrashAggregator(size_t dc, size_t index) {
  aggregators_[dc][index]->Crash();
}

Status ScribeCluster::RestartAggregator(size_t dc, size_t index) {
  return aggregators_[dc][index]->Start();
}

void ScribeCluster::CrashBroker(size_t dc, size_t index) {
  fleets_[dc]->node(index)->Crash();
}

Status ScribeCluster::RestartBroker(size_t dc, size_t index) {
  return fleets_[dc]->node(index)->Start();
}

Status ScribeCluster::ExpireBrokerSession(size_t dc, size_t index) {
  return fleets_[dc]->node(index)->ExpireSession();
}

void ScribeCluster::SetStagingAvailable(size_t dc, bool available) {
  staging_[dc]->SetAvailable(available);
}

ClusterStats ScribeCluster::TotalStats() const {
  ClusterStats total;
  for (const auto& dc_daemons : daemons_) {
    for (const auto& daemon : dc_daemons) {
      const DaemonStats s = daemon->stats();
      total.entries_logged += s.entries_logged;
      total.entries_dropped_at_daemons += s.entries_dropped;
      total.daemon_rediscoveries += s.rediscoveries;
      total.send_failures += s.send_failures;
      total.produce_throttled += s.produce_throttled;
    }
  }
  for (const auto& fleet : fleets_) {
    if (fleet == nullptr) continue;
    const broker::BrokerFleetStats s = fleet->TotalStats();
    total.entries_produced += s.entries_produced;
    total.entries_dup_resends += s.entries_duplicate;
    total.entries_lost_unreplicated += s.entries_lost_failover;
    total.entries_consumed += s.entries_consumed;
    total.broker_elections += s.elections_won;
  }
  for (const auto& dc_aggs : aggregators_) {
    for (const auto& agg : dc_aggs) {
      const AggregatorStats s = agg->stats();
      total.entries_lost_in_crashes += s.entries_lost_in_crash;
      total.entries_dropped_overflow += s.entries_dropped_overflow;
      total.entries_staged += s.entries_staged;
    }
  }
  const LogMoverStats mover_stats = mover_->stats();
  total.messages_in_warehouse = mover_stats.messages_moved;
  total.late_entries_dropped = mover_stats.late_entries_dropped;
  return total;
}

}  // namespace unilog::scribe
