#include "scribe/aggregator.h"

#include <cstdio>
#include <limits>

namespace unilog::scribe {

std::string AggregatorRegistryPath(const std::string& datacenter) {
  return "/scribe/" + datacenter + "/aggregators";
}

Aggregator::Aggregator(Simulator* sim, zk::ZooKeeper* zk,
                       hdfs::MiniHdfs* staging, std::string datacenter,
                       std::string id, ScribeOptions options)
    : sim_(sim),
      zk_(zk),
      staging_(staging),
      datacenter_(std::move(datacenter)),
      id_(std::move(id)),
      options_(options) {}

Status Aggregator::Start() {
  if (alive_) return Status::FailedPrecondition("already running");
  session_ = zk_->CreateSession();
  // Ensure the registry path exists (persistent), then register ourselves
  // with an ephemeral znode whose data is our "hostname".
  std::string registry = AggregatorRegistryPath(datacenter_);
  // Create parents /scribe, /scribe/<dc>, /scribe/<dc>/aggregators.
  std::string partial;
  for (const auto& part : {std::string("scribe"), datacenter_,
                           std::string("aggregators")}) {
    partial += "/" + part;
    auto st = zk_->Create(session_, partial, "", zk::CreateMode::kPersistent);
    if (!st.ok() && !st.status().IsAlreadyExists()) return st.status();
  }
  UNILOG_RETURN_NOT_OK(zk_->Create(session_, registry + "/" + id_,
                                   datacenter_ + ":" + id_,
                                   zk::CreateMode::kEphemeral)
                           .status());
  alive_ = true;
  ++incarnation_;
  ScheduleRoll();
  return Status::OK();
}

void Aggregator::Crash() {
  if (!alive_) return;
  alive_ = false;
  ++incarnation_;  // cancels pending roll timers
  // Session expiry removes the ephemeral registration and fires daemon
  // watches.
  zk_->CloseSession(session_);
  // Whatever was buffered but not rolled is gone: Scribe's loss window.
  for (const auto& [key, buffer] : buffers_) {
    stats_.entries_lost_in_crash += buffer.messages.size();
  }
  buffers_.clear();
}

Status Aggregator::Receive(const std::vector<LogEntry>& entries) {
  if (!alive_) return Status::Unavailable("aggregator down: " + id_);
  TimeMs hour = TruncateToHour(sim_->Now());
  for (const auto& entry : entries) {
    HourBuffer& buffer = buffers_[{entry.category, hour}];
    buffer.bytes += entry.message.size();
    buffer.messages.push_back(entry.message);
    ++stats_.entries_received;
    stats_.bytes_received += entry.message.size();
    if (buffer.bytes >= options_.roll_bytes) {
      BufferKey key{entry.category, hour};
      if (RollBuffer(key, &buffer)) {
        buffers_.erase(key);
      }
    }
  }
  return Status::OK();
}

void Aggregator::ScheduleRoll() {
  uint64_t my_incarnation = incarnation_;
  sim_->After(options_.roll_interval_ms, [this, my_incarnation]() {
    if (!alive_ || incarnation_ != my_incarnation) return;
    RollAll();
    ScheduleRoll();
  });
}

void Aggregator::RollAll() {
  if (!alive_) return;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (RollBuffer(it->first, &it->second)) {
      it = buffers_.erase(it);
    } else {
      ++it;  // HDFS outage: keep buffering ("local disk")
    }
  }
}

bool Aggregator::RollBuffer(const BufferKey& key, HourBuffer* buffer) {
  if (buffer->messages.empty()) return true;
  const auto& [category, hour] = key;
  std::string body = FrameMessages(buffer->messages);
  if (options_.compress) body = Lz::Compress(body);

  char name[64];
  std::snprintf(name, sizeof(name), "%s-%06llu", id_.c_str(),
                static_cast<unsigned long long>(file_seq_));
  std::string path = "/staging/" + category + "/" + HourPartitionPath(hour) +
                     "/" + name;
  Status st = staging_->WriteFile(path, body);
  if (!st.ok()) {
    ++stats_.hdfs_write_failures;
    return false;
  }
  ++file_seq_;
  ++stats_.files_written;
  stats_.bytes_written += body.size();
  return true;
}

TimeMs Aggregator::UnflushedWatermark() const {
  TimeMs min_hour = std::numeric_limits<TimeMs>::max();
  for (const auto& [key, buffer] : buffers_) {
    if (!buffer.messages.empty() && key.second < min_hour) {
      min_hour = key.second;
    }
  }
  return min_hour;
}

}  // namespace unilog::scribe
