#include "scribe/aggregator.h"

#include <algorithm>
#include <limits>

namespace unilog::scribe {

std::string AggregatorRegistryPath(const std::string& datacenter) {
  return "/scribe/" + datacenter + "/aggregators";
}

Aggregator::Aggregator(Simulator* sim, zk::ZooKeeper* zk,
                       hdfs::MiniHdfs* staging, std::string datacenter,
                       std::string id, ScribeOptions options,
                       obs::MetricsRegistry* metrics)
    : sim_(sim),
      zk_(zk),
      staging_(staging),
      datacenter_(std::move(datacenter)),
      id_(std::move(id)),
      options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  obs::Labels labels{{"dc", datacenter_}, {"id", id_}};
  pool_labels_ = labels;
  entries_received_ = metrics->GetCounter("agg.entries_received", labels);
  bytes_received_ = metrics->GetCounter("agg.bytes_received", labels);
  entries_staged_ = metrics->GetCounter("agg.entries_staged", labels);
  files_written_ = metrics->GetCounter("agg.files_written", labels);
  bytes_written_ = metrics->GetCounter("agg.bytes_written", labels);
  hdfs_write_failures_ =
      metrics->GetCounter("agg.hdfs_write_failures", labels);
  entries_lost_in_crash_ =
      metrics->GetCounter("agg.entries_lost_in_crash", labels);
  entries_dropped_overflow_ =
      metrics->GetCounter("agg.entries_dropped_overflow", labels);
  receive_throttled_ = metrics->GetCounter("agg.receive_throttled", labels);
  buffered_entries_gauge_ = metrics->GetGauge("agg.buffered_entries", labels);
  staging_file_bytes_ =
      metrics->GetHistogram("agg.staging_file_bytes", labels);
}

AggregatorStats Aggregator::stats() const {
  AggregatorStats s;
  s.entries_received = entries_received_->value();
  s.bytes_received = bytes_received_->value();
  s.entries_staged = entries_staged_->value();
  s.files_written = files_written_->value();
  s.bytes_written = bytes_written_->value();
  s.hdfs_write_failures = hdfs_write_failures_->value();
  s.entries_lost_in_crash = entries_lost_in_crash_->value();
  s.entries_dropped_overflow = entries_dropped_overflow_->value();
  return s;
}

Status Aggregator::Start() {
  if (alive_) return Status::FailedPrecondition("already running");
  session_ = zk_->CreateSession();
  // Ensure the registry path exists (persistent), then register ourselves
  // with an ephemeral znode whose data is our "hostname".
  std::string registry = AggregatorRegistryPath(datacenter_);
  // Create parents /scribe, /scribe/<dc>, /scribe/<dc>/aggregators.
  std::string partial;
  for (const auto& part : {std::string("scribe"), datacenter_,
                           std::string("aggregators")}) {
    partial += "/" + part;
    auto st = zk_->Create(session_, partial, "", zk::CreateMode::kPersistent);
    if (!st.ok() && !st.status().IsAlreadyExists()) return st.status();
  }
  UNILOG_RETURN_NOT_OK(zk_->Create(session_, registry + "/" + id_,
                                   datacenter_ + ":" + id_,
                                   zk::CreateMode::kEphemeral)
                           .status());
  alive_ = true;
  ++incarnation_;
  receive_tokens_ =
      static_cast<double>(options_.aggregator_service_bytes_per_sec);
  last_token_refill_ = sim_->Now();
  ScheduleRoll();
  return Status::OK();
}

void Aggregator::Crash() {
  if (!alive_) return;
  alive_ = false;
  ++incarnation_;  // cancels pending roll timers
  // Session expiry removes the ephemeral registration and fires daemon
  // watches.
  zk_->CloseSession(session_);
  // Whatever was buffered but not rolled is gone: Scribe's loss window.
  for (const auto& [key, buffer] : buffers_) {
    entries_lost_in_crash_->Increment(buffer.messages.size());
  }
  buffers_.clear();
  buffered_bytes_ = 0;
  buffered_entries_gauge_->Set(0);
}

void Aggregator::RefillReceiveTokens() {
  TimeMs now = sim_->Now();
  double cap = static_cast<double>(options_.aggregator_service_bytes_per_sec);
  receive_tokens_ = std::min(
      cap, receive_tokens_ +
               cap * static_cast<double>(now - last_token_refill_) / 1000.0);
  last_token_refill_ = now;
}

Status Aggregator::Receive(const std::vector<LogEntry>& entries) {
  if (!alive_) return Status::Unavailable("aggregator down: " + id_);
  if (options_.aggregator_service_bytes_per_sec > 0) {
    // Token bucket modeling the single daemon→aggregator chain's service
    // bound: the batch is accepted whole or not at all, and a rejected
    // daemon keeps its queue and backs off.
    RefillReceiveTokens();
    uint64_t cost = 0;
    for (const auto& entry : entries) cost += entry.message.size();
    if (receive_tokens_ < static_cast<double>(cost)) {
      receive_throttled_->Increment();
      return Status::Unavailable("aggregator throttled: " + id_);
    }
    receive_tokens_ -= static_cast<double>(cost);
  }
  TimeMs hour = TruncateToHour(sim_->Now() + clock_skew_ms_);
  for (const auto& entry : entries) {
    HourBuffer& buffer = buffers_[{entry.category, hour}];
    buffer.bytes += entry.message.size();
    buffered_bytes_ += entry.message.size();
    buffer.messages.push_back(entry.message);
    entries_received_->Increment();
    bytes_received_->Increment(entry.message.size());
    EnforceBufferLimit();
    // The just-appended entry can itself be evicted under an extreme
    // limit, so re-look-up instead of trusting the old reference.
    auto it = buffers_.find({entry.category, hour});
    if (it != buffers_.end() && it->second.bytes >= options_.roll_bytes) {
      if (RollBuffer(it->first, &it->second)) {
        buffers_.erase(it);
      }
    }
  }
  buffered_entries_gauge_->Set(static_cast<int64_t>(BufferedEntries()));
  return Status::OK();
}

void Aggregator::EnforceBufferLimit() {
  while (buffered_bytes_ > options_.aggregator_buffer_limit_bytes &&
         !buffers_.empty()) {
    // Oldest hour first (ties broken by category order for determinism):
    // during a prolonged outage the stalest data is sacrificed, bounding
    // the "local disk".
    auto oldest = buffers_.begin();
    for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
      if (it->first.second < oldest->first.second) oldest = it;
    }
    HourBuffer& buffer = oldest->second;
    if (buffer.messages.empty()) {
      buffers_.erase(oldest);
      continue;
    }
    uint64_t size = buffer.messages.front().size();
    buffer.bytes -= size;
    buffered_bytes_ -= size;
    buffer.messages.pop_front();
    entries_dropped_overflow_->Increment();
    if (buffer.messages.empty()) buffers_.erase(oldest);
  }
}

void Aggregator::ScheduleRoll() {
  uint64_t my_incarnation = incarnation_;
  sim_->After(options_.roll_interval_ms, [this, my_incarnation]() {
    if (!alive_ || incarnation_ != my_incarnation) return;
    RollAll();
    ScheduleRoll();
  });
}

void Aggregator::RollAll() {
  if (!alive_) return;
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (RollBuffer(it->first, &it->second)) {
      it = buffers_.erase(it);
    } else {
      ++it;  // HDFS outage: keep buffering ("local disk")
    }
  }
  buffered_entries_gauge_->Set(static_cast<int64_t>(BufferedEntries()));
}

bool Aggregator::RollBuffer(const BufferKey& key, HourBuffer* buffer) {
  if (buffer->messages.empty()) return true;
  const auto& [category, hour] = key;
  // Frame into a pooled buffer, compress into a second one: steady-state
  // rolls reuse warmed capacity and the compressor's hash-chain state
  // instead of reallocating both per flush. The staged bytes are identical
  // to the old fresh-string path.
  BufferPool::Lease body = pool_.Acquire();
  for (const auto& m : buffer->messages) AppendFramed(body.get(), m);
  BufferPool::Lease compressed;
  const std::string* file_bytes = body.get();
  if (options_.compress) {
    compressed = pool_.Acquire();
    compressor_.CompressTo(*body, compressed.get());
    file_bytes = compressed.get();
  }

  // File names are id-seq. Built with std::string concatenation: ids of
  // any length stay unique (a fixed snprintf buffer used to silently
  // truncate long ids, colliding distinct aggregators onto one name).
  std::string seq = std::to_string(file_seq_);
  if (seq.size() < 6) seq.insert(0, 6 - seq.size(), '0');
  std::string path = "/staging/" + category + "/" + HourPartitionPath(hour) +
                     "/" + id_ + "-" + seq;
  Status st = staging_->WriteFile(path, *file_bytes);
  pool_.PublishMetrics(metrics_, pool_labels_);
  if (!st.ok()) {
    hdfs_write_failures_->Increment();
    return false;
  }
  ++file_seq_;
  entries_staged_->Increment(buffer->messages.size());
  files_written_->Increment();
  bytes_written_->Increment(file_bytes->size());
  staging_file_bytes_->Observe(static_cast<double>(file_bytes->size()));
  buffered_bytes_ -= buffer->bytes;
  return true;
}

TimeMs Aggregator::UnflushedWatermark() const {
  TimeMs min_hour = std::numeric_limits<TimeMs>::max();
  for (const auto& [key, buffer] : buffers_) {
    if (!buffer.messages.empty() && key.second < min_hour) {
      min_hour = key.second;
    }
  }
  return min_hour;
}

uint64_t Aggregator::BufferedEntries() const {
  uint64_t n = 0;
  for (const auto& [key, buffer] : buffers_) n += buffer.messages.size();
  return n;
}

}  // namespace unilog::scribe
