#include "scribe/message.h"

#include "common/coding.h"

namespace unilog::scribe {

std::string FrameMessages(const std::vector<std::string>& messages) {
  std::string out;
  for (const auto& m : messages) {
    PutLengthPrefixed(&out, m);
  }
  return out;
}

void AppendFramed(std::string* out, std::string_view message) {
  PutLengthPrefixed(out, message);
}

Result<std::vector<std::string>> UnframeMessages(std::string_view body) {
  std::vector<std::string> out;
  Decoder dec(body);
  while (!dec.AtEnd()) {
    std::string_view record;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
    out.emplace_back(record);
  }
  return out;
}

size_t FramedSize(std::string_view message) {
  size_t len = 1;
  for (uint64_t v = message.size(); v >= 0x80; v >>= 7) ++len;
  return len + message.size();
}

std::vector<size_t> PlanFramedParts(const std::vector<std::string>& messages,
                                    uint64_t target_bytes) {
  std::vector<size_t> ends;
  uint64_t part_bytes = 0;
  for (size_t i = 0; i < messages.size(); ++i) {
    part_bytes += FramedSize(messages[i]);
    if (part_bytes >= target_bytes) {
      ends.push_back(i + 1);
      part_bytes = 0;
    }
  }
  if (part_bytes > 0) ends.push_back(messages.size());
  return ends;
}

void AppendFramedRange(std::string* out,
                       const std::vector<std::string>& messages, size_t begin,
                       size_t end) {
  for (size_t i = begin; i < end; ++i) {
    PutLengthPrefixed(out, messages[i]);
  }
}

Result<uint64_t> CountFramed(std::string_view body) {
  uint64_t count = 0;
  Decoder dec(body);
  while (!dec.AtEnd()) {
    std::string_view record;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
    ++count;
  }
  return count;
}

}  // namespace unilog::scribe
