#include "scribe/message.h"

#include "common/coding.h"

namespace unilog::scribe {

std::string FrameMessages(const std::vector<std::string>& messages) {
  std::string out;
  for (const auto& m : messages) {
    PutLengthPrefixed(&out, m);
  }
  return out;
}

void AppendFramed(std::string* out, std::string_view message) {
  PutLengthPrefixed(out, message);
}

Result<std::vector<std::string>> UnframeMessages(std::string_view body) {
  std::vector<std::string> out;
  Decoder dec(body);
  while (!dec.AtEnd()) {
    std::string_view record;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
    out.emplace_back(record);
  }
  return out;
}

Result<uint64_t> CountFramed(std::string_view body) {
  uint64_t count = 0;
  Decoder dec(body);
  while (!dec.AtEnd()) {
    std::string_view record;
    UNILOG_RETURN_NOT_OK(dec.GetLengthPrefixed(&record));
    ++count;
  }
  return count;
}

}  // namespace unilog::scribe
