#ifndef UNILOG_SCRIBE_DAEMON_H_
#define UNILOG_SCRIBE_DAEMON_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/fleet.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "scribe/aggregator.h"
#include "scribe/message.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::scribe {

/// Per-daemon delivery metrics, materialized from the metrics registry.
struct DaemonStats {
  uint64_t entries_logged = 0;
  uint64_t entries_sent = 0;
  uint64_t entries_dropped = 0;  // buffer-limit overflow
  uint64_t send_failures = 0;
  uint64_t rediscoveries = 0;
  uint64_t produce_throttled = 0;  // broker backpressure pushbacks
};

/// A Scribe daemon: runs on every production host, queues local log
/// entries, and ships them to an aggregator in the same datacenter. The
/// aggregator is discovered through ZooKeeper's ephemeral registry; on a
/// failed send the daemon buffers locally (bounded), re-consults
/// ZooKeeper, and retries — the §2 fault-tolerance story.
///
/// All delivery counters live in an obs::MetricsRegistry under
/// `daemon.*{dc=...,host=...}`; when no registry is supplied the daemon
/// owns a private one so standalone construction keeps working.
class ScribeDaemon {
 public:
  /// `resolve` maps an aggregator registry entry (znode name) to the
  /// Aggregator object — the simulation's stand-in for opening a network
  /// connection to the advertised host:port.
  using Resolver = std::function<Aggregator*(const std::string& name)>;

  ScribeDaemon(Simulator* sim, zk::ZooKeeper* zk, std::string datacenter,
               std::string host, Resolver resolve, Rng rng,
               ScribeOptions options,
               obs::MetricsRegistry* metrics = nullptr);

  ScribeDaemon(const ScribeDaemon&) = delete;
  ScribeDaemon& operator=(const ScribeDaemon&) = delete;

  /// Switches the daemon into broker-producer mode: Flush() partitions the
  /// queue by category and produces to partition leaders with per-daemon
  /// sequence numbers (idempotent delivery) instead of shipping whole
  /// batches to an aggregator. Call before Start().
  void SetBrokerFleet(broker::BrokerFleet* fleet) { fleet_ = fleet; }

  /// Starts the periodic flush loop.
  void Start();

  /// Queues one log entry (the application-facing API).
  void Log(LogEntry entry);
  void Log(const std::string& category, std::string message);

  /// Flushes queued entries to the current destination now; on failure,
  /// re-discovers and leaves entries queued. Normally timer-driven.
  void Flush();

  /// Entries queued but not yet acknowledged downstream.
  size_t QueuedEntries() const { return queue_.size(); }

  DaemonStats stats() const;
  const std::string& host() const { return host_; }

 private:
  /// A queued entry plus the per-daemon sequence number assigned at Log()
  /// time. Sequence numbers travel with every send so downstream dedup can
  /// make crash-retry idempotent.
  struct Queued {
    LogEntry entry;
    uint64_t seq = 0;
    TimeMs logged_at = 0;
  };

  void ScheduleFlush();
  /// Picks a live aggregator from ZooKeeper; nullptr when none registered.
  Aggregator* Discover();
  bool FlushToAggregator();
  bool FlushToBroker();
  /// Batched produce for one category run: frames the queued entries into
  /// a pooled body buffer, compresses the body ONCE with the pooled Lz
  /// state, and ships the blob via ProduceBatch. The compression done here
  /// is the only compression the payload sees until warehouse landing.
  Status ProduceCategoryBatch(broker::BrokerNode* leader,
                              const std::string& category, int partition,
                              const std::vector<size_t>& indices,
                              std::vector<size_t>* taken,
                              broker::ProduceAck* ack);
  broker::BrokerNode* DiscoverLeader(const std::string& category,
                                     int partition);
  /// Capped exponential backoff with deterministic (Rng-seeded) jitter:
  /// doubles per consecutive failed flush up to daemon_retry_backoff_max_ms,
  /// jittered into [1/2, 1]× so an outage does not synchronize the whole
  /// daemon herd onto one zk rediscovery tick.
  void EnterBackoff();

  Simulator* sim_;
  zk::ZooKeeper* zk_;
  std::string datacenter_;
  std::string host_;
  Resolver resolve_;
  Rng rng_;
  ScribeOptions options_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::Counter* entries_logged_;
  obs::Counter* entries_sent_;
  obs::Counter* entries_dropped_;
  obs::Counter* send_failures_;
  obs::Counter* rediscoveries_;
  obs::Counter* produce_throttled_;
  obs::Gauge* queue_depth_;
  obs::Histogram* batch_entries_;

  bool started_ = false;
  Aggregator* current_ = nullptr;
  broker::BrokerFleet* fleet_ = nullptr;
  // Cached partition leader per category; invalidated on rejection/death.
  std::map<std::string, broker::BrokerNode*> leader_cache_;
  // Send batch assembled from queue_ each flush; member so its capacity is
  // reused across the once-per-second flush timer.
  std::vector<LogEntry> batch_;
  // Pooled body buffers for batched broker produce: the framed body is
  // assembled in a lease, compressed once, and the lease returns its grown
  // capacity for the next flush.
  BufferPool pool_;
  std::deque<Queued> queue_;
  uint64_t queue_bytes_ = 0;
  // Per-category sequence counters: each (host, category) stream gets
  // dense seqs, which is what lets a produce batch carry its idempotence
  // metadata as just (first_seq, count). All of a category's entries
  // route to one partition, so density survives partitioning; drop-oldest
  // and ack-removal both erase per-category prefixes, preserving it in
  // the queue too.
  std::map<std::string, uint64_t> next_seq_;
  TimeMs backoff_until_ = 0;
  int fail_streak_ = 0;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_DAEMON_H_
