#ifndef UNILOG_SCRIBE_AGGREGATOR_H_
#define UNILOG_SCRIBE_AGGREGATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/compress.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "scribe/message.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::scribe {

/// Tuning knobs shared across the Scribe tier.
struct ScribeOptions {
  /// Aggregator: roll buffered data to staging HDFS this often.
  TimeMs roll_interval_ms = 60 * kMillisPerSecond;
  /// Aggregator: roll a category early once its buffer reaches this size.
  uint64_t roll_bytes = 4 * 1024 * 1024;
  /// Aggregator: compress file bodies written to staging.
  bool compress = true;
  /// Daemon: flush queued entries to the aggregator this often.
  TimeMs daemon_flush_interval_ms = 1 * kMillisPerSecond;
  /// Daemon: buffer at most this many bytes while no aggregator is
  /// reachable; beyond it the oldest entries are dropped (counted).
  uint64_t daemon_buffer_limit_bytes = 64 * 1024 * 1024;
  /// Daemon: wait this long after a failed send before retrying discovery.
  TimeMs daemon_retry_backoff_ms = 5 * kMillisPerSecond;
};

/// The ZooKeeper registry path for a datacenter's aggregators.
std::string AggregatorRegistryPath(const std::string& datacenter);

/// Per-aggregator delivery metrics.
struct AggregatorStats {
  uint64_t entries_received = 0;
  uint64_t bytes_received = 0;
  uint64_t files_written = 0;
  uint64_t bytes_written = 0;         // post-compression
  uint64_t hdfs_write_failures = 0;   // writes deferred by HDFS outage
  uint64_t entries_lost_in_crash = 0; // buffered entries lost on Crash()
};

/// A Scribe aggregator: receives per-category streams from many daemons,
/// merges them, and periodically writes compressed framed files into the
/// datacenter's staging HDFS under /staging/<category>/YYYY/MM/DD/HH/.
/// It registers itself in ZooKeeper with an ephemeral znode; daemons
/// discover it there (§2).
///
/// Fault model: on HDFS outage the roll fails and data stays buffered
/// ("aggregators buffer data on local disk in case of HDFS outages"); on
/// Crash() the ZooKeeper session expires (daemons re-discover) and any
/// not-yet-rolled buffer contents are lost — Scribe's loss window.
class Aggregator {
 public:
  Aggregator(Simulator* sim, zk::ZooKeeper* zk, hdfs::MiniHdfs* staging,
             std::string datacenter, std::string id, ScribeOptions options);

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Registers in ZooKeeper and schedules the periodic roll. Idempotent
  /// restart after Crash() re-registers with a fresh session.
  Status Start();

  /// Simulates a crash: ZooKeeper session expires, buffers are dropped.
  void Crash();

  bool alive() const { return alive_; }
  const std::string& id() const { return id_; }
  const std::string& datacenter() const { return datacenter_; }

  /// Synchronous receive from a daemon. Returns Unavailable when crashed
  /// (the daemon treats this as a failed send and re-discovers).
  Status Receive(const std::vector<LogEntry>& entries);

  /// Rolls all category buffers to staging HDFS now. Called by the timer;
  /// public so tests and the log mover's barrier can force a flush.
  void RollAll();

  /// The earliest hour for which this aggregator still holds unflushed
  /// data, or INT64_MAX when fully flushed. The log mover's all-clear
  /// barrier for hour H requires every live aggregator watermark > H.
  TimeMs UnflushedWatermark() const;

  const AggregatorStats& stats() const { return stats_; }

 private:
  struct HourBuffer {
    std::vector<std::string> messages;
    uint64_t bytes = 0;
  };
  // Keyed by (category, hour-start).
  using BufferKey = std::pair<std::string, TimeMs>;

  void ScheduleRoll();
  /// Attempts to write one buffer to staging; returns false on HDFS outage.
  bool RollBuffer(const BufferKey& key, HourBuffer* buffer);

  Simulator* sim_;
  zk::ZooKeeper* zk_;
  hdfs::MiniHdfs* staging_;
  std::string datacenter_;
  std::string id_;
  ScribeOptions options_;

  bool alive_ = false;
  uint64_t incarnation_ = 0;  // invalidates stale timers after crash
  zk::SessionId session_ = 0;
  std::map<BufferKey, HourBuffer> buffers_;
  uint64_t file_seq_ = 0;
  AggregatorStats stats_;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_AGGREGATOR_H_
