#ifndef UNILOG_SCRIBE_AGGREGATOR_H_
#define UNILOG_SCRIBE_AGGREGATOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/compress.h"
#include "common/result.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "hdfs/mini_hdfs.h"
#include "obs/metrics.h"
#include "scribe/buffer_pool.h"
#include "scribe/message.h"
#include "sim/simulator.h"
#include "zk/zookeeper.h"

namespace unilog::scribe {

/// Tuning knobs shared across the Scribe tier.
struct ScribeOptions {
  /// Aggregator: roll buffered data to staging HDFS this often.
  TimeMs roll_interval_ms = 60 * kMillisPerSecond;
  /// Aggregator: roll a category early once its buffer reaches this size.
  uint64_t roll_bytes = 4 * 1024 * 1024;
  /// Aggregator: buffer at most this many bytes across all categories
  /// while staging HDFS is unreachable; beyond it the oldest buffered
  /// messages are dropped (counted). The paper's "local disk" buffer is
  /// finite too — a prolonged outage must not grow memory without bound.
  uint64_t aggregator_buffer_limit_bytes = 256 * 1024 * 1024;
  /// Aggregator: compress file bodies written to staging.
  bool compress = true;
  /// Daemon: flush queued entries to the aggregator this often.
  TimeMs daemon_flush_interval_ms = 1 * kMillisPerSecond;
  /// Daemon: buffer at most this many bytes while no aggregator is
  /// reachable; beyond it the oldest entries are dropped (counted).
  uint64_t daemon_buffer_limit_bytes = 64 * 1024 * 1024;
  /// Daemon: base backoff after a failed send. Doubles per consecutive
  /// failed flush (capped below, deterministically jittered) so an outage
  /// does not become a synchronized zk rediscovery herd.
  TimeMs daemon_retry_backoff_ms = 5 * kMillisPerSecond;
  /// Daemon: ceiling for the exponential retry backoff.
  TimeMs daemon_retry_backoff_max_ms = 60 * kMillisPerSecond;
  /// Daemon: cap on payload bytes shipped per destination per flush;
  /// 0 = whole queue (the historical behavior).
  uint64_t daemon_max_batch_bytes = 0;
  /// Aggregator: sustained receive service rate in bytes/sec (token bucket
  /// with one second of burst); 0 = unlimited. Models the single-chain
  /// bound the broker bench compares against.
  uint64_t aggregator_service_bytes_per_sec = 0;
  /// Daemon (broker mode): frame-and-compress each per-category produce
  /// batch once and ship it as an opaque blob the broker stores,
  /// replicates, and serves whole (decoded only at warehouse landing).
  /// false = the record-at-a-time baseline path.
  bool broker_batched_produce = true;
};

/// The ZooKeeper registry path for a datacenter's aggregators.
std::string AggregatorRegistryPath(const std::string& datacenter);

/// Per-aggregator delivery metrics, materialized from the registry.
struct AggregatorStats {
  uint64_t entries_received = 0;
  uint64_t bytes_received = 0;
  uint64_t entries_staged = 0;         // messages written to staging files
  uint64_t files_written = 0;
  uint64_t bytes_written = 0;          // post-compression
  uint64_t hdfs_write_failures = 0;    // writes deferred by HDFS outage
  uint64_t entries_lost_in_crash = 0;  // buffered entries lost on Crash()
  uint64_t entries_dropped_overflow = 0;  // buffer-limit drops (oldest)
};

/// A Scribe aggregator: receives per-category streams from many daemons,
/// merges them, and periodically writes compressed framed files into the
/// datacenter's staging HDFS under /staging/<category>/YYYY/MM/DD/HH/.
/// It registers itself in ZooKeeper with an ephemeral znode; daemons
/// discover it there (§2).
///
/// Fault model: on HDFS outage the roll fails and data stays buffered
/// ("aggregators buffer data on local disk in case of HDFS outages") up to
/// aggregator_buffer_limit_bytes, past which the oldest messages are
/// dropped and counted; on Crash() the ZooKeeper session expires (daemons
/// re-discover) and any not-yet-rolled buffer contents are lost —
/// Scribe's loss window.
class Aggregator {
 public:
  Aggregator(Simulator* sim, zk::ZooKeeper* zk, hdfs::MiniHdfs* staging,
             std::string datacenter, std::string id, ScribeOptions options,
             obs::MetricsRegistry* metrics = nullptr);

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Registers in ZooKeeper and schedules the periodic roll. Idempotent
  /// restart after Crash() re-registers with a fresh session.
  Status Start();

  /// Simulates a crash: ZooKeeper session expires, buffers are dropped.
  void Crash();

  bool alive() const { return alive_; }
  const std::string& id() const { return id_; }
  const std::string& datacenter() const { return datacenter_; }

  /// Synchronous receive from a daemon. Returns Unavailable when crashed
  /// (the daemon treats this as a failed send and re-discovers).
  Status Receive(const std::vector<LogEntry>& entries);

  /// Chaos: skews the clock this aggregator buckets incoming entries
  /// with. A negative skew files current traffic under a past hour — if
  /// that hour has already slid into the warehouse, the straggler file
  /// lands as late data and is dropped (accounted), which is exactly the
  /// failure mode a skewed host clock causes in the hour-partitioned
  /// layout. Zero restores normal bucketing.
  void SetClockSkew(TimeMs skew_ms) { clock_skew_ms_ = skew_ms; }
  TimeMs clock_skew_ms() const { return clock_skew_ms_; }

  /// Rolls all category buffers to staging HDFS now. Called by the timer;
  /// public so tests and the log mover's barrier can force a flush.
  void RollAll();

  /// The earliest hour for which this aggregator still holds unflushed
  /// data, or INT64_MAX when fully flushed. The log mover's all-clear
  /// barrier for hour H requires every live aggregator watermark > H.
  TimeMs UnflushedWatermark() const;

  /// Messages currently buffered (received but not yet staged). The
  /// delivery audit counts these as in-flight.
  uint64_t BufferedEntries() const;
  uint64_t BufferedBytes() const { return buffered_bytes_; }

  AggregatorStats stats() const;

  /// Accounting for the staging-buffer freelist (ingest hot path).
  BufferPoolStats ingest_pool_stats() const { return pool_.stats(); }

 private:
  struct HourBuffer {
    std::deque<std::string> messages;
    uint64_t bytes = 0;
  };
  // Keyed by (category, hour-start).
  using BufferKey = std::pair<std::string, TimeMs>;

  void ScheduleRoll();
  /// Attempts to write one buffer to staging; returns false on HDFS outage.
  bool RollBuffer(const BufferKey& key, HourBuffer* buffer);
  /// Drops the oldest buffered messages until under the buffer limit.
  void EnforceBufferLimit();
  void RefillReceiveTokens();

  Simulator* sim_;
  zk::ZooKeeper* zk_;
  hdfs::MiniHdfs* staging_;
  std::string datacenter_;
  std::string id_;
  ScribeOptions options_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Labels pool_labels_;
  obs::Counter* entries_received_;
  obs::Counter* bytes_received_;
  obs::Counter* entries_staged_;
  obs::Counter* files_written_;
  obs::Counter* bytes_written_;
  obs::Counter* hdfs_write_failures_;
  obs::Counter* entries_lost_in_crash_;
  obs::Counter* entries_dropped_overflow_;
  obs::Counter* receive_throttled_;
  obs::Gauge* buffered_entries_gauge_;
  obs::Histogram* staging_file_bytes_;

  // Staged-file bodies are framed and compressed into pooled buffers so
  // the per-roll allocations disappear; the compressor keeps its hash-chain
  // state across rolls (byte-identical output to the fresh-state path).
  BufferPool pool_;
  Lz::Compressor compressor_;

  bool alive_ = false;
  TimeMs clock_skew_ms_ = 0;
  uint64_t incarnation_ = 0;  // invalidates stale timers after crash
  zk::SessionId session_ = 0;
  std::map<BufferKey, HourBuffer> buffers_;
  uint64_t buffered_bytes_ = 0;  // sum of HourBuffer::bytes
  uint64_t file_seq_ = 0;
  double receive_tokens_ = 0;
  TimeMs last_token_refill_ = 0;
};

}  // namespace unilog::scribe

#endif  // UNILOG_SCRIBE_AGGREGATOR_H_
