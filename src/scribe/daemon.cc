#include "scribe/daemon.h"

namespace unilog::scribe {

ScribeDaemon::ScribeDaemon(Simulator* sim, zk::ZooKeeper* zk,
                           std::string datacenter, std::string host,
                           Resolver resolve, Rng rng, ScribeOptions options,
                           obs::MetricsRegistry* metrics)
    : sim_(sim),
      zk_(zk),
      datacenter_(std::move(datacenter)),
      host_(std::move(host)),
      resolve_(std::move(resolve)),
      rng_(rng),
      options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  obs::Labels labels{{"dc", datacenter_}, {"host", host_}};
  entries_logged_ = metrics->GetCounter("daemon.entries_logged", labels);
  entries_sent_ = metrics->GetCounter("daemon.entries_sent", labels);
  entries_dropped_ = metrics->GetCounter("daemon.entries_dropped", labels);
  send_failures_ = metrics->GetCounter("daemon.send_failures", labels);
  rediscoveries_ = metrics->GetCounter("daemon.rediscoveries", labels);
  queue_depth_ = metrics->GetGauge("daemon.queue_entries", labels);
  batch_entries_ = metrics->GetHistogram("daemon.batch_entries", labels);
}

DaemonStats ScribeDaemon::stats() const {
  DaemonStats s;
  s.entries_logged = entries_logged_->value();
  s.entries_sent = entries_sent_->value();
  s.entries_dropped = entries_dropped_->value();
  s.send_failures = send_failures_->value();
  s.rediscoveries = rediscoveries_->value();
  return s;
}

void ScribeDaemon::Start() {
  if (started_) return;
  started_ = true;
  ScheduleFlush();
}

void ScribeDaemon::Log(LogEntry entry) {
  queue_bytes_ += entry.message.size();
  queue_.push_back(std::move(entry));
  entries_logged_->Increment();
  // Bounded local buffer: drop the oldest entries past the limit (counted
  // — E1 reports these as the overload-loss channel).
  while (queue_bytes_ > options_.daemon_buffer_limit_bytes &&
         !queue_.empty()) {
    queue_bytes_ -= queue_.front().message.size();
    queue_.pop_front();
    entries_dropped_->Increment();
  }
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
}

void ScribeDaemon::Log(const std::string& category, std::string message) {
  Log(LogEntry{category, std::move(message)});
}

void ScribeDaemon::ScheduleFlush() {
  sim_->After(options_.daemon_flush_interval_ms, [this]() {
    Flush();
    ScheduleFlush();
  });
}

Aggregator* ScribeDaemon::Discover() {
  auto children = zk_->GetChildren(AggregatorRegistryPath(datacenter_));
  if (!children.ok() || children->empty()) return nullptr;
  // Uniform choice balances load across aggregators (§2: "The same
  // mechanism is used for balancing load across aggregators").
  const std::string& pick =
      (*children)[rng_.Uniform(children->size())];
  rediscoveries_->Increment();
  return resolve_(pick);
}

void ScribeDaemon::Flush() {
  if (queue_.empty()) return;
  if (sim_->Now() < backoff_until_) return;

  if (current_ == nullptr || !current_->alive()) {
    current_ = Discover();
    if (current_ == nullptr) {
      backoff_until_ = sim_->Now() + options_.daemon_retry_backoff_ms;
      return;
    }
  }

  batch_.assign(queue_.begin(), queue_.end());
  Status st = current_->Receive(batch_);
  if (st.ok()) {
    entries_sent_->Increment(batch_.size());
    batch_entries_->Observe(static_cast<double>(batch_.size()));
    queue_.clear();
    queue_bytes_ = 0;
    queue_depth_->Set(0);
  } else {
    // Aggregator died between discovery and send: drop the connection and
    // back off; entries remain queued for the next attempt.
    send_failures_->Increment();
    current_ = nullptr;
    backoff_until_ = sim_->Now() + options_.daemon_retry_backoff_ms;
  }
}

}  // namespace unilog::scribe
