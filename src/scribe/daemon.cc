#include "scribe/daemon.h"

#include <algorithm>

namespace unilog::scribe {

ScribeDaemon::ScribeDaemon(Simulator* sim, zk::ZooKeeper* zk,
                           std::string datacenter, std::string host,
                           Resolver resolve, Rng rng, ScribeOptions options,
                           obs::MetricsRegistry* metrics)
    : sim_(sim),
      zk_(zk),
      datacenter_(std::move(datacenter)),
      host_(std::move(host)),
      resolve_(std::move(resolve)),
      rng_(rng),
      options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  obs::Labels labels{{"dc", datacenter_}, {"host", host_}};
  entries_logged_ = metrics->GetCounter("daemon.entries_logged", labels);
  entries_sent_ = metrics->GetCounter("daemon.entries_sent", labels);
  entries_dropped_ = metrics->GetCounter("daemon.entries_dropped", labels);
  send_failures_ = metrics->GetCounter("daemon.send_failures", labels);
  rediscoveries_ = metrics->GetCounter("daemon.rediscoveries", labels);
  produce_throttled_ =
      metrics->GetCounter("daemon.produce_throttled", labels);
  queue_depth_ = metrics->GetGauge("daemon.queue_entries", labels);
  batch_entries_ = metrics->GetHistogram("daemon.batch_entries", labels);
}

DaemonStats ScribeDaemon::stats() const {
  DaemonStats s;
  s.entries_logged = entries_logged_->value();
  s.entries_sent = entries_sent_->value();
  s.entries_dropped = entries_dropped_->value();
  s.send_failures = send_failures_->value();
  s.rediscoveries = rediscoveries_->value();
  s.produce_throttled = produce_throttled_->value();
  return s;
}

void ScribeDaemon::Start() {
  if (started_) return;
  started_ = true;
  ScheduleFlush();
}

void ScribeDaemon::Log(LogEntry entry) {
  queue_bytes_ += entry.message.size();
  const uint64_t seq = ++next_seq_[entry.category];
  queue_.push_back(Queued{std::move(entry), seq, sim_->Now()});
  entries_logged_->Increment();
  // Bounded local buffer: drop the oldest entries past the limit (counted
  // — E1 reports these as the overload-loss channel).
  while (queue_bytes_ > options_.daemon_buffer_limit_bytes &&
         !queue_.empty()) {
    queue_bytes_ -= queue_.front().entry.message.size();
    queue_.pop_front();
    entries_dropped_->Increment();
  }
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
}

void ScribeDaemon::Log(const std::string& category, std::string message) {
  Log(LogEntry{category, std::move(message)});
}

void ScribeDaemon::ScheduleFlush() {
  sim_->After(options_.daemon_flush_interval_ms, [this]() {
    Flush();
    ScheduleFlush();
  });
}

Aggregator* ScribeDaemon::Discover() {
  auto children = zk_->GetChildren(AggregatorRegistryPath(datacenter_));
  if (!children.ok() || children->empty()) return nullptr;
  // Uniform choice balances load across aggregators (§2: "The same
  // mechanism is used for balancing load across aggregators").
  const std::string& pick =
      (*children)[rng_.Uniform(children->size())];
  rediscoveries_->Increment();
  return resolve_(pick);
}

void ScribeDaemon::EnterBackoff() {
  ++fail_streak_;
  TimeMs base = std::max<TimeMs>(1, options_.daemon_retry_backoff_ms);
  TimeMs cap = std::max(base, options_.daemon_retry_backoff_max_ms);
  TimeMs backoff = base;
  for (int i = 1; i < fail_streak_ && backoff < cap; ++i) backoff *= 2;
  backoff = std::min(backoff, cap);
  // Deterministic jitter into [1/2, 1]× desynchronizes the daemon herd —
  // each daemon's Rng stream is its own, forked from the cluster seed.
  TimeMs jittered =
      backoff / 2 +
      static_cast<TimeMs>(rng_.Uniform(static_cast<uint64_t>(backoff / 2) + 1));
  backoff_until_ = sim_->Now() + jittered;
}

void ScribeDaemon::Flush() {
  if (queue_.empty()) return;
  if (sim_->Now() < backoff_until_) return;
  bool ok = fleet_ != nullptr ? FlushToBroker() : FlushToAggregator();
  if (ok) {
    fail_streak_ = 0;
  } else {
    EnterBackoff();
  }
  queue_depth_->Set(static_cast<int64_t>(queue_.size()));
}

bool ScribeDaemon::FlushToAggregator() {
  if (current_ == nullptr || !current_->alive()) {
    current_ = Discover();
    if (current_ == nullptr) return false;
  }

  size_t take = queue_.size();
  if (options_.daemon_max_batch_bytes > 0) {
    take = 0;
    uint64_t bytes = 0;
    for (const Queued& q : queue_) {
      bytes += q.entry.message.size();
      if (take > 0 && bytes > options_.daemon_max_batch_bytes) break;
      ++take;
    }
  }
  batch_.clear();
  batch_.reserve(take);
  for (size_t i = 0; i < take; ++i) batch_.push_back(queue_[i].entry);

  Status st = current_->Receive(batch_);
  if (!st.ok()) {
    // Aggregator died (or throttled) between discovery and send: drop the
    // connection and back off; entries remain queued for the next attempt.
    send_failures_->Increment();
    current_ = nullptr;
    return false;
  }
  entries_sent_->Increment(batch_.size());
  batch_entries_->Observe(static_cast<double>(batch_.size()));
  for (size_t i = 0; i < take; ++i) {
    queue_bytes_ -= queue_.front().entry.message.size();
    queue_.pop_front();
  }
  return true;
}

broker::BrokerNode* ScribeDaemon::DiscoverLeader(const std::string& category,
                                                 int partition) {
  rediscoveries_->Increment();
  broker::BrokerNode* leader = fleet_->FindLeader(category, partition);
  if (leader != nullptr) return leader;
  // The topic may simply not exist yet — the first producer creates it.
  if (!fleet_->EnsureTopic(category).ok()) return nullptr;
  return fleet_->FindLeader(category, partition);
}

Status ScribeDaemon::ProduceCategoryBatch(broker::BrokerNode* leader,
                                          const std::string& category,
                                          int partition,
                                          const std::vector<size_t>& indices,
                                          std::vector<size_t>* taken,
                                          broker::ProduceAck* ack) {
  BufferPool::Lease body = pool_.Acquire();
  broker::ProduceBatchRequest req;
  uint64_t bytes = 0;
  for (size_t i : indices) {
    const Queued& q = queue_[i];
    bytes += q.entry.message.size();
    if (options_.daemon_max_batch_bytes > 0 && !taken->empty() &&
        bytes > options_.daemon_max_batch_bytes) {
      break;
    }
    if (taken->empty()) req.first_seq = q.seq;
    broker::AppendBatchFrame(body.get(), q.logged_at, q.entry.message);
    req.record_sizes.push_back(
        static_cast<uint32_t>(q.entry.message.size()));
    taken->push_back(i);
  }
  req.count = static_cast<uint32_t>(taken->size());
  req.compressed = true;
  // The once-per-path compression: the blob stays opaque through append,
  // replication, and fetch, and is decoded only at warehouse landing.
  Lz::Pooled().CompressTo(*body, &req.body);
  return leader->ProduceBatch(category, partition, host_, std::move(req),
                              ack);
}

bool ScribeDaemon::FlushToBroker() {
  // Group queued entries by category, preserving queue order within each
  // group (offsets within a partition then mirror Log() order).
  std::map<std::string, std::vector<size_t>> by_category;
  for (size_t i = 0; i < queue_.size(); ++i) {
    by_category[queue_[i].entry.category].push_back(i);
  }

  std::vector<bool> acked(queue_.size(), false);
  bool all_ok = true;
  uint64_t sent = 0;
  for (const auto& [category, indices] : by_category) {
    int partition = fleet_->PartitionFor(host_, category);
    broker::BrokerNode* leader = nullptr;
    if (auto it = leader_cache_.find(category); it != leader_cache_.end()) {
      leader = it->second;
    }
    if (leader == nullptr || !leader->alive() ||
        !leader->IsLeader(category, partition)) {
      leader = DiscoverLeader(category, partition);
      if (leader == nullptr) {
        all_ok = false;
        continue;
      }
      leader_cache_[category] = leader;
    }

    std::vector<size_t> taken;
    broker::ProduceAck ack;
    Status st;
    if (options_.broker_batched_produce) {
      st = ProduceCategoryBatch(leader, category, partition, indices, &taken,
                                &ack);
    } else {
      std::vector<broker::ProduceItem> items;
      uint64_t bytes = 0;
      for (size_t i : indices) {
        const Queued& q = queue_[i];
        bytes += q.entry.message.size();
        if (options_.daemon_max_batch_bytes > 0 && !items.empty() &&
            bytes > options_.daemon_max_batch_bytes) {
          break;
        }
        items.push_back(
            broker::ProduceItem{q.seq, q.logged_at, q.entry.message});
        taken.push_back(i);
      }
      st = leader->Produce(category, partition, host_, items, &ack);
    }
    if (st.ok()) {
      for (size_t i : taken) acked[i] = true;
      sent += taken.size();
      continue;
    }
    all_ok = false;
    send_failures_->Increment();
    if (st.IsFailedPrecondition() || !leader->alive()) {
      // Wrong/dead leader: rediscover next flush.
      leader_cache_.erase(category);
    } else if (st.IsUnavailable()) {
      // Backpressure (in-flight window, rate, or in-sync replicas):
      // leadership is fine — keep the cache, keep the queue, back off.
      produce_throttled_->Increment();
    }
  }

  if (sent > 0) {
    entries_sent_->Increment(sent);
    batch_entries_->Observe(static_cast<double>(sent));
    // Drop exactly the acknowledged entries; unacked ones keep their seqs
    // and positions so a retry is dedupable downstream.
    std::deque<Queued> remaining;
    uint64_t remaining_bytes = 0;
    for (size_t i = 0; i < queue_.size(); ++i) {
      if (acked[i]) continue;
      remaining_bytes += queue_[i].entry.message.size();
      remaining.push_back(std::move(queue_[i]));
    }
    queue_ = std::move(remaining);
    queue_bytes_ = remaining_bytes;
  }
  return all_ok;
}

}  // namespace unilog::scribe
