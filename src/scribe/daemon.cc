#include "scribe/daemon.h"

namespace unilog::scribe {

ScribeDaemon::ScribeDaemon(Simulator* sim, zk::ZooKeeper* zk,
                           std::string datacenter, std::string host,
                           Resolver resolve, Rng rng, ScribeOptions options)
    : sim_(sim),
      zk_(zk),
      datacenter_(std::move(datacenter)),
      host_(std::move(host)),
      resolve_(std::move(resolve)),
      rng_(rng),
      options_(options) {}

void ScribeDaemon::Start() {
  if (started_) return;
  started_ = true;
  ScheduleFlush();
}

void ScribeDaemon::Log(LogEntry entry) {
  queue_bytes_ += entry.message.size();
  queue_.push_back(std::move(entry));
  ++stats_.entries_logged;
  // Bounded local buffer: drop the oldest entries past the limit (counted
  // — E1 reports these as the overload-loss channel).
  while (queue_bytes_ > options_.daemon_buffer_limit_bytes &&
         !queue_.empty()) {
    queue_bytes_ -= queue_.front().message.size();
    queue_.pop_front();
    ++stats_.entries_dropped;
  }
}

void ScribeDaemon::Log(const std::string& category, std::string message) {
  Log(LogEntry{category, std::move(message)});
}

void ScribeDaemon::ScheduleFlush() {
  sim_->After(options_.daemon_flush_interval_ms, [this]() {
    Flush();
    ScheduleFlush();
  });
}

Aggregator* ScribeDaemon::Discover() {
  auto children = zk_->GetChildren(AggregatorRegistryPath(datacenter_));
  if (!children.ok() || children->empty()) return nullptr;
  // Uniform choice balances load across aggregators (§2: "The same
  // mechanism is used for balancing load across aggregators").
  const std::string& pick =
      (*children)[rng_.Uniform(children->size())];
  ++stats_.rediscoveries;
  return resolve_(pick);
}

void ScribeDaemon::Flush() {
  if (queue_.empty()) return;
  if (sim_->Now() < backoff_until_) return;

  if (current_ == nullptr || !current_->alive()) {
    current_ = Discover();
    if (current_ == nullptr) {
      backoff_until_ = sim_->Now() + options_.daemon_retry_backoff_ms;
      return;
    }
  }

  std::vector<LogEntry> batch(queue_.begin(), queue_.end());
  Status st = current_->Receive(batch);
  if (st.ok()) {
    stats_.entries_sent += batch.size();
    queue_.clear();
    queue_bytes_ = 0;
  } else {
    // Aggregator died between discovery and send: drop the connection and
    // back off; entries remain queued for the next attempt.
    ++stats_.send_failures;
    current_ = nullptr;
    backoff_until_ = sim_->Now() + options_.daemon_retry_backoff_ms;
  }
}

}  // namespace unilog::scribe
