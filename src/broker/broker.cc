#include "broker/broker.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace unilog::broker {

uint64_t StableHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string BrokerRootPath(const std::string& dc) { return "/broker/" + dc; }

std::string BrokersPath(const std::string& dc) {
  return BrokerRootPath(dc) + "/brokers";
}

std::string TopicsPath(const std::string& dc) {
  return BrokerRootPath(dc) + "/topics";
}

std::string PartitionPath(const std::string& dc, const std::string& category,
                          int partition) {
  return TopicsPath(dc) + "/" + category + "/" + std::to_string(partition);
}

std::string CandidatesPath(const std::string& dc, const std::string& category,
                           int partition) {
  return PartitionPath(dc, category, partition) + "/candidates";
}

std::string StatePath(const std::string& dc, const std::string& category,
                      int partition) {
  return PartitionPath(dc, category, partition) + "/state";
}

std::string ConsumersPath(const std::string& dc) {
  return BrokerRootPath(dc) + "/consumers";
}

std::string OffsetPath(const std::string& dc, const std::string& group,
                       const std::string& category, int partition) {
  return ConsumersPath(dc) + "/" + group + "/" + category + "-" +
         std::to_string(partition);
}

namespace {

uint64_t ParseUint(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

/// Creates `path` (and any missing ancestors) as persistent znodes.
Status EnsurePersistent(zk::ZooKeeper* zk, zk::SessionId session,
                        const std::string& path) {
  size_t pos = 1;
  while (pos != std::string::npos && pos < path.size()) {
    size_t next = path.find('/', pos);
    std::string prefix =
        next == std::string::npos ? path : path.substr(0, next);
    if (!zk->Exists(prefix)) {
      auto created =
          zk->Create(session, prefix, "", zk::CreateMode::kPersistent);
      if (!created.ok() && !created.status().IsAlreadyExists()) {
        return created.status();
      }
    }
    pos = next == std::string::npos ? next : next + 1;
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ElectLeader(const zk::ZooKeeper& zk, const std::string& dc,
                                const std::string& category, int partition) {
  std::string dir = CandidatesPath(dc, category, partition);
  auto children = zk.GetChildren(dir);
  if (!children.ok()) return children.status();
  bool found = false;
  std::string best_id;
  std::string best_seq;
  uint64_t best_end = 0;
  for (const std::string& name : *children) {
    // Candidate names are "m-<id>-<10-digit zk sequence>".
    if (name.size() < 13 || name.rfind("m-", 0) != 0) continue;
    std::string seq = name.substr(name.size() - 10);
    std::string id = name.substr(2, name.size() - 13);
    uint64_t end = 0;
    if (auto data = zk.GetData(dir + "/" + name); data.ok()) {
      end = ParseUint(*data);
    }
    // Winner: most complete log first (no acked data sacrificed when a
    // caught-up replica is available), then earliest registration.
    if (!found || end > best_end || (end == best_end && seq < best_seq)) {
      found = true;
      best_id = std::move(id);
      best_seq = std::move(seq);
      best_end = end;
    }
  }
  if (!found) {
    return Status::NotFound("no candidates for " + category + "/" +
                            std::to_string(partition));
  }
  return best_id;
}

uint64_t MaxCommittedOffset(const zk::ZooKeeper& zk, const std::string& dc,
                            const std::string& category, int partition) {
  uint64_t best = 0;
  auto groups = zk.GetChildren(ConsumersPath(dc));
  if (!groups.ok()) return 0;
  for (const std::string& group : *groups) {
    if (auto data = zk.GetData(OffsetPath(dc, group, category, partition));
        data.ok()) {
      best = std::max(best, ParseUint(*data));
    }
  }
  return best;
}

std::vector<std::string> BrokerNode::AssignedReplicas(
    const std::vector<std::string>& fleet_ids, const std::string& category,
    int partition, int replication) {
  std::vector<std::string> out;
  if (fleet_ids.empty()) return out;
  size_t n = fleet_ids.size();
  size_t count = std::min<size_t>(std::max(replication, 1), n);
  size_t start =
      (StableHash(category) + static_cast<uint64_t>(partition)) % n;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(fleet_ids[(start + i) % n]);
  }
  return out;
}

BrokerNode::BrokerNode(Simulator* sim, zk::ZooKeeper* zk,
                       std::string datacenter, std::string id,
                       std::vector<std::string> fleet_ids, Resolver resolve,
                       BrokerOptions options, obs::MetricsRegistry* metrics)
    : sim_(sim),
      zk_(zk),
      dc_(std::move(datacenter)),
      id_(std::move(id)),
      fleet_ids_(std::move(fleet_ids)),
      resolve_(std::move(resolve)),
      options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(sim_);
    metrics = owned_metrics_.get();
  }
  obs::Labels labels{{"dc", dc_}, {"id", id_}};
  produced_ = metrics->GetCounter("broker.entries_produced", labels);
  bytes_produced_ = metrics->GetCounter("broker.bytes_produced", labels);
  wire_bytes_produced_ =
      metrics->GetCounter("broker.wire_bytes_produced", labels);
  duplicates_ = metrics->GetCounter("broker.entries_duplicate", labels);
  replicated_ = metrics->GetCounter("broker.entries_replicated", labels);
  wire_bytes_replicated_ =
      metrics->GetCounter("broker.wire_bytes_replicated", labels);
  replication_rounds_ =
      metrics->GetCounter("broker.replication_rounds", labels);
  produce_calls_ = metrics->GetCounter("broker.produce_calls", labels);
  lost_failover_ = metrics->GetCounter("broker.entries_lost_failover", labels);
  elections_ = metrics->GetCounter("broker.elections_won", labels);
  throttled_backpressure_ =
      metrics->GetCounter("broker.throttled_backpressure", labels);
  throttled_rate_ = metrics->GetCounter("broker.throttled_rate", labels);
  insufficient_replicas_ =
      metrics->GetCounter("broker.insufficient_replicas", labels);
  not_leader_rejects_ =
      metrics->GetCounter("broker.not_leader_rejects", labels);
  log_entries_gauge_ = metrics->GetGauge("broker.log_entries", labels);
  log_bytes_gauge_ = metrics->GetGauge("broker.log_bytes", labels);
  retained_compressed_gauge_ =
      metrics->GetGauge("broker.retained_bytes_compressed", labels);
  retained_uncompressed_gauge_ =
      metrics->GetGauge("broker.retained_bytes_uncompressed", labels);
  partitions_led_gauge_ = metrics->GetGauge("broker.partitions_led", labels);
  produce_batch_entries_ =
      metrics->GetHistogram("broker.produce_batch_entries", labels);
}

Status BrokerNode::Start() {
  if (alive_) return Status::OK();
  alive_ = true;
  ++incarnation_;
  session_ = zk_->CreateSession();
  UNILOG_RETURN_NOT_OK(EnsurePersistent(zk_, session_, BrokersPath(dc_)));
  UNILOG_RETURN_NOT_OK(EnsurePersistent(zk_, session_, TopicsPath(dc_)));
  UNILOG_RETURN_NOT_OK(EnsurePersistent(zk_, session_, ConsumersPath(dc_)));
  auto reg = zk_->Create(session_, BrokersPath(dc_) + "/" + id_, id_,
                         zk::CreateMode::kEphemeral);
  if (!reg.ok()) return reg.status();

  tokens_ = static_cast<double>(options_.node_service_bytes_per_sec);
  last_refill_ = sim_->Now();

  // Re-adopt assigned replicas of every topic that already exists (restart
  // after a crash starts from an empty log and catches up via fetch).
  if (auto topics = zk_->GetChildren(TopicsPath(dc_)); topics.ok()) {
    for (const std::string& category : *topics) {
      int nparts = options_.num_partitions;
      if (auto data = zk_->GetData(TopicsPath(dc_) + "/" + category);
          data.ok() && !data->empty()) {
        nparts = static_cast<int>(ParseUint(*data));
      }
      for (int p = 0; p < nparts; ++p) {
        auto assigned = AssignedReplicas(fleet_ids_, category, p,
                                         options_.replication_factor);
        if (std::find(assigned.begin(), assigned.end(), id_) !=
            assigned.end()) {
          UNILOG_RETURN_NOT_OK(AdoptReplica(category, p));
        }
      }
    }
  }
  ScheduleReplicaFetch();
  UpdateGauges();
  return Status::OK();
}

void BrokerNode::Crash() {
  if (!alive_) return;
  alive_ = false;
  ++incarnation_;
  // Session expiry deletes the candidate znodes; peers' children watches
  // fire (deferred) and re-elect without this node.
  zk_->CloseSession(session_);
  session_ = 0;
  replicas_.clear();  // in-memory logs die with the process
  UpdateGauges();
}

Status BrokerNode::ExpireSession() {
  if (!alive_) return Status::FailedPrecondition("broker down: " + id_);
  ++incarnation_;  // stale watch callbacks from the old session no-op
  zk_->CloseSession(session_);
  session_ = zk_->CreateSession();
  auto reg = zk_->Create(session_, BrokersPath(dc_) + "/" + id_, id_,
                         zk::CreateMode::kEphemeral);
  if (!reg.ok()) return reg.status();
  // Logs survive expiry; re-register every candidate first so the
  // recompute pass (and peers' deferred watch cascades) see the full
  // candidate set, then re-run elections.
  for (auto& [key, r] : replicas_) {
    r.leader = false;
    r.candidate_path.clear();
    UNILOG_RETURN_NOT_OK(RegisterCandidate(&r));
    WatchCandidates(key.first, key.second);
  }
  for (auto& [key, r] : replicas_) {
    RecomputeLeader(key.first, key.second);
  }
  ScheduleReplicaFetch();
  UpdateGauges();
  return Status::OK();
}

Status BrokerNode::AdoptReplica(const std::string& category, int partition) {
  if (!alive_) return Status::FailedPrecondition("broker down: " + id_);
  Replica& r = replicas_[PartitionKey{category, partition}];
  r.category = category;
  r.partition = partition;
  if (!r.candidate_path.empty() && zk_->Exists(r.candidate_path)) {
    return Status::OK();  // already campaigning
  }
  UNILOG_RETURN_NOT_OK(RegisterCandidate(&r));
  WatchCandidates(category, partition);
  RecomputeLeader(category, partition);
  return Status::OK();
}

bool BrokerNode::IsLeader(const std::string& category, int partition) const {
  const Replica* r = FindReplica(category, partition);
  return alive_ && r != nullptr && r->leader;
}

BrokerNode::Replica* BrokerNode::FindReplica(const std::string& category,
                                             int partition) {
  auto it = replicas_.find(PartitionKey{category, partition});
  return it == replicas_.end() ? nullptr : &it->second;
}

const BrokerNode::Replica* BrokerNode::FindReplica(const std::string& category,
                                                   int partition) const {
  auto it = replicas_.find(PartitionKey{category, partition});
  return it == replicas_.end() ? nullptr : &it->second;
}

uint64_t BrokerNode::AckedWatermark(const Replica& r) const {
  // Everything below the lowest appended-but-unacknowledged offset is
  // acknowledged; with no unacked entries the whole log is.
  uint64_t w = r.log.end_offset();
  for (const auto& [producer, offset] : r.unacked_min_offset) {
    w = std::min(w, offset);
  }
  return w;
}

Status BrokerNode::RegisterCandidate(Replica* r) {
  std::string dir = CandidatesPath(dc_, r->category, r->partition);
  UNILOG_RETURN_NOT_OK(EnsurePersistent(zk_, session_, dir));
  auto created =
      zk_->Create(session_, dir + "/m-" + id_ + "-",
                  std::to_string(r->log.end_offset()),
                  zk::CreateMode::kEphemeralSequential);
  if (!created.ok()) return created.status();
  r->candidate_path = *created;
  return Status::OK();
}

void BrokerNode::PublishEndOffset(Replica* r) {
  if (r->candidate_path.empty()) return;
  // Best effort: the election tie-break prefers the most complete log, so
  // candidates advertise their end offset as znode data.
  zk_->SetData(session_, r->candidate_path,
               std::to_string(r->log.end_offset()));
}

void BrokerNode::WatchCandidates(std::string category, int partition) {
  // Build the path before constructing the lambda: the capture moves
  // `category` out, and argument evaluation order would otherwise be free to
  // run the move first and arm the watch on a mangled path.
  std::string dir = CandidatesPath(dc_, category, partition);
  zk_->WatchChildren(
      dir,
      [this, category = std::move(category), partition,
       inc = incarnation_](zk::WatchEvent, const std::string&) {
        if (inc != incarnation_ || !alive_) return;
        // Re-arm before acting (the coalescing in zk makes this safe even
        // when several membership changes land in one delivery window).
        WatchCandidates(category, partition);
        RecomputeLeader(category, partition);
      });
}

void BrokerNode::RecomputeLeader(const std::string& category, int partition) {
  Replica* r = FindReplica(category, partition);
  if (r == nullptr || !alive_) return;
  auto winner = ElectLeader(*zk_, dc_, category, partition);
  bool won = winner.ok() && *winner == id_;
  if (won && !r->leader) {
    BecomeLeader(r);
  } else if (!won && r->leader) {
    r->leader = false;
    UpdateGauges();
  }
}

void BrokerNode::BecomeLeader(Replica* r) {
  uint64_t w_state = 0;
  if (auto data = zk_->GetData(StatePath(dc_, r->category, r->partition));
      data.ok()) {
    w_state = ParseUint(*data);
  }
  uint64_t local_end = r->log.end_offset();
  if (w_state > local_end) {
    // The acknowledged watermark is ahead of everything this replica holds:
    // those entries died with the old leader before replication reached us.
    // Count them lost (minus any prefix consumers already banked) and open
    // an explicit gap so offsets stay monotone.
    uint64_t committed =
        MaxCommittedOffset(*zk_, dc_, r->category, r->partition);
    uint64_t have = std::max(local_end, committed);
    if (w_state > have) lost_failover_->Increment(w_state - have);
    r->log.AdvanceTo(w_state);
  }
  // Rebuild the idempotence tables from the retained log: records below
  // the watermark were acknowledged, records above it were appended but
  // never acknowledged (their producers will resend).
  r->producer_appended =
      r->log.ProducerHighWatermarks(std::numeric_limits<uint64_t>::max());
  r->producer_acked = r->log.ProducerHighWatermarks(w_state);
  r->unacked_min_offset.clear();
  for (const Batch& b : r->log.batches()) {
    if (b.end_offset() <= w_state) continue;
    // The batch's unacked suffix starts where the watermark cuts it.
    uint64_t off = std::max(b.base_offset, w_state);
    auto [it, inserted] = r->unacked_min_offset.emplace(b.producer, off);
    if (!inserted) it->second = std::min(it->second, off);
  }
  r->leader = true;
  elections_->Increment();
  zk_->SetData(session_, StatePath(dc_, r->category, r->partition),
               std::to_string(AckedWatermark(*r)));
  PublishEndOffset(r);
  UpdateGauges();
}

std::vector<BrokerNode*> BrokerNode::LivePeers(const std::string& category,
                                               int partition) const {
  std::vector<BrokerNode*> peers;
  if (!resolve_) return peers;
  for (const std::string& peer_id : AssignedReplicas(
           fleet_ids_, category, partition, options_.replication_factor)) {
    if (peer_id == id_) continue;
    BrokerNode* node = resolve_(peer_id);
    if (node != nullptr && node->alive()) peers.push_back(node);
  }
  return peers;
}

bool BrokerNode::MirrorBatches(const std::string& category, int partition,
                               const std::vector<Batch>& batches) {
  if (!alive_) return false;
  Replica* r = FindReplica(category, partition);
  if (r == nullptr) return false;
  uint64_t mirrored = 0;
  for (const Batch& b : batches) {
    // Ranges already covered locally are resend overlap; AppendMirror
    // rejects them and keeps the mirror gap-honest.
    if (r->log.AppendMirror(b)) mirrored += b.count;
  }
  if (mirrored > 0) {
    replicated_->Increment(mirrored);
    PublishEndOffset(r);
    UpdateGauges();
  }
  return true;
}

uint64_t BrokerNode::MirrorEndOffset(const std::string& category,
                                     int partition) const {
  if (!alive_) return std::numeric_limits<uint64_t>::max();
  const Replica* r = FindReplica(category, partition);
  if (r == nullptr) return std::numeric_limits<uint64_t>::max();
  return r->log.end_offset();
}

void BrokerNode::ReplicateToPeers(Replica* r,
                                  const std::vector<BrokerNode*>& peers) {
  const uint64_t end = r->log.end_offset();
  for (BrokerNode* peer : peers) {
    uint64_t peer_end = peer->MirrorEndOffset(r->category, r->partition);
    if (peer_end == std::numeric_limits<uint64_t>::max() || peer_end >= end) {
      continue;
    }
    // Group commit: one round carries every batch the peer is missing —
    // the batch just appended plus whatever queued up while the peer
    // lagged — as shared-blob metadata, no payload copies.
    auto window = r->log.ReadFrom(peer_end, end,
                                  std::numeric_limits<TimeMs>::max());
    if (window.batches.empty()) continue;
    if (peer->MirrorBatches(r->category, r->partition, window.batches)) {
      replication_rounds_->Increment();
      wire_bytes_replicated_->Increment(window.stored_bytes);
    }
  }
}

Status BrokerNode::AdmitProduce(Replica* r, uint64_t wire_cost,
                                std::vector<BrokerNode*>* peers) {
  if (options_.acks == kAcksAll) {
    *peers = LivePeers(r->category, r->partition);
    if (1 + static_cast<int>(peers->size()) < options_.min_insync_replicas) {
      insufficient_replicas_->Increment();
      return Status::Unavailable("not enough in-sync replicas for " +
                                 r->category);
    }
  }
  if (options_.node_service_bytes_per_sec > 0) {
    RefillTokens();
    if (tokens_ < static_cast<double>(wire_cost)) {
      throttled_rate_->Increment();
      return Status::Unavailable("produce rate throttled on " + id_);
    }
  }
  if (r->log.byte_size() >= options_.partition_inflight_limit_bytes) {
    // Bounded in-flight window: backpressure instead of drop-oldest. The
    // producer keeps its queue and retries after backoff; consumers
    // draining the partition (triggering trims) reopen the window. The
    // window is measured in uncompressed terms on both paths.
    throttled_backpressure_->Increment();
    return Status::Unavailable("partition in-flight window full");
  }
  if (options_.node_service_bytes_per_sec > 0) {
    tokens_ -= static_cast<double>(wire_cost);
  }
  return Status::OK();
}

Status BrokerNode::Produce(const std::string& category, int partition,
                           const std::string& producer,
                           const std::vector<ProduceItem>& items,
                           ProduceAck* ack) {
  if (ack != nullptr) *ack = ProduceAck{};
  if (!alive_) return Status::Unavailable("broker down: " + id_);
  Replica* r = FindReplica(category, partition);
  if (r == nullptr || !r->leader) {
    not_leader_rejects_->Increment();
    return Status::FailedPrecondition(id_ + " does not lead " + category +
                                      "/" + std::to_string(partition));
  }
  if (items.empty()) return Status::OK();

  uint64_t cost = 0;
  for (const ProduceItem& item : items) cost += item.payload.size();
  std::vector<BrokerNode*> peers;
  UNILOG_RETURN_NOT_OK(AdmitProduce(r, cost, &peers));

  uint64_t acked_wm = 0;
  if (auto it = r->producer_acked.find(producer);
      it != r->producer_acked.end()) {
    acked_wm = it->second;
  }
  uint64_t appended_wm = acked_wm;
  if (auto it = r->producer_appended.find(producer);
      it != r->producer_appended.end()) {
    appended_wm = std::max(appended_wm, it->second);
  }

  uint64_t first_appended_offset = 0;
  bool any_appended = false;
  uint64_t newly_acked = 0;
  uint64_t newly_acked_bytes = 0;
  uint64_t dups = 0;
  uint64_t max_seq = acked_wm;
  for (const ProduceItem& item : items) {
    if (item.seq <= acked_wm) {
      // Already acknowledged in a previous call: a crash-retry resend.
      // Dedup on (producer, seq) keeps delivery exactly-once.
      ++dups;
      continue;
    }
    ++newly_acked;
    newly_acked_bytes += item.payload.size();
    max_seq = std::max(max_seq, item.seq);
    if (item.seq <= appended_wm) {
      // Appended before a lost ack: the payload is already in the log, so
      // this resend is deduped too — it just gets acknowledged now.
      ++dups;
      continue;
    }
    const Batch& b = r->log.Append(producer, item.seq, sim_->Now(),
                                   item.logged_at, item.payload);
    if (!any_appended) {
      any_appended = true;
      first_appended_offset = b.base_offset;
    }
  }
  if (max_seq > appended_wm) r->producer_appended[producer] = max_seq;

  if (options_.acks == kAcksAll && any_appended) {
    ReplicateToPeers(r, peers);
  }
  PublishEndOffset(r);
  produce_batch_entries_->Observe(static_cast<double>(items.size()));
  wire_bytes_produced_->Increment(cost);

  if (inject_ack_loss_once_) {
    inject_ack_loss_once_ = false;
    // The append (and replication) happened but the ack never reaches the
    // producer. Pin the acked watermark below the new records so consumers
    // cannot see them until the resend resolves their fate.
    if (any_appended) {
      auto [it, inserted] =
          r->unacked_min_offset.emplace(producer, first_appended_offset);
      if (!inserted) it->second = std::min(it->second, first_appended_offset);
    }
    zk_->SetData(session_, StatePath(dc_, category, partition),
                 std::to_string(AckedWatermark(*r)));
    UpdateGauges();
    return Status::Unavailable("ack lost (injected)");
  }

  r->producer_acked[producer] = max_seq;
  r->unacked_min_offset.erase(producer);
  produced_->Increment(newly_acked);
  bytes_produced_->Increment(newly_acked_bytes);
  duplicates_->Increment(dups);
  produce_calls_->Increment();
  zk_->SetData(session_, StatePath(dc_, category, partition),
               std::to_string(AckedWatermark(*r)));
  UpdateGauges();
  if (ack != nullptr) {
    ack->accepted = newly_acked;
    ack->deduped = dups;
  }
  return Status::OK();
}

Status BrokerNode::ProduceBatch(const std::string& category, int partition,
                                const std::string& producer,
                                ProduceBatchRequest req, ProduceAck* ack) {
  if (ack != nullptr) *ack = ProduceAck{};
  if (!alive_) return Status::Unavailable("broker down: " + id_);
  Replica* r = FindReplica(category, partition);
  if (r == nullptr || !r->leader) {
    not_leader_rejects_->Increment();
    return Status::FailedPrecondition(id_ + " does not lead " + category +
                                      "/" + std::to_string(partition));
  }
  if (req.count == 0) return Status::OK();
  if (req.record_sizes.size() != req.count) {
    return Status::InvalidArgument("produce batch record_sizes/count mismatch");
  }

  const uint64_t cost = req.body.size();  // wire bytes: the compressed blob
  std::vector<BrokerNode*> peers;
  UNILOG_RETURN_NOT_OK(AdmitProduce(r, cost, &peers));

  uint64_t acked_wm = 0;
  if (auto it = r->producer_acked.find(producer);
      it != r->producer_acked.end()) {
    acked_wm = it->second;
  }
  uint64_t appended_wm = acked_wm;
  if (auto it = r->producer_appended.find(producer);
      it != r->producer_appended.end()) {
    appended_wm = std::max(appended_wm, it->second);
  }

  // Seqs are dense in [first_seq, last], so dedup is pure arithmetic
  // against the watermarks — no per-record work, no decompression.
  const uint64_t last = req.first_seq + req.count - 1;
  // Resends at or below the appended watermark are duplicates (already in
  // the log; those above the acked watermark just get acknowledged now).
  const uint64_t skip_n =
      appended_wm >= req.first_seq
          ? std::min<uint64_t>(appended_wm - req.first_seq + 1, req.count)
          : 0;
  const uint64_t dups = skip_n;
  const uint64_t ack_lo = std::max(req.first_seq, acked_wm + 1);
  const uint64_t newly_acked = last >= ack_lo ? last - ack_lo + 1 : 0;
  uint64_t newly_acked_bytes = 0;
  for (uint32_t i = 0; i < req.count; ++i) {
    if (req.first_seq + i >= ack_lo) newly_acked_bytes += req.record_sizes[i];
  }

  uint64_t first_appended_offset = 0;
  bool any_appended = false;
  if (skip_n < req.count) {
    // Head-trim the overlap in metadata and append the tail as ONE batch
    // entry; the blob stays whole and opaque (skip_frames records the trim
    // for decode time).
    Batch b;
    b.count = req.count - static_cast<uint32_t>(skip_n);
    b.producer = producer;
    b.first_seq = req.first_seq + skip_n;
    b.min_appended_at = sim_->Now();
    b.max_appended_at = b.min_appended_at;
    b.skip_frames = static_cast<uint32_t>(skip_n);
    b.compressed = req.compressed;
    b.record_sizes.assign(req.record_sizes.begin() + skip_n,
                          req.record_sizes.end());
    for (uint32_t sz : b.record_sizes) b.payload_bytes += sz;
    b.body = std::make_shared<const std::string>(std::move(req.body));
    const Batch& stored = r->log.AppendBatch(std::move(b));
    any_appended = true;
    first_appended_offset = stored.base_offset;
  }
  if (last > appended_wm) r->producer_appended[producer] = last;

  if (options_.acks == kAcksAll && any_appended) {
    ReplicateToPeers(r, peers);
  }
  PublishEndOffset(r);
  produce_batch_entries_->Observe(static_cast<double>(req.count));
  wire_bytes_produced_->Increment(cost);

  if (inject_ack_loss_once_) {
    inject_ack_loss_once_ = false;
    if (any_appended) {
      auto [it, inserted] =
          r->unacked_min_offset.emplace(producer, first_appended_offset);
      if (!inserted) it->second = std::min(it->second, first_appended_offset);
    }
    zk_->SetData(session_, StatePath(dc_, category, partition),
                 std::to_string(AckedWatermark(*r)));
    UpdateGauges();
    return Status::Unavailable("ack lost (injected)");
  }

  r->producer_acked[producer] = std::max(acked_wm, last);
  r->unacked_min_offset.erase(producer);
  produced_->Increment(newly_acked);
  bytes_produced_->Increment(newly_acked_bytes);
  duplicates_->Increment(dups);
  produce_calls_->Increment();
  zk_->SetData(session_, StatePath(dc_, category, partition),
               std::to_string(AckedWatermark(*r)));
  UpdateGauges();
  if (ack != nullptr) {
    ack->accepted = newly_acked;
    ack->deduped = dups;
  }
  return Status::OK();
}

Result<PartitionLog::ReadResult> BrokerNode::ConsumerFetch(
    const std::string& category, int partition, uint64_t from,
    TimeMs ts_limit) const {
  if (!alive_) return Status::Unavailable("broker down: " + id_);
  const Replica* r = FindReplica(category, partition);
  if (r == nullptr || !r->leader) {
    return Status::FailedPrecondition(id_ + " does not lead " + category +
                                      "/" + std::to_string(partition));
  }
  return r->log.ReadFrom(from, AckedWatermark(*r), ts_limit);
}

Result<PartitionLog::ReadResult> BrokerNode::ReplicaFetch(
    const std::string& category, int partition, uint64_t from,
    uint64_t* trim_to) const {
  if (!alive_) return Status::Unavailable("broker down: " + id_);
  const Replica* r = FindReplica(category, partition);
  if (r == nullptr) {
    return Status::NotFound(id_ + " hosts no replica of " + category);
  }
  if (trim_to != nullptr) *trim_to = r->log.begin_offset();
  return r->log.ReadFrom(from, r->log.end_offset(),
                         std::numeric_limits<TimeMs>::max());
}

void BrokerNode::NoteConsumedTo(const std::string& category, int partition,
                                uint64_t offset) {
  Replica* r = FindReplica(category, partition);
  if (r == nullptr || !r->leader) return;
  r->log.TrimTo(offset);
  UpdateGauges();
}

void BrokerNode::ScheduleReplicaFetch() {
  if (options_.replica_fetch_interval_ms <= 0) return;
  sim_->After(options_.replica_fetch_interval_ms,
              [this, inc = incarnation_]() {
                if (inc != incarnation_ || !alive_) return;
                FetchFromLeaders();
                ScheduleReplicaFetch();
              });
}

void BrokerNode::FetchFromLeaders() {
  for (auto& [key, r] : replicas_) {
    if (r.leader) continue;
    auto winner = ElectLeader(*zk_, dc_, key.first, key.second);
    if (!winner.ok() || *winner == id_ || !resolve_) continue;
    BrokerNode* leader = resolve_(*winner);
    if (leader == nullptr || !leader->alive()) continue;
    uint64_t trim_to = 0;
    auto fetched = leader->ReplicaFetch(key.first, key.second,
                                        r.log.end_offset(), &trim_to);
    if (!fetched.ok()) continue;
    uint64_t mirrored = 0;
    uint64_t mirrored_wire = 0;
    for (Batch& b : fetched->batches) {
      uint64_t wire = b.stored_bytes();
      if (r.log.AppendMirror(std::move(b))) {
        mirrored += r.log.batches().back().count;
        mirrored_wire += wire;
      }
    }
    r.log.TrimTo(trim_to);
    if (mirrored > 0) {
      replicated_->Increment(mirrored);
      wire_bytes_replicated_->Increment(mirrored_wire);
      PublishEndOffset(&r);
    }
  }
  UpdateGauges();
}

void BrokerNode::RefillTokens() {
  TimeMs now = sim_->Now();
  double cap = static_cast<double>(options_.node_service_bytes_per_sec);
  tokens_ = std::min(
      cap, tokens_ + cap * static_cast<double>(now - last_refill_) / 1000.0);
  last_refill_ = now;
}

void BrokerNode::UpdateGauges() {
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t stored = 0;
  int64_t led = 0;
  for (const auto& [key, r] : replicas_) {
    entries += r.log.entry_count();
    bytes += r.log.byte_size();
    stored += r.log.stored_byte_size();
    if (r.leader) ++led;
  }
  log_entries_gauge_->Set(static_cast<int64_t>(entries));
  log_bytes_gauge_->Set(static_cast<int64_t>(bytes));
  retained_compressed_gauge_->Set(static_cast<int64_t>(stored));
  retained_uncompressed_gauge_->Set(static_cast<int64_t>(bytes));
  partitions_led_gauge_->Set(led);
}

BrokerNodeStats BrokerNode::stats() const {
  BrokerNodeStats s;
  s.entries_produced = produced_->value();
  s.bytes_produced = bytes_produced_->value();
  s.wire_bytes_produced = wire_bytes_produced_->value();
  s.entries_duplicate = duplicates_->value();
  s.entries_replicated = replicated_->value();
  s.wire_bytes_replicated = wire_bytes_replicated_->value();
  s.replication_rounds = replication_rounds_->value();
  s.produce_calls = produce_calls_->value();
  s.entries_lost_failover = lost_failover_->value();
  s.elections_won = elections_->value();
  s.throttled_backpressure = throttled_backpressure_->value();
  s.throttled_rate = throttled_rate_->value();
  s.insufficient_replicas = insufficient_replicas_->value();
  s.not_leader_rejects = not_leader_rejects_->value();
  s.log_entries = static_cast<uint64_t>(log_entries_gauge_->value());
  s.log_bytes = static_cast<uint64_t>(log_bytes_gauge_->value());
  s.retained_bytes_compressed =
      static_cast<uint64_t>(retained_compressed_gauge_->value());
  s.retained_bytes_uncompressed =
      static_cast<uint64_t>(retained_uncompressed_gauge_->value());
  s.partitions_led = static_cast<uint64_t>(partitions_led_gauge_->value());
  return s;
}

}  // namespace unilog::broker
